// Reproduces Figure 2: "Example utilization-weighted pricing curves."
//
// Prints the three weighting functions the paper plots —
// φ1(x) = exp(2(x−0.5)), φ2(x) = exp(x−0.5), φ3(x) = 1/(1.5−x) —
// sampled over normalized utilization 0–100 %, verifies the §IV.A
// properties for each, and renders the curves as an ASCII chart.
//
// Paper shape to match: all curves pass through 1.0 at 50 % utilization;
// φ1 is steepest (0.37 → 2.72), φ3 bends hardest near full utilization
// (reaching 2.0), φ2 is the gentle middle curve.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "common/ascii_chart.h"
#include "common/table.h"
#include "reserve/weighting.h"
#include "common/bench_meta.h"

int main(int argc, char** argv) {
  if (pm::ParseThreadsFlag(&argc, argv, 0) > 1) {
    std::cerr << "note: --threads accepted for bench-interface "
                 "uniformity; the weighting-curve sweep is pure "
                 "math with no parallel path\n";
  }
  using pm::reserve::WeightingFunction;
  std::vector<std::unique_ptr<WeightingFunction>> curves;
  curves.push_back(pm::reserve::MakeExp2Weighting());
  curves.push_back(pm::reserve::MakeExpWeighting());
  curves.push_back(pm::reserve::MakeReciprocalWeighting());

  std::cout << "=== Figure 2: utilization-weighted pricing curves ===\n\n";

  pm::TextTable table({"utilization", "phi1 = exp(2(x-0.5))",
                       "phi2 = exp(x-0.5)", "phi3 = 1/(1.5-x)"});
  for (int pct = 0; pct <= 100; pct += 10) {
    const double x = pct / 100.0;
    table.AddRow({std::to_string(pct) + "%",
                  pm::FormatF((*curves[0])(x), 4),
                  pm::FormatF((*curves[1])(x), 4),
                  pm::FormatF((*curves[2])(x), 4)});
  }
  std::cout << table.Render() << '\n';

  // §IV.A property audit for every curve.
  pm::TextTable props({"curve", "properties 1-5", "dynamic range k"});
  for (const auto& curve : curves) {
    const std::string failure =
        pm::reserve::CheckWeightingProperties(*curve);
    props.AddRow({std::string(curve->Name()),
                  failure.empty() ? "all hold" : failure,
                  pm::FormatF(curve->DynamicRange(), 3)});
  }
  std::cout << props.Render() << '\n';

  // ASCII rendering of the figure itself.
  std::vector<pm::ChartSeries> series;
  const char glyphs[] = {'1', '2', '3'};
  for (std::size_t c = 0; c < curves.size(); ++c) {
    pm::ChartSeries s;
    s.label = std::string("phi") + glyphs[c] + " (" +
              std::string(curves[c]->Name()) + ")";
    s.glyph = glyphs[c];
    for (int pct = 0; pct <= 100; ++pct) {
      s.xs.push_back(pct);
      s.ys.push_back((*curves[c])(pct / 100.0));
    }
    series.push_back(std::move(s));
  }
  pm::ChartOptions options;
  options.title = "weighted price multiple vs normalized resource "
                  "utilization (%)";
  options.width = 72;
  options.height = 18;
  std::cout << RenderLineChart(series, options);
  return 0;
}
