// Verifies §III.C.4: "All else being equal, the execution time scales
// linearly in the number of participants and the number of resources.
// Solving for the prices in our experimental resource auction (having
// around 100 bidders and 100 system-level resources) took only a few
// minutes [in Python] … Optimized code written in a lower-level language
// could reduce this by at least one order of magnitude."
//
// google-benchmark sweeps U (users) at fixed R and R (pools) at fixed U,
// with per-round work held comparable; the custom counters report demand
// evaluations. A final OLS fit (run as a -------- summary after the
// timed sections) confirms R² ≈ 1 for time vs size. The 100×100 case is
// benchmarked explicitly — it completes in milliseconds, far beyond the
// paper's predicted 10×.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "auction/clock_auction.h"
#include "common/rng.h"
#include "common/bench_meta.h"
#include "common/thread_pool.h"
#include "stats/regression.h"

namespace {

/// Builds a market with `users` bidders over `pools` pools where per-user
/// work is constant (one or two sparse bundles each). With
/// `never_clears`, limits are effectively unbounded and supply is scarce,
/// so the clock runs exactly max_rounds rounds — §III.C.4's "all else
/// being equal": the round count is pinned and total time isolates the
/// per-round Θ(users + pools) work.
pm::auction::ClockAuction MakeMarket(int users, int pools,
                                     std::uint64_t seed,
                                     bool never_clears) {
  pm::RandomStream rng(seed);
  std::vector<double> supply(static_cast<std::size_t>(pools));
  std::vector<double> reserve(static_cast<std::size_t>(pools));
  for (auto& s : supply) s = never_clears ? 0.5 : rng.Uniform(20.0, 60.0);
  for (auto& r : reserve) r = rng.Uniform(0.5, 3.0);
  std::vector<pm::bid::Bid> bids;
  bids.reserve(static_cast<std::size_t>(users));
  for (int u = 0; u < users; ++u) {
    pm::bid::Bid b;
    b.user = static_cast<pm::UserId>(u);
    b.name = "u" + std::to_string(u);
    const int bundles = 1 + (u % 2);
    double cost = 0.0;
    for (int k = 0; k < bundles; ++k) {
      const auto pool =
          static_cast<pm::PoolId>(rng.UniformInt(0, pools - 1));
      const double qty = rng.Uniform(1.0, 4.0);
      b.bundles.push_back(
          pm::bid::Bundle({pm::bid::BundleItem{pool, qty}}));
      cost = std::max(cost, qty * reserve[pool]);
    }
    b.limit = never_clears ? 1e18 : cost * rng.Uniform(1.2, 3.0);
    bids.push_back(std::move(b));
  }
  pm::bid::AssignUserIds(bids);
  return pm::auction::ClockAuction(std::move(bids), std::move(supply),
                                   std::move(reserve));
}

/// Fixed 100-round budget for the scaling sweeps.
constexpr int kFixedRounds = 100;

pm::auction::ClockAuctionConfig BenchConfig(bool fixed_rounds) {
  pm::auction::ClockAuctionConfig config;
  config.alpha = 0.4;
  config.delta = 0.08;
  if (fixed_rounds) config.max_rounds = kFixedRounds;
  return config;
}

void BM_ClockAuction_Users(benchmark::State& state) {
  const int users = static_cast<int>(state.range(0));
  const pm::auction::ClockAuction market =
      MakeMarket(users, 100, 7, /*never_clears=*/true);
  long long evals = 0;
  int rounds = 0;
  for (auto _ : state) {
    const pm::auction::ClockAuctionResult r =
        market.Run(BenchConfig(/*fixed_rounds=*/true));
    benchmark::DoNotOptimize(r.prices.data());
    evals = r.demand_evaluations;
    rounds = r.rounds;
  }
  state.counters["users"] = users;
  state.counters["rounds"] = rounds;
  state.counters["demand_evals"] = static_cast<double>(evals);
}
BENCHMARK(BM_ClockAuction_Users)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Arg(1600)
    ->Arg(6400)
    ->Arg(25600)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ClockAuction_Pools(benchmark::State& state) {
  const int pools = static_cast<int>(state.range(0));
  const pm::auction::ClockAuction market =
      MakeMarket(100, pools, 11, /*never_clears=*/true);
  for (auto _ : state) {
    const pm::auction::ClockAuctionResult r =
        market.Run(BenchConfig(/*fixed_rounds=*/true));
    benchmark::DoNotOptimize(r.prices.data());
  }
  state.counters["pools"] = pools;
}
BENCHMARK(BM_ClockAuction_Pools)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

// The paper's own experimental scale: ~100 bidders × ~100 pools, on a
// realistic converging market (run to convergence, not a fixed budget).
void BM_ClockAuction_PaperScale(benchmark::State& state) {
  const pm::auction::ClockAuction market =
      MakeMarket(100, 100, 13, /*never_clears=*/false);
  for (auto _ : state) {
    const pm::auction::ClockAuctionResult r =
        market.Run(BenchConfig(/*fixed_rounds=*/false));
    benchmark::DoNotOptimize(r.converged);
  }
  state.SetLabel("paper: 'a few minutes' in Python; >=10x predicted");
}
BENCHMARK(BM_ClockAuction_PaperScale)->Unit(benchmark::kMillisecond);

// --threads override for the parallel-proxies sweep (0 = use the
// registered 1/2/4 args).
unsigned g_threads_override = 0;

// Parallel proxy evaluation (line 4 fan-out across a thread pool).
void BM_ClockAuction_ParallelProxies(benchmark::State& state) {
  const auto threads = g_threads_override > 0
                           ? static_cast<std::size_t>(g_threads_override)
                           : static_cast<std::size_t>(state.range(0));
  const pm::auction::ClockAuction market =
      MakeMarket(800, 100, 17, /*never_clears=*/true);
  pm::ThreadPool pool(threads);
  pm::auction::ClockAuctionConfig config =
      BenchConfig(/*fixed_rounds=*/true);
  config.thread_pool = threads > 1 ? &pool : nullptr;
  for (auto _ : state) {
    const pm::auction::ClockAuctionResult r = market.Run(config);
    benchmark::DoNotOptimize(r.prices.data());
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ClockAuction_ParallelProxies)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Linearity audit printed after the benchmark tables: OLS of runtime vs
/// users and vs pools.
void PrintLinearityFit() {
  // Median-of-5 timings of the fixed-100-round clock, then OLS.
  auto time_market = [](int users, int pools, std::uint64_t seed) {
    const pm::auction::ClockAuction market =
        MakeMarket(users, pools, seed, /*never_clears=*/true);
    std::vector<double> samples;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const pm::auction::ClockAuctionResult r =
          market.Run(BenchConfig(/*fixed_rounds=*/true));
      benchmark::DoNotOptimize(r.prices.data());
      samples.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };
  std::vector<double> sizes, times_ms;
  for (const int users : {25, 50, 100, 200, 400, 800, 1600}) {
    sizes.push_back(users);
    times_ms.push_back(time_market(users, 100, 7));
  }
  const pm::stats::LinearFit fit_users =
      pm::stats::FitLinear(sizes, times_ms);
  sizes.clear();
  times_ms.clear();
  for (const int pools : {25, 50, 100, 200, 400, 800}) {
    sizes.push_back(pools);
    times_ms.push_back(time_market(100, pools, 11));
  }
  const pm::stats::LinearFit fit_pools =
      pm::stats::FitLinear(sizes, times_ms);
  std::printf(
      "\nlinearity audit (§III.C.4, fixed %d-round clock): "
      "time ~ users R^2 = %.4f, time ~ pools R^2 = %.4f "
      "(both should be ~1)\n",
      kFixedRounds, fit_users.r_squared, fit_pools.r_squared);
}

}  // namespace

int main(int argc, char** argv) {
  g_threads_override = pm::ParseThreadsFlag(&argc, argv, 0);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintLinearityFit();
  return 0;
}
