// Reproduces Figures 1 and 5: the auctioneer ↔ bidder-proxy price-update
// loop as an actual distributed protocol. Runs the same market serially
// and distributed (proxy nodes on threads exchanging serialized frames)
// and reports: result equivalence, message counts (2 per node per round
// + terminates), bytes on the wire, and wall-clock per round.
//
// Shape to match: identical prices and allocations to the serial engine;
// message count exactly (announce + reply) × nodes × rounds + terminates.
#include <chrono>
#include <iostream>
#include <memory>

#include "common/rng.h"
#include "common/table.h"
#include "net/distributed_auction.h"
#include "common/bench_meta.h"
#include "common/thread_pool.h"

namespace {

pm::auction::ClockAuction MakeMarket(std::uint64_t seed, int users,
                                     int pools) {
  pm::RandomStream rng(seed);
  std::vector<double> supply(pools), reserve(pools);
  for (int r = 0; r < pools; ++r) {
    supply[static_cast<std::size_t>(r)] = rng.Uniform(10.0, 80.0);
    reserve[static_cast<std::size_t>(r)] = rng.Uniform(0.5, 4.0);
  }
  std::vector<pm::bid::Bid> bids;
  for (int u = 0; u < users; ++u) {
    pm::bid::Bid b;
    b.user = static_cast<pm::UserId>(u);
    b.name = "u" + std::to_string(u);
    const bool seller = rng.Bernoulli(0.2);
    std::vector<pm::bid::BundleItem> items;
    const int n = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < n; ++i) {
      items.push_back(pm::bid::BundleItem{
          static_cast<pm::PoolId>(rng.UniformInt(0, pools - 1)),
          rng.Uniform(1.0, 5.0) * (seller ? -1.0 : 1.0)});
    }
    pm::bid::Bundle bundle(std::move(items));
    if (bundle.Empty()) continue;
    const double reserve_cost = std::abs(bundle.Dot(reserve));
    b.limit = seller ? -reserve_cost * rng.Uniform(0.3, 0.9)
                     : reserve_cost * rng.Uniform(1.2, 3.5);
    b.bundles = {std::move(bundle)};
    bids.push_back(std::move(b));
  }
  pm::bid::AssignUserIds(bids);
  return pm::auction::ClockAuction(std::move(bids), std::move(supply),
                                   std::move(reserve));
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = pm::ParseThreadsFlag(&argc, argv, 0);
  // --threads: size of the shared auction pool (0/1 = serial).
  std::unique_ptr<pm::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<pm::ThreadPool>(threads);

  std::cout << "=== Distributed price-update loop (Figures 1 & 5) "
               "===\n\n";
  pm::TextTable table({"users", "proxy nodes", "rounds", "identical",
                       "messages", "KiB on wire", "serial ms",
                       "distributed ms"});

  for (const int users : {50, 100, 200}) {
    const pm::auction::ClockAuction market = MakeMarket(99, users, 30);
    pm::auction::ClockAuctionConfig config;
    config.policy_kind =
        pm::auction::ClockAuctionConfig::PolicyKind::kMultiplicative;
    config.alpha = 0.4;
    config.delta = 0.08;
    config.thread_pool = pool.get();

    const auto t0 = std::chrono::steady_clock::now();
    const pm::auction::ClockAuctionResult serial = market.Run(config);
    const double serial_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    for (const std::size_t nodes : {2u, 4u, 8u}) {
      pm::net::DistributedConfig dist;
      dist.num_proxy_nodes = nodes;
      dist.auction = config;
      const auto t1 = std::chrono::steady_clock::now();
      const pm::net::DistributedResult d =
          RunDistributedAuction(market, dist);
      const double dist_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t1)
              .count();
      const bool identical =
          serial.prices == d.result.prices &&
          serial.rounds == d.result.rounds;
      table.AddRow({std::to_string(users), std::to_string(nodes),
                    std::to_string(d.result.rounds),
                    identical ? "yes" : "NO",
                    std::to_string(d.transport.messages_sent),
                    pm::FormatF(static_cast<double>(
                                    d.transport.bytes_sent) /
                                    1024.0,
                                1),
                    pm::FormatF(serial_ms, 2),
                    pm::FormatF(dist_ms, 2)});
    }
  }
  std::cout << table.Render() << '\n'
            << "shape check: the distributed loop reproduces the serial "
               "clock bit-for-bit; per round each proxy node receives "
               "one PriceAnnounce and sends one DemandReply\n";
  return 0;
}
