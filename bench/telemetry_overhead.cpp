// Bench: the telemetry plane's zero-cost-when-off contract, measured.
//
//   $ ./bench_telemetry_overhead [scenario] [epochs]
//
// Runs one scenario four times from identical seeds — telemetry off,
// telemetry on with the watchdog off, telemetry on with the full
// watchdog (recording rules + alerts), and telemetry on with the full
// watchdog plus the profiler's work-accounting channel armed — and
//
//   1. byte-compares the ScenarioMetrics JSON of all four runs: every
//      document must equal the telemetry-off baseline exactly
//      (instrumentation may never perturb market behavior — not the
//      watchdog, and not the profiler counting work on the hot paths),
//      exiting 1 on any divergence;
//   2. checks the watchdog-off registry document carries no `derived:`
//      series and no `fed_work_` series — "off" must mean bit-identical
//      exports, not just quiet alerts (exit 1 otherwise), and likewise
//      that the profiler-off watchdog arm carries no `fed_work_` or
//      `derived:work_` series (the profiler gate must not leak);
//   3. reports all four wall times, so the overhead of the enabled
//      plane (span emission, registry ingest, ring rotation), of the
//      watchdog on top (rule evaluation, alert state machine), and of
//      the profiler (counter copies at epoch barriers, never in auction
//      loops) is visible in CI logs.
//
// The bench-smoke ctest entry runs this at a tiny size; a nonzero exit
// fails the suite, which makes all three contracts a gate, not a hope.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "telemetry/telemetry.h"
#include "common/bench_meta.h"

namespace {

struct RunResult {
  std::string metrics_json;
  std::string registry_json;  // Empty when telemetry is off.
  double wall_seconds = 0.0;
};

RunResult RunOnce(const std::string& scenario, int epochs, bool telemetry,
                  bool watchdog, bool profiler, unsigned num_threads) {
  pm::scenario::ScenarioSpec spec = pm::scenario::FindScenario(scenario);
  spec.federation.telemetry.enabled = telemetry;
  spec.federation.telemetry.watchdog.recording_rules = watchdog;
  spec.federation.telemetry.watchdog.alerts = watchdog;
  spec.federation.telemetry.profiler.work_accounting = profiler;
  // Alert SLO assertions render into the metrics JSON (and need the
  // engine armed); strip them from every arm so the byte comparison is
  // market outcomes only.
  spec.slo.expect_alerts.clear();
  spec.slo.forbid_alerts.clear();
  pm::scenario::RunnerConfig config;
  config.num_threads = num_threads;
  config.epochs = epochs;
  pm::scenario::ScenarioRunner runner(std::move(spec), config);
  const auto start = std::chrono::steady_clock::now();
  pm::scenario::ScenarioMetrics metrics = runner.Run();
  const auto stop = std::chrono::steady_clock::now();
  RunResult result;
  result.metrics_json = metrics.ToJson();
  if (const pm::telemetry::Telemetry* t = runner.exchange().telemetry()) {
    result.registry_json = t->MetricsJson();
  }
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = pm::ParseThreadsFlag(&argc, argv, 0);
  const std::string scenario = argc > 1 ? argv[1] : "flash-crowd";
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 4;

  const RunResult off =
      RunOnce(scenario, epochs, /*telemetry=*/false, /*watchdog=*/false,
              /*profiler=*/false, threads);
  const RunResult on =
      RunOnce(scenario, epochs, /*telemetry=*/true, /*watchdog=*/false,
              /*profiler=*/false, threads);
  const RunResult watch =
      RunOnce(scenario, epochs, /*telemetry=*/true, /*watchdog=*/true,
              /*profiler=*/false, threads);
  const RunResult prof =
      RunOnce(scenario, epochs, /*telemetry=*/true, /*watchdog=*/true,
              /*profiler=*/true, threads);

  if (off.metrics_json != on.metrics_json) {
    std::cerr << "FAIL: telemetry-on run diverged from the telemetry-off "
                 "baseline (scenario "
              << scenario << ", " << epochs
              << " epochs) — instrumentation perturbed market behavior\n";
    return 1;
  }
  if (off.metrics_json != watch.metrics_json) {
    std::cerr << "FAIL: watchdog-on run diverged from the telemetry-off "
                 "baseline (scenario "
              << scenario << ", " << epochs
              << " epochs) — the watchdog perturbed market behavior\n";
    return 1;
  }
  if (off.metrics_json != prof.metrics_json) {
    std::cerr << "FAIL: profiler-armed run diverged from the "
                 "telemetry-off baseline (scenario "
              << scenario << ", " << epochs
              << " epochs) — work accounting perturbed market behavior\n";
    return 1;
  }
  if (on.registry_json.find("derived:") != std::string::npos) {
    std::cerr << "FAIL: watchdog-off registry document carries derived: "
                 "series (scenario "
              << scenario << ", " << epochs
              << " epochs) — the watchdog gate leaks\n";
    return 1;
  }
  if (watch.registry_json.find("fed_work_") != std::string::npos ||
      watch.registry_json.find("derived:work_") != std::string::npos) {
    std::cerr << "FAIL: profiler-off registry document carries work "
                 "series (scenario "
              << scenario << ", " << epochs
              << " epochs) — the profiler gate leaks\n";
    return 1;
  }
  if (prof.registry_json.find("fed_work_") == std::string::npos) {
    std::cerr << "FAIL: profiler-armed registry document carries no "
                 "fed_work_ series (scenario "
              << scenario << ", " << epochs
              << " epochs) — work accounting never reached the registry\n";
    return 1;
  }

  std::cout << "telemetry overhead: scenario=" << scenario
            << " epochs=" << epochs << "\n"
            << "  off:      " << off.wall_seconds << " s\n"
            << "  on:       " << on.wall_seconds << " s\n"
            << "  watchdog: " << watch.wall_seconds << " s\n"
            << "  profiler: " << prof.wall_seconds << " s\n"
            << "  metrics JSON byte-identical: yes\n"
            << "  watchdog-off derived-series leak: none\n"
            << "  profiler-off work-series leak: none\n";
  return 0;
}
