// Bench: the telemetry plane's zero-cost-when-off contract, measured.
//
//   $ ./bench_telemetry_overhead [scenario] [epochs]
//
// Runs one scenario twice from identical seeds — telemetry off, then
// telemetry on — and
//
//   1. byte-compares the ScenarioMetrics JSON of the two runs: the off
//      document must equal the on document exactly (instrumentation may
//      never perturb market behavior), exiting 1 on any divergence;
//   2. reports both wall times, so the overhead of the enabled plane
//      (span emission, registry ingest, ring rotation — all at epoch
//      barriers, never in auction loops) is visible in CI logs.
//
// The bench-smoke ctest entry runs this at a tiny size; a nonzero exit
// fails the suite, which makes "telemetry off is bit-identical" a gate,
// not a hope.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace {

struct RunResult {
  std::string metrics_json;
  double wall_seconds = 0.0;
};

RunResult RunOnce(const std::string& scenario, int epochs,
                  bool telemetry) {
  pm::scenario::ScenarioSpec spec = pm::scenario::FindScenario(scenario);
  spec.federation.telemetry.enabled = telemetry;
  pm::scenario::RunnerConfig config;
  config.epochs = epochs;
  pm::scenario::ScenarioRunner runner(std::move(spec), config);
  const auto start = std::chrono::steady_clock::now();
  pm::scenario::ScenarioMetrics metrics = runner.Run();
  const auto stop = std::chrono::steady_clock::now();
  RunResult result;
  result.metrics_json = metrics.ToJson();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string scenario = argc > 1 ? argv[1] : "flash-crowd";
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 4;

  const RunResult off = RunOnce(scenario, epochs, /*telemetry=*/false);
  const RunResult on = RunOnce(scenario, epochs, /*telemetry=*/true);

  if (off.metrics_json != on.metrics_json) {
    std::cerr << "FAIL: telemetry-on run diverged from the telemetry-off "
                 "baseline (scenario "
              << scenario << ", " << epochs
              << " epochs) — instrumentation perturbed market behavior\n";
    return 1;
  }

  std::cout << "telemetry overhead: scenario=" << scenario
            << " epochs=" << epochs << "\n"
            << "  off: " << off.wall_seconds << " s\n"
            << "  on:  " << on.wall_seconds << " s\n"
            << "  metrics JSON byte-identical: yes\n";
  return 0;
}
