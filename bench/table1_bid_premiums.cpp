// Reproduces Table I: "Bid premium statistics" — the median and mean of
// the winner premium γ_u = |π_u − x_u·p| / (x_u·p) (Eq. 5) and the
// fraction of bids settled, across successive auctions with learning
// bidders.
//
// Paper values (shape targets, not absolutes):
//   auction 1: median 0.0092, mean 0.0614, 58.9% settled
//   auction 2: median 0.0025, mean 0.2078, 88.2% settled
//   auction 3: median 0.0009, mean 0.0202, 50.0% settled
// i.e. the median collapses by roughly an order of magnitude as bidders
// learn the market prices, while the mean stays noisy (lowball sellers
// and premium payers), and the settle rate fluctuates.
#include <algorithm>
#include <iostream>
#include <vector>
#include <memory>

#include "agents/workload_gen.h"
#include "common/table.h"
#include "exchange/market.h"
#include "common/bench_meta.h"
#include "common/thread_pool.h"

int main(int argc, char** argv) {
  const unsigned threads = pm::ParseThreadsFlag(&argc, argv, 0);
  // --threads: size of the shared auction pool (0/1 = serial).
  std::unique_ptr<pm::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<pm::ThreadPool>(threads);

  pm::agents::WorkloadConfig workload;
  workload.num_clusters = 34;
  workload.num_teams = 100;
  workload.seed = 20090425;
  pm::agents::World world = GenerateWorld(workload);

  pm::exchange::MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  config.auction.thread_pool = pool.get();
  pm::exchange::Market market(&world.fleet, &world.agents,
                              world.fixed_prices, config);

  std::cout << "=== Table I: bid premium statistics across auctions "
               "===\n\n";

  pm::TextTable table({"auction", "median of gamma", "mean of gamma",
                       "% settled", "winners", "rounds"});
  const int kAuctions = 6;  // The paper ran six experimental auctions.
  std::vector<double> medians;
  for (int a = 0; a < kAuctions; ++a) {
    const pm::exchange::AuctionReport report = market.RunAuction();
    table.AddRow({std::to_string(a + 1),
                  pm::FormatF(report.premium.median, 4),
                  pm::FormatF(report.premium.mean, 4),
                  pm::FormatPct(report.settled_fraction, 1),
                  std::to_string(report.num_winners),
                  std::to_string(report.rounds)});
    medians.push_back(report.premium.median);
  }
  std::cout << table.Render() << '\n';

  // Learning trend: first auction vs the mean of the trailing half
  // (single auctions are noisy when the settle rate dips and the few
  // remaining winners are the structural premium payers).
  const double first_median = medians.front();
  double late_mean = 0.0;
  const std::size_t half = medians.size() / 2;
  for (std::size_t a = half; a < medians.size(); ++a) {
    late_mean += medians[a];
  }
  late_mean /= static_cast<double>(medians.size() - half);
  const double min_median =
      *std::min_element(medians.begin(), medians.end());
  std::cout << "shape check: median premium fell from "
            << pm::FormatF(first_median, 4)
            << " (auction 1) to a trailing-half mean of "
            << pm::FormatF(late_mean, 4) << " ("
            << pm::FormatF(first_median / std::max(late_mean, 1e-9), 1)
            << "x decline; best auction " << pm::FormatF(min_median, 4)
            << " = "
            << pm::FormatF(first_median / std::max(min_median, 1e-9), 1)
            << "x; paper: 0.0092 -> 0.0009, ~10x over 3 auctions)\n"
            << "               mean premium stays noisy due to lowball "
               "sellers and premium-sticky buyers (paper: 0.06 -> 0.21 "
               "-> 0.02)\n";
  return 0;
}
