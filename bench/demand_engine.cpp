// Microbenchmark for the arena-compiled DemandEngine (§III.C.4: "optimized
// code written in a lower-level language could reduce this by at least one
// order of magnitude").
//
// Three comparisons:
//   1. Arena vs legacy demand collection on the paper-scale 100-bidder ×
//      100-pool fixed-round clock sweep (the legacy path is the pre-engine
//      ClockAuction inner loop: BidderProxy::Evaluate per user through a
//      std::function fan-out plus a serial AccumulateInto pass).
//   2. Incremental vs full demand probes when a price step touches only a
//      subset of pools (the bisection-probe workload): cost must be
//      sublinear in the total bundle count.
//   3. Thread scaling of full arena collections, 1–16 threads.
//
// Besides the google-benchmark tables, the binary writes
// BENCH_demand_engine.json (median-of-repetition timings) to seed the
// perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "auction/clock_auction.h"
#include "auction/demand_engine.h"
#include "auction/increment_policy.h"
#include "auction/proxy.h"
#include "common/bench_meta.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace {

using pm::auction::ClockAuction;
using pm::auction::ClockAuctionConfig;
using pm::auction::ClockAuctionResult;
using pm::auction::DemandEngine;
using pm::auction::ProxyDecision;

/// Paper-scale sweep market (§V: each team bids alternative bundles of
/// CPU/RAM/disk across clusters). Like a real clock auction, price motion
/// concentrates as the sweep progresses: 90 % of the pools are "calm" —
/// their bidders (4 alternative bundles of 4–6 items each) hold finite
/// limits and drop out over the early rounds, after which those clocks
/// stop — while 10 % are "hot" pools whose bidders never drop, so their
/// clocks step on every one of the fixed rounds. The legacy path pays a
/// full per-proxy evaluation every round regardless; the engine's
/// inverted index re-evaluates only the hot bidders once the calm pools
/// stop moving.
ClockAuction MakeSweepMarket(int users, int pools, std::uint64_t seed) {
  pm::RandomStream rng(seed);
  const int hot_pools = std::max(1, pools / 10);
  std::vector<double> supply(static_cast<std::size_t>(pools));
  std::vector<double> reserve(static_cast<std::size_t>(pools), 1.0);
  for (int r = 0; r < pools; ++r) {
    supply[static_cast<std::size_t>(r)] = r < hot_pools ? 0.5 : 25.0;
  }
  std::vector<pm::bid::Bid> bids;
  bids.reserve(static_cast<std::size_t>(users));
  const int hot_users = std::max(1, users / 5);
  for (int u = 0; u < users; ++u) {
    pm::bid::Bid b;
    b.user = static_cast<pm::UserId>(u);
    b.name = "u" + std::to_string(u);
    if (u < hot_users) {
      // Hot bidder: small bundles over the contested pools, unbounded π.
      for (int k = 0; k < 2; ++k) {
        std::vector<pm::bid::BundleItem> items;
        for (int j = 0; j < 2; ++j) {
          items.push_back(pm::bid::BundleItem{
              static_cast<pm::PoolId>(rng.UniformInt(0, hot_pools - 1)),
              rng.Uniform(1.0, 3.0)});
        }
        pm::bid::Bundle bundle(std::move(items));
        if (!bundle.Empty()) b.bundles.push_back(std::move(bundle));
      }
      b.limit = 1e18;
    } else {
      // Calm bidder: alternative CPU/RAM/disk-style bundles with a finite
      // limit a small multiple of the reserve cost, so rising clocks push
      // it out within the first few dozen rounds.
      double reserve_cost = 0.0;
      for (int k = 0; k < 4; ++k) {
        std::vector<pm::bid::BundleItem> items;
        const int nnz = static_cast<int>(rng.UniformInt(4, 6));
        for (int j = 0; j < nnz; ++j) {
          items.push_back(pm::bid::BundleItem{
              static_cast<pm::PoolId>(rng.UniformInt(hot_pools, pools - 1)),
              rng.Uniform(1.0, 4.0)});
        }
        pm::bid::Bundle bundle(std::move(items));
        if (bundle.Empty()) continue;
        double cost = 0.0;
        for (const pm::bid::BundleItem& item : bundle.items()) {
          cost += item.qty;  // Reserve prices are 1.0.
        }
        reserve_cost = std::max(reserve_cost, cost);
        b.bundles.push_back(std::move(bundle));
      }
      if (b.bundles.empty()) {
        b.bundles.push_back(pm::bid::Bundle({pm::bid::BundleItem{
            static_cast<pm::PoolId>(hot_pools), 1.0}}));
        reserve_cost = 1.0;
      }
      b.limit = reserve_cost * rng.Uniform(1.1, 3.0);
    }
    bids.push_back(std::move(b));
  }
  pm::bid::AssignUserIds(bids);
  return ClockAuction(std::move(bids), std::move(supply),
                      std::move(reserve));
}

/// A denser market for the probe benchmarks: many bundles per bidder so
/// full evaluation cost is dominated by bundle scans.
ClockAuction MakeDenseMarket(int users, int pools, int bundles_per_user,
                             int items_per_bundle, std::uint64_t seed) {
  pm::RandomStream rng(seed);
  std::vector<double> supply(static_cast<std::size_t>(pools), 10.0);
  std::vector<double> reserve(static_cast<std::size_t>(pools), 1.0);
  std::vector<pm::bid::Bid> bids;
  bids.reserve(static_cast<std::size_t>(users));
  for (int u = 0; u < users; ++u) {
    pm::bid::Bid b;
    b.user = static_cast<pm::UserId>(u);
    b.name = "u" + std::to_string(u);
    for (int k = 0; k < bundles_per_user; ++k) {
      std::vector<pm::bid::BundleItem> items;
      for (int j = 0; j < items_per_bundle; ++j) {
        items.push_back(pm::bid::BundleItem{
            static_cast<pm::PoolId>(rng.UniformInt(0, pools - 1)),
            rng.Uniform(0.5, 4.0)});
      }
      pm::bid::Bundle bundle(std::move(items));
      if (bundle.Empty()) continue;
      b.bundles.push_back(std::move(bundle));
    }
    if (b.bundles.empty()) {
      b.bundles.push_back(pm::bid::Bundle({pm::bid::BundleItem{0, 1.0}}));
    }
    b.limit = rng.Uniform(50.0, 500.0);
    bids.push_back(std::move(b));
  }
  pm::bid::AssignUserIds(bids);
  return ClockAuction(std::move(bids), std::move(supply),
                      std::move(reserve));
}

constexpr int kSweepRounds = 100;
constexpr double kAlpha = 0.4;
constexpr double kDelta = 0.08;
constexpr double kStepFloor = 1e-3;

/// The pre-engine inner loop, verbatim: evaluate every BidderProxy through
/// the std::function fan-out, then a serial AccumulateInto pass.
void LegacyCollectDemand(const std::vector<pm::auction::BidderProxy>& proxies,
                         const std::vector<pm::bid::Bid>& bids,
                         std::span<const double> supply,
                         std::span<const double> prices,
                         pm::ThreadPool* pool,
                         std::vector<ProxyDecision>& decisions,
                         std::vector<double>& excess) {
  decisions.resize(proxies.size());
  pm::ParallelFor(pool, 0, proxies.size(), [&](std::size_t u) {
    decisions[u] = proxies[u].Evaluate(prices);
  });
  excess.assign(supply.size(), 0.0);
  for (std::size_t u = 0; u < proxies.size(); ++u) {
    if (!decisions[u].Active()) continue;
    pm::bid::AccumulateInto(
        bids[u].bundles[static_cast<std::size_t>(decisions[u].bundle_index)],
        excess);
  }
  for (std::size_t r = 0; r < supply.size(); ++r) {
    excess[r] -= supply[r];
  }
}

struct LegacySweepResult {
  std::vector<double> prices;
  std::vector<ProxyDecision> decisions;
};

/// The pre-engine ClockAuction::Run (no bisection), reproduced so the
/// benchmark races identical round sequences. Returns final prices and
/// decisions for the equivalence sanity check.
LegacySweepResult RunLegacySweep(const ClockAuction& market,
                                 pm::ThreadPool* pool, int max_rounds) {
  const std::size_t num_pools = market.NumPools();
  std::vector<pm::auction::BidderProxy> proxies;
  proxies.reserve(market.bids().size());
  for (const pm::bid::Bid& b : market.bids()) proxies.emplace_back(&b);
  const std::unique_ptr<pm::auction::IncrementPolicy> policy =
      pm::auction::MakeRelativeCappedPolicy(kAlpha, kDelta, kStepFloor);
  std::vector<double> prices = market.reserve_prices();
  std::vector<ProxyDecision> decisions;
  std::vector<double> excess;
  std::vector<double> normalized(num_pools, 0.0);
  std::vector<double> step(num_pools, 0.0);
  for (int round = 0; round < max_rounds; ++round) {
    LegacyCollectDemand(proxies, market.bids(), market.supply(), prices,
                        pool, decisions, excess);
    for (std::size_t r = 0; r < num_pools; ++r) {
      normalized[r] = excess[r] / std::max(market.supply()[r], 1.0);
    }
    if (std::all_of(normalized.begin(), normalized.end(),
                    [](double z) { return z <= 1e-9; })) {
      break;
    }
    policy->ComputeStep(normalized, prices, step);
    for (std::size_t r = 0; r < num_pools; ++r) {
      if (normalized[r] > 1e-9 && step[r] <= 0.0) step[r] = kStepFloor;
      prices[r] += step[r];
    }
  }
  return LegacySweepResult{std::move(prices), std::move(decisions)};
}

ClockAuctionConfig SweepConfig(pm::ThreadPool* pool = nullptr) {
  ClockAuctionConfig config;
  config.alpha = kAlpha;
  config.delta = kDelta;
  config.max_rounds = kSweepRounds;
  config.thread_pool = pool;
  return config;
}

/// The 100-round price trajectory of the fixed sweep, so the collection
/// benchmarks race the demand path itself over identical price sequences
/// (the surrounding increment-policy arithmetic is shared by both paths
/// and would only dilute the comparison).
std::vector<std::vector<double>> SweepTrajectory(const ClockAuction& market) {
  ClockAuctionConfig config = SweepConfig();
  config.record_trajectory = true;
  const ClockAuctionResult r = market.Run(config);
  std::vector<std::vector<double>> prices;
  prices.reserve(r.trajectory.size());
  for (const pm::auction::RoundRecord& rec : r.trajectory) {
    prices.push_back(rec.prices);
  }
  return prices;
}

// ------------------------------------------------------- sweep benchmarks --

void BM_SweepCollect100x100_Legacy(benchmark::State& state) {
  const ClockAuction market = MakeSweepMarket(100, 100, 7);
  const std::vector<std::vector<double>> trajectory =
      SweepTrajectory(market);
  std::vector<pm::auction::BidderProxy> proxies;
  for (const pm::bid::Bid& b : market.bids()) proxies.emplace_back(&b);
  std::vector<ProxyDecision> decisions;
  std::vector<double> excess;
  for (auto _ : state) {
    for (const std::vector<double>& prices : trajectory) {
      LegacyCollectDemand(proxies, market.bids(), market.supply(), prices,
                          nullptr, decisions, excess);
      benchmark::DoNotOptimize(excess.data());
    }
  }
  state.counters["rounds"] = static_cast<double>(trajectory.size());
}
BENCHMARK(BM_SweepCollect100x100_Legacy)->Unit(benchmark::kMillisecond);

void BM_SweepCollect100x100_Arena(benchmark::State& state) {
  const ClockAuction market = MakeSweepMarket(100, 100, 7);
  const std::vector<std::vector<double>> trajectory =
      SweepTrajectory(market);
  const DemandEngine& engine = market.engine();
  DemandEngine::Workspace ws;
  for (auto _ : state) {
    for (const std::vector<double>& prices : trajectory) {
      engine.CollectDemand(prices, nullptr, ws);
      benchmark::DoNotOptimize(ws.excess().data());
    }
  }
  state.counters["rounds"] = static_cast<double>(trajectory.size());
}
BENCHMARK(BM_SweepCollect100x100_Arena)->Unit(benchmark::kMillisecond);

void BM_SweepEndToEnd_Legacy(benchmark::State& state) {
  const ClockAuction market = MakeSweepMarket(100, 100, 7);
  for (auto _ : state) {
    const LegacySweepResult r =
        RunLegacySweep(market, nullptr, kSweepRounds);
    benchmark::DoNotOptimize(r.prices.data());
  }
}
BENCHMARK(BM_SweepEndToEnd_Legacy)->Unit(benchmark::kMillisecond);

void BM_SweepEndToEnd_Arena(benchmark::State& state) {
  const ClockAuction market = MakeSweepMarket(100, 100, 7);
  for (auto _ : state) {
    const ClockAuctionResult r = market.Run(SweepConfig());
    benchmark::DoNotOptimize(r.prices.data());
  }
}
BENCHMARK(BM_SweepEndToEnd_Arena)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------- probe benchmarks --

void BM_Probe(benchmark::State& state, bool incremental) {
  const int touched = static_cast<int>(state.range(0));
  const ClockAuction market = MakeDenseMarket(2000, 100, 4, 4, 11);
  const DemandEngine& engine = market.engine();
  DemandEngine::Workspace ws;
  std::vector<double> prices(market.NumPools(), 1.0);
  engine.CollectDemand(prices, nullptr, ws);
  double bump = 1e-4;
  for (auto _ : state) {
    for (int r = 0; r < touched; ++r) prices[static_cast<std::size_t>(r)] += bump;
    bump = -bump;  // Oscillate so prices stay bounded across iterations.
    if (!incremental) ws.Reset();
    engine.CollectDemand(prices, nullptr, ws);
    benchmark::DoNotOptimize(ws.decisions().data());
  }
  state.counters["pools_touched"] = touched;
  state.counters["bundles_total"] =
      static_cast<double>(engine.NumBundles());
}
void BM_Probe_Full(benchmark::State& state) { BM_Probe(state, false); }
void BM_Probe_Incremental(benchmark::State& state) { BM_Probe(state, true); }
BENCHMARK(BM_Probe_Full)->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Probe_Incremental)->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------ thread benchmarks --

void BM_FullCollect_Threads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const ClockAuction market = MakeDenseMarket(20000, 100, 4, 4, 13);
  const DemandEngine& engine = market.engine();
  std::unique_ptr<pm::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<pm::ThreadPool>(threads);
  DemandEngine::Workspace ws;
  const std::vector<double> prices(market.NumPools(), 1.0);
  for (auto _ : state) {
    ws.Reset();
    engine.CollectDemand(prices, pool.get(), ws);
    benchmark::DoNotOptimize(ws.decisions().data());
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_FullCollect_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ JSON output --

double MedianMs(const std::function<void()>& fn, int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    samples.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Direct median-of-N harness, written to BENCH_demand_engine.json so the
/// perf trajectory has a machine-readable anchor per PR.
void WriteJson(const char* path, unsigned threads_override) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  // 1. The acceptance sweep: 100 bidders × 100 pools × 100 fixed rounds.
  // The headline metric is the demand-collection path itself over the
  // sweep's price trajectory; end-to-end auction numbers (which share
  // the increment-policy arithmetic between both paths) are reported
  // alongside.
  const ClockAuction sweep = MakeSweepMarket(100, 100, 7);
  const LegacySweepResult legacy_result =
      RunLegacySweep(sweep, nullptr, kSweepRounds);
  const ClockAuctionResult arena_result = sweep.Run(SweepConfig());
  // Incremental rounds update excess by decision diffs, whose re-
  // associated sums can drift from the legacy serial recomputation by
  // ulps; decisions must match exactly, prices to ~1e-9.
  double max_price_diff = 0.0;
  for (std::size_t r = 0; r < legacy_result.prices.size(); ++r) {
    max_price_diff =
        std::max(max_price_diff, std::abs(legacy_result.prices[r] -
                                          arena_result.prices[r]));
  }
  bool decisions_identical =
      legacy_result.decisions.size() == arena_result.decisions.size();
  for (std::size_t u = 0; decisions_identical &&
                          u < legacy_result.decisions.size();
       ++u) {
    decisions_identical = legacy_result.decisions[u].bundle_index ==
                          arena_result.decisions[u].bundle_index;
  }
  const bool equivalent = decisions_identical && max_price_diff <= 1e-9;
  const std::vector<std::vector<double>> trajectory =
      SweepTrajectory(sweep);
  std::vector<pm::auction::BidderProxy> proxies;
  for (const pm::bid::Bid& b : sweep.bids()) proxies.emplace_back(&b);
  std::vector<ProxyDecision> legacy_decisions;
  std::vector<double> legacy_excess;
  const double legacy_collect_ms = MedianMs(
      [&] {
        for (const std::vector<double>& prices : trajectory) {
          LegacyCollectDemand(proxies, sweep.bids(), sweep.supply(),
                              prices, nullptr, legacy_decisions,
                              legacy_excess);
          benchmark::DoNotOptimize(legacy_excess.data());
        }
      },
      25);
  DemandEngine::Workspace sweep_ws;
  const double arena_collect_ms = MedianMs(
      [&] {
        for (const std::vector<double>& prices : trajectory) {
          sweep.engine().CollectDemand(prices, nullptr, sweep_ws);
          benchmark::DoNotOptimize(sweep_ws.excess().data());
        }
      },
      25);
  const double legacy_ms = MedianMs(
      [&] {
        benchmark::DoNotOptimize(
            RunLegacySweep(sweep, nullptr, kSweepRounds).prices.data());
      },
      15);
  const double arena_ms = MedianMs(
      [&] {
        const ClockAuctionResult r = sweep.Run(SweepConfig());
        benchmark::DoNotOptimize(r.prices.data());
      },
      15);
  std::fprintf(f,
               "{\n  \"benchmark\": \"demand_engine\",\n"
               "  \"metadata\": {\n"
               "    \"host\": %s\n  },\n",
               pm::HostMetadataJson().c_str());
  std::fprintf(f,
               "  \"sweep_100x100\": {\n"
               "    \"rounds\": %d,\n"
               "    \"legacy_collect_ms\": %.4f,\n"
               "    \"arena_collect_ms\": %.4f,\n"
               "    \"collect_speedup\": %.2f,\n"
               "    \"legacy_end_to_end_ms\": %.4f,\n"
               "    \"arena_end_to_end_ms\": %.4f,\n"
               "    \"end_to_end_speedup\": %.2f,\n"
               "    \"decisions_identical\": %s,\n"
               "    \"max_price_diff\": %.3e\n  },\n",
               kSweepRounds, legacy_collect_ms, arena_collect_ms,
               legacy_collect_ms / arena_collect_ms, legacy_ms, arena_ms,
               legacy_ms / arena_ms, decisions_identical ? "true" : "false",
               max_price_diff);

  // 2. Probe cost vs pools touched (sublinear-in-bundles evidence).
  const ClockAuction dense = MakeDenseMarket(2000, 100, 4, 4, 11);
  const DemandEngine& engine = dense.engine();
  std::fprintf(f, "  \"probes\": [\n");
  const int touched_counts[] = {1, 10, 100};
  for (std::size_t i = 0; i < 3; ++i) {
    const int touched = touched_counts[i];
    DemandEngine::Workspace ws;
    std::vector<double> prices(dense.NumPools(), 1.0);
    engine.CollectDemand(prices, nullptr, ws);
    double bump = 1e-4;
    auto move_prices = [&] {
      for (int r = 0; r < touched; ++r) {
        prices[static_cast<std::size_t>(r)] += bump;
      }
      bump = -bump;
    };
    const double full_ms = MedianMs(
        [&] {
          move_prices();
          ws.Reset();
          engine.CollectDemand(prices, nullptr, ws);
        },
        200);
    const double incremental_ms = MedianMs(
        [&] {
          move_prices();
          engine.CollectDemand(prices, nullptr, ws);
        },
        200);
    std::fprintf(f,
                 "    {\"pools_touched\": %d, \"bundles_total\": %zu, "
                 "\"full_us\": %.3f, \"incremental_us\": %.3f, "
                 "\"speedup\": %.2f}%s\n",
                 touched, engine.NumBundles(), full_ms * 1000.0,
                 incremental_ms * 1000.0, full_ms / incremental_ms,
                 i + 1 < 3 ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // 3. Thread scaling of full collections. The per-section host stamp
  // is the machine-readable version of the top-level caveat: a consumer
  // drops this section iff invalid_on_single_vcpu && single_vcpu_host.
  const ClockAuction big = MakeDenseMarket(20000, 100, 4, 4, 13);
  std::fprintf(f, "  \"thread_scaling_meta\": %s,\n",
               pm::SectionHostJson(/*needs_parallelism=*/true).c_str());
  std::fprintf(f, "  \"thread_scaling\": [\n");
  std::vector<std::size_t> thread_counts = {1, 2, 4, 8, 16};
  if (threads_override > 0) thread_counts = {threads_override};
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const std::size_t threads = thread_counts[i];
    std::unique_ptr<pm::ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<pm::ThreadPool>(threads);
    DemandEngine::Workspace ws;
    const std::vector<double> prices(big.NumPools(), 1.0);
    const double ms = MedianMs(
        [&] {
          ws.Reset();
          big.engine().CollectDemand(prices, pool.get(), ws);
        },
        15);
    std::fprintf(f, "    {\"threads\": %zu, \"full_collect_ms\": %.4f}%s\n",
                 threads, ms, i + 1 < thread_counts.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf(
      "wrote %s (collect speedup %.2fx, end-to-end %.2fx, outcomes %s)\n",
      path, legacy_collect_ms / arena_collect_ms, legacy_ms / arena_ms,
      equivalent ? "equivalent" : "DIVERGED");
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads_override = pm::ParseThreadsFlag(&argc, argv, 0);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteJson("BENCH_demand_engine.json", threads_override);
  return 0;
}
