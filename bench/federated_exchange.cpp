// Federated-exchange scaling sweep: end-to-end epoch latency and auction
// rounds/sec as the planet is sharded into more, smaller markets with the
// same total bidder population. This is the scaling axis orthogonal to
// bench_demand_engine's single-market speed axis: the demand arena makes
// one market fast; sharding bounds how large any one market has to be.
//
// For each shard count the same total bidder population is split evenly
// across shards (each shard gets its own generated world, scaled so
// cluster density stays roughly constant), a few federated bids exercise
// the router, and E epochs run twice — serially and on a thread pool.
// On a single-vCPU container the pooled numbers cannot beat serial; the
// JSON records that caveat in its metadata.
//
// Writes BENCH_federated_exchange.json (same style as
// BENCH_demand_engine.json) to the working directory.
//
//   $ ./bench_federated_exchange [total_bidders] [epochs] [shards...]
//   defaults: 10000 bidders, 2 epochs, shard counts 1 4 16
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/bench_meta.h"
#include "common/table.h"
#include "federation/federated_exchange.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct SweepResult {
  std::size_t shards = 0;
  int bidders_per_shard = 0;
  int clusters_per_shard = 0;
  std::size_t pools_total = 0;
  double epoch_ms_serial = 0.0;
  double epoch_ms_pooled = 0.0;
  long long rounds_total = 0;
  double rounds_per_sec = 0.0;
  bool all_converged = true;
};

pm::federation::FederatedExchange BuildFederation(std::size_t shards,
                                                  int bidders_per_shard,
                                                  int clusters_per_shard,
                                                  std::size_t num_threads) {
  std::vector<pm::federation::ShardSpec> specs;
  for (std::size_t k = 0; k < shards; ++k) {
    pm::federation::ShardSpec spec;
    spec.name = "shard-" + std::to_string(k);
    spec.workload.num_teams = bidders_per_shard;
    spec.workload.num_clusters = clusters_per_shard;
    spec.market.auction.alpha = 0.4;
    spec.market.auction.delta = 0.08;
    spec.market.auction.max_rounds = 30000;
    specs.push_back(std::move(spec));
  }
  pm::federation::FederationConfig config;
  config.seed = 20090425;
  config.num_threads = num_threads;
  return pm::federation::FederatedExchange(std::move(specs), config);
}

/// Runs `epochs` epochs (each preceded by a few router-exercising
/// federated bids) and returns mean epoch latency in ms.
double RunEpochs(pm::federation::FederatedExchange& fed, int epochs,
                 long long* rounds_total, bool* all_converged) {
  fed.EndowFederatedTeam("bench-global", pm::Money::FromDollars(1000000));
  const auto start = Clock::now();
  for (int e = 0; e < epochs; ++e) {
    for (int b = 0; b < 4; ++b) {
      pm::federation::FederatedBid bid;
      bid.team = "bench-global";
      bid.tag = "epoch" + std::to_string(e) + "-" + std::to_string(b);
      bid.quantity = pm::cluster::TaskShape{16.0, 64.0, 2.0};
      bid.limit = 50000.0;
      fed.SubmitFederatedBid(bid);
    }
    const pm::federation::FederationReport report = fed.RunEpoch();
    for (const pm::federation::ShardEpochSummary& shard : report.shards) {
      if (rounds_total != nullptr) *rounds_total += shard.report.rounds;
      if (all_converged != nullptr) {
        *all_converged = *all_converged && shard.report.converged;
      }
    }
  }
  return MillisSince(start) / epochs;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = pm::ParseThreadsFlag(&argc, argv, 0);
  const int total_bidders = argc > 1 ? std::atoi(argv[1]) : 10000;
  const int epochs = argc > 2 ? std::max(1, std::atoi(argv[2])) : 2;
  std::vector<std::size_t> shard_counts;
  for (int i = 3; i < argc; ++i) {
    shard_counts.push_back(
        static_cast<std::size_t>(std::max(1, std::atoi(argv[i]))));
  }
  if (shard_counts.empty()) shard_counts = {1, 4, 16};

  std::vector<SweepResult> results;
  pm::TextTable table({"shards", "bidders/shard", "clusters/shard",
                       "epoch ms (serial)", "epoch ms (pooled)",
                       "rounds/s", "converged"});
  for (const std::size_t shards : shard_counts) {
    const int per_shard =
        std::max(1, total_bidders / static_cast<int>(shards));
    // Aim for team-per-cluster density near the paper's ~3, capped at 200
    // clusters per shard to bound world-generation time; above the cap
    // density grows with shard size instead.
    const int clusters = std::min(200, std::max(4, per_shard / 3));
    SweepResult r;
    r.shards = shards;
    r.bidders_per_shard = per_shard;
    r.clusters_per_shard = clusters;
    {
      pm::federation::FederatedExchange fed =
          BuildFederation(shards, per_shard, clusters, /*num_threads=*/0);
      for (std::size_t k = 0; k < shards; ++k) {
        r.pools_total += fed.ShardWorld(k).fleet.NumPools();
      }
      r.epoch_ms_serial =
          RunEpochs(fed, epochs, &r.rounds_total, &r.all_converged);
    }
    {
      // --threads pins the pooled run's pool size; the default keeps
      // the historical min(shards, 8).
      pm::federation::FederatedExchange fed = BuildFederation(
          shards, per_shard, clusters,
          threads > 0 ? threads : std::min<std::size_t>(shards, 8));
      r.epoch_ms_pooled = RunEpochs(fed, epochs, nullptr, nullptr);
    }
    r.rounds_per_sec = static_cast<double>(r.rounds_total) / epochs /
                       (r.epoch_ms_serial / 1000.0);
    results.push_back(r);
    table.AddRow({std::to_string(r.shards),
                  std::to_string(r.bidders_per_shard),
                  std::to_string(r.clusters_per_shard),
                  pm::FormatF(r.epoch_ms_serial, 1),
                  pm::FormatF(r.epoch_ms_pooled, 1),
                  pm::FormatF(r.rounds_per_sec, 1),
                  r.all_converged ? "yes" : "NO"});
    std::cout << "shards=" << r.shards << " done: serial "
              << pm::FormatF(r.epoch_ms_serial, 1) << " ms/epoch, pooled "
              << pm::FormatF(r.epoch_ms_pooled, 1) << " ms/epoch\n";
  }
  std::cout << '\n' << table.Render();

  std::ofstream json("BENCH_federated_exchange.json");
  json << "{\n  \"benchmark\": \"federated_exchange\",\n";
  json << "  \"metadata\": {\n"
       << "    \"total_bidders\": " << total_bidders << ",\n"
       << "    \"epochs_per_config\": " << epochs << ",\n"
       << "    \"host\": " << pm::HostMetadataJson() << ",\n"
       // The pooled column is a threaded measurement: stamp it with the
       // machine-readable single-vCPU validity flag.
       << "    \"pooled_section_meta\": "
       << pm::SectionHostJson(/*needs_parallelism=*/true) << "\n"
       << "  },\n";
  json << "  \"sweeps\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    json << "    {\"shards\": " << r.shards
         << ", \"bidders_per_shard\": " << r.bidders_per_shard
         << ", \"clusters_per_shard\": " << r.clusters_per_shard
         << ", \"pools_total\": " << r.pools_total
         << ", \"epoch_ms_serial\": " << pm::FormatF(r.epoch_ms_serial, 3)
         << ", \"epoch_ms_pooled\": " << pm::FormatF(r.epoch_ms_pooled, 3)
         << ", \"rounds_total\": " << r.rounds_total
         << ", \"rounds_per_sec\": " << pm::FormatF(r.rounds_per_sec, 1)
         << ", \"all_converged\": " << (r.all_converged ? "true" : "false")
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_federated_exchange.json\n";
  return 0;
}
