// Reproduces the §V.B longitudinal narrative: "we have run six
// experimental auctions over the course of several months. As desired, we
// have seen excess demand raise the price of resources which were
// previously oversubscribed and seen a number of groups move to less
// crowded clusters."
//
// Runs a six-auction market on the simulation clock (one auction per
// simulated week) and prints, per auction: the mean price ratio of the
// hot vs cold half of the fleet, migrations executed, settle rate, and
// the cross-pool utilization spread.
//
// Shape to match: hot-pool prices spike early then relax as teams
// migrate; the utilization spread shrinks from auction to auction.
#include <cmath>
#include <iostream>
#include <memory>

#include "agents/workload_gen.h"
#include "common/table.h"
#include "exchange/capacity_advice.h"
#include "exchange/market.h"
#include "sim/event_queue.h"
#include "sim/process.h"
#include "common/bench_meta.h"
#include "common/thread_pool.h"

int main(int argc, char** argv) {
  const unsigned threads = pm::ParseThreadsFlag(&argc, argv, 0);
  // --threads: size of the shared auction pool (0/1 = serial).
  std::unique_ptr<pm::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<pm::ThreadPool>(threads);

  pm::agents::WorkloadConfig workload;
  workload.num_clusters = 34;
  workload.num_teams = 100;
  workload.seed = 20090425;
  pm::agents::World world = GenerateWorld(workload);

  pm::exchange::MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  config.auction.thread_pool = pool.get();
  pm::exchange::Market market(&world.fleet, &world.agents,
                              world.fixed_prices, config);

  // Classify pools once, by pre-market utilization.
  const std::vector<double> initial_util =
      world.fleet.UtilizationVector();
  std::vector<bool> is_hot(initial_util.size());
  for (std::size_t r = 0; r < initial_util.size(); ++r) {
    is_hot[r] = initial_util[r] > 0.6;
  }

  std::cout << "=== Market timeline: six weekly auctions (§V.B) ===\n\n";
  pm::TextTable table({"week", "auction", "hot ratio", "cold ratio",
                       "migrations", "settle rate", "util spread (pp)",
                       "rounds"});

  pm::sim::EventQueue queue;
  pm::sim::PeriodicProcess weekly(
      queue, /*first_at=*/168.0, /*period=*/168.0, [&](int tick) {
        const pm::exchange::AuctionReport report = market.RunAuction();
        const std::vector<double> ratios =
            pm::exchange::PriceRatios(report);
        double hot_sum = 0, cold_sum = 0;
        int hot_n = 0, cold_n = 0;
        for (std::size_t r = 0; r < ratios.size(); ++r) {
          if (std::isnan(ratios[r])) continue;
          if (is_hot[r]) {
            hot_sum += ratios[r];
            ++hot_n;
          } else {
            cold_sum += ratios[r];
            ++cold_n;
          }
        }
        table.AddRow(
            {std::to_string(tick + 1),
             std::to_string(report.auction_index + 1),
             hot_n > 0 ? pm::FormatF(hot_sum / hot_n, 3) : "-",
             cold_n > 0 ? pm::FormatF(cold_sum / cold_n, 3) : "-",
             std::to_string(report.moves.size()),
             pm::FormatPct(report.settled_fraction, 1),
             pm::FormatF(pm::exchange::UtilizationSpread(
                             report.post_utilization),
                         2),
             std::to_string(report.rounds)});
        return tick < 5;  // Six auctions.
      });
  queue.RunAll();

  std::cout << table.Render() << '\n';
  const auto& history = market.History();
  const double spread_first =
      pm::exchange::UtilizationSpread(history.front().pre_utilization);
  const double spread_last =
      pm::exchange::UtilizationSpread(history.back().post_utilization);
  std::cout << "shape check: utilization spread "
            << pm::FormatF(spread_first, 2) << "pp -> "
            << pm::FormatF(spread_last, 2)
            << "pp across six auctions; hot pools open at a premium and "
               "relax as groups move to less crowded clusters\n\n";

  // §III.A decision support: what the price history tells the operator.
  std::cout << "=== operator capacity advice after six auctions ===\n"
            << RenderCapacityAdvice(
                   AdviseCapacity(market.History(),
                                  world.fleet.registry()),
                   world.fleet.registry());
  return 0;
}
