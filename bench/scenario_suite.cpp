// Scenario suite: sweep every registered scenario at its default epoch
// count, record wall time, headline metrics and SLO verdicts, and emit
// BENCH_scenario_suite.json (with machine-collected host metadata).
//
// The per-scenario metrics JSON is deterministic (docs/scenarios.md);
// only the wall-time numbers and the host block vary across machines.
//
//   $ ./bench_scenario_suite [--epochs E] [--seed S]
//   defaults: each scenario's default_epochs, seed 20090425
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>
#include <algorithm>

#include "common/bench_meta.h"
#include "common/table.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  pm::scenario::RunnerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--epochs" && i + 1 < argc) {
      config.epochs = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      config.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      config.num_threads = static_cast<std::size_t>(
          std::max(0, std::atoi(argv[++i])));
    } else {
      std::cerr << "usage: bench_scenario_suite [--epochs E] [--seed S] "
                   "[--threads T]\n";
      return 2;
    }
  }

  struct Row {
    pm::scenario::ScenarioMetrics metrics;
    double wall_ms = 0.0;
  };
  std::vector<Row> rows;
  for (const pm::scenario::ScenarioSpec& spec :
       pm::scenario::ScenarioLibrary()) {
    pm::scenario::ScenarioRunner runner(spec, config);
    const auto start = std::chrono::steady_clock::now();
    Row row;
    row.metrics = runner.Run();
    row.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    rows.push_back(std::move(row));
  }

  pm::TextTable table({"scenario", "epochs", "wall ms", "refunds",
                       "failures", "peak spread", "slo"});
  bool all_pass = true;
  for (const Row& row : rows) {
    const pm::scenario::ScenarioMetrics& m = row.metrics;
    all_pass = all_pass && m.slo_pass;
    table.AddRow({m.scenario, std::to_string(m.epochs),
                  pm::FormatF(row.wall_ms, 1),
                  "$" + pm::FormatF(m.refund_total, 2),
                  std::to_string(m.placement_failures),
                  pm::FormatF(m.peak_clearing_spread, 4),
                  m.slos_evaluated ? (m.slo_pass ? "pass" : "FAIL")
                                   : "skipped"});
  }
  std::cout << table.Render();

  std::ofstream json("BENCH_scenario_suite.json");
  json << "{\n  \"benchmark\": \"scenario_suite\",\n";
  json << "  \"metadata\": {\n"
       << "    \"seed\": " << config.seed << ",\n"
       << "    \"epochs_override\": " << config.epochs << ",\n"
       << "    \"scenarios\": " << rows.size() << ",\n"
       << "    \"host\": " << pm::HostMetadataJson() << "\n  },\n";
  json << "  \"all_slos_pass\": " << (all_pass ? "true" : "false")
       << ",\n";
  json << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"wall_ms\": " << pm::FormatF(row.wall_ms, 2)
         << ", \"metrics\": ";
    // Indent the nested metrics document to keep the file readable.
    const std::string metrics = row.metrics.ToJson();
    for (char c : metrics.substr(0, metrics.size() - 1)) {  // Trim "\n".
      json << c;
      if (c == '\n') json << "    ";
    }
    json << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_scenario_suite.json\n";
  return all_pass ? 0 : 1;
}
