// Reproduces the §III.C design argument: exact (VCG-style) winner
// determination is ruled out as computationally intractable, while the
// clock auction "execution time scales linearly" and, when it converges,
// lands on a feasible — but not necessarily optimal — point.
//
// For growing user counts this bench runs, on identical markets:
//   * exact branch-and-bound WDP        (optimal surplus, exponential)
//   * ascending clock auction           (feasible, linear)
//   * greedy pay-as-bid                 (heuristic, no uniform prices)
// and reports declared surplus, efficiency vs optimal, and work done.
//
// Shape to match: WDP nodes explode exponentially with U while the clock
// auction's demand evaluations grow linearly; clock efficiency stays
// high (typically >85 %) but is not pinned at 100 %.
#include <chrono>
#include <iostream>
#include <memory>

#include "auction/clock_auction.h"
#include "auction/greedy.h"
#include "auction/wdp_exact.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/bench_meta.h"
#include "common/thread_pool.h"

namespace {

struct Instance {
  std::vector<pm::bid::Bid> bids;
  std::vector<double> supply;
  std::vector<double> reserve;
};

Instance MakeInstance(std::uint64_t seed, int num_users) {
  pm::RandomStream rng(seed);
  constexpr std::size_t kPools = 4;
  Instance inst;
  inst.supply.assign(kPools, 0.0);
  inst.reserve.assign(kPools, 1.0);
  for (std::size_t r = 0; r < kPools; ++r) {
    inst.supply[r] = rng.Uniform(4.0, 10.0);
  }
  for (int u = 0; u < num_users; ++u) {
    pm::bid::Bid b;
    b.user = static_cast<pm::UserId>(u);
    b.name = "u" + std::to_string(u);
    const int bundles = static_cast<int>(rng.UniformInt(1, 2));
    double best_cost = 0.0;
    for (int k = 0; k < bundles; ++k) {
      const auto pool =
          static_cast<pm::PoolId>(rng.UniformInt(0, kPools - 1));
      const double qty = rng.Uniform(1.0, 4.0);
      b.bundles.push_back(
          pm::bid::Bundle({pm::bid::BundleItem{pool, qty}}));
      best_cost = std::max(best_cost, qty * inst.reserve[pool]);
    }
    b.limit = best_cost * rng.Uniform(1.0, 4.0);
    inst.bids.push_back(std::move(b));
  }
  pm::bid::AssignUserIds(inst.bids);
  return inst;
}

double Ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = pm::ParseThreadsFlag(&argc, argv, 0);
  // --threads: size of the shared auction pool (0/1 = serial).
  std::unique_ptr<pm::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<pm::ThreadPool>(threads);

  std::cout << "=== Baseline comparison: exact WDP vs clock auction vs "
               "greedy ===\n\n";
  pm::TextTable table({"users", "wdp surplus", "wdp nodes", "wdp ms",
                       "clock surplus", "clock effcy", "clock evals",
                       "clock ms", "greedy surplus", "greedy effcy"});

  for (const int users : {6, 8, 10, 12, 14, 16, 18, 20}) {
    // Average over a few seeds to smooth instance luck.
    double wdp_surplus = 0, clock_surplus = 0, greedy_surplus = 0;
    long long wdp_nodes = 0, clock_evals = 0;
    double wdp_ms = 0, clock_ms = 0;
    const int kSeeds = 3;
    for (int s = 0; s < kSeeds; ++s) {
      const Instance inst =
          MakeInstance(7000 + static_cast<std::uint64_t>(s), users);

      auto t0 = std::chrono::steady_clock::now();
      const pm::auction::WdpResult wdp =
          pm::auction::SolveWdpExact(inst.bids, inst.supply);
      wdp_ms += Ms(t0);
      wdp_surplus += wdp.total_surplus;
      wdp_nodes += wdp.nodes_expanded;

      pm::auction::ClockAuction auction(inst.bids, inst.supply,
                                        inst.reserve);
      pm::auction::ClockAuctionConfig config;
      config.alpha = 0.4;
      config.delta = 0.05;
      config.thread_pool = pool.get();
      t0 = std::chrono::steady_clock::now();
      const pm::auction::ClockAuctionResult r = auction.Run(config);
      clock_ms += Ms(t0);
      clock_evals += r.demand_evaluations;
      std::vector<int> chosen(inst.bids.size(), -1);
      for (std::size_t u = 0; u < inst.bids.size(); ++u) {
        chosen[u] = r.decisions[u].bundle_index;
      }
      clock_surplus += pm::auction::DeclaredSurplus(inst.bids, chosen);

      const pm::auction::GreedyResult greedy =
          pm::auction::SolveGreedy(inst.bids, inst.supply);
      greedy_surplus += greedy.total_surplus;
    }
    table.AddRow(
        {std::to_string(users), pm::FormatF(wdp_surplus / kSeeds, 1),
         std::to_string(wdp_nodes / kSeeds),
         pm::FormatF(wdp_ms / kSeeds, 2),
         pm::FormatF(clock_surplus / kSeeds, 1),
         pm::FormatPct(clock_surplus / wdp_surplus, 1),
         std::to_string(clock_evals / kSeeds),
         pm::FormatF(clock_ms / kSeeds, 2),
         pm::FormatF(greedy_surplus / kSeeds, 1),
         pm::FormatPct(greedy_surplus / wdp_surplus, 1)});
  }
  std::cout << table.Render() << '\n'
            << "shape check: WDP nodes grow exponentially in users while "
               "clock demand evaluations grow ~linearly;\n"
            << "             clock efficiency is high but below 100% "
               "(it satisfies SYSTEM, it does not optimize f — "
               "§III.C.4)\n";
  return 0;
}
