// Reproduces Figure 7: "Utilization percentiles of resources in settled
// transactions" — boxplots of the pre-auction utilization percentile of
// the cluster behind every settled trade, broken down by resource
// dimension × bid/offer.
//
// Paper shape to match: "most bids were for resources in underutilized
// clusters and most offers were for resources in overutilized clusters"
// (bid medians low, offer medians high), with a significant number of
// high-percentile *bid* outliers — teams paying a premium to keep
// growing in congested clusters.
#include <fstream>
#include <iostream>
#include <vector>
#include <memory>

#include "agents/workload_gen.h"
#include "common/ascii_chart.h"
#include "common/table.h"
#include "exchange/market.h"
#include "common/bench_meta.h"
#include "common/thread_pool.h"

// Usage: fig7_utilization_percentiles [out.csv] — the optional argument
// also dumps every trade sample as CSV for external plotting.
int main(int argc, char** argv) {
  const unsigned threads = pm::ParseThreadsFlag(&argc, argv, 0);
  // --threads: size of the shared auction pool (0/1 = serial).
  std::unique_ptr<pm::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<pm::ThreadPool>(threads);

  pm::agents::WorkloadConfig workload;
  workload.num_clusters = 34;
  workload.num_teams = 100;
  workload.seed = 20090425;
  pm::agents::World world = GenerateWorld(workload);

  pm::exchange::MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  config.auction.thread_pool = pool.get();
  pm::exchange::Market market(&world.fleet, &world.agents,
                              world.fixed_prices, config);

  // Aggregate trades over two auctions for a fuller sample, as the
  // paper's figure aggregates settled transactions of an auction round.
  market.RunAuction();
  market.RunAuction();

  std::cout << "=== Figure 7: utilization percentile of settled trades "
               "===\n\n";

  pm::TextTable table({"cell", "n", "whisk-lo", "q1", "median", "q3",
                       "whisk-hi", "outliers"});
  std::vector<pm::BoxplotSpec> specs;
  for (pm::ResourceKind kind : pm::kAllResourceKinds) {
    for (const bool is_bid : {true, false}) {
      std::vector<double> samples;
      for (const pm::exchange::AuctionReport& report : market.History()) {
        const auto part =
            pm::exchange::TradePercentiles(report, kind, is_bid);
        samples.insert(samples.end(), part.begin(), part.end());
      }
      const std::string label = std::string(pm::ToString(kind)) +
                                (is_bid ? " bids" : " offers");
      if (samples.empty()) {
        table.AddRow({label, "0", "-", "-", "-", "-", "-", "-"});
        continue;
      }
      const pm::stats::BoxplotSummary box = pm::stats::Boxplot(samples);
      table.AddRow({label, std::to_string(box.n),
                    pm::FormatF(box.whisker_lo, 1),
                    pm::FormatF(box.q1, 1), pm::FormatF(box.median, 1),
                    pm::FormatF(box.q3, 1),
                    pm::FormatF(box.whisker_hi, 1),
                    std::to_string(box.outliers.size())});
      pm::BoxplotSpec spec;
      spec.label = label;
      spec.whisker_lo = box.whisker_lo;
      spec.q1 = box.q1;
      spec.median = box.median;
      spec.q3 = box.q3;
      spec.whisker_hi = box.whisker_hi;
      spec.outliers = box.outliers;
      specs.push_back(std::move(spec));
    }
  }
  std::cout << table.Render() << '\n';

  pm::ChartOptions options;
  options.title = "utilization percentile (0-100) of settled trades";
  options.width = 64;
  std::cout << RenderBoxplots(specs, options) << '\n';

  // Aggregate shape check across all dimensions.
  std::vector<double> bid_pct, offer_pct;
  for (const pm::exchange::AuctionReport& report : market.History()) {
    for (const pm::exchange::TradeSample& t : report.trades) {
      (t.is_bid ? bid_pct : offer_pct).push_back(t.util_percentile);
    }
  }
  if (!bid_pct.empty() && !offer_pct.empty()) {
    std::cout << "shape check: median bid percentile "
              << pm::FormatF(pm::stats::Median(bid_pct), 1)
              << " < median offer percentile "
              << pm::FormatF(pm::stats::Median(offer_pct), 1)
              << "  (paper: bids target underutilized clusters, offers "
                 "vacate overutilized ones)\n";
  }

  if (argc > 1) {
    std::ofstream csv_file(argv[1]);
    pm::CsvWriter csv(csv_file);
    csv.WriteRow({"auction", "kind", "side", "util_percentile", "qty",
                  "team"});
    for (const pm::exchange::AuctionReport& report : market.History()) {
      for (const pm::exchange::TradeSample& t : report.trades) {
        csv.WriteRow({std::to_string(report.auction_index + 1),
                      std::string(pm::ToString(t.kind)),
                      t.is_bid ? "bid" : "offer",
                      pm::FormatF(t.util_percentile, 4),
                      pm::FormatF(t.qty, 4), t.team});
      }
    }
    std::cout << "wrote " << argv[1] << '\n';
  }
  return 0;
}
