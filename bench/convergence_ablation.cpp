// Ablation for the §III.C.2 price-update design choices:
//
//   * g = α·z⁺               — "often causes the prices to move too
//                              quickly in the early rounds and then too
//                              slowly in the later ones"
//   * g = min(α·z⁺, δe)      — Eq. (3)'s cap
//   * relative cap            — prose variant: "no price changes by more
//                              than some fixed fraction"
//   * cost-normalized         — the base-price normalization adjustment
//   * multiplicative          — geometric clock
// each with intra-round bisection on and off.
//
// Reports rounds to convergence, demand evaluations, and overshoot: how
// far the final prices sit above the last price at which demand still
// exceeded supply (unsold-surplus proxy). Shape: the capped policies
// dominate plain additive on rounds; bisection trades extra demand
// probes for visibly lower overshoot.
#include <iostream>
#include <memory>

#include "auction/clock_auction.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/bench_meta.h"
#include "common/thread_pool.h"

namespace {

struct Instance {
  std::vector<pm::bid::Bid> bids;
  std::vector<double> supply;
  std::vector<double> reserve;
};

Instance MakeInstance(std::uint64_t seed) {
  pm::RandomStream rng(seed);
  constexpr std::size_t kPools = 12;
  Instance inst;
  inst.supply.assign(kPools, 0.0);
  inst.reserve.assign(kPools, 0.0);
  for (std::size_t r = 0; r < kPools; ++r) {
    inst.supply[r] = rng.Uniform(10.0, 60.0);
    inst.reserve[r] = rng.Uniform(0.5, 4.0);
  }
  for (int u = 0; u < 120; ++u) {
    pm::bid::Bid b;
    b.user = static_cast<pm::UserId>(u);
    b.name = "u" + std::to_string(u);
    const int bundles = static_cast<int>(rng.UniformInt(1, 3));
    double cost = 0.0;
    for (int k = 0; k < bundles; ++k) {
      std::vector<pm::bid::BundleItem> items;
      const int n = static_cast<int>(rng.UniformInt(1, 3));
      for (int i = 0; i < n; ++i) {
        items.push_back(pm::bid::BundleItem{
            static_cast<pm::PoolId>(rng.UniformInt(0, kPools - 1)),
            rng.Uniform(1.0, 6.0)});
      }
      pm::bid::Bundle bundle(std::move(items));
      if (bundle.Empty()) continue;
      cost = std::max(cost, bundle.Dot(inst.reserve));
      b.bundles.push_back(std::move(bundle));
    }
    if (b.bundles.empty()) continue;
    b.limit = cost * rng.Uniform(1.2, 4.0);
    inst.bids.push_back(std::move(b));
  }
  pm::bid::AssignUserIds(inst.bids);
  return inst;
}

/// Overshoot metric: mean over pools of (final price − reserve) minus the
/// same for a fine-grained reference run (δ → tiny), in percent of the
/// reference rise. 0 % = landed exactly where the fine clock lands.
double MeanPriceLevel(const std::vector<double>& prices,
                      const std::vector<double>& reserve) {
  double sum = 0.0;
  for (std::size_t r = 0; r < prices.size(); ++r) {
    sum += prices[r] - reserve[r];
  }
  return sum / static_cast<double>(prices.size());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = pm::ParseThreadsFlag(&argc, argv, 0);
  // --threads: size of the shared auction pool (0/1 = serial).
  std::unique_ptr<pm::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<pm::ThreadPool>(threads);

  using Kind = pm::auction::ClockAuctionConfig::PolicyKind;
  std::cout << "=== Convergence ablation: price-update policies x "
               "bisection ===\n\n";

  const Instance inst = MakeInstance(1234);

  // Fine-grained reference: tiny capped steps approximate the true
  // clearing prices.
  pm::auction::ClockAuction auction(inst.bids, inst.supply, inst.reserve);
  pm::auction::ClockAuctionConfig fine;
  fine.policy_kind = Kind::kRelativeCapped;
  fine.alpha = 0.02;
  fine.delta = 0.004;
  fine.step_floor = 1e-4;
  fine.max_rounds = 2'000'000;
  const pm::auction::ClockAuctionResult reference = auction.Run(fine);
  const double reference_level =
      MeanPriceLevel(reference.prices, inst.reserve);

  struct Variant {
    const char* name;
    Kind kind;
    double alpha, delta;
  };
  const Variant variants[] = {
      {"additive a*z+", Kind::kAdditive, 0.05, 0.0},
      {"capped min(a*z+, d) [Eq.3]", Kind::kCapped, 0.4, 0.25},
      {"relative cap d*p", Kind::kRelativeCapped, 0.4, 0.08},
      {"cost-normalized", Kind::kCostNormalized, 0.4, 0.08},
      {"multiplicative", Kind::kMultiplicative, 0.4, 0.08},
  };

  pm::TextTable table({"policy", "bisection", "rounds", "demand evals",
                       "converged", "overshoot vs fine clock"});
  for (const Variant& v : variants) {
    for (const bool bisect : {false, true}) {
      pm::auction::ClockAuctionConfig config;
      config.policy_kind = v.kind;
      config.alpha = v.alpha;
      config.delta = v.delta;
      config.step_floor = 0.01;
      config.thread_pool = pool.get();
      config.intra_round_bisection = bisect;
      config.max_rounds = 200000;
      if (v.kind == Kind::kCostNormalized) {
        config.base_costs = inst.reserve;  // Reserves proxy base costs.
      }
      const pm::auction::ClockAuctionResult r = auction.Run(config);
      const double level = MeanPriceLevel(r.prices, inst.reserve);
      const double overshoot =
          reference_level > 1e-12
              ? (level - reference_level) / reference_level
              : 0.0;
      table.AddRow({v.name, bisect ? "on" : "off",
                    std::to_string(r.rounds),
                    std::to_string(r.demand_evaluations),
                    r.converged ? "yes" : "NO",
                    pm::FormatPct(overshoot, 2)});
    }
  }
  std::cout << table.Render() << '\n'
            << "reference: fine-grained clock (" << reference.rounds
            << " rounds) mean price rise "
            << pm::FormatF(reference_level, 4) << " above reserve\n"
            << "shape check: capped policies converge in far fewer "
               "rounds than plain additive; bisection spends extra "
               "demand evaluations to cut overshoot\n";
  return 0;
}
