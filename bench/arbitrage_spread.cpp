// Cross-shard arbitrage ablation: does the federation arbitrageur pull
// shard clearing prices together?
//
// Two shards are generated hot and cool (same recipe otherwise), so their
// congestion-weighted reserve prices start far apart. The same federation
// then runs twice from identical seeds:
//
//   baseline   — economy layer off (the plain PR 2 path);
//   arbitrage  — treasury + ArbitrageAgent on: each epoch it buys
//                capacity in the cheap shard (occupying it, which raises
//                that shard's utilization and therefore its reserve) and
//                resells warehoused holdings once local prices clear its
//                cost basis.
//
// The per-epoch cross-shard clearing-price spread (max−min)/min, mean
// over resource kinds — federation/arbitrage.h's ComputeClearingSpread,
// the same number RunEpoch stamps on every report — should shrink across
// epochs with arbitrage and stay comparatively flat without.
//
// Writes BENCH_arbitrage_spread.json with both series, the shrinkage
// verdicts, and machine-collected host metadata.
//
//   $ ./bench_arbitrage_spread [teams_per_shard] [epochs]
//   defaults: 40 teams/shard, 8 epochs
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/bench_meta.h"
#include "common/table.h"
#include "federation/federated_exchange.h"

namespace {

std::vector<pm::federation::ShardSpec> HotCoolShards(int teams_per_shard) {
  std::vector<pm::federation::ShardSpec> specs;
  for (int k = 0; k < 2; ++k) {
    pm::federation::ShardSpec spec;
    spec.name = k == 0 ? "hot" : "cool";
    spec.workload.num_teams = teams_per_shard;
    spec.workload.num_clusters = 6;
    spec.workload.min_machines_per_cluster = 16;
    spec.workload.max_machines_per_cluster = 32;
    if (k == 0) {
      spec.workload.min_target_utilization = 0.80;
      spec.workload.max_target_utilization = 0.95;
    } else {
      spec.workload.min_target_utilization = 0.08;
      spec.workload.max_target_utilization = 0.25;
    }
    spec.market.auction.alpha = 0.4;
    spec.market.auction.delta = 0.08;
    spec.market.auction.max_rounds = 30000;
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct EpochStats {
  double spread = 0.0;
  std::size_t buys = 0;
  std::size_t sells = 0;
  double warehouse = 0.0;
  double realized_pnl = 0.0;
};

std::vector<EpochStats> RunSpreadSeries(int teams_per_shard, int epochs,
                                        bool with_arbitrage,
                                        unsigned num_threads) {
  pm::federation::FederationConfig config;
  config.seed = 20090425;
  config.num_threads = num_threads;
  if (with_arbitrage) {
    config.economy.treasury = true;
    config.economy.arbitrage.enabled = true;
    config.economy.arbitrage.margin = pm::Money::FromDollars(2000000);
    config.economy.arbitrage.min_spread = 0.05;
    config.economy.arbitrage.min_margin = 0.05;
    config.economy.arbitrage.buy_fraction = 0.25;
  }
  pm::federation::FederatedExchange fed(HotCoolShards(teams_per_shard),
                                        config);
  std::vector<EpochStats> stats;
  stats.reserve(epochs);
  for (int e = 0; e < epochs; ++e) {
    const pm::federation::FederationReport report = fed.RunEpoch();
    EpochStats s;
    s.spread = report.clearing_spread;
    s.buys = report.arbitrage.buys_planned;
    s.sells = report.arbitrage.sells_planned;
    s.warehouse = report.arbitrage.holdings_units;
    s.realized_pnl = report.arbitrage.realized_pnl;
    stats.push_back(s);
  }
  return stats;
}

std::string SeriesJson(const std::vector<double>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out += pm::FormatF(xs[i], 4);
    if (i + 1 < xs.size()) out += ", ";
  }
  return out + "]";
}

/// Fraction of epoch-over-epoch steps that do not widen the spread
/// (allowing a small tolerance for resident-agent noise). Measured from
/// epoch 1: epoch 0 has no prior clearing prices, so the arbitrageur
/// necessarily sits it out.
double NonWideningFraction(const std::vector<double>& xs) {
  if (xs.size() < 3) return 1.0;
  int ok = 0, steps = 0;
  for (std::size_t i = 2; i < xs.size(); ++i) {
    ++steps;
    if (xs[i] <= xs[i - 1] + 1e-9) ++ok;
  }
  return steps > 0 ? static_cast<double>(ok) / steps : 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = pm::ParseThreadsFlag(&argc, argv, 0);
  const int teams = argc > 1 ? std::max(4, std::atoi(argv[1])) : 40;
  const int epochs = argc > 2 ? std::max(2, std::atoi(argv[2])) : 8;

  std::cout << "running " << epochs << " epochs x " << teams
            << " teams/shard, baseline vs arbitrage...\n";
  const std::vector<EpochStats> base_stats =
      RunSpreadSeries(teams, epochs, /*with_arbitrage=*/false, threads);
  const std::vector<EpochStats> arb_stats =
      RunSpreadSeries(teams, epochs, /*with_arbitrage=*/true, threads);
  std::vector<double> baseline, arbitrage;
  for (const EpochStats& s : base_stats) baseline.push_back(s.spread);
  for (const EpochStats& s : arb_stats) arbitrage.push_back(s.spread);

  pm::TextTable table({"epoch", "spread (baseline)", "spread (arbitrage)",
                       "arb buys", "arb sells", "warehouse"});
  for (int e = 0; e < epochs; ++e) {
    table.AddRow({std::to_string(e), pm::FormatF(baseline[e], 4),
                  pm::FormatF(arbitrage[e], 4),
                  std::to_string(arb_stats[e].buys),
                  std::to_string(arb_stats[e].sells),
                  pm::FormatF(arb_stats[e].warehouse, 1)});
  }
  std::cout << table.Render();

  const double base_drop = baseline.front() - baseline.back();
  const double arb_drop = arbitrage.front() - arbitrage.back();
  const bool converges = arbitrage.back() < baseline.back();
  std::cout << "baseline spread " << pm::FormatF(baseline.front(), 4)
            << " -> " << pm::FormatF(baseline.back(), 4)
            << ", arbitrage " << pm::FormatF(arbitrage.front(), 4)
            << " -> " << pm::FormatF(arbitrage.back(), 4)
            << (converges ? " (arbitrage converges prices)\n"
                          : " (NO convergence advantage)\n");

  std::ofstream json("BENCH_arbitrage_spread.json");
  json << "{\n  \"benchmark\": \"arbitrage_spread\",\n";
  json << "  \"metadata\": {\n"
       << "    \"teams_per_shard\": " << teams << ",\n"
       << "    \"epochs\": " << epochs << ",\n"
       << "    \"shards\": 2,\n"
       << "    \"host\": " << pm::HostMetadataJson() << "\n  },\n";
  json << "  \"baseline_spread\": " << SeriesJson(baseline) << ",\n";
  json << "  \"arbitrage_spread\": " << SeriesJson(arbitrage) << ",\n";
  json << "  \"baseline_drop\": " << pm::FormatF(base_drop, 4) << ",\n";
  json << "  \"arbitrage_drop\": " << pm::FormatF(arb_drop, 4) << ",\n";
  json << "  \"arbitrage_non_widening_fraction\": "
       << pm::FormatF(NonWideningFraction(arbitrage), 3) << ",\n";
  json << "  \"arbitrage_realized_pnl\": "
       << pm::FormatF(arb_stats.back().realized_pnl, 2) << ",\n";
  json << "  \"arbitrage_warehouse_units\": "
       << pm::FormatF(arb_stats.back().warehouse, 1) << ",\n";
  json << "  \"arbitrage_ends_tighter_than_baseline\": "
       << (converges ? "true" : "false") << "\n}\n";
  std::cout << "wrote BENCH_arbitrage_spread.json\n";
  return 0;
}
