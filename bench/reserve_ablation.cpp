// Ablation for §IV + the abstract's headline claim: congestion-weighted
// reserve prices steer bidders toward cold pools and "reduce the
// excessive shortages and surpluses of more traditional allocation
// methods."
//
// On identical worlds this bench compares four provisioning regimes:
//   * fixed-price priority quota (the traditional baseline)
//   * market with flat reserves        φ(x) = 1
//   * market with φ2 = exp(x−0.5)
//   * market with φ1 = exp(2(x−0.5))   (the paper's steepest curve)
//   * market with φ3 = 1/(1.5−x)
// and reports the cross-pool utilization dispersion after four auction
// rounds, plus shortage mass under the traditional scheme.
//
// Shape to match: weighted reserves narrow the utilization spread more
// than flat reserves; the traditional fixed allocation leaves the spread
// essentially untouched and accumulates shortages in hot pools.
#include <iostream>
#include <numeric>
#include <memory>

#include "agents/strategy.h"
#include "agents/workload_gen.h"
#include "auction/fixed_price.h"
#include "common/table.h"
#include "exchange/market.h"
#include "common/bench_meta.h"
#include "common/thread_pool.h"

namespace {

pm::agents::WorkloadConfig Workload() {
  pm::agents::WorkloadConfig config;
  config.num_clusters = 20;
  config.num_teams = 60;
  config.min_machines_per_cluster = 25;
  config.max_machines_per_cluster = 50;
  config.seed = 424242;
  return config;
}

struct RegimeResult {
  std::string name;
  double spread_before = 0.0;
  double spread_after = 0.0;
  double settle_rate = 0.0;
  std::size_t moves = 0;
};

// Shared auction pool for the market regimes (set from --threads in
// main; null = serial, the default).
pm::ThreadPool* g_auction_pool = nullptr;

RegimeResult RunMarketRegime(
    const std::string& name,
    std::shared_ptr<const pm::reserve::WeightingFunction> curve) {
  pm::agents::World world = GenerateWorld(Workload());
  pm::exchange::MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  config.auction.thread_pool = g_auction_pool;
  config.weighting = std::move(curve);
  pm::exchange::Market market(&world.fleet, &world.agents,
                              world.fixed_prices, config);
  RegimeResult result;
  result.name = name;
  result.spread_before =
      pm::exchange::UtilizationSpread(world.fleet.UtilizationVector());
  double settle_sum = 0.0;
  const int kRounds = 4;
  for (int i = 0; i < kRounds; ++i) {
    const pm::exchange::AuctionReport report = market.RunAuction();
    settle_sum += report.settled_fraction;
    result.moves += report.moves.size();
  }
  result.spread_after =
      pm::exchange::UtilizationSpread(world.fleet.UtilizationVector());
  result.settle_rate = settle_sum / kRounds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = pm::ParseThreadsFlag(&argc, argv, 0);
  // --threads: size of the shared auction pool (0/1 = serial).
  std::unique_ptr<pm::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<pm::ThreadPool>(threads);
  g_auction_pool = pool.get();
  std::cout << "=== Reserve-pricing ablation: utilization dispersion "
               "across regimes ===\n\n";

  // Traditional baseline: teams request growth at fixed prices in
  // priority order; nothing migrates, shortages pile up in hot pools.
  RegimeResult traditional;
  {
    pm::agents::World world = GenerateWorld(Workload());
    traditional.name = "fixed-price quota (traditional)";
    traditional.spread_before = pm::exchange::UtilizationSpread(
        world.fleet.UtilizationVector());
    double shortage_mass = 0.0;
    for (int round = 0; round < 4; ++round) {
      // Teams want to grow in place at the fixed prices.
      std::vector<pm::bid::Bid> bids;
      for (pm::agents::TeamAgent& agent : world.agents) {
        const pm::agents::TeamProfile& p = agent.profile();
        const pm::cluster::TaskShape delta =
            p.footprint * p.growth_rate;
        pm::bid::Bid b;
        b.name = p.name;
        b.bundles = {pm::agents::BundleForCluster(
            world.fleet.registry(), p.home_cluster,
            pm::cluster::TaskShape{std::max(delta.cpu, 1.0),
                                   std::max(delta.ram_gb, 2.0),
                                   std::max(delta.disk_tb, 0.1)})};
        b.limit = 1e12;  // Quota requests ignore prices; rank decides.
        bids.push_back(std::move(b));
      }
      pm::bid::AssignUserIds(bids);
      std::vector<std::size_t> priority(bids.size());
      std::iota(priority.begin(), priority.end(), 0);
      const pm::auction::FixedPriceResult fixed =
          pm::auction::AllocatePriorityOrder(bids,
                                             world.fleet.FreeVector(),
                                             world.fixed_prices, priority);
      for (double s : fixed.shortage) shortage_mass += s;
      // Apply grants physically (growth in place where it fits).
      pm::cluster::JobId next_id = 900000 + round * 1000;
      for (std::size_t u = 0; u < bids.size(); ++u) {
        if (fixed.chosen[u] < 0) continue;
        const pm::agents::TeamProfile& p =
            world.agents[u].profile();
        pm::cluster::Job job;
        job.id = next_id++;
        job.team = p.name;
        job.tasks = 4;
        const pm::cluster::TaskShape delta =
            p.footprint * (p.growth_rate / 4.0);
        job.shape = pm::cluster::TaskShape{
            std::max(delta.cpu, 0.25), std::max(delta.ram_gb, 0.5),
            std::max(delta.disk_tb, 0.025)};
        world.fleet.AddJob(p.home_cluster, job);
      }
    }
    traditional.spread_after = pm::exchange::UtilizationSpread(
        world.fleet.UtilizationVector());
    std::cout << "traditional regime shortage mass over 4 rounds: "
              << pm::FormatF(shortage_mass, 1) << " units\n\n";
  }

  std::vector<RegimeResult> results;
  results.push_back(traditional);
  results.push_back(RunMarketRegime("market, flat reserves (phi=1)",
                                    pm::reserve::MakeFlatWeighting()));
  results.push_back(RunMarketRegime("market, phi2 = exp(x-0.5)",
                                    pm::reserve::MakeExpWeighting()));
  results.push_back(RunMarketRegime("market, phi1 = exp(2(x-0.5))",
                                    pm::reserve::MakeExp2Weighting()));
  results.push_back(
      RunMarketRegime("market, phi3 = 1/(1.5-x)",
                      pm::reserve::MakeReciprocalWeighting()));

  pm::TextTable table({"regime", "spread before (pp)",
                       "spread after (pp)", "reduction", "settle rate",
                       "migrations"});
  for (const RegimeResult& r : results) {
    table.AddRow({r.name, pm::FormatF(r.spread_before, 2),
                  pm::FormatF(r.spread_after, 2),
                  pm::FormatPct(1.0 - r.spread_after /
                                          std::max(r.spread_before, 1e-9),
                                1),
                  r.settle_rate > 0 ? pm::FormatPct(r.settle_rate, 1)
                                    : std::string("n/a"),
                  std::to_string(r.moves)});
  }
  std::cout << table.Render() << '\n'
            << "shape check: utilization-weighted reserves (phi1/phi2/"
               "phi3) cut cross-pool dispersion more than flat reserves; "
               "the traditional quota regime barely moves it\n";
  return 0;
}
