// Reproduces the paper's clock-progression figure (arXiv artifact
// "clock-progression.png", the price-discovery companion to Figure 1):
// the per-round price clocks of a contested market, from the
// congestion-weighted reserves to the uniform clearing prices.
//
// Three pools with different contention levels: a congested pool whose
// clock must climb, a mildly contested one that clears after a few
// ticks, and a cold pool that never moves off its (discounted) reserve.
#include <iostream>
#include <memory>

#include "auction/clock_auction.h"
#include "common/ascii_chart.h"
#include "common/table.h"
#include "common/rng.h"
#include "common/bench_meta.h"
#include "common/thread_pool.h"

int main(int argc, char** argv) {
  const unsigned threads = pm::ParseThreadsFlag(&argc, argv, 0);
  // --threads: size of the shared auction pool (0/1 = serial).
  std::unique_ptr<pm::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<pm::ThreadPool>(threads);

  // Pool 0: hot (demand 3x supply). Pool 1: warm (1.5x). Pool 2: cold.
  const std::vector<double> supply = {10.0, 20.0, 40.0};
  const std::vector<double> reserve = {1.8, 1.0, 0.45};

  pm::RandomStream rng(20090425);
  std::vector<pm::bid::Bid> bids;
  auto add_buyers = [&](pm::PoolId pool, double total_demand, int count,
                        double limit_scale) {
    for (int i = 0; i < count; ++i) {
      pm::bid::Bid b;
      b.name = "pool" + std::to_string(pool) + "-buyer" +
               std::to_string(i);
      const double qty = total_demand / count;
      b.bundles = {pm::bid::Bundle({pm::bid::BundleItem{pool, qty}})};
      b.limit = qty * reserve[pool] * limit_scale *
                rng.Uniform(0.8, 1.2);
      bids.push_back(std::move(b));
    }
  };
  add_buyers(0, 30.0, 12, 3.0);  // Hot: 3x oversubscribed.
  add_buyers(1, 30.0, 10, 2.0);  // Warm: 1.5x.
  add_buyers(2, 20.0, 8, 2.0);   // Cold: 0.5x — clears instantly.
  pm::bid::AssignUserIds(bids);

  pm::auction::ClockAuction auction(std::move(bids), supply, reserve);
  pm::auction::ClockAuctionConfig config;
  config.alpha = 0.3;
  config.delta = 0.05;
  config.thread_pool = pool.get();
  config.record_trajectory = true;
  const pm::auction::ClockAuctionResult result = auction.Run(config);

  std::cout << "=== Clock progression: price clocks per round ===\n\n";
  pm::TextTable table({"round", "p(hot)", "p(warm)", "p(cold)",
                       "z(hot)", "z(warm)", "z(cold)"});
  const std::size_t stride =
      std::max<std::size_t>(1, result.trajectory.size() / 24);
  for (std::size_t t = 0; t < result.trajectory.size(); ++t) {
    if (t % stride != 0 && t + 1 != result.trajectory.size()) continue;
    const pm::auction::RoundRecord& round = result.trajectory[t];
    table.AddRow({std::to_string(t + 1), pm::FormatF(round.prices[0], 3),
                  pm::FormatF(round.prices[1], 3),
                  pm::FormatF(round.prices[2], 3),
                  pm::FormatF(round.excess[0], 1),
                  pm::FormatF(round.excess[1], 1),
                  pm::FormatF(round.excess[2], 1)});
  }
  std::cout << table.Render() << '\n';

  std::vector<pm::ChartSeries> series(3);
  const char* labels[] = {"hot pool", "warm pool", "cold pool"};
  const char glyphs[] = {'H', 'W', 'C'};
  for (int p = 0; p < 3; ++p) {
    series[p].label = labels[p];
    series[p].glyph = glyphs[p];
    for (std::size_t t = 0; t < result.trajectory.size(); ++t) {
      series[p].xs.push_back(static_cast<double>(t + 1));
      series[p].ys.push_back(result.trajectory[t].prices[p]);
    }
  }
  pm::ChartOptions options;
  options.title = "price clock vs round (ascending clock auction)";
  options.height = 16;
  std::cout << RenderLineChart(series, options) << '\n';

  std::cout << "converged: " << (result.converged ? "yes" : "no")
            << " after " << result.rounds << " rounds\n"
            << "shape check: the hot clock climbs until enough bidders "
               "drop out, the warm clock stops after a few ticks, the "
               "cold clock never leaves its discounted reserve ("
            << pm::FormatF(result.prices[2], 3) << " = reserve "
            << pm::FormatF(reserve[2], 3) << ")\n";
  return result.converged ? 0 : 1;
}
