// Megascale demand-engine / federation benchmark (ROADMAP: "1M bidders,
// 100+ shards, as fast as the hardware allows").
//
// Four sections, written to BENCH_megascale.json:
//   1. kernel_sweep — dense-bundle full-collection microbench across
//      every kernel compiled into this binary (auction/kernels.h).
//      Decisions must be identical to the scalar oracle; end-to-end
//      settled prices must agree within the pairwise-summation error
//      bound. Records the speedup of each kernel over scalar.
//   2. pipeline — epoch wall time with FederationConfig::pipelined off
//      vs on, plus the byte-identity gates: pipelined=off must match a
//      plain RunEpoch loop (the pre-pipeline path) and pipelined=on must
//      match pipelined=off, both compared on the telemetry registry's
//      deterministic metrics JSON.
//   3. thread_scaling — epoch wall time across shard-pool sizes, with
//      the metrics JSON asserted byte-identical across thread counts.
//      Stamped invalid_on_single_vcpu (bench_meta.h).
//   4. megascale_epoch — the headline run: B bidders split over S shards
//      (defaults 1,000,000 x 100) clear one epoch; every shard must
//      converge, every award must conserve units (awarded = placed +
//      refunded under refund_unplaced), and a rerun must reproduce the
//      metrics JSON byte for byte.
//
// Usage:
//   bench_megascale [--smoke] [--threads N] [--kernel K]
//                   [--bidders B] [--shards S] [--epochs E]
//                   [--chrome-trace-out FILE]
//
// --smoke shrinks every section to CI size and turns the correctness
// gates into the exit code: 1 = a vectorized kernel ran slower than
// scalar on the dense microbench, 2 = a byte-identity gate failed,
// 3 = the megascale epoch failed convergence/conservation. The full run
// applies the same gates (a broken artifact should not look healthy).
//
// --chrome-trace-out arms the profiler's wall-clock channel on the
// pipelined federation of section 2 and writes its chrome://tracing
// JSON (one track per shard plus the federation track with the
// pipeline-window wait/barrier spans). The wall channel never touches
// the deterministic metrics documents, so the byte-identity gates run
// unchanged with it armed — which is itself part of the contract.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "auction/clock_auction.h"
#include "auction/demand_engine.h"
#include "auction/kernels.h"
#include "common/bench_meta.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "federation/federated_exchange.h"
#include "telemetry/telemetry.h"

namespace {

using pm::auction::ClockAuction;
using pm::auction::ClockAuctionConfig;
using pm::auction::ClockAuctionResult;
using pm::auction::DemandEngine;
using pm::auction::DemandEngineConfig;
using pm::auction::Kernel;

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

template <typename Fn>
double MedianMs(Fn&& fn, int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    fn();
    samples.push_back(MillisSince(t0));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Dense market: every bidder holds several dense bundles, so full
/// collection cost is dominated by the q·p dot sweeps the kernels
/// vectorize (the arena hot loop, not the bisection bookkeeping).
ClockAuction MakeDenseMarket(int users, int pools, int bundles_per_user,
                             int items_per_bundle, std::uint64_t seed,
                             DemandEngineConfig engine_config) {
  pm::RandomStream rng(seed);
  std::vector<double> supply(static_cast<std::size_t>(pools), 10.0);
  std::vector<double> reserve(static_cast<std::size_t>(pools), 1.0);
  std::vector<pm::bid::Bid> bids;
  bids.reserve(static_cast<std::size_t>(users));
  for (int u = 0; u < users; ++u) {
    pm::bid::Bid b;
    b.user = static_cast<pm::UserId>(u);
    b.name = "u" + std::to_string(u);
    for (int k = 0; k < bundles_per_user; ++k) {
      std::vector<pm::bid::BundleItem> items;
      for (int j = 0; j < items_per_bundle; ++j) {
        items.push_back(pm::bid::BundleItem{
            static_cast<pm::PoolId>(rng.UniformInt(0, pools - 1)),
            rng.Uniform(0.5, 4.0)});
      }
      pm::bid::Bundle bundle(std::move(items));
      if (bundle.Empty()) continue;
      b.bundles.push_back(std::move(bundle));
    }
    if (b.bundles.empty()) {
      b.bundles.push_back(pm::bid::Bundle({pm::bid::BundleItem{0, 1.0}}));
    }
    b.limit = rng.Uniform(50.0, 500.0);
    bids.push_back(std::move(b));
  }
  pm::bid::AssignUserIds(bids);
  return ClockAuction(std::move(bids), std::move(supply),
                      std::move(reserve), engine_config);
}

// ------------------------------------------------------- kernel sweep --

struct KernelResult {
  std::string name;
  double dot_ms = 0.0;           // Raw DotBlockFn over the CSR arena.
  double dot_speedup = 0.0;      // vs the scalar kernel's dot_ms.
  double full_collect_ms = 0.0;  // Whole CollectDemand (Amdahl view).
  double collect_speedup = 0.0;
  bool decisions_identical = true;
  double max_price_diff = 0.0;  // End-to-end settled prices vs scalar.
  double price_bound = 0.0;     // Pairwise error bound at that size.
};

/// Times each kernel's raw block-dot function over a synthetic CSR arena
/// shaped like the dense market's bundles. This isolates the kernel from
/// CollectDemand's argmin/bookkeeping, so it is the number the
/// SIMD-slower-than-scalar regression gate runs on (the full-collection
/// timing is reported too, but it is Amdahl-limited by the scalar
/// bookkeeping around the dot).
std::vector<double> RawDotMs(const std::vector<Kernel>& kernels,
                             std::uint32_t bundles, int items, int pools,
                             int reps) {
  pm::RandomStream rng(7);
  std::vector<std::uint32_t> begin(bundles + 1);
  std::vector<pm::PoolId> pool(static_cast<std::size_t>(bundles) * items);
  std::vector<double> qty(pool.size());
  std::vector<double> price(static_cast<std::size_t>(pools), 2.5);
  std::vector<double> cost(bundles);
  for (std::uint32_t b = 0; b <= bundles; ++b) {
    begin[b] = b * static_cast<std::uint32_t>(items);
  }
  for (auto& p : pool) {
    p = static_cast<pm::PoolId>(rng.UniformInt(0, pools - 1));
  }
  for (auto& q : qty) q = rng.Uniform(0.5, 4.0);
  std::vector<double> out;
  for (const Kernel k : kernels) {
    const pm::auction::DotBlockFn fn = pm::auction::ResolveKernel(k);
    out.push_back(MedianMs(
        [&] {
          fn(begin.data(), pool.data(), qty.data(), price.data(), 0,
             bundles, cost.data());
        },
        reps));
  }
  return out;
}

std::vector<KernelResult> RunKernelSweep(int users, int pools, int reps,
                                         const std::string& only_kernel) {
  ClockAuctionConfig run_config;
  run_config.alpha = 0.4;
  run_config.delta = 0.08;
  run_config.max_rounds = 2000;

  std::vector<Kernel> sweep_kernels;
  for (const Kernel kernel : pm::auction::CompiledKernels()) {
    const std::string name(pm::auction::ToString(kernel));
    if (!only_kernel.empty() && name != only_kernel &&
        kernel != Kernel::kScalar) {
      continue;  // Scalar always runs: it is the oracle and the baseline.
    }
    sweep_kernels.push_back(kernel);
  }
  const std::vector<double> dot_ms = RawDotMs(
      sweep_kernels, /*bundles=*/100000, /*items=*/64, pools, reps);

  std::vector<KernelResult> results;
  std::vector<pm::auction::ProxyDecision> scalar_decisions;
  std::vector<double> scalar_prices;
  double scalar_dot_ms = 0.0;
  double scalar_ms = 0.0;
  double abs_dot_sum = 0.0;
  std::size_t max_items = 0;

  for (std::size_t ki = 0; ki < sweep_kernels.size(); ++ki) {
    const Kernel kernel = sweep_kernels[ki];
    const std::string name(pm::auction::ToString(kernel));
    DemandEngineConfig engine_config;
    engine_config.kernel = kernel;
    // Dense bundles (64 items, most of the pool space) are where the
    // vector kernels earn their keep: the 8-element gather stride runs
    // several full iterations per bundle instead of one.
    const ClockAuction market = MakeDenseMarket(
        users, pools, /*bundles_per_user=*/4, /*items_per_bundle=*/64,
        /*seed=*/20090425, engine_config);
    DemandEngine::Workspace ws;
    const std::vector<double> prices(market.NumPools(), 1.0);
    KernelResult r;
    r.name = name;
    r.dot_ms = dot_ms[ki];
    r.full_collect_ms = MedianMs(
        [&] {
          ws.Reset();
          market.engine().CollectDemand(prices, nullptr, ws);
        },
        reps);
    const ClockAuctionResult run = market.Run(run_config);
    if (kernel == Kernel::kScalar) {
      scalar_dot_ms = r.dot_ms;
      scalar_ms = r.full_collect_ms;
      scalar_decisions = ws.decisions();
      scalar_prices = run.prices;
      // Error-bound inputs: the worst per-bundle |q·p| sum at reserve
      // prices and the largest bundle length.
      for (const pm::bid::Bid& b : market.bids()) {
        for (const pm::bid::Bundle& bundle : b.bundles) {
          double abs_sum = 0.0;
          for (const pm::bid::BundleItem& item : bundle.items()) {
            abs_sum += std::abs(item.qty) * prices[item.pool];
          }
          abs_dot_sum = std::max(abs_dot_sum, abs_sum);
          max_items = std::max(max_items, bundle.items().size());
        }
      }
    } else {
      for (std::size_t u = 0; u < ws.decisions().size(); ++u) {
        r.decisions_identical =
            r.decisions_identical && ws.decisions()[u].bundle_index ==
                                         scalar_decisions[u].bundle_index;
      }
      for (std::size_t p = 0; p < run.prices.size(); ++p) {
        r.max_price_diff = std::max(
            r.max_price_diff, std::abs(run.prices[p] - scalar_prices[p]));
      }
    }
    r.dot_speedup = scalar_dot_ms > 0.0 && r.dot_ms > 0.0
                        ? scalar_dot_ms / r.dot_ms
                        : 1.0;
    r.collect_speedup = scalar_ms > 0.0 && r.full_collect_ms > 0.0
                            ? scalar_ms / r.full_collect_ms
                            : 1.0;
    // Price divergence between kernels comes from bisection thresholds
    // crossed by dot-product rounding; a generous multiple of the
    // per-dot pairwise bound (scaled by the auction's price step) covers
    // the amplification through the clock without hiding real bugs.
    r.price_bound =
        std::max(run_config.delta,
                 1e6 * pm::auction::PairwiseErrorBound(max_items,
                                                       abs_dot_sum));
    results.push_back(std::move(r));
  }
  return results;
}

// ------------------------------------------- federation build helpers --

pm::federation::FederatedExchange BuildFederation(
    std::size_t shards, int bidders_per_shard, std::size_t num_threads,
    bool pipelined, const std::string& kernel,
    bool wall_profiler = false) {
  std::vector<pm::federation::ShardSpec> specs;
  for (std::size_t k = 0; k < shards; ++k) {
    pm::federation::ShardSpec spec;
    spec.name = "shard-" + std::to_string(k);
    spec.workload.num_teams = bidders_per_shard;
    // Paper-like team-per-cluster density ~3, capped to bound
    // world-generation time at megascale.
    spec.workload.num_clusters =
        std::min(200, std::max(4, bidders_per_shard / 3));
    spec.market.auction.alpha = 0.4;
    spec.market.auction.delta = 0.08;
    spec.market.auction.max_rounds = 30000;
    // Unit conservation per award: awarded = placed + refunded exactly.
    spec.market.settlement.refund_unplaced = true;
    if (!kernel.empty()) {
      spec.market.demand_engine.kernel =
          *pm::auction::ParseKernel(kernel);
    }
    specs.push_back(std::move(spec));
  }
  pm::federation::FederationConfig config;
  config.seed = 20090425;
  config.num_threads = num_threads;
  config.pipelined = pipelined;
  config.telemetry.enabled = true;
  // Wall channel only: spans + chrome trace, never the deterministic
  // metrics document (the byte-identity gates below prove it).
  config.telemetry.profiler.wall_clock = wall_profiler;
  return pm::federation::FederatedExchange(std::move(specs), config);
}

std::string MetricsOf(const pm::federation::FederatedExchange& fed) {
  return fed.telemetry() != nullptr ? fed.telemetry()->MetricsJson() : "";
}

// ------------------------------------------------------------- JSON --

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads_flag = pm::ParseThreadsFlag(&argc, argv, 0);
  bool smoke = false;
  std::string kernel_flag;
  std::string chrome_trace_out;
  long long bidders = 1000000;
  std::size_t shards = 100;
  int epochs = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--kernel" && i + 1 < argc) {
      kernel_flag = argv[++i];
    } else if (arg == "--bidders" && i + 1 < argc) {
      bidders = std::atoll(argv[++i]);
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<std::size_t>(
          std::max(1, std::atoi(argv[++i])));
    } else if (arg == "--epochs" && i + 1 < argc) {
      epochs = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--chrome-trace-out" && i + 1 < argc) {
      chrome_trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_megascale [--smoke] [--threads N] "
                   "[--kernel K] [--bidders B] [--shards S] "
                   "[--epochs E] [--chrome-trace-out FILE]\n");
      return 64;
    }
  }
  if (!kernel_flag.empty() &&
      !pm::auction::ParseKernel(kernel_flag).has_value()) {
    std::fprintf(stderr, "unknown --kernel '%s'\n", kernel_flag.c_str());
    return 64;
  }
  if (smoke) {
    bidders = std::min<long long>(bidders, 1000);
    shards = std::min<std::size_t>(shards, 4);
  }
  const int per_shard = std::max(
      1, static_cast<int>(bidders / static_cast<long long>(shards)));
  const std::size_t pool_threads =
      threads_flag > 0 ? threads_flag : std::min<std::size_t>(shards, 8);
  int exit_code = 0;

  // 1. Kernel sweep. Smoke keeps the dense problem large enough that a
  //    vectorized kernel's win clears timer noise on one run.
  const int sweep_users = smoke ? 4000 : 20000;
  const int sweep_reps = smoke ? 5 : 15;
  std::printf("kernel sweep: %d dense bidders x 100 pools...\n",
              sweep_users);
  const std::vector<KernelResult> kernels =
      RunKernelSweep(sweep_users, 100, sweep_reps, kernel_flag);
  double best_vector_speedup = 0.0;
  std::string best_vector_kernel;
  for (const KernelResult& r : kernels) {
    std::printf("  %-8s dot %7.3f ms (%5.2fx)  collect %7.3f ms "
                "(%5.2fx)%s%s\n",
                r.name.c_str(), r.dot_ms, r.dot_speedup,
                r.full_collect_ms, r.collect_speedup,
                r.decisions_identical ? "" : "  DECISIONS DIVERGED",
                r.max_price_diff <= r.price_bound ? ""
                                                  : "  PRICES DIVERGED");
    if (r.name != "scalar" && r.name != "unrolled" &&
        r.dot_speedup > best_vector_speedup) {
      best_vector_speedup = r.dot_speedup;
      best_vector_kernel = r.name;
    }
    if (!r.decisions_identical || r.max_price_diff > r.price_bound) {
      exit_code = 2;
    }
  }
  if (!best_vector_kernel.empty() && best_vector_speedup < 1.0) {
    std::fprintf(stderr,
                 "FAIL: vectorized kernel %s is SLOWER than scalar "
                 "(%.2fx) on the dense-bundle dot microbench\n",
                 best_vector_kernel.c_str(), best_vector_speedup);
    exit_code = 1;
  }

  // 2. Pipeline gates + timing. The three federations are built
  //    identically; only the epoch driver differs.
  const std::size_t gate_shards = smoke ? 4 : std::min<std::size_t>(shards, 16);
  const int gate_bidders = smoke ? 100 : std::min(per_shard, 500);
  const int gate_epochs = smoke ? 2 : std::max(epochs, 3);
  std::printf("pipeline gates: %zu shards x %d bidders, %d epochs...\n",
              gate_shards, gate_bidders, gate_epochs);
  double serial_ms = 0.0, pipelined_ms = 0.0;
  std::string metrics_loop, metrics_off, metrics_on;
  {
    pm::federation::FederatedExchange fed = BuildFederation(
        gate_shards, gate_bidders, pool_threads, false, kernel_flag);
    for (int e = 0; e < gate_epochs; ++e) fed.RunEpoch();
    metrics_loop = MetricsOf(fed);
  }
  {
    pm::federation::FederatedExchange fed = BuildFederation(
        gate_shards, gate_bidders, pool_threads, false, kernel_flag);
    const auto t0 = Clock::now();
    fed.RunEpochs(gate_epochs);
    serial_ms = MillisSince(t0) / gate_epochs;
    metrics_off = MetricsOf(fed);
  }
  {
    // The chrome trace rides the byte-identity gate run on purpose: if
    // the wall channel perturbed deterministic exports, on_matches_off
    // below would catch it.
    pm::federation::FederatedExchange fed = BuildFederation(
        gate_shards, gate_bidders, pool_threads, true, kernel_flag,
        /*wall_profiler=*/!chrome_trace_out.empty());
    const auto t0 = Clock::now();
    fed.RunEpochs(gate_epochs);
    pipelined_ms = MillisSince(t0) / gate_epochs;
    metrics_on = MetricsOf(fed);
    if (!chrome_trace_out.empty()) {
      const std::string trace =
          fed.telemetry()->profiler()->ChromeTraceJson();
      std::FILE* tf = std::fopen(chrome_trace_out.c_str(), "w");
      if (tf == nullptr ||
          std::fwrite(trace.data(), 1, trace.size(), tf) != trace.size()) {
        std::fprintf(stderr, "cannot write %s\n",
                     chrome_trace_out.c_str());
        if (tf != nullptr) std::fclose(tf);
        return 74;
      }
      std::fclose(tf);
      std::printf("  wrote %s (%zu bytes)\n", chrome_trace_out.c_str(),
                  trace.size());
    }
  }
  const bool off_matches_loop = metrics_off == metrics_loop;
  const bool on_matches_off = metrics_on == metrics_off;
  if (!off_matches_loop) {
    std::fprintf(stderr,
                 "FAIL: RunEpochs(pipelined=off) diverged byte-wise from "
                 "the plain RunEpoch loop\n");
    exit_code = 2;
  }
  if (!on_matches_off) {
    std::fprintf(stderr,
                 "FAIL: pipelined=on metrics diverged byte-wise from "
                 "pipelined=off\n");
    exit_code = 2;
  }
  std::printf("  epoch ms: serial %.1f, pipelined %.1f (%.2fx)\n",
              serial_ms, pipelined_ms,
              pipelined_ms > 0.0 ? serial_ms / pipelined_ms : 0.0);

  // 3. Thread scaling of the pipelined epoch loop, metrics asserted
  //    byte-identical across thread counts.
  std::vector<std::pair<std::size_t, double>> scaling;
  {
    std::vector<std::size_t> counts = {1, 2, 4, 8};
    if (threads_flag > 0) counts = {threads_flag};
    if (smoke) counts.resize(std::min<std::size_t>(counts.size(), 2));
    std::string metrics_first;
    for (const std::size_t t : counts) {
      pm::federation::FederatedExchange fed = BuildFederation(
          gate_shards, gate_bidders, t, true, kernel_flag);
      const auto t0 = Clock::now();
      fed.RunEpochs(gate_epochs);
      scaling.emplace_back(t, MillisSince(t0) / gate_epochs);
      const std::string metrics = MetricsOf(fed);
      if (metrics_first.empty()) {
        metrics_first = metrics;
      } else if (metrics != metrics_first) {
        std::fprintf(stderr,
                     "FAIL: metrics JSON diverged across thread counts "
                     "(%zu threads)\n",
                     t);
        exit_code = 2;
      }
    }
  }
  for (const auto& [t, ms] : scaling) {
    std::printf("  threads=%zu epoch %.1f ms\n", t, ms);
  }

  // 4. The megascale epoch itself.
  std::printf("megascale epoch: %lld bidders over %zu shards "
              "(%d per shard)...\n",
              static_cast<long long>(per_shard) * shards, shards,
              per_shard);
  double mega_epoch_ms = 0.0;
  bool mega_converged = true;
  bool mega_conserved = true;
  bool mega_reproducible = true;
  long long mega_rounds = 0;
  {
    pm::federation::FederatedExchange fed = BuildFederation(
        shards, per_shard, pool_threads, true, kernel_flag);
    const auto t0 = Clock::now();
    fed.RunEpochs(epochs);
    mega_epoch_ms = MillisSince(t0) / epochs;
    const pm::federation::FederationReport& report = fed.History().back();
    for (const pm::federation::ShardEpochSummary& shard : report.shards) {
      mega_converged = mega_converged && shard.report.converged;
      mega_rounds += shard.report.rounds;
      for (const pm::exchange::AwardRecord& award : shard.report.awards) {
        if (award.outcome.quota_only) continue;
        const double gap = std::abs(award.outcome.awarded_units -
                                    (award.outcome.placed_units +
                                     award.outcome.refunded_units));
        mega_conserved = mega_conserved && gap <= 1e-6;
      }
    }
    const std::string metrics_a = MetricsOf(fed);
    // Rerun at a different pool size: byte-identical metrics or bust.
    pm::federation::FederatedExchange fed2 = BuildFederation(
        shards, per_shard, pool_threads == 1 ? 2 : 1, true, kernel_flag);
    fed2.RunEpochs(epochs);
    mega_reproducible = MetricsOf(fed2) == metrics_a;
  }
  if (!mega_converged || !mega_conserved || !mega_reproducible) {
    std::fprintf(stderr,
                 "FAIL: megascale epoch converged=%d conserved=%d "
                 "reproducible=%d\n",
                 mega_converged ? 1 : 0, mega_conserved ? 1 : 0,
                 mega_reproducible ? 1 : 0);
    exit_code = 3;
  }
  std::printf("  epoch %.0f ms, %lld auction rounds, converged=%s, "
              "conserved=%s, reproducible=%s\n",
              mega_epoch_ms, mega_rounds, mega_converged ? "yes" : "NO",
              mega_conserved ? "yes" : "NO",
              mega_reproducible ? "yes" : "NO");

  // ------------------------------------------------------------- JSON --
  std::FILE* f = std::fopen("BENCH_megascale.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_megascale.json\n");
    return exit_code != 0 ? exit_code : 74;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"megascale\",\n"
               "  \"metadata\": {\n"
               "    \"smoke\": %s,\n"
               "    \"bidders\": %lld,\n"
               "    \"shards\": %zu,\n"
               "    \"bidders_per_shard\": %d,\n"
               "    \"epochs\": %d,\n"
               "    \"host\": %s\n  },\n",
               smoke ? "true" : "false",
               static_cast<long long>(per_shard) * shards, shards,
               per_shard, epochs, pm::HostMetadataJson().c_str());
  std::fprintf(f, "  \"kernel_sweep\": [\n");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelResult& r = kernels[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"dot_ms\": %.4f, "
                 "\"dot_speedup_vs_scalar\": %.3f, "
                 "\"full_collect_ms\": %.4f, "
                 "\"collect_speedup_vs_scalar\": %.3f, "
                 "\"decisions_identical\": %s, "
                 "\"max_price_diff\": %.3e, \"price_bound\": %.3e}%s\n",
                 JsonEscape(r.name).c_str(), r.dot_ms, r.dot_speedup,
                 r.full_collect_ms, r.collect_speedup,
                 r.decisions_identical ? "true" : "false",
                 r.max_price_diff, r.price_bound,
                 i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"pipeline\": {\n"
               "    \"section_meta\": %s,\n"
               "    \"shards\": %zu,\n"
               "    \"bidders_per_shard\": %d,\n"
               "    \"epochs\": %d,\n"
               "    \"epoch_ms_serial\": %.3f,\n"
               "    \"epoch_ms_pipelined\": %.3f,\n"
               "    \"overlap_speedup\": %.3f,\n"
               "    \"off_matches_pre_pipeline_loop\": %s,\n"
               "    \"on_matches_off\": %s\n  },\n",
               pm::SectionHostJson(/*needs_parallelism=*/true).c_str(),
               gate_shards, gate_bidders, gate_epochs, serial_ms,
               pipelined_ms,
               pipelined_ms > 0.0 ? serial_ms / pipelined_ms : 0.0,
               off_matches_loop ? "true" : "false",
               on_matches_off ? "true" : "false");
  std::fprintf(f, "  \"thread_scaling_meta\": %s,\n",
               pm::SectionHostJson(/*needs_parallelism=*/true).c_str());
  std::fprintf(f, "  \"thread_scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    std::fprintf(f, "    {\"threads\": %zu, \"epoch_ms\": %.3f}%s\n",
                 scaling[i].first, scaling[i].second,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"megascale_epoch\": {\n"
               "    \"bidders\": %lld,\n"
               "    \"shards\": %zu,\n"
               "    \"epoch_ms\": %.1f,\n"
               "    \"auction_rounds\": %lld,\n"
               "    \"all_converged\": %s,\n"
               "    \"conservation_ok\": %s,\n"
               "    \"metrics_reproducible\": %s\n  }\n}\n",
               static_cast<long long>(per_shard) * shards, shards,
               mega_epoch_ms, mega_rounds,
               mega_converged ? "true" : "false",
               mega_conserved ? "true" : "false",
               mega_reproducible ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_megascale.json\n");
  return exit_code;
}
