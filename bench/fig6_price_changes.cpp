// Reproduces Figure 6: "Change in resource prices after auction" — the
// settled market price over the former fixed price, per cluster and
// resource dimension, for the first auction of a market seeded with a
// wide utilization spread (the paper's 34-cluster experiment).
//
// Paper shape to match: congested clusters clear above 1.0× (up to ≈2×),
// under-utilized clusters at or below their discounted reserves (<1.0×),
// with the ratio ordered by congestion and all three dimensions moving
// together.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>
#include <memory>

#include "agents/workload_gen.h"
#include "common/ascii_chart.h"
#include "common/table.h"
#include "exchange/market.h"
#include "common/bench_meta.h"
#include "common/thread_pool.h"

// Usage: fig6_price_changes [out.csv] — the optional argument also dumps
// the series as CSV for external plotting.
int main(int argc, char** argv) {
  const unsigned threads = pm::ParseThreadsFlag(&argc, argv, 0);
  // --threads: size of the shared auction pool (0/1 = serial).
  std::unique_ptr<pm::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<pm::ThreadPool>(threads);

  pm::agents::WorkloadConfig workload;
  workload.num_clusters = 34;          // The paper's cluster count.
  workload.num_teams = 100;            // "around 100 bidders".
  workload.seed = 20090425;            // IPDPS 2009.
  pm::agents::World world = GenerateWorld(workload);

  pm::exchange::MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  config.auction.thread_pool = pool.get();
  pm::exchange::Market market(&world.fleet, &world.agents,
                              world.fixed_prices, config);

  std::cout << "=== Figure 6: market price / former fixed price, after "
               "auction 1 ===\n"
            << "(" << workload.num_clusters << " clusters x {CPU, RAM, "
               "disk} = "
            << world.fleet.NumPools() << " pools, "
            << workload.num_teams << " teams)\n\n";

  const pm::exchange::AuctionReport report = market.RunAuction();
  const std::vector<double> ratios = pm::exchange::PriceRatios(report);
  const pm::PoolRegistry& registry = world.fleet.registry();

  // One row per cluster, sorted by pre-auction CPU utilization so the
  // congestion ordering is visible (the paper's r1..r34 are anonymized).
  struct Row {
    std::string cluster;
    double util_cpu;
    double cpu, ram, disk;
  };
  std::vector<Row> rows;
  for (const std::string& cluster_name : world.fleet.ClusterNames()) {
    Row row;
    row.cluster = cluster_name;
    const auto cpu =
        registry.Find(pm::PoolKey{cluster_name, pm::ResourceKind::kCpu});
    const auto ram =
        registry.Find(pm::PoolKey{cluster_name, pm::ResourceKind::kRam});
    const auto disk =
        registry.Find(pm::PoolKey{cluster_name, pm::ResourceKind::kDisk});
    row.util_cpu = report.pre_utilization[*cpu];
    row.cpu = ratios[*cpu];
    row.ram = ratios[*ram];
    row.disk = ratios[*disk];
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.util_cpu < b.util_cpu;
  });

  pm::TextTable table({"cluster", "pre-util cpu", "CPU ratio",
                       "RAM ratio", "Disk ratio"});
  int above_one = 0, below_one = 0;
  for (const Row& row : rows) {
    table.AddRow({row.cluster, pm::FormatPct(row.util_cpu, 1),
                  pm::FormatF(row.cpu, 3), pm::FormatF(row.ram, 3),
                  pm::FormatF(row.disk, 3)});
    if (row.cpu > 1.0) ++above_one;
    if (row.cpu < 1.0) ++below_one;
  }
  std::cout << table.Render() << '\n';

  if (argc > 1) {
    std::ofstream csv_file(argv[1]);
    pm::CsvWriter csv(csv_file);
    csv.WriteRow({"cluster", "pre_util_cpu", "cpu_ratio", "ram_ratio",
                  "disk_ratio"});
    for (const Row& row : rows) {
      csv.WriteRow({row.cluster, pm::FormatF(row.util_cpu, 6),
                    pm::FormatF(row.cpu, 6), pm::FormatF(row.ram, 6),
                    pm::FormatF(row.disk, 6)});
    }
    std::cout << "wrote " << argv[1] << '\n';
  }

  std::vector<pm::Bar> bars;
  for (const Row& row : rows) {
    bars.push_back(pm::Bar{row.cluster, row.cpu});
  }
  pm::ChartOptions options;
  options.title =
      "CPU market/fixed price ratio per cluster (sorted by pre-auction "
      "utilization; ':' marks 1.0)";
  std::cout << RenderBarChart(bars, options, 1.0) << '\n';

  const double max_ratio =
      std::max_element(rows.begin(), rows.end(),
                       [](const Row& a, const Row& b) {
                         return a.cpu < b.cpu;
                       })
          ->cpu;
  std::cout << "shape check: " << below_one
            << " clusters cleared below 1.0x (under-utilized), "
            << above_one << " above 1.0x (congested); max CPU ratio "
            << pm::FormatF(max_ratio, 2) << "x (paper: up to ~2x)\n"
            << "auction: " << report.rounds << " rounds, "
            << report.num_bids << " bids, "
            << pm::FormatPct(report.settled_fraction, 1) << " settled\n";
  return 0;
}
