// planetmarket: congestion-weighted reserve prices (§IV, Eq. 4).
//
//     p̃_r = φ_r(ψ(r)) · c(r)
//
// The reserve price of each pool is its real cost scaled by the weighting
// of its current utilization. These prices seed the clock auction (its
// starting prices) and steer bidders toward under-utilized pools before a
// single round has run — the decision-support role §IV describes for
// markets with limited liquidity.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "cluster/fleet.h"
#include "reserve/weighting.h"

namespace pm::reserve {

/// Computes per-pool reserve prices from utilizations and costs.
class ReservePricer {
 public:
  /// One weighting curve shared by all pools.
  explicit ReservePricer(std::shared_ptr<const WeightingFunction> curve);

  /// Per-kind curves: pools are weighted by the curve of their resource
  /// kind (the paper's φ_r subscript allows per-pool curves; per-kind is
  /// the granularity our market uses). `curves[kind]` must be non-null.
  explicit ReservePricer(
      std::vector<std::shared_ptr<const WeightingFunction>> per_kind_curves);

  /// p̃ = φ(ψ)·c element-wise. Inputs are dense per-pool vectors; the
  /// registry supplies each pool's kind for per-kind curves.
  std::vector<double> Price(const PoolRegistry& registry,
                            std::span<const double> utilization,
                            std::span<const double> cost) const;

  /// Convenience: price a fleet's pools from its current state.
  std::vector<double> PriceFleet(const cluster::Fleet& fleet) const;

  /// The curve used for `kind`.
  const WeightingFunction& CurveFor(ResourceKind kind) const;

 private:
  std::vector<std::shared_ptr<const WeightingFunction>> curves_;
};

}  // namespace pm::reserve
