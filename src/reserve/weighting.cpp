#include "reserve/weighting.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace pm::reserve {
namespace {

class Exp2Weighting final : public WeightingFunction {
 public:
  double operator()(double x) const override {
    return std::exp(2.0 * (x - 0.5));
  }
  std::string_view Name() const override { return "exp2"; }
};

class ExpWeighting final : public WeightingFunction {
 public:
  double operator()(double x) const override { return std::exp(x - 0.5); }
  std::string_view Name() const override { return "exp"; }
};

class ReciprocalWeighting final : public WeightingFunction {
 public:
  double operator()(double x) const override { return 1.0 / (1.5 - x); }
  std::string_view Name() const override { return "reciprocal"; }
};

class FlatWeighting final : public WeightingFunction {
 public:
  double operator()(double) const override { return 1.0; }
  std::string_view Name() const override { return "flat"; }
};

class PiecewiseLinearWeighting final : public WeightingFunction {
 public:
  PiecewiseLinearWeighting(std::vector<std::pair<double, double>> points,
                           std::string name)
      : points_(std::move(points)), name_(std::move(name)) {
    PM_CHECK_MSG(points_.size() >= 2,
                 "piecewise curve needs at least two points");
    PM_CHECK_MSG(points_.front().first == 0.0 &&
                     points_.back().first == 1.0,
                 "piecewise curve must span [0, 1]");
    for (std::size_t i = 1; i < points_.size(); ++i) {
      PM_CHECK_MSG(points_[i].first > points_[i - 1].first,
                   "piecewise x-coordinates must strictly increase");
    }
  }

  double operator()(double x) const override {
    x = std::clamp(x, 0.0, 1.0);
    for (std::size_t i = 1; i < points_.size(); ++i) {
      if (x <= points_[i].first) {
        const auto& [x0, y0] = points_[i - 1];
        const auto& [x1, y1] = points_[i];
        const double t = (x - x0) / (x1 - x0);
        return y0 + t * (y1 - y0);
      }
    }
    return points_.back().second;
  }

  std::string_view Name() const override { return name_; }

 private:
  std::vector<std::pair<double, double>> points_;
  std::string name_;
};

class CustomWeighting final : public WeightingFunction {
 public:
  CustomWeighting(std::function<double(double)> fn, std::string name)
      : fn_(std::move(fn)), name_(std::move(name)) {
    PM_CHECK(fn_ != nullptr);
  }

  double operator()(double x) const override { return fn_(x); }
  std::string_view Name() const override { return name_; }

 private:
  std::function<double(double)> fn_;
  std::string name_;
};

}  // namespace

std::unique_ptr<WeightingFunction> MakeExp2Weighting() {
  return std::make_unique<Exp2Weighting>();
}

std::unique_ptr<WeightingFunction> MakeExpWeighting() {
  return std::make_unique<ExpWeighting>();
}

std::unique_ptr<WeightingFunction> MakeReciprocalWeighting() {
  return std::make_unique<ReciprocalWeighting>();
}

std::unique_ptr<WeightingFunction> MakeFlatWeighting() {
  return std::make_unique<FlatWeighting>();
}

std::unique_ptr<WeightingFunction> MakePiecewiseLinearWeighting(
    std::vector<std::pair<double, double>> points, std::string name) {
  return std::make_unique<PiecewiseLinearWeighting>(std::move(points),
                                                    std::move(name));
}

std::unique_ptr<WeightingFunction> MakeCustomWeighting(
    std::function<double(double)> fn, std::string name) {
  return std::make_unique<CustomWeighting>(std::move(fn), std::move(name));
}

std::string CheckWeightingProperties(const WeightingFunction& fn,
                                     double over_threshold,
                                     double max_dynamic_range,
                                     int samples) {
  PM_CHECK(samples >= 8);
  std::ostringstream os;
  auto at = [&fn](int i, int n) {
    return fn(static_cast<double>(i) / static_cast<double>(n));
  };
  const int n = samples - 1;

  // 1. Monotonically increasing (non-strict would defeat the signal).
  for (int i = 0; i < n; ++i) {
    if (at(i + 1, n) < at(i, n) - 1e-12) {
      os << "property 1 violated: φ decreases between x="
         << static_cast<double>(i) / n << " and x="
         << static_cast<double>(i + 1) / n;
      return os.str();
    }
  }

  // 2. φ > 1 when over-utilized (strictly above the threshold).
  for (int i = 0; i <= n; ++i) {
    const double x = static_cast<double>(i) / n;
    if (x > over_threshold + 1e-9 && fn(x) <= 1.0) {
      os << "property 2 violated: φ(" << x << ") = " << fn(x) << " <= 1";
      return os.str();
    }
  }

  // 3. φ ≤ 1 when under-utilized (at or below the threshold).
  for (int i = 0; i <= n; ++i) {
    const double x = static_cast<double>(i) / n;
    if (x <= over_threshold - 1e-9 && fn(x) > 1.0 + 1e-9) {
      os << "property 3 violated: φ(" << x << ") = " << fn(x) << " > 1";
      return os.str();
    }
  }

  // 4. The congested end is steeper than the idle end: compare the rise
  // over the top (80–99 %) segment to the rise over the (15–40 %) one —
  // the paper's own example percentages.
  const double hot_rise = fn(0.99) - fn(0.80);
  const double cold_rise = fn(0.40) - fn(0.15);
  if (hot_rise <= cold_rise) {
    os << "property 4 violated: rise over [80%,99%] = " << hot_rise
       << " not greater than rise over [15%,40%] = " << cold_rise;
    return os.str();
  }

  // 5. Bounded dynamic range k = φ(1)/φ(0).
  const double phi0 = fn(0.0);
  if (phi0 <= 0.0) {
    os << "property 5 violated: φ(0) = " << phi0 << " not positive";
    return os.str();
  }
  const double k = fn(1.0) / phi0;
  if (!(k >= 1.0) || k > max_dynamic_range) {
    os << "property 5 violated: dynamic range k = " << k
       << " outside [1, " << max_dynamic_range << "]";
    return os.str();
  }
  return {};
}

}  // namespace pm::reserve
