// planetmarket: utilization weighting functions φ_r(·) (§IV).
//
// Reserve prices are p̃_r = φ_r(ψ(r))·c(r): the real cost of a pool scaled
// by a congestion weighting. §IV.A requires of φ:
//
//   1. monotonically increasing
//   2. φ > 1 for over-utilized pools
//   3. φ ≤ 1 for under-utilized pools
//   4. steeper among congested pools than among idle ones (convexity —
//      the operator does not care about moves between cold clusters)
//   5. φ(100%) = k·φ(0%) for a bounded constant k (ties into the budget
//      endowment)
//
// Figure 2's example curves are provided: φ1(x) = exp(2(x−½)),
// φ2(x) = exp(x−½), φ3(x) = 1/(1.5−x), with x the normalized utilization
// in [0, 1].
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pm::reserve {

/// A congestion weighting curve. Input is normalized utilization in
/// [0, 1]; output is the price multiple applied to the pool's base cost.
class WeightingFunction {
 public:
  virtual ~WeightingFunction() = default;

  /// φ(x). x is clamped to [0, 1] by callers.
  virtual double operator()(double utilization) const = 0;

  /// Display name ("exp2", "exp", "reciprocal", …).
  virtual std::string_view Name() const = 0;

  /// The bound k = φ(1)/φ(0) of property 5.
  double DynamicRange() const { return (*this)(1.0) / (*this)(0.0); }
};

/// φ1(x) = exp(2(x − 0.5)). Steepest of the paper's examples; k = e².
std::unique_ptr<WeightingFunction> MakeExp2Weighting();

/// φ2(x) = exp(x − 0.5). Gentle exponential; k = e.
std::unique_ptr<WeightingFunction> MakeExpWeighting();

/// φ3(x) = 1/(1.5 − x). Hyperbolic, hardest penalty near full; k = 3.
std::unique_ptr<WeightingFunction> MakeReciprocalWeighting();

/// φ(x) = 1: congestion-blind reserves (the ablation control).
std::unique_ptr<WeightingFunction> MakeFlatWeighting();

/// Piecewise-linear curve through (x_i, y_i) control points with
/// x_0 = 0 ≤ … ≤ x_n = 1; linear between points. For operators tuning
/// custom curves.
std::unique_ptr<WeightingFunction> MakePiecewiseLinearWeighting(
    std::vector<std::pair<double, double>> points, std::string name);

/// Wraps any callable as a weighting function (for experiments).
std::unique_ptr<WeightingFunction> MakeCustomWeighting(
    std::function<double(double)> fn, std::string name);

/// Checks §IV.A properties 1–5 on a curve by dense sampling. Returns the
/// empty string when all hold, else a description of the first failure.
/// `over_threshold` marks where "over-utilized" begins (the properties'
/// pivot; 0.5 matches the paper's example curves, which all cross 1
/// there).
std::string CheckWeightingProperties(const WeightingFunction& fn,
                                     double over_threshold = 0.5,
                                     double max_dynamic_range = 64.0,
                                     int samples = 512);

}  // namespace pm::reserve
