#include "reserve/reserve_pricer.h"

#include <algorithm>

#include "common/check.h"

namespace pm::reserve {

ReservePricer::ReservePricer(
    std::shared_ptr<const WeightingFunction> curve) {
  PM_CHECK(curve != nullptr);
  curves_.assign(kNumResourceKinds, std::move(curve));
}

ReservePricer::ReservePricer(
    std::vector<std::shared_ptr<const WeightingFunction>> per_kind_curves)
    : curves_(std::move(per_kind_curves)) {
  PM_CHECK_MSG(curves_.size() == kNumResourceKinds,
               "need one curve per resource kind");
  for (const auto& curve : curves_) PM_CHECK(curve != nullptr);
}

std::vector<double> ReservePricer::Price(
    const PoolRegistry& registry, std::span<const double> utilization,
    std::span<const double> cost) const {
  PM_CHECK_MSG(utilization.size() == registry.size() &&
                   cost.size() == registry.size(),
               "utilization/cost vectors must match the registry size");
  std::vector<double> prices(registry.size(), 0.0);
  for (PoolId r = 0; r < registry.size(); ++r) {
    const double psi = std::clamp(utilization[r], 0.0, 1.0);
    PM_CHECK_MSG(cost[r] >= 0.0, "negative cost for pool " << r);
    const WeightingFunction& phi = CurveFor(registry.KeyOf(r).kind);
    prices[r] = phi(psi) * cost[r];
  }
  return prices;
}

std::vector<double> ReservePricer::PriceFleet(
    const cluster::Fleet& fleet) const {
  return Price(fleet.registry(), fleet.UtilizationVector(),
               fleet.CostVector());
}

const WeightingFunction& ReservePricer::CurveFor(ResourceKind kind) const {
  return *curves_[static_cast<std::size_t>(kind)];
}

}  // namespace pm::reserve
