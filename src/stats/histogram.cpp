#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace pm::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  PM_CHECK_MSG(hi > lo, "histogram range [" << lo << "," << hi
                                            << "] is empty");
  PM_CHECK(bins >= 1);
  counts_.assign(bins, 0);
}

void Histogram::Add(double value) {
  ++total_;
  sum_ += value;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value > hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // value == hi_ lands here.
  ++counts_[bin];
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

std::size_t Histogram::Count(std::size_t bin) const {
  PM_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::BinCenter(std::size_t bin) const {
  PM_CHECK(bin < counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::BinLow(std::size_t bin) const {
  PM_CHECK(bin < counts_.size());
  return lo_ + static_cast<double>(bin) * width_;
}

double Histogram::Fraction(std::size_t bin) const {
  PM_CHECK(bin < counts_.size());
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  return static_cast<double>(counts_[bin]) /
         static_cast<double>(in_range);
}

bool Histogram::SameShape(const Histogram& other) const {
  return lo_ == other.lo_ && hi_ == other.hi_ &&
         counts_.size() == other.counts_.size();
}

void Histogram::Merge(const Histogram& other) {
  PM_CHECK_MSG(SameShape(other),
               "histogram merge shape mismatch: ["
                   << lo_ << "," << hi_ << "]x" << counts_.size()
                   << " vs [" << other.lo_ << "," << other.hi_ << "]x"
                   << other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  sum_ += other.sum_;
}

double Histogram::Quantile(double q) const {
  PM_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q=" << q
                                                   << " outside [0,1]");
  if (total_ == 0) return lo_;
  // Target rank among all recorded samples (0 → the first sample's
  // position, total → the last's). Cumulative mass walks underflow,
  // bins, then overflow.
  const double rank = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (underflow_ > 0 && rank <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cum + static_cast<double>(counts_[i]);
    if (rank <= next) {
      const double frac =
          std::clamp((rank - cum) / static_cast<double>(counts_[i]),
                     0.0, 1.0);
      return BinLow(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;  // Remaining mass sits above the range.
}

std::string Histogram::Render(int max_width) const {
  PM_CHECK(max_width >= 1);
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char head[96];
    std::snprintf(head, sizeof(head), "[%9.3f,%9.3f) %8zu ", BinLow(i),
                  BinLow(i) + width_, counts_[i]);
    os << head;
    const int len = static_cast<int>(std::lround(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        max_width));
    os << std::string(static_cast<std::size_t>(len), '#') << '\n';
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) os << "overflow: " << overflow_ << '\n';
  return os.str();
}

}  // namespace pm::stats
