// planetmarket: ordinary least squares on one predictor.
//
// Used by bench/scaling_auction to verify the paper's §III.C.4 claim that
// clock-auction runtime "scales linearly in the number of participants and
// the number of resources": we fit time ~ a + b·size and report R².
#pragma once

#include <span>

namespace pm::stats {

/// Result of a simple linear regression y = intercept + slope·x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // Coefficient of determination in [0, 1].
};

/// Fits OLS through (xs[i], ys[i]). Requires equal sizes >= 2 and nonzero
/// variance in xs.
LinearFit FitLinear(std::span<const double> xs, std::span<const double> ys);

}  // namespace pm::stats
