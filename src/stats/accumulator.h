// planetmarket: single-pass online moments (Welford's algorithm).
//
// Used where streaming samples must not be buffered: per-round auction
// telemetry and long longitudinal market simulations.
#pragma once

#include <cstddef>

namespace pm::stats {

/// Numerically stable online mean/variance/min/max accumulator.
class Accumulator {
 public:
  void Add(double x);

  /// Merges another accumulator (parallel reduction-friendly).
  void Merge(const Accumulator& other);

  std::size_t Count() const { return n_; }
  bool Empty() const { return n_ == 0; }

  /// Require Count() >= 1.
  double Mean() const;
  double Min() const;
  double Max() const;
  double Sum() const;

  /// Unbiased sample variance; requires Count() >= 2.
  double Variance() const;
  double StdDev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace pm::stats
