#include "stats/accumulator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pm::stats {

void Accumulator::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::Mean() const {
  PM_CHECK(n_ >= 1);
  return mean_;
}

double Accumulator::Min() const {
  PM_CHECK(n_ >= 1);
  return min_;
}

double Accumulator::Max() const {
  PM_CHECK(n_ >= 1);
  return max_;
}

double Accumulator::Sum() const {
  PM_CHECK(n_ >= 1);
  return sum_;
}

double Accumulator::Variance() const {
  PM_CHECK(n_ >= 2);
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::StdDev() const { return std::sqrt(Variance()); }

}  // namespace pm::stats
