#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pm::stats {
namespace {

std::vector<double> Sorted(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  PM_CHECK(!sorted.empty());
  PM_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile " << q << " outside [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double Mean(std::span<const double> xs) {
  PM_CHECK(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  PM_CHECK_MSG(xs.size() >= 2, "variance needs n >= 2, got " << xs.size());
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Min(std::span<const double> xs) {
  PM_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  PM_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double Quantile(std::span<const double> xs, double q) {
  return QuantileSorted(Sorted(xs), q);
}

double Median(std::span<const double> xs) { return Quantile(xs, 0.5); }

double PercentileRank(std::span<const double> xs, double value) {
  PM_CHECK(!xs.empty());
  std::size_t below = 0;
  std::size_t ties = 0;
  for (double x : xs) {
    if (x < value) {
      ++below;
    } else if (x == value) {
      ++ties;
    }
  }
  const double rank = static_cast<double>(below) +
                      0.5 * static_cast<double>(ties);
  return 100.0 * rank / static_cast<double>(xs.size());
}

BoxplotSummary Boxplot(std::span<const double> xs) {
  const std::vector<double> sorted = Sorted(xs);
  BoxplotSummary box;
  box.n = sorted.size();
  box.q1 = QuantileSorted(sorted, 0.25);
  box.median = QuantileSorted(sorted, 0.50);
  box.q3 = QuantileSorted(sorted, 0.75);
  const double iqr = box.q3 - box.q1;
  const double lo_fence = box.q1 - 1.5 * iqr;
  const double hi_fence = box.q3 + 1.5 * iqr;
  box.whisker_lo = box.q3;  // Overwritten below; safe initial values.
  box.whisker_hi = box.q1;
  bool any_inside = false;
  for (double x : sorted) {
    if (x < lo_fence || x > hi_fence) {
      box.outliers.push_back(x);
    } else {
      if (!any_inside) {
        box.whisker_lo = x;
        any_inside = true;
      }
      box.whisker_hi = x;
    }
  }
  if (!any_inside) {
    // Degenerate: everything flagged as outlier (cannot happen with Tukey
    // fences and finite data, but keep the summary well-formed).
    box.whisker_lo = sorted.front();
    box.whisker_hi = sorted.back();
    box.outliers.clear();
  }
  return box;
}

double MeanAbsDeviation(std::span<const double> xs) {
  PM_CHECK(!xs.empty());
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += std::abs(x - m);
  return acc / static_cast<double>(xs.size());
}

double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys) {
  PM_CHECK_MSG(xs.size() == ys.size() && xs.size() >= 2,
               "correlation needs equal sizes >= 2");
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  PM_CHECK_MSG(sxx > 0.0 && syy > 0.0,
               "correlation undefined for a constant sample");
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace pm::stats
