#include "stats/regression.h"

#include "common/check.h"
#include "stats/descriptive.h"

namespace pm::stats {

LinearFit FitLinear(std::span<const double> xs, std::span<const double> ys) {
  PM_CHECK_MSG(xs.size() == ys.size() && xs.size() >= 2,
               "FitLinear needs equal sizes >= 2");
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  PM_CHECK_MSG(sxx > 0.0, "FitLinear requires variance in x");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy <= 0.0) {
    fit.r_squared = 1.0;  // ys constant and perfectly explained.
  } else {
    const double ss_res = syy - fit.slope * sxy;
    fit.r_squared = 1.0 - ss_res / syy;
  }
  return fit;
}

}  // namespace pm::stats
