// planetmarket: descriptive statistics.
//
// Used throughout the evaluation harness: quantiles and boxplot summaries
// (Figure 7), percentile ranks of cluster utilization (Figure 7 y-axis),
// medians/means of bid premiums (Table I).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pm::stats {

/// Arithmetic mean. Requires a non-empty input.
double Mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Requires size >= 2.
double Variance(std::span<const double> xs);

/// sqrt(Variance).
double StdDev(std::span<const double> xs);

/// Minimum / maximum. Require non-empty input.
double Min(std::span<const double> xs);
double Max(std::span<const double> xs);

/// Quantile with linear interpolation between order statistics (the "R-7"
/// definition used by R and NumPy). q in [0, 1]. Requires non-empty input.
double Quantile(std::span<const double> xs, double q);

/// Median == Quantile(xs, 0.5).
double Median(std::span<const double> xs);

/// Percentile rank of `value` within `xs` on a 0–100 scale: the fraction of
/// elements strictly below plus half the ties (mid-rank convention). This
/// is the "utilization percentile" of Figure 7: where a cluster's
/// utilization sits relative to all clusters. Requires non-empty xs.
double PercentileRank(std::span<const double> xs, double value);

/// Five-number summary with Tukey outliers: whiskers reach the most extreme
/// points within 1.5·IQR of the box; anything beyond is an outlier.
struct BoxplotSummary {
  double whisker_lo = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_hi = 0.0;
  std::vector<double> outliers;  // Sorted ascending.
  std::size_t n = 0;
};

/// Computes the Tukey boxplot summary. Requires non-empty input.
BoxplotSummary Boxplot(std::span<const double> xs);

/// Mean absolute deviation from the mean; the dispersion metric used by the
/// reserve-pricing ablation to quantify "shortages and surpluses" of
/// utilization across clusters.
double MeanAbsDeviation(std::span<const double> xs);

/// Pearson correlation of two equal-length samples (size >= 2, both with
/// nonzero variance).
double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

}  // namespace pm::stats
