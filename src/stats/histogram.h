// planetmarket: fixed-width histograms over a closed range.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pm::stats {

/// A histogram with `bins` equal-width buckets spanning [lo, hi]. Values
/// outside the range are counted in under/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  std::size_t NumBins() const { return counts_.size(); }
  std::size_t Count(std::size_t bin) const;
  std::size_t TotalCount() const { return total_; }
  std::size_t Underflow() const { return underflow_; }
  std::size_t Overflow() const { return overflow_; }

  /// Midpoint of bin i.
  double BinCenter(std::size_t bin) const;

  /// Inclusive lower edge of bin i.
  double BinLow(std::size_t bin) const;

  /// Fraction of in-range samples in bin i (0 if empty histogram).
  double Fraction(std::size_t bin) const;

  /// One line per bin: "[lo,hi) count ###…".
  std::string Render(int max_width) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace pm::stats
