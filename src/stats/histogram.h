// planetmarket: fixed-width histograms over a closed range.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pm::stats {

/// A histogram with `bins` equal-width buckets spanning [lo, hi]. Values
/// outside the range are counted in under/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  std::size_t NumBins() const { return counts_.size(); }
  std::size_t Count(std::size_t bin) const;
  std::size_t TotalCount() const { return total_; }
  std::size_t Underflow() const { return underflow_; }
  std::size_t Overflow() const { return overflow_; }

  /// Midpoint of bin i.
  double BinCenter(std::size_t bin) const;

  /// Inclusive lower edge of bin i.
  double BinLow(std::size_t bin) const;

  /// Fraction of in-range samples in bin i (0 if empty histogram).
  double Fraction(std::size_t bin) const;

  /// Sum of every Add()ed value (under/overflow included) — Prometheus
  /// exposition's `_sum` companion to the bucket counts.
  double Sum() const { return sum_; }

  double Lo() const { return lo_; }
  double Hi() const { return hi_; }

  /// True when `other` spans the same [lo, hi] range with the same bin
  /// count — the precondition for Merge.
  bool SameShape(const Histogram& other) const;

  /// Folds another histogram of the same shape into this one (bin
  /// counts, under/overflow, totals and sums all add). CHECK-fails on a
  /// shape mismatch. Merging an empty histogram is a no-op; a
  /// single-bucket merge adds the lone counts.
  void Merge(const Histogram& other);

  /// The q-quantile (q in [0, 1]) over every recorded sample, linearly
  /// interpolated inside the covering bin. Mass below the range reads as
  /// lo, mass above as hi (the histogram cannot resolve further). An
  /// empty histogram returns lo — the deterministic "no data" answer the
  /// metrics registry relies on.
  double Quantile(double q) const;

  /// One line per bin: "[lo,hi) count ###…".
  std::string Render(int max_width) const;

 private:
  double lo_, hi_, width_;
  double sum_ = 0.0;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace pm::stats
