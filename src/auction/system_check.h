// planetmarket: verifying the SYSTEM feasibility constraints (§III.B).
//
// Given an auction's bids, supply and a settled result, checks every
// constraint of the SYSTEM program:
//
//   (1) x_u ∈ {0 ∪ Q_u}            one bundle or nothing, no scaling
//   (2) Σ_u x_u ≤ s                no shortage is created
//   (3) π_u ≥ x_u·p   ∀u ∈ W       winners bid enough
//   (4) x_u·p = min_q q·p ∀u ∈ W   winners got their cheapest bundle
//   (5) π_u < min_q q·p ∀u ∈ L     losers bid too little
//   (6) p ≥ 0 (and p ≥ reserve)    prices non-negative, at/above reserve
//
// Used by tests (the clock auction must always land on a feasible point
// when it converges, §III.C.4 property 3) and available to callers as a
// post-settlement audit.
#pragma once

#include <string>
#include <vector>

#include "auction/clock_auction.h"

namespace pm::auction {

/// Result of a SYSTEM audit: empty `violations` means feasible.
struct SystemCheckResult {
  std::vector<std::string> violations;

  bool Feasible() const { return violations.empty(); }

  /// Joins violations for logs.
  std::string ToString() const;
};

/// Audits `result` against the SYSTEM constraints. `tolerance` absorbs
/// floating-point slack in the comparisons.
SystemCheckResult CheckSystemConstraints(const ClockAuction& auction,
                                         const ClockAuctionResult& result,
                                         double tolerance = 1e-6);

}  // namespace pm::auction
