#include "auction/fixed_price.h"

#include <algorithm>

#include "common/check.h"
#include "common/types.h"

namespace pm::auction {
namespace {

/// Cheapest bundle the user can afford at the fixed prices, or -1.
int PickAffordable(const bid::Bid& bid,
                   const std::vector<double>& prices) {
  int best = -1;
  double best_cost = 0.0;
  for (std::size_t b = 0; b < bid.bundles.size(); ++b) {
    const double cost = bid.bundles[b].Dot(prices);
    if (best < 0 || cost < best_cost - kPriceEps) {
      best = static_cast<int>(b);
      best_cost = cost;
    }
  }
  if (best >= 0 && best_cost <= bid.limit + kPriceEps) return best;
  return -1;
}

void FinishShortageSurplus(const std::vector<bid::Bid>& bids,
                           const std::vector<double>& supply,
                           FixedPriceResult& result) {
  const std::size_t num_pools = supply.size();
  std::vector<double> granted(num_pools, 0.0);
  std::vector<double> requested(num_pools, 0.0);
  for (std::size_t u = 0; u < bids.size(); ++u) {
    if (result.chosen[u] < 0) {
      // Unserved users still *requested*: count their cheapest-at-fixed
      // bundle's buy side as latent demand if they could afford it — the
      // shortages traditional allocation hides. A user priced out by the
      // fixed price is not a shortage, it is disinterest.
      continue;
    }
    const bid::Bundle& bundle =
        bids[u].bundles[static_cast<std::size_t>(result.chosen[u])];
    for (const bid::BundleItem& item : bundle.items()) {
      if (item.qty > 0.0) {
        requested[item.pool] += item.qty;
        granted[item.pool] += item.qty * result.scale[u];
      }
    }
  }
  result.shortage.assign(num_pools, 0.0);
  result.surplus.assign(num_pools, 0.0);
  for (std::size_t r = 0; r < num_pools; ++r) {
    result.shortage[r] = std::max(0.0, requested[r] - granted[r]);
    result.surplus[r] = std::max(0.0, supply[r] - granted[r]);
  }
}

}  // namespace

FixedPriceResult AllocatePriorityOrder(
    const std::vector<bid::Bid>& bids, const std::vector<double>& supply,
    const std::vector<double>& fixed_prices,
    const std::vector<std::size_t>& priority) {
  PM_CHECK(supply.size() == fixed_prices.size());
  PM_CHECK_MSG(priority.size() == bids.size(),
               "priority must rank every bid");
  const std::string problem = bid::ValidateBids(bids, supply.size());
  PM_CHECK_MSG(problem.empty(), "invalid bid set: " << problem);

  FixedPriceResult result;
  result.chosen.assign(bids.size(), -1);
  result.scale.assign(bids.size(), 0.0);
  std::vector<double> remaining = supply;

  for (std::size_t u : priority) {
    PM_CHECK_MSG(u < bids.size(), "priority index " << u << " out of range");
    const int pick = PickAffordable(bids[u], fixed_prices);
    if (pick < 0) continue;
    const bid::Bundle& bundle =
        bids[u].bundles[static_cast<std::size_t>(pick)];
    bool fits = true;
    for (const bid::BundleItem& item : bundle.items()) {
      if (item.qty > 0.0 && item.qty > remaining[item.pool] + 1e-9) {
        fits = false;
        break;
      }
    }
    if (!fits) continue;  // Shortage for this user; they get nothing.
    for (const bid::BundleItem& item : bundle.items()) {
      remaining[item.pool] -= item.qty;
    }
    result.chosen[u] = pick;
    result.scale[u] = 1.0;
    result.operator_revenue += bundle.Dot(fixed_prices);
  }
  // Re-run the fit test for unserved users to count shortage mass: what
  // they wanted but could not get.
  FinishShortageSurplus(bids, supply, result);
  for (std::size_t u = 0; u < bids.size(); ++u) {
    if (result.chosen[u] >= 0) continue;
    const int pick = PickAffordable(bids[u], fixed_prices);
    if (pick < 0) continue;
    const bid::Bundle& bundle =
        bids[u].bundles[static_cast<std::size_t>(pick)];
    for (const bid::BundleItem& item : bundle.items()) {
      if (item.qty > 0.0) result.shortage[item.pool] += item.qty;
    }
  }
  return result;
}

FixedPriceResult AllocateProportionalShare(
    const std::vector<bid::Bid>& bids, const std::vector<double>& supply,
    const std::vector<double>& fixed_prices) {
  PM_CHECK(supply.size() == fixed_prices.size());
  const std::string problem = bid::ValidateBids(bids, supply.size());
  PM_CHECK_MSG(problem.empty(), "invalid bid set: " << problem);

  FixedPriceResult result;
  result.chosen.assign(bids.size(), -1);
  result.scale.assign(bids.size(), 0.0);

  // Everyone claims their cheapest affordable bundle.
  for (std::size_t u = 0; u < bids.size(); ++u) {
    const int pick = PickAffordable(bids[u], fixed_prices);
    if (pick < 0) continue;
    result.chosen[u] = pick;
    result.scale[u] = 1.0;
  }

  // Iteratively scale down claimants of oversubscribed pools. Each pass
  // fixes the currently worst pool; terminates because scales only shrink.
  const std::size_t num_pools = supply.size();
  for (int pass = 0; pass < 64; ++pass) {
    std::vector<double> demand(num_pools, 0.0);
    for (std::size_t u = 0; u < bids.size(); ++u) {
      if (result.chosen[u] < 0) continue;
      const bid::Bundle& bundle =
          bids[u].bundles[static_cast<std::size_t>(result.chosen[u])];
      for (const bid::BundleItem& item : bundle.items()) {
        if (item.qty > 0.0) {
          demand[item.pool] += item.qty * result.scale[u];
        }
      }
    }
    double worst_ratio = 1.0;
    std::size_t worst_pool = num_pools;
    for (std::size_t r = 0; r < num_pools; ++r) {
      if (demand[r] > supply[r] + 1e-9) {
        const double ratio = supply[r] / demand[r];
        if (ratio < worst_ratio) {
          worst_ratio = ratio;
          worst_pool = r;
        }
      }
    }
    if (worst_pool == num_pools) break;  // Feasible.
    for (std::size_t u = 0; u < bids.size(); ++u) {
      if (result.chosen[u] < 0) continue;
      const bid::Bundle& bundle =
          bids[u].bundles[static_cast<std::size_t>(result.chosen[u])];
      if (bundle.QuantityOf(static_cast<PoolId>(worst_pool)) > 0.0) {
        result.scale[u] *= worst_ratio;
      }
    }
  }

  for (std::size_t u = 0; u < bids.size(); ++u) {
    if (result.chosen[u] < 0) continue;
    const bid::Bundle& bundle =
        bids[u].bundles[static_cast<std::size_t>(result.chosen[u])];
    result.operator_revenue +=
        bundle.Dot(fixed_prices) * result.scale[u];
  }
  FinishShortageSurplus(bids, supply, result);
  return result;
}

}  // namespace pm::auction
