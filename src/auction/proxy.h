// planetmarket: bidder proxies.
//
// §III.C adapts the multi-round clock auction to a single-round sealed-bid
// setting by introducing proxies that bid on behalf of users:
//
//   G_u(p) = q̂_u   if q̂_u·p ≤ π_u,  where q̂_u ∈ argmin_{q∈Q_u} q·p
//          = 0     otherwise
//
// The same formula serves buyers (pay at most π), sellers (π < 0: receive
// at least −π; argmin picks the *most lucrative* sale) and traders.
#pragma once

#include <span>

#include "bid/bid.h"

namespace pm::auction {

/// What a proxy demands at the current prices.
struct ProxyDecision {
  /// Index into Bid::bundles, or kNothing when the proxy drops out.
  int bundle_index = kNothing;

  /// q̂·p of the chosen bundle (0 when nothing).
  double cost = 0.0;

  static constexpr int kNothing = -1;

  bool Active() const { return bundle_index != kNothing; }
};

/// A deterministic proxy for one bid.
///
/// Tie-breaking contract: the LOWEST bundle index wins among bundles of
/// equal cost within kPriceEps. Precisely, the scan keeps the current best
/// and replaces it only when a later bundle is cheaper by MORE than
/// kPriceEps, so exact duplicates and eps-close near-ties both resolve to
/// the first (lowest-index) bundle. The same comparison runs inside the
/// vector-π branch after the per-bundle affordability filter. DemandEngine
/// replicates these comparisons bit-for-bit, which is what lets engine ↔
/// oracle equivalence tests require identical decisions instead of
/// tolerating tie flips (see tests/demand_engine_test.cpp).
class BidderProxy {
 public:
  /// `bid` must outlive the proxy and already be validated.
  explicit BidderProxy(const bid::Bid* bid);

  /// Evaluates G_u(p). Thread-safe (const, no mutation). Deterministic:
  /// ties within kPriceEps resolve to the lowest bundle index.
  ProxyDecision Evaluate(std::span<const double> prices) const;

  const bid::Bid& bid() const { return *bid_; }

 private:
  const bid::Bid* bid_;
};

}  // namespace pm::auction
