#include "auction/settlement.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "stats/descriptive.h"

namespace pm::auction {

Settlement Settle(const ClockAuction& auction,
                  const ClockAuctionResult& result) {
  const std::vector<bid::Bid>& bids = auction.bids();
  PM_CHECK_MSG(result.decisions.size() == bids.size(),
               "result does not match auction (decisions "
                   << result.decisions.size() << ", bids " << bids.size()
                   << ")");
  const std::size_t num_pools = auction.NumPools();

  Settlement s;
  s.supply_sold.assign(num_pools, 0.0);
  s.surplus_absorbed.assign(num_pools, 0.0);

  std::vector<double> net(num_pools, 0.0);
  for (std::size_t u = 0; u < bids.size(); ++u) {
    const ProxyDecision& d = result.decisions[u];
    if (!d.Active()) {
      s.losers.push_back(bids[u].user);
      continue;
    }
    const auto awarded_index = static_cast<std::size_t>(d.bundle_index);
    const bid::Bundle& bundle = bids[u].bundles[awarded_index];
    const double payment = bundle.Dot(result.prices);
    const double limit = bids[u].LimitFor(awarded_index);
    Award award;
    award.user = bids[u].user;
    award.bundle_index = d.bundle_index;
    award.payment = payment;
    award.premium =
        std::abs(payment) > kPriceEps
            ? std::abs(limit - payment) / std::abs(payment)
            : std::numeric_limits<double>::quiet_NaN();
    // Pool-level fill intents: net quantity per pool, first-appearance
    // order (a bundle may list one pool several times).
    for (const bid::BundleItem& item : bundle.items()) {
      FillIntent* existing = nullptr;
      for (FillIntent& intent : award.intents) {
        if (intent.pool == item.pool) {
          existing = &intent;
          break;
        }
      }
      if (existing != nullptr) {
        existing->qty += item.qty;
      } else {
        award.intents.push_back(FillIntent{item.pool, item.qty});
      }
    }
    s.awards.push_back(std::move(award));
    s.operator_revenue += payment;
    bid::AccumulateInto(bundle, net);
  }
  for (std::size_t r = 0; r < num_pools; ++r) {
    if (net[r] >= 0.0) {
      s.supply_sold[r] = net[r];
    } else {
      s.surplus_absorbed[r] = -net[r];
    }
  }
  s.settled_fraction =
      bids.empty() ? 0.0
                   : static_cast<double>(s.awards.size()) /
                         static_cast<double>(bids.size());
  return s;
}

PremiumStats ComputePremiumStats(const Settlement& settlement) {
  std::vector<double> premiums;
  premiums.reserve(settlement.awards.size());
  for (const Award& a : settlement.awards) {
    if (std::isfinite(a.premium)) premiums.push_back(a.premium);
  }
  PremiumStats stats;
  stats.count = premiums.size();
  if (!premiums.empty()) {
    stats.median = stats::Median(premiums);
    stats.mean = stats::Mean(premiums);
  }
  return stats;
}

}  // namespace pm::auction
