// planetmarket: greedy pay-as-bid allocation (a fast heuristic baseline).
//
// A classic first-price heuristic for comparison with the clock auction:
// sort bids by declared limit (descending), award each user their first
// bundle that still fits in the remaining supply, charge them their bid.
// No uniform prices, no fairness — exactly the §III.A criteria the clock
// auction exists to satisfy — but near-optimal declared surplus on many
// instances at O(U log U + U·B) cost.
#pragma once

#include <vector>

#include "bid/bid.h"

namespace pm::auction {

/// Outcome of the greedy heuristic.
struct GreedyResult {
  /// chosen[u] = bundle index, or -1 for nothing.
  std::vector<int> chosen;

  /// Σ π_u over winners.
  double total_surplus = 0.0;

  /// Pay-as-bid revenue: Σ π_u over winners with π_u > 0 plus operator
  /// payouts to sellers (π_u < 0).
  double operator_revenue = 0.0;
};

/// Runs the greedy heuristic. Buy components consume remaining supply;
/// sell components replenish it.
GreedyResult SolveGreedy(const std::vector<bid::Bid>& bids,
                         const std::vector<double>& supply);

}  // namespace pm::auction
