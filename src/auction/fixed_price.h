// planetmarket: traditional allocation baselines (pre-market world).
//
// §I describes how quotas were set before the market: "the operator either
// grants each user an equal share of the system or decides that certain
// jobs / users are 'more important' than others". These baselines model
// that world so the benches can compare it against the auction:
//
//  * Priority order:     users are served in an exogenous ranking; each
//                        takes their first bundle that fits, at fixed
//                        prices. First-come shortage dynamics.
//  * Proportional share: when a pool is oversubscribed every requester is
//                        scaled down pro-rata (violating the paper's
//                        no-scaling constraint (1) — which is the point:
//                        teams get fractions of what they need).
//
// Both charge the *fixed* price vector (the denominator of Figure 6's
// "market price / fixed price" ratio).
#pragma once

#include <string>
#include <vector>

#include "bid/bid.h"

namespace pm::auction {

/// Outcome of a fixed-price allocation.
struct FixedPriceResult {
  /// chosen[u]: bundle index served (possibly scaled), or -1.
  std::vector<int> chosen;

  /// scale[u]: fraction of the chosen bundle actually granted (1 for the
  /// priority policy; ≤ 1 under proportional sharing).
  std::vector<double> scale;

  /// Per pool: requested demand that could not be served (shortage mass).
  std::vector<double> shortage;

  /// Per pool: supply left unrequested (surplus mass).
  std::vector<double> surplus;

  /// Σ payments at the fixed prices (scaled bundles pay pro-rata).
  double operator_revenue = 0.0;
};

/// Serves users in the order given by `priority` (indices into `bids`,
/// highest priority first); each is granted the cheapest affordable
/// bundle that fully fits the remaining supply.
FixedPriceResult AllocatePriorityOrder(
    const std::vector<bid::Bid>& bids, const std::vector<double>& supply,
    const std::vector<double>& fixed_prices,
    const std::vector<std::size_t>& priority);

/// Grants every user their cheapest affordable bundle, then resolves
/// oversubscribed pools by scaling every claimant of that pool down
/// pro-rata (iterating until feasible).
FixedPriceResult AllocateProportionalShare(
    const std::vector<bid::Bid>& bids, const std::vector<double>& supply,
    const std::vector<double>& fixed_prices);

}  // namespace pm::auction
