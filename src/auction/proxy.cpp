#include "auction/proxy.h"

#include "common/check.h"
#include "common/types.h"

namespace pm::auction {

BidderProxy::BidderProxy(const bid::Bid* bid) : bid_(bid) {
  PM_CHECK(bid != nullptr);
  PM_CHECK_MSG(!bid->bundles.empty(), "proxy for bid without bundles");
}

ProxyDecision BidderProxy::Evaluate(std::span<const double> prices) const {
  if (bid_->HasVectorLimits()) {
    // Vector-π extension: the proxy demands the cheapest bundle among
    // those individually affordable (cost_k ≤ π_k).
    int best_index = ProxyDecision::kNothing;
    double best_cost = 0.0;
    for (std::size_t i = 0; i < bid_->bundles.size(); ++i) {
      const double cost = bid_->bundles[i].Dot(prices);
      if (cost > bid_->bundle_limits[i] + kPriceEps) continue;
      if (best_index == ProxyDecision::kNothing ||
          cost < best_cost - kPriceEps) {
        best_index = static_cast<int>(i);
        best_cost = cost;
      }
    }
    if (best_index == ProxyDecision::kNothing) return ProxyDecision{};
    return ProxyDecision{best_index, best_cost};
  }

  int best_index = ProxyDecision::kNothing;
  double best_cost = 0.0;
  for (std::size_t i = 0; i < bid_->bundles.size(); ++i) {
    const double cost = bid_->bundles[i].Dot(prices);
    if (best_index == ProxyDecision::kNothing ||
        cost < best_cost - kPriceEps) {
      best_index = static_cast<int>(i);
      best_cost = cost;
    }
  }
  // Affordability: q̂·p ≤ π (within tolerance). For sellers both sides are
  // negative: cost −120 ≤ π −100 means "receives 120, wanted ≥ 100" — in.
  if (best_cost <= bid_->limit + kPriceEps) {
    return ProxyDecision{best_index, best_cost};
  }
  return ProxyDecision{};
}

}  // namespace pm::auction
