#include "auction/clock_auction.h"

#include <algorithm>

#include "common/check.h"
#include "common/types.h"

namespace pm::auction {

std::string DistributedIncompatibility(const ClockAuctionConfig& config) {
  if (config.intra_round_bisection) {
    return "intra_round_bisection is serial-only: its demand probes are a "
           "serial search that does not map onto the broadcast protocol";
  }
  if (config.thread_pool != nullptr) {
    return "thread_pool is serial-only: the distributed engine already "
           "fans demand collection out across proxy-node threads";
  }
  if (config.record_trajectory) {
    return "record_trajectory is serial-only: the wire protocol does not "
           "carry per-round trajectory frames";
  }
  if (config.collect_phase_timings) {
    return "collect_phase_timings is serial-only: the wire path's demand "
           "work runs inside the proxy nodes, so there is no in-process "
           "collect phase to time";
  }
  return {};
}

namespace {

/// Builds the configured increment policy.
std::unique_ptr<IncrementPolicy> BuildPolicy(
    const ClockAuctionConfig& config, std::size_t num_pools) {
  using Kind = ClockAuctionConfig::PolicyKind;
  switch (config.policy_kind) {
    case Kind::kAdditive:
      return MakeAdditivePolicy(config.alpha);
    case Kind::kCapped:
      return MakeCappedPolicy(config.alpha, config.delta);
    case Kind::kRelativeCapped:
      return MakeRelativeCappedPolicy(config.alpha, config.delta,
                                      config.step_floor);
    case Kind::kCostNormalized: {
      PM_CHECK_MSG(config.base_costs.size() == num_pools,
                   "base_costs must have one entry per pool");
      return MakeCostNormalizedPolicy(config.alpha, config.delta,
                                      config.base_costs);
    }
    case Kind::kMultiplicative:
      return MakeMultiplicativePolicy(config.alpha, config.delta,
                                      config.step_floor);
  }
  PM_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

bool AllNonPositive(std::span<const double> z, double eps) {
  return std::all_of(z.begin(), z.end(),
                     [eps](double v) { return v <= eps; });
}

}  // namespace

DemandEngine ClockAuction::BuildEngine(const std::vector<bid::Bid>& bids,
                                       const std::vector<double>& supply,
                                       const std::vector<double>& reserve,
                                       DemandEngineConfig engine_config) {
  PM_CHECK_MSG(supply.size() == reserve.size(),
               "supply and reserve vectors must have equal size, got "
                   << supply.size() << " vs " << reserve.size());
  for (std::size_t r = 0; r < supply.size(); ++r) {
    PM_CHECK_MSG(supply[r] >= 0.0, "negative supply in pool " << r);
    PM_CHECK_MSG(reserve[r] >= 0.0,
                 "negative reserve price in pool " << r);
  }
  const std::string problem = bid::ValidateBids(bids, supply.size());
  PM_CHECK_MSG(problem.empty(), "invalid bid set: " << problem);
  return DemandEngine(bids, supply, engine_config);
}

ClockAuction::ClockAuction(std::vector<bid::Bid> bids,
                           std::vector<double> supply,
                           std::vector<double> reserve_prices,
                           DemandEngineConfig engine_config)
    : bids_(std::move(bids)),
      supply_(std::move(supply)),
      reserve_(std::move(reserve_prices)),
      engine_(BuildEngine(bids_, supply_, reserve_, engine_config)) {}

ClockAuctionResult ClockAuction::Run(
    const ClockAuctionConfig& config) const {
  const std::size_t num_pools = supply_.size();
  std::unique_ptr<IncrementPolicy> owned_policy;
  const IncrementPolicy* policy = config.policy;
  if (policy == nullptr) {
    owned_policy = BuildPolicy(config, num_pools);
    policy = owned_policy.get();
  }

  const bool has_caps = !config.price_caps.empty();
  if (has_caps) {
    PM_CHECK_MSG(config.price_caps.size() == num_pools,
                 "price_caps must have one entry per pool");
    for (std::size_t r = 0; r < num_pools; ++r) {
      PM_CHECK_MSG(config.price_caps[r] >= reserve_[r],
                   "price cap for pool " << r
                                         << " is below its reserve price");
    }
  }

  ClockAuctionResult result;
  result.prices = reserve_;
  std::vector<double> normalized(num_pools, 0.0);
  std::vector<double> step(num_pools, 0.0);
  DemandEngine::Workspace ws;

  // Wall channel (profiler): the run splits into a collect phase (price
  // discovery, including each round's λ = 1 demand peek) and a bisect
  // phase (the final undersell search). Timing never feeds back into
  // the mechanism.
  const bool timed = config.collect_phase_timings;
  const std::uint64_t run_begin_ns = timed ? PhaseNowNs() : 0;
  std::uint64_t bisect_begin_ns = 0;

  auto collect = [&](std::span<const double> prices) {
    // Full arena sweep on the first call, incremental re-evaluation (only
    // bidders touching a moved pool) on every later round and probe.
    engine_.CollectDemand(prices, config.thread_pool, ws);
    result.demand_evaluations += static_cast<long long>(bids_.size());
  };
  auto finalize = [&] {
    result.decisions = ws.decisions();
    result.excess = ws.excess();
    result.proxies_reevaluated = ws.proxies_evaluated();
    result.full_collections = ws.full_collections();
    result.incremental_collections = ws.incremental_collections();
    result.dot_blocks = ws.dot_blocks();
    result.dirty_bidders = ws.dirty_bidders();
    if (timed) {
      const std::uint64_t end_ns = PhaseNowNs();
      const std::uint64_t split =
          bisect_begin_ns != 0 ? bisect_begin_ns : end_ns;
      result.phases.push_back(PhaseSpan{"collect", run_begin_ns, split});
      if (bisect_begin_ns != 0) {
        result.phases.push_back(
            PhaseSpan{"bisect", bisect_begin_ns, end_ns});
      }
    }
  };

  auto normalize = [&](std::span<const double> raw) {
    if (!config.normalize_excess) {
      std::copy(raw.begin(), raw.end(), normalized.begin());
      return;
    }
    for (std::size_t r = 0; r < num_pools; ++r) {
      normalized[r] = raw[r] / std::max(supply_[r], 1.0);
    }
  };

  std::vector<double> probe_prices(num_pools);
  for (int round = 0; round < config.max_rounds; ++round) {
    collect(result.prices);
    result.rounds = round + 1;
    normalize(ws.excess());
    if (config.record_trajectory) {
      result.trajectory.push_back(RoundRecord{result.prices, ws.excess()});
    }
    if (AllNonPositive(normalized, config.demand_eps)) {
      result.converged = true;
      finalize();
      return result;
    }
    policy->ComputeStep(normalized, result.prices, step);
    // A positive-excess pool must receive a strictly positive step or the
    // auction can stall forever at constant prices.
    for (std::size_t r = 0; r < num_pools; ++r) {
      if (normalized[r] > config.demand_eps && step[r] <= 0.0) {
        step[r] = config.step_floor;
      }
    }
    if (has_caps) {
      // Clamp steps to the ceilings; if every pool with excess demand is
      // already pinned, no further price motion can clear the market.
      bool any_movable = false;
      for (std::size_t r = 0; r < num_pools; ++r) {
        const double headroom =
            config.price_caps[r] - result.prices[r];
        step[r] = std::min(step[r], std::max(headroom, 0.0));
        if (normalized[r] > config.demand_eps) {
          if (step[r] > 0.0) {
            any_movable = true;
          }
        }
      }
      if (!any_movable) {
        for (std::size_t r = 0; r < num_pools; ++r) {
          if (normalized[r] > config.demand_eps) {
            result.capped_pools.push_back(static_cast<PoolId>(r));
          }
        }
        result.converged = false;
        finalize();
        return result;
      }
    }

    if (!config.intra_round_bisection) {
      for (std::size_t r = 0; r < num_pools; ++r) {
        result.prices[r] += step[r];
      }
      continue;
    }

    // Peek at the post-step demand; if the full step would terminate the
    // auction, bisect the step fraction to reduce overshoot: find a
    // near-minimal λ ∈ (0, 1] with z(p + λ·g) ≤ 0. Each probe moves only
    // the stepped pools, so the engine re-evaluates O(touched) proxies.
    double ws_lambda = 0.0;   // λ the workspace currently reflects.
    bool ws_cleared = false;  // Whether z(ws_lambda) ≤ 0.
    auto demand_at = [&](double lambda) {
      ++result.bisection_probes;
      for (std::size_t r = 0; r < num_pools; ++r) {
        probe_prices[r] = result.prices[r] + lambda * step[r];
      }
      collect(probe_prices);
      ws_lambda = lambda;
      normalize(ws.excess());
      ws_cleared = AllNonPositive(normalized, config.demand_eps);
      return ws_cleared;
    };
    if (!demand_at(1.0)) {
      // Full step still leaves excess demand: take it and continue. The
      // next round's collect sees bit-identical prices (p + 1.0·g), so
      // the engine's delta pass touches nothing and costs ~O(R).
      for (std::size_t r = 0; r < num_pools; ++r) {
        result.prices[r] += step[r];
      }
      continue;
    }
    if (timed && bisect_begin_ns == 0) bisect_begin_ns = PhaseNowNs();
    double lo = 0.0;  // Known: z(lo) has positive excess somewhere.
    double hi = 1.0;  // Known: z(hi) ≤ 0.
    for (int it = 0; it < config.bisection_iters; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (demand_at(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    // Land on `hi`, the smallest probed step that clears. When the last
    // probe already evaluated λ = hi (it cleared and tightened hi), its
    // decisions and excess are reused as-is instead of re-running a
    // demand collection.
    if (ws_lambda != hi) {
      const bool cleared = demand_at(hi);
      PM_CHECK(cleared);
    }
    PM_CHECK(ws_cleared);
    result.prices = probe_prices;
    result.rounds += 1;
    if (config.record_trajectory) {
      result.trajectory.push_back(
          RoundRecord{result.prices, ws.excess()});
    }
    result.converged = true;
    finalize();
    return result;
  }
  // Round budget exhausted with excess demand remaining (possible with
  // traders, §III.C.3).
  result.converged = false;
  finalize();
  return result;
}

}  // namespace pm::auction
