// planetmarket: the ascending clock auction (Algorithm 1, §III.C).
//
//   1: Given: U users, R resources, starting prices p̃, increment g
//   2: t = 0, p(0) = p̃
//   3: loop
//   4:   collect bids x_u(t) = G_u(p(t)) ∀u
//   5:   excess demand z(t) = Σ_u x_u(t) − s        (s = operator supply)
//   6:   if z(t) ≤ 0 break
//   7:   else p(t+1) = p(t) + g(x(t), p(t)); t ← t+1
//
// The operator's sellable capacity enters as the dense supply vector `s`;
// teams selling resources enter as bids with negative quantities (both
// appear in the paper — "the company itself may be mapped into clock
// auction participants"). Convergence is guaranteed when every participant
// is a pure buyer or pure seller (§III.C.3); with traders the round cap
// backstops the contrived cycling cases.
#pragma once

#include <memory>
#include <vector>

#include "auction/demand_engine.h"
#include "auction/increment_policy.h"
#include "auction/proxy.h"
#include "bid/bid.h"
#include "common/phase_span.h"
#include "common/thread_pool.h"

namespace pm::auction {

/// Tuning knobs for one clock-auction run. Defaults converge briskly on
/// markets with supply-normalized excess demand.
struct ClockAuctionConfig {
  /// Step scale α (interpretation depends on normalize_excess).
  double alpha = 0.25;

  /// Per-round cap δ for the capped policies.
  double delta = 0.05;

  /// Which g(x, p) family to use; built lazily from alpha/delta unless
  /// `policy` is set explicitly.
  enum class PolicyKind {
    kAdditive,
    kCapped,
    kRelativeCapped,
    kCostNormalized,
    kMultiplicative,
  };
  PolicyKind policy_kind = PolicyKind::kRelativeCapped;

  /// Explicit policy instance; overrides policy_kind when non-null.
  const IncrementPolicy* policy = nullptr;

  /// Base costs for PolicyKind::kCostNormalized (one per pool).
  std::vector<double> base_costs;

  /// Floor for relative/multiplicative steps on zero-priced pools, in
  /// price units.
  double step_floor = 1e-3;

  /// Divide excess demand by max(supply, 1) before applying the policy, so
  /// α reads as "relative price step per 100 % oversubscription" and is
  /// scale-free across markets. Set false for the literal Eq. (3).
  bool normalize_excess = true;

  /// Safety cap on rounds; hitting it reports converged = false (traders
  /// can cycle forever, §III.C.3).
  int max_rounds = 20000;

  /// Tolerance for the z ≤ 0 stopping test, in (normalized) units.
  double demand_eps = 1e-9;

  /// When the final step overshoots (z flips from positive to ≤ 0),
  /// bisect the last step to land closer to the market-clearing price —
  /// our implementation of the clock-proxy family's undersell control.
  bool intra_round_bisection = false;

  /// Bisection iterations (each costs one demand collection).
  int bisection_iters = 24;

  /// Optional pool for parallel proxy evaluation (line 4 fan-out).
  ThreadPool* thread_pool = nullptr;

  /// Record the full (prices, excess) trajectory per round.
  bool record_trajectory = false;

  /// Record wall-clock collect/bisect phase spans into
  /// ClockAuctionResult::phases (the profiler's wall channel,
  /// src/common/phase_span.h). Costs a few steady_clock reads per run
  /// and never touches prices, decisions, or any counter. Serial loop
  /// only — the wire path's demand work runs inside the proxy nodes.
  bool collect_phase_timings = false;

  /// §III.B's p ≤ pmax modification: per-pool price ceilings "to keep the
  /// system away from weird or unfair values". Empty = unbounded (the
  /// paper's default). When a pool pins at its cap with excess demand
  /// remaining, no uniform price can clear it: the auction stops, reports
  /// converged = false and lists the pool in capped_pools — the residual
  /// demand must be rationed out of band.
  std::vector<double> price_caps;
};

/// Reports why `config` cannot run on the broadcast wire protocol
/// (pm::net::RunDistributedAuction), or an empty string when it can.
/// Serial-only knobs do not map onto the announce/reply protocol:
/// intra-round bisection's demand probes are a serial search, the caller's
/// thread pool would race the proxy-node threads, and trajectory recording
/// is owned by the serial loop. Callers that stage a config for the wire
/// path validate with this instead of silently dropping the knobs.
std::string DistributedIncompatibility(const ClockAuctionConfig& config);

/// Snapshot of one auction round (recorded when requested).
struct RoundRecord {
  std::vector<double> prices;
  std::vector<double> excess;  // Raw (un-normalized) excess demand.
};

/// Outcome of a clock-auction run.
struct ClockAuctionResult {
  /// Final uniform linear prices per pool.
  std::vector<double> prices;

  /// Final proxy decision per user (index-aligned with the bid vector).
  std::vector<ProxyDecision> decisions;

  /// Final raw excess demand z (all ≤ demand tolerance when converged).
  std::vector<double> excess;

  /// Rounds executed (price updates + 1 final evaluation).
  int rounds = 0;

  /// False when max_rounds was exhausted with positive excess demand, or
  /// when price caps pinned a pool that still had excess demand.
  bool converged = false;

  /// Pools pinned at their price cap with residual excess demand (only
  /// populated when ClockAuctionConfig::price_caps is set).
  std::vector<PoolId> capped_pools;

  /// Total demand evaluations of G_u (U per round plus bisection probes);
  /// the unit of the paper's linear-scaling claim.
  long long demand_evaluations = 0;

  /// Proxies the demand engine actually re-evaluated (argmin sweeps).
  /// At most demand_evaluations; the gap is the incremental-re-evaluation
  /// win — rounds and bisection probes that move prices in only a subset
  /// of pools re-evaluate only the bidders touching those pools.
  long long proxies_reevaluated = 0;

  /// Demand probes issued by intra-round bisection (zero when the knob
  /// is off) — the bisection-phase slice of demand_evaluations.
  long long bisection_probes = 0;

  /// DemandEngine workspace phase split: full arena sweeps versus
  /// incremental (delta) collections served over the run. Zero on the
  /// wire path, where the engines live inside the proxy nodes.
  long long full_collections = 0;
  long long incremental_collections = 0;

  /// Profiler work counters (deterministic): kernel dot-block calls
  /// issued by full sweeps, and bidders re-evaluated incrementally.
  /// Zero on the wire path, like the collection counters above.
  long long dot_blocks = 0;
  long long dirty_bidders = 0;

  /// Wall-clock collect/bisect spans (collect_phase_timings only).
  std::vector<PhaseSpan> phases;

  /// Per-round history when record_trajectory was set.
  std::vector<RoundRecord> trajectory;
};

/// The auctioneer. Owns copies of the bids, compiled once into a
/// DemandEngine arena that serves every demand collection (full sweeps at
/// round 0, incremental re-evaluation afterwards).
class ClockAuction {
 public:
  /// `supply` and `reserve_prices` are dense per-pool vectors of equal
  /// size R; every bid must reference pools < R and pass ValidateBids.
  /// `engine_config` selects the demand engine's dot kernel (kernels.h);
  /// the default scalar kernel is bit-exact to the historical engine.
  ClockAuction(std::vector<bid::Bid> bids, std::vector<double> supply,
               std::vector<double> reserve_prices,
               DemandEngineConfig engine_config = {});

  /// Runs Algorithm 1. Idempotent: each call restarts from the reserve
  /// prices with a fresh demand workspace.
  ClockAuctionResult Run(const ClockAuctionConfig& config) const;

  std::size_t NumUsers() const { return bids_.size(); }
  std::size_t NumPools() const { return supply_.size(); }
  const std::vector<bid::Bid>& bids() const { return bids_; }
  const std::vector<double>& supply() const { return supply_; }
  const std::vector<double>& reserve_prices() const { return reserve_; }

  /// The compiled demand engine (shared with the distributed auctioneer
  /// and the benchmarks).
  const DemandEngine& engine() const { return engine_; }

 private:
  /// Validates the inputs, then compiles the arena. Runs in the member
  /// initializer list so `engine_` can be a value member.
  static DemandEngine BuildEngine(const std::vector<bid::Bid>& bids,
                                  const std::vector<double>& supply,
                                  const std::vector<double>& reserve,
                                  DemandEngineConfig engine_config);

  std::vector<bid::Bid> bids_;
  std::vector<double> supply_;
  std::vector<double> reserve_;
  DemandEngine engine_;
};

}  // namespace pm::auction
