// The only translation unit compiled with -mavx2 (see CMakeLists.txt):
// isolating the AVX2 kernel here keeps vector instructions out of every
// other object file, so the rest of the binary runs on any x86-64 — the
// dispatcher in kernels.cpp only hands this kernel out after
// __builtin_cpu_supports("avx2") says the host can execute it.
#include "auction/kernels.h"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX2__)
#include <immintrin.h>
#define PM_HAVE_AVX2_TU 1
#else
#define PM_HAVE_AVX2_TU 0
#endif

namespace pm::auction {

#if PM_HAVE_AVX2_TU

namespace {

// 4-wide AVX2 with hardware gathers (PoolId is uint32_t, so one __m128i
// of indices feeds _mm256_i32gather_pd). Two vector accumulators — eight
// elements per iteration — folded in a fixed lane order; explicit
// mul+add, never FMA, so the rounding schedule is the same whether or not
// the compiler could fuse. Deterministic: straight-line serial code with
// one fixed reduction order.
void Avx2DotBlock(const std::uint32_t* item_begin, const PoolId* item_pool,
                  const double* item_qty, const double* price,
                  std::uint32_t b0, std::uint32_t b1, double* cost_out) {
  for (std::uint32_t b = b0; b < b1; ++b) {
    const std::uint32_t e0 = item_begin[b];
    const std::uint32_t n = item_begin[b + 1] - e0;
    __m256d v0 = _mm256_setzero_pd();
    __m256d v1 = _mm256_setzero_pd();
    std::uint32_t e = 0;
    for (; e + 8 <= n; e += 8) {
      const __m128i i0 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(item_pool + e0 + e));
      const __m128i i1 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(item_pool + e0 + e + 4));
      const __m256d p0 = _mm256_i32gather_pd(price, i0, 8);
      const __m256d p1 = _mm256_i32gather_pd(price, i1, 8);
      const __m256d q0 = _mm256_loadu_pd(item_qty + e0 + e);
      const __m256d q1 = _mm256_loadu_pd(item_qty + e0 + e + 4);
      v0 = _mm256_add_pd(v0, _mm256_mul_pd(q0, p0));
      v1 = _mm256_add_pd(v1, _mm256_mul_pd(q1, p1));
    }
    if (e + 4 <= n) {
      const __m128i i0 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(item_pool + e0 + e));
      const __m256d p0 = _mm256_i32gather_pd(price, i0, 8);
      const __m256d q0 = _mm256_loadu_pd(item_qty + e0 + e);
      v0 = _mm256_add_pd(v0, _mm256_mul_pd(q0, p0));
      e += 4;
    }
    alignas(32) double lanes0[4], lanes1[4];
    _mm256_store_pd(lanes0, v0);
    _mm256_store_pd(lanes1, v1);
    double tail = 0.0;
    for (; e < n; ++e) {
      tail += item_qty[e0 + e] * price[item_pool[e0 + e]];
    }
    cost_out[b] = (((lanes0[0] + lanes0[1]) + (lanes0[2] + lanes0[3])) +
                   ((lanes1[0] + lanes1[1]) + (lanes1[2] + lanes1[3]))) +
                  tail;
  }
}

}  // namespace

DotBlockFn Avx2DotBlockFn() { return &Avx2DotBlock; }

#else

DotBlockFn Avx2DotBlockFn() { return nullptr; }

#endif  // PM_HAVE_AVX2_TU

}  // namespace pm::auction
