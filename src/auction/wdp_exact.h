// planetmarket: exact winner determination (the intractable baseline).
//
// §III.C rules out VCG-style mechanisms because exact combinatorial winner
// determination is NP-hard and produces non-uniform prices. To quantify
// that trade-off we implement the exact optimizer anyway: maximize the
// total declared surplus
//
//     max Σ_{u ∈ W} π_u    s.t.  Σ_{u ∈ W} q_u ≤ s,  one bundle or none per user
//
// by depth-first branch-and-bound (branch on each user's bundle-or-nothing
// choice; bound by the sum of remaining positive limits). Exponential in
// the worst case — which is exactly what bench/baseline_comparison
// demonstrates against the linear clock auction.
#pragma once

#include <vector>

#include "bid/bid.h"

namespace pm::auction {

/// Optimal allocation found by exhaustive search.
struct WdpResult {
  /// chosen[u] = bundle index awarded to user u, or -1 for nothing.
  std::vector<int> chosen;

  /// Σ π_u over winners — the objective value.
  double total_surplus = 0.0;

  /// Search-tree nodes expanded (the exponential cost metric).
  long long nodes_expanded = 0;
};

/// Solves the WDP exactly. Intended for small instances (≤ ~20 users);
/// `node_budget` aborts pathological searches — when exceeded, the best
/// solution found so far is returned and `nodes_expanded` equals the
/// budget.
WdpResult SolveWdpExact(const std::vector<bid::Bid>& bids,
                        const std::vector<double>& supply,
                        long long node_budget = 50'000'000);

/// Declared surplus of a clock-auction outcome under the same objective
/// (Σ π_u over active users), for efficiency comparisons.
double DeclaredSurplus(const std::vector<bid::Bid>& bids,
                       const std::vector<int>& chosen);

}  // namespace pm::auction
