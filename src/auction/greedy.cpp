#include "auction/greedy.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace pm::auction {

GreedyResult SolveGreedy(const std::vector<bid::Bid>& bids,
                         const std::vector<double>& supply) {
  const std::string problem = bid::ValidateBids(bids, supply.size());
  PM_CHECK_MSG(problem.empty(), "invalid bid set: " << problem);

  auto best_limit = [&](std::size_t u) {
    double best = bids[u].LimitFor(0);
    for (std::size_t b = 1; b < bids[u].bundles.size(); ++b) {
      best = std::max(best, bids[u].LimitFor(b));
    }
    return best;
  };
  std::vector<std::size_t> order(bids.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return best_limit(a) > best_limit(b);
                   });

  GreedyResult result;
  result.chosen.assign(bids.size(), -1);
  std::vector<double> remaining = supply;

  auto fits = [&](const bid::Bundle& bundle) {
    for (const bid::BundleItem& item : bundle.items()) {
      if (item.qty > 0.0 &&
          item.qty > remaining[item.pool] + 1e-9) {
        return false;
      }
    }
    return true;
  };

  for (std::size_t u : order) {
    for (std::size_t b = 0; b < bids[u].bundles.size(); ++b) {
      const bid::Bundle& bundle = bids[u].bundles[b];
      if (!fits(bundle)) continue;
      for (const bid::BundleItem& item : bundle.items()) {
        remaining[item.pool] -= item.qty;  // Sells add capacity back.
      }
      const double limit = bids[u].LimitFor(b);
      result.chosen[u] = static_cast<int>(b);
      result.total_surplus += limit;
      result.operator_revenue += limit;  // Pay-as-bid.
      break;
    }
  }
  return result;
}

}  // namespace pm::auction
