// planetmarket: the demand engine's dot kernels.
//
// The clock auction's single hottest loop is the ascending-pool bundle
// dot product q·p that DemandEngine::FullCollect runs for every bundle of
// every bidder every full sweep. This header is that loop's one home:
//
//   - DotAscending / ScatterDeltaAscending are the ORACLE arithmetic —
//     the exact sequential multiply-add order Bundle::Dot has always
//     used. Bundle::Dot (AoS), the scalar DotBlock kernel (SoA arena
//     sweep), and the incremental delta-update path all inline these, so
//     the bit-exactness contract lives in exactly one place.
//   - DotBlockFn is the runtime-dispatched block kernel: scalar (the
//     oracle), an unrolled four-accumulator pairwise variant, and SSE2 /
//     AVX2 gather paths. Kernel::kAuto resolves via CPUID to the widest
//     compiled-and-supported kernel.
//
// Equivalence tiers (tests/kernels_test.cpp):
//   bit-exact  — Kernel::kScalar. Byte-identical costs, decisions,
//                prices to the pre-kernel engine and to Bundle::Dot.
//   relaxed    — every other kernel. Decisions must match the oracle
//                EXACTLY (argmin comparisons use the kPriceEps band, far
//                wider than summation error on sane data); per-bundle
//                costs must satisfy |cost_k − cost_scalar| ≤
//                PairwiseErrorBound(...), the standard pairwise-summation
//                bound. Every kernel is individually deterministic: a
//                fixed kernel choice is bit-identical across reruns,
//                thread counts, and shards, because each kernel is
//                straight-line serial code with a fixed reduction order.
//
// The AVX2 kernel lives in kernels_avx2.cpp, the only translation unit
// compiled with -mavx2, so AVX instructions cannot leak into code that
// runs on non-AVX hosts; dispatch checks __builtin_cpu_supports first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace pm::auction {

/// Which dot kernel the demand engine runs. kScalar is the default and
/// the oracle; everything else is the relaxed-equivalence tier.
enum class Kernel {
  kScalar,    // Sequential ascending-pool multiply-add (bit-exact oracle).
  kUnrolled,  // Four scalar accumulators, pairwise-combined.
  kSse2,      // 2-wide SSE2, emulated gather.
  kAvx2,      // 4-wide AVX2 hardware gather (kernels_avx2.cpp).
  kAuto,      // Widest kernel compiled in AND supported by this CPU.
};

/// Demand-engine construction knobs, plumbed from MarketConfig down
/// through ClockAuction. The default reproduces the pre-kernel engine
/// byte for byte.
struct DemandEngineConfig {
  Kernel kernel = Kernel::kScalar;
};

/// Block dot kernel: for every bundle b in [b0, b1) of a CSR arena
/// (items of bundle b are item_pool/item_qty[item_begin[b] ..
/// item_begin[b+1])), write q_b·p into cost_out[b]. Pointers may be
/// unaligned; kernels use unaligned loads over the 32-byte-aligned arena.
using DotBlockFn = void (*)(const std::uint32_t* item_begin,
                            const PoolId* item_pool, const double* item_qty,
                            const double* price, std::uint32_t b0,
                            std::uint32_t b1, double* cost_out);

/// The oracle: one ascending-order sequential multiply-add chain.
/// `pool_at(e)` / `qty_at(e)` abstract AoS (Bundle::items()) versus SoA
/// (the arena) element access; the FP op sequence is identical either
/// way, which is the whole point.
template <typename PoolAt, typename QtyAt>
inline double DotAscending(std::size_t n, PoolAt pool_at, QtyAt qty_at,
                           const double* price) {
  double cost = 0.0;
  for (std::size_t e = 0; e < n; ++e) {
    cost += qty_at(e) * price[pool_at(e)];
  }
  return cost;
}

/// The oracle's incremental counterpart: cost[bundle_at(k)] += d ·
/// qty_at(k) over one touched pool's inverted entries [k0, k1), ascending
/// bundle order. DemandEngine::IncrementalCollect is the only caller, but
/// the arithmetic lives here beside DotAscending so the "cached cost ==
/// refreshed cost up to bounded drift" argument reads off one file.
template <typename BundleAt, typename QtyAt>
inline void ScatterDeltaAscending(double d, std::uint32_t k0,
                                  std::uint32_t k1, BundleAt bundle_at,
                                  QtyAt qty_at, double* cost) {
  for (std::uint32_t k = k0; k < k1; ++k) {
    cost[bundle_at(k)] += d * qty_at(k);
  }
}

/// Upper bound on |pairwise/vectorized sum − sequential sum| for a dot
/// product whose terms have magnitude sum `abs_sum` and count `n`.
///
/// Standard result (Higham, *Accuracy and Stability of Numerical
/// Algorithms*, §4.2): any summation order of n terms has error ≤
/// (n−1)·u·Σ|t_e| / (1 − (n−1)·u) with u = DBL_EPSILON/2; products add
/// one more rounding each, giving ≤ n·u·Σ|t_e| to first order for the
/// order-difference between two schedules a small safety factor covers.
/// We use 2·n·u·Σ|q_e·p_e| + a few ulps of slack for the bound's own FP
/// evaluation — proven loose for every reduction order our kernels use
/// (sequential, 4-way pairwise, 2/4-lane strided + fixed-order lane
/// fold), all of which are *better* than the worst-case order.
inline double PairwiseErrorBound(std::size_t n, double abs_sum) {
  const double u = std::numeric_limits<double>::epsilon() / 2.0;
  return 2.0 * static_cast<double>(n + 4) * u * abs_sum +
         4.0 * std::numeric_limits<double>::denorm_min();
}

/// Resolves kAuto to the widest compiled-and-CPU-supported kernel; every
/// concrete kernel resolves to itself. CHECK-fails if a concrete kernel
/// was requested that this binary/CPU cannot run (callers probe with
/// CompiledKernels first).
Kernel ResolveKernelChoice(Kernel k);

/// The block-kernel function pointer for a resolved kernel choice.
DotBlockFn ResolveKernel(Kernel k);

/// Kernels this binary can run on this CPU, widest last. Always contains
/// kScalar and kUnrolled; kSse2/kAvx2 appear when compiled in and the
/// CPU reports support.
std::vector<Kernel> CompiledKernels();

const char* ToString(Kernel k);

/// Parses "scalar" / "unrolled" / "sse2" / "avx2" / "auto" (the bench
/// CLI's --kernel flag); nullopt on anything else.
std::optional<Kernel> ParseKernel(std::string_view name);

/// Minimal 32-byte-aligned allocator so the arena's qty/pool arrays start
/// on vector-register boundaries. Kernels still issue unaligned loads
/// (free on aligned data, correct on any tail), so alignment is a
/// performance property, never a correctness one.
template <typename T, std::size_t Alignment = 32>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0);

  // The Alignment non-type parameter defeats allocator_traits' default
  // rebind detection; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) {
    if (p == nullptr) return;
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const {
    return true;
  }
};

/// A 32-byte-aligned vector for arena storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace pm::auction
