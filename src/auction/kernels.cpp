#include "auction/kernels.h"

#include <algorithm>

#include "common/check.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>  // SSE2: baseline on x86-64, no special flags.
#define PM_KERNELS_X86 1
#else
#define PM_KERNELS_X86 0
#endif

namespace pm::auction {

// Defined in kernels_avx2.cpp (the only -mavx2 TU); returns nullptr when
// that TU was built without AVX2 codegen support.
DotBlockFn Avx2DotBlockFn();

namespace {

void ScalarDotBlock(const std::uint32_t* item_begin, const PoolId* item_pool,
                    const double* item_qty, const double* price,
                    std::uint32_t b0, std::uint32_t b1, double* cost_out) {
  for (std::uint32_t b = b0; b < b1; ++b) {
    const std::uint32_t e0 = item_begin[b];
    // The oracle order: identical accumulation to Bundle::Dot (ascending
    // pool), so costs — and therefore decisions — are bit-identical to
    // the BidderProxy oracle.
    cost_out[b] = DotAscending(
        item_begin[b + 1] - e0, [&](std::size_t e) { return item_pool[e0 + e]; },
        [&](std::size_t e) { return item_qty[e0 + e]; }, price);
  }
}

// Four scalar accumulators over a strided schedule, combined pairwise in
// a fixed order — the reduction every SIMD lane-fold below mirrors, and
// the model case for PairwiseErrorBound. Still straight-line serial code:
// rerun-deterministic by construction.
void UnrolledDotBlock(const std::uint32_t* item_begin,
                      const PoolId* item_pool, const double* item_qty,
                      const double* price, std::uint32_t b0, std::uint32_t b1,
                      double* cost_out) {
  for (std::uint32_t b = b0; b < b1; ++b) {
    const std::uint32_t e0 = item_begin[b];
    const std::uint32_t n = item_begin[b + 1] - e0;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::uint32_t e = 0;
    for (; e + 4 <= n; e += 4) {
      a0 += item_qty[e0 + e + 0] * price[item_pool[e0 + e + 0]];
      a1 += item_qty[e0 + e + 1] * price[item_pool[e0 + e + 1]];
      a2 += item_qty[e0 + e + 2] * price[item_pool[e0 + e + 2]];
      a3 += item_qty[e0 + e + 3] * price[item_pool[e0 + e + 3]];
    }
    double tail = 0.0;
    for (; e < n; ++e) {
      tail += item_qty[e0 + e] * price[item_pool[e0 + e]];
    }
    cost_out[b] = ((a0 + a1) + (a2 + a3)) + tail;
  }
}

#if PM_KERNELS_X86

// 2-wide SSE2 with an emulated gather (two scalar price loads packed per
// vector). Two vector accumulators (4 elements per iteration); lanes fold
// in a fixed order, so the kernel is deterministic.
void Sse2DotBlock(const std::uint32_t* item_begin, const PoolId* item_pool,
                  const double* item_qty, const double* price,
                  std::uint32_t b0, std::uint32_t b1, double* cost_out) {
  for (std::uint32_t b = b0; b < b1; ++b) {
    const std::uint32_t e0 = item_begin[b];
    const std::uint32_t n = item_begin[b + 1] - e0;
    __m128d v0 = _mm_setzero_pd();
    __m128d v1 = _mm_setzero_pd();
    std::uint32_t e = 0;
    for (; e + 4 <= n; e += 4) {
      const __m128d q0 = _mm_loadu_pd(item_qty + e0 + e);
      const __m128d q1 = _mm_loadu_pd(item_qty + e0 + e + 2);
      const __m128d p0 = _mm_set_pd(price[item_pool[e0 + e + 1]],
                                    price[item_pool[e0 + e + 0]]);
      const __m128d p1 = _mm_set_pd(price[item_pool[e0 + e + 3]],
                                    price[item_pool[e0 + e + 2]]);
      v0 = _mm_add_pd(v0, _mm_mul_pd(q0, p0));
      v1 = _mm_add_pd(v1, _mm_mul_pd(q1, p1));
    }
    // Lane fold in fixed order: (v0.lo + v0.hi) + (v1.lo + v1.hi).
    alignas(16) double lanes0[2], lanes1[2];
    _mm_store_pd(lanes0, v0);
    _mm_store_pd(lanes1, v1);
    double tail = 0.0;
    for (; e < n; ++e) {
      tail += item_qty[e0 + e] * price[item_pool[e0 + e]];
    }
    cost_out[b] = ((lanes0[0] + lanes0[1]) + (lanes1[0] + lanes1[1])) + tail;
  }
}

bool CpuHasSse2() { return true; }  // Baseline on x86-64.
bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

#else

bool CpuHasSse2() { return false; }
bool CpuHasAvx2() { return false; }

#endif  // PM_KERNELS_X86

}  // namespace

Kernel ResolveKernelChoice(Kernel k) {
  if (k != Kernel::kAuto) {
    const std::vector<Kernel> usable = CompiledKernels();
    PM_CHECK_MSG(std::find(usable.begin(), usable.end(), k) != usable.end(),
                 "kernel " << ToString(k)
                           << " not compiled in or not supported by this CPU");
    return k;
  }
  const std::vector<Kernel> usable = CompiledKernels();
  return usable.back();  // Widest last.
}

DotBlockFn ResolveKernel(Kernel k) {
  switch (ResolveKernelChoice(k)) {
    case Kernel::kScalar:
      return &ScalarDotBlock;
    case Kernel::kUnrolled:
      return &UnrolledDotBlock;
#if PM_KERNELS_X86
    case Kernel::kSse2:
      return &Sse2DotBlock;
#endif
    case Kernel::kAvx2: {
      DotBlockFn fn = Avx2DotBlockFn();
      PM_CHECK_MSG(fn != nullptr, "AVX2 kernel missing from this build");
      return fn;
    }
    default:
      PM_CHECK_MSG(false, "unreachable kernel choice");
      return &ScalarDotBlock;
  }
}

std::vector<Kernel> CompiledKernels() {
  std::vector<Kernel> out{Kernel::kScalar, Kernel::kUnrolled};
  if (CpuHasSse2()) out.push_back(Kernel::kSse2);
  if (CpuHasAvx2() && Avx2DotBlockFn() != nullptr) {
    out.push_back(Kernel::kAvx2);
  }
  return out;
}

const char* ToString(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kUnrolled:
      return "unrolled";
    case Kernel::kSse2:
      return "sse2";
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<Kernel> ParseKernel(std::string_view name) {
  if (name == "scalar") return Kernel::kScalar;
  if (name == "unrolled") return Kernel::kUnrolled;
  if (name == "sse2") return Kernel::kSse2;
  if (name == "avx2") return Kernel::kAvx2;
  if (name == "auto") return Kernel::kAuto;
  return std::nullopt;
}

}  // namespace pm::auction
