#include "auction/system_check.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace pm::auction {

std::string SystemCheckResult::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << "; ";
    os << violations[i];
  }
  return os.str();
}

SystemCheckResult CheckSystemConstraints(const ClockAuction& auction,
                                         const ClockAuctionResult& result,
                                         double tolerance) {
  SystemCheckResult check;
  const std::vector<bid::Bid>& bids = auction.bids();
  const std::size_t num_pools = auction.NumPools();
  PM_CHECK(result.decisions.size() == bids.size());
  PM_CHECK(result.prices.size() == num_pools);

  auto violate = [&check](const std::string& message) {
    check.violations.push_back(message);
  };

  // (6) p ≥ 0 and p ≥ reserve (the clock only moves prices up).
  for (std::size_t r = 0; r < num_pools; ++r) {
    if (result.prices[r] < -tolerance) {
      std::ostringstream os;
      os << "(6) price of pool " << r << " is negative: "
         << result.prices[r];
      violate(os.str());
    }
    if (result.prices[r] < auction.reserve_prices()[r] - tolerance) {
      std::ostringstream os;
      os << "(6) price of pool " << r << " fell below reserve: "
         << result.prices[r] << " < " << auction.reserve_prices()[r];
      violate(os.str());
    }
  }

  // (2) Σ_u x_u − s ≤ 0.
  std::vector<double> net(num_pools, 0.0);
  for (std::size_t u = 0; u < bids.size(); ++u) {
    const ProxyDecision& d = result.decisions[u];
    if (!d.Active()) continue;
    bid::AccumulateInto(
        bids[u].bundles[static_cast<std::size_t>(d.bundle_index)], net);
  }
  for (std::size_t r = 0; r < num_pools; ++r) {
    const double excess = net[r] - auction.supply()[r];
    // Match the auction's own normalized stopping rule so that a
    // converged result always passes: tolerance scales with supply.
    const double slack =
        tolerance * std::max(1.0, auction.supply()[r]);
    if (excess > slack) {
      std::ostringstream os;
      os << "(2) pool " << r << " oversubscribed by " << excess;
      violate(os.str());
    }
  }

  // Per-user constraints.
  for (std::size_t u = 0; u < bids.size(); ++u) {
    const bid::Bid& bid = bids[u];
    const ProxyDecision& d = result.decisions[u];

    // (1) x_u ∈ {0 ∪ Q_u}: by construction the decision indexes Q_u;
    // check bounds anyway (a corrupted result should not pass an audit).
    if (d.Active() &&
        (d.bundle_index < 0 ||
         static_cast<std::size_t>(d.bundle_index) >= bid.bundles.size())) {
      std::ostringstream os;
      os << "(1) user " << bid.user << " was awarded bundle "
         << d.bundle_index << " outside Q_u of size "
         << bid.bundles.size();
      violate(os.str());
      continue;
    }

    // Cheapest bundle overall and cheapest *affordable* bundle. With the
    // scalar π of the base model the two tests coincide; under the
    // vector-π extension constraint (4) reads "winners attain the
    // cheapest bundle they declared affordable" and (5) "losers can
    // afford none".
    double min_cost = 0.0;
    bool first = true;
    double min_affordable_cost = 0.0;
    bool any_affordable = false;
    for (std::size_t q = 0; q < bid.bundles.size(); ++q) {
      const double cost = bid.bundles[q].Dot(result.prices);
      if (first || cost < min_cost) {
        min_cost = cost;
        first = false;
      }
      if (cost <= bid.LimitFor(q) + tolerance &&
          (!any_affordable || cost < min_affordable_cost)) {
        min_affordable_cost = cost;
        any_affordable = true;
      }
    }

    if (d.Active()) {
      const std::size_t awarded_index =
          static_cast<std::size_t>(d.bundle_index);
      const bid::Bundle& awarded = bid.bundles[awarded_index];
      const double cost = awarded.Dot(result.prices);
      const double limit = bid.LimitFor(awarded_index);
      // (3) π_u ≥ x_u·p.
      if (limit < cost - tolerance) {
        std::ostringstream os;
        os << "(3) winner " << bid.user << " pays " << cost
           << " above limit " << limit;
        violate(os.str());
      }
      // (4) x_u·p = min over (affordable) q of q·p.
      const double cheapest =
          bid.HasVectorLimits() ? min_affordable_cost : min_cost;
      if (cost > cheapest + tolerance) {
        std::ostringstream os;
        os << "(4) winner " << bid.user << " got a bundle costing " << cost
           << " but the cheapest was " << cheapest;
        violate(os.str());
      }
    } else {
      // (5) π_u < min_q q·p (scalar) / no bundle affordable (vector).
      if (bid.HasVectorLimits()) {
        if (any_affordable) {
          std::ostringstream os;
          os << "(5) loser " << bid.user
             << " could still afford a bundle costing "
             << min_affordable_cost;
          violate(os.str());
        }
      } else if (bid.limit >= min_cost + tolerance) {
        std::ostringstream os;
        os << "(5) loser " << bid.user << " had limit " << bid.limit
           << " >= cheapest bundle cost " << min_cost;
        violate(os.str());
      }
    }
  }
  return check;
}

}  // namespace pm::auction
