#include "auction/demand_engine.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/types.h"

namespace pm::auction {

DemandEngine::DemandEngine(std::span<const bid::Bid> bids,
                           std::vector<double> supply,
                           DemandEngineConfig config)
    : supply_(std::move(supply)),
      kernel_(ResolveKernelChoice(config.kernel)),
      dot_block_(ResolveKernel(kernel_)) {
  std::vector<std::uint32_t> all(bids.size());
  std::iota(all.begin(), all.end(), 0u);
  Compile(bids, all);
}

DemandEngine::DemandEngine(std::span<const bid::Bid> bids,
                           std::span<const std::uint32_t> users,
                           std::vector<double> supply,
                           DemandEngineConfig config)
    : supply_(std::move(supply)),
      kernel_(ResolveKernelChoice(config.kernel)),
      dot_block_(ResolveKernel(kernel_)) {
  Compile(bids, users);
}

void DemandEngine::Compile(std::span<const bid::Bid> bids,
                           std::span<const std::uint32_t> users) {
  const std::size_t num_users = users.size();
  const std::size_t num_pools = supply_.size();

  bundle_begin_.assign(num_users + 1, 0);
  vector_pi_.assign(num_users, 0);
  for (std::size_t i = 0; i < num_users; ++i) {
    PM_CHECK_MSG(users[i] < bids.size(),
                 "shard references user " << users[i] << " beyond bid set");
    const bid::Bid& b = bids[users[i]];
    PM_CHECK_MSG(!b.bundles.empty(), "engine over bid without bundles");
    bundle_begin_[i + 1] =
        bundle_begin_[i] + static_cast<std::uint32_t>(b.bundles.size());
    vector_pi_[i] = b.HasVectorLimits() ? 1 : 0;
  }
  const std::uint32_t num_bundles = bundle_begin_[num_users];

  item_begin_.assign(num_bundles + 1, 0);
  bundle_limit_.assign(num_bundles, 0.0);
  // Bundle → owning bidder, needed only while building the inverted
  // pool→bidder index below.
  std::vector<std::uint32_t> bundle_bidder(num_bundles, 0);
  std::uint32_t b = 0;
  for (std::size_t i = 0; i < num_users; ++i) {
    const bid::Bid& bid = bids[users[i]];
    for (std::size_t k = 0; k < bid.bundles.size(); ++k, ++b) {
      item_begin_[b + 1] =
          item_begin_[b] +
          static_cast<std::uint32_t>(bid.bundles[k].Size());
      bundle_limit_[b] = bid.LimitFor(k);
      bundle_bidder[b] = static_cast<std::uint32_t>(i);
    }
  }
  const std::uint32_t num_items = item_begin_[num_bundles];

  item_pool_.assign(num_items, 0);
  item_qty_.assign(num_items, 0.0);
  b = 0;
  std::uint32_t e = 0;
  for (std::size_t i = 0; i < num_users; ++i) {
    for (const bid::Bundle& bundle : bids[users[i]].bundles) {
      // Canonical bundles are sorted by pool, so the arena inherits the
      // ascending-pool item order Bundle::Dot sums in.
      for (const bid::BundleItem& item : bundle.items()) {
        PM_CHECK_MSG(item.pool < num_pools,
                     "bundle references pool " << item.pool
                                               << " beyond supply of size "
                                               << num_pools);
        item_pool_[e] = item.pool;
        item_qty_[e] = item.qty;
        ++e;
      }
      ++b;
    }
  }

  // Inverted pool→(bundle, qty) entries via counting sort: iterating
  // bundles ascending keeps each pool's entry list sorted by bundle id.
  pool_entry_begin_.assign(num_pools + 1, 0);
  for (std::uint32_t it = 0; it < num_items; ++it) {
    ++pool_entry_begin_[item_pool_[it] + 1];
  }
  for (std::size_t r = 0; r < num_pools; ++r) {
    pool_entry_begin_[r + 1] += pool_entry_begin_[r];
  }
  pool_entry_bundle_.assign(num_items, 0);
  pool_entry_qty_.assign(num_items, 0.0);
  std::vector<std::uint32_t> cursor(pool_entry_begin_.begin(),
                                    pool_entry_begin_.end() - 1);
  for (std::uint32_t bb = 0; bb < num_bundles; ++bb) {
    for (std::uint32_t it = item_begin_[bb]; it < item_begin_[bb + 1];
         ++it) {
      const std::uint32_t slot = cursor[item_pool_[it]]++;
      pool_entry_bundle_[slot] = bb;
      pool_entry_qty_[slot] = item_qty_[it];
    }
  }

  // Inverted pool→bidder index, deduplicated. Entry lists are sorted by
  // bundle id, hence bidder ids arrive non-decreasing per pool and
  // adjacent-dedup suffices.
  pool_bidder_begin_.assign(num_pools + 1, 0);
  pool_bidder_.clear();
  pool_bidder_.reserve(num_items);
  for (std::size_t r = 0; r < num_pools; ++r) {
    std::uint32_t last = kInvalidUser;
    for (std::uint32_t k = pool_entry_begin_[r]; k < pool_entry_begin_[r + 1];
         ++k) {
      const std::uint32_t u = bundle_bidder[pool_entry_bundle_[k]];
      if (u != last) {
        pool_bidder_.push_back(u);
        last = u;
      }
    }
    pool_bidder_begin_[r + 1] =
        static_cast<std::uint32_t>(pool_bidder_.size());
  }
  pool_bidder_.shrink_to_fit();
}

ProxyDecision DemandEngine::EvaluateFromCosts(
    std::uint32_t u, const double* bundle_cost) const {
  const std::uint32_t b0 = bundle_begin_[u];
  const std::uint32_t b1 = bundle_begin_[u + 1];
  int best_index = ProxyDecision::kNothing;
  double best_cost = 0.0;
  if (vector_pi_[u]) {
    // Vector-π: cheapest among the individually affordable bundles.
    for (std::uint32_t b = b0; b < b1; ++b) {
      const double cost = bundle_cost[b];
      if (cost > bundle_limit_[b] + kPriceEps) continue;
      if (best_index == ProxyDecision::kNothing ||
          cost < best_cost - kPriceEps) {
        best_index = static_cast<int>(b - b0);
        best_cost = cost;
      }
    }
    if (best_index == ProxyDecision::kNothing) return ProxyDecision{};
    return ProxyDecision{best_index, best_cost};
  }
  // Scalar π: global argmin, then one affordability test on the winner.
  for (std::uint32_t b = b0; b < b1; ++b) {
    const double cost = bundle_cost[b];
    if (best_index == ProxyDecision::kNothing ||
        cost < best_cost - kPriceEps) {
      best_index = static_cast<int>(b - b0);
      best_cost = cost;
    }
  }
  if (best_cost <= bundle_limit_[b0] + kPriceEps) {
    return ProxyDecision{best_index, best_cost};
  }
  return ProxyDecision{};
}

void DemandEngine::CollectDemand(std::span<const double> prices,
                                 ThreadPool* pool, Workspace& ws) const {
  PM_CHECK_MSG(prices.size() == supply_.size(),
               "price vector of size " << prices.size() << " for "
                                       << supply_.size() << " pools");
  if (ws.owner == nullptr) {
    // Bind: size everything once so steady-state rounds never allocate.
    const std::size_t num_users = NumBidders();
    const std::size_t num_pools = NumPools();
    ws.owner = this;
    ws.bundle_cost.assign(NumBundles(), 0.0);
    ws.decisions_.assign(num_users, ProxyDecision{});
    ws.excess_.assign(ws.want_excess_ ? num_pools : 0, 0.0);
    ws.prices.assign(num_pools, 0.0);
    ws.delta.assign(num_pools, 0.0);
    ws.touched.reserve(num_pools);
    ws.dirty.reserve(num_users);
    ws.dirty_flag.assign(num_users, 0);
    ws.old_choice.assign(num_users, ProxyDecision::kNothing);
    const std::size_t blocks =
        (num_users + kExcessBlockBidders - 1) / kExcessBlockBidders;
    ws.block_partial.assign(ws.want_excess_ ? blocks * num_pools : 0, 0.0);
  }
  PM_CHECK_MSG(ws.owner == this, "workspace bound to another engine");
  if (!ws.valid_) {
    FullCollect(prices, pool, ws);
    return;
  }
  // Delta scan: which pools moved since the cached evaluation?
  const std::size_t num_pools = NumPools();
  ws.touched.clear();
  for (std::size_t r = 0; r < num_pools; ++r) {
    const double d = prices[r] - ws.prices[r];
    if (d != 0.0) {
      ws.delta[r] = d;
      ws.touched.push_back(static_cast<std::uint32_t>(r));
    }
  }
  if (ws.touched.empty()) {
    ++ws.incremental_collections_;  // Cache already reflects these prices.
    return;
  }
  if (PrefersFullCollect(ws.touched.size(), num_pools)) {
    FullCollect(prices, pool, ws);
  } else {
    IncrementalCollect(prices, pool, ws);
  }
}

void DemandEngine::FullCollect(std::span<const double> prices,
                               ThreadPool* pool, Workspace& ws) const {
  const std::size_t num_users = NumBidders();
  const std::size_t num_pools = NumPools();
  std::copy(prices.begin(), prices.end(), ws.prices.begin());
  const double* price = prices.data();
  double* cost_out = ws.bundle_cost.data();
  ProxyDecision* decisions = ws.decisions_.data();
  const bool want_excess = ws.want_excess_;
  // One fused pass per fixed-size bidder block: evaluate, then fold the
  // chosen bundle straight into the block's excess partial while its
  // items are hot. Blocks double as the ParallelFor dispatch unit, so the
  // type-erased callback is paid once per block, not per bidder — and the
  // partial layout is thread-count independent (determinism contract).
  const std::size_t blocks =
      (num_users + kExcessBlockBidders - 1) / kExcessBlockBidders;
  // Single-block markets (≤ kExcessBlockBidders bidders, or a serial
  // run's only block) accumulate straight into the excess vector — same
  // arithmetic, one less buffer pass.
  const bool single_block = blocks <= 1;
  double* direct_excess = nullptr;
  if (want_excess) {
    if (single_block) {
      std::fill(ws.excess_.begin(), ws.excess_.end(), 0.0);
      direct_excess = ws.excess_.data();
    } else {
      ws.block_partial.assign(blocks * num_pools, 0.0);
    }
  }
  double* partials = ws.block_partial.data();
  ParallelFor(pool, 0, blocks, [&, price, cost_out, decisions, partials,
                                direct_excess](std::size_t blk) {
    double* part = want_excess
                       ? (single_block ? direct_excess
                                       : partials + blk * num_pools)
                       : nullptr;
    const std::size_t u0 = blk * kExcessBlockBidders;
    const std::size_t u1 =
        std::min(num_users, (blk + 1) * kExcessBlockBidders);
    // One kernel call per bidder block: all the block's bundle costs in a
    // cache-resident burst (≤ a few thousand doubles), then the argmin +
    // excess fold re-reads them while hot. The scalar kernel accumulates
    // in Bundle::Dot's exact ascending-pool order, so costs — and
    // therefore decisions — stay bit-identical to the BidderProxy oracle;
    // the SIMD kernels match decisions and bound cost drift (kernels.h).
    dot_block_(item_begin_.data(), item_pool_.data(), item_qty_.data(),
               price, bundle_begin_[u0], bundle_begin_[u1], cost_out);
    for (std::size_t u = u0; u < u1; ++u) {
      const ProxyDecision d =
          EvaluateFromCosts(static_cast<std::uint32_t>(u), cost_out);
      decisions[u] = d;
      if (want_excess && d.Active()) {
        const std::uint32_t b =
            bundle_begin_[u] + static_cast<std::uint32_t>(d.bundle_index);
        const std::uint32_t e1 = item_begin_[b + 1];
        for (std::uint32_t e = item_begin_[b]; e < e1; ++e) {
          part[item_pool_[e]] += item_qty_[e];
        }
      }
    }
  });
  ws.proxies_evaluated_ += static_cast<long long>(num_users);
  ++ws.full_collections_;
  ws.dot_blocks_ += static_cast<long long>(blocks);
  if (want_excess) {
    if (single_block) {
      for (std::size_t r = 0; r < num_pools; ++r) {
        ws.excess_[r] -= supply_[r];
      }
    } else {
      MergePartials(blocks, ws.block_partial, ws.excess_);
    }
  }
  ws.valid_ = true;
}

void DemandEngine::MergePartials(std::size_t blocks,
                                 const std::vector<double>& partial,
                                 std::span<double> excess) const {
  const std::size_t num_pools = NumPools();
  std::fill(excess.begin(), excess.end(), 0.0);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const double* part = partial.data() + blk * num_pools;
    for (std::size_t r = 0; r < num_pools; ++r) excess[r] += part[r];
  }
  for (std::size_t r = 0; r < num_pools; ++r) excess[r] -= supply_[r];
}

void DemandEngine::IncrementalCollect(std::span<const double> prices,
                                      ThreadPool* pool,
                                      Workspace& ws) const {
  ++ws.incremental_collections_;
  // Delta-update cached bundle costs: cost_b += Δp_r · q_{b,r} over the
  // touched pools' inverted entries, ascending pool order (every engine —
  // whole-market or shard — applies the same op sequence per bundle).
  double* cost = ws.bundle_cost.data();
  for (const std::uint32_t r : ws.touched) {
    // Oracle arithmetic shared with kernels.h — the one home of the
    // multiply-add order the drift-bound argument relies on.
    ScatterDeltaAscending(
        ws.delta[r], pool_entry_begin_[r], pool_entry_begin_[r + 1],
        [&](std::uint32_t k) { return pool_entry_bundle_[k]; },
        [&](std::uint32_t k) { return pool_entry_qty_[k]; }, cost);
  }

  // Only bidders with a bundle touching a moved pool can change their
  // argmin; collect them (deduped) and re-evaluate in ascending order.
  ws.dirty.clear();
  for (const std::uint32_t r : ws.touched) {
    const std::uint32_t k1 = pool_bidder_begin_[r + 1];
    for (std::uint32_t k = pool_bidder_begin_[r]; k < k1; ++k) {
      const std::uint32_t u = pool_bidder_[k];
      if (!ws.dirty_flag[u]) {
        ws.dirty_flag[u] = 1;
        ws.dirty.push_back(u);
      }
    }
  }
  // Per-pool bidder lists are ascending, so a single touched pool needs
  // no sort.
  if (ws.touched.size() > 1) std::sort(ws.dirty.begin(), ws.dirty.end());

  ProxyDecision* decisions = ws.decisions_.data();
  const std::uint32_t* dirty = ws.dirty.data();
  std::int32_t* old_choice = ws.old_choice.data();
  const std::size_t num_dirty = ws.dirty.size();
  constexpr std::size_t kChunk = 256;
  const std::size_t num_chunks = (num_dirty + kChunk - 1) / kChunk;
  ParallelFor(pool, 0, num_chunks, [&, decisions, dirty,
                                    old_choice](std::size_t c) {
    const std::size_t i1 = std::min(num_dirty, (c + 1) * kChunk);
    for (std::size_t i = c * kChunk; i < i1; ++i) {
      const std::uint32_t u = dirty[i];
      old_choice[i] = decisions[u].bundle_index;
      decisions[u] = EvaluateFromCosts(u, cost);
    }
  });
  ws.proxies_evaluated_ += static_cast<long long>(num_dirty);
  ws.dirty_bidders_ += static_cast<long long>(num_dirty);

  if (ws.want_excess_) {
    // Ascending bidder order, changed bidders only — the same sequence
    // UpdateExcess applies for the distributed auctioneer.
    for (std::size_t i = 0; i < ws.dirty.size(); ++i) {
      const std::uint32_t u = ws.dirty[i];
      if (old_choice[i] != decisions[u].bundle_index) {
        ApplyBundleDiff(u, old_choice[i], decisions[u].bundle_index,
                        ws.excess_);
      }
    }
  }
  for (const std::uint32_t u : ws.dirty) ws.dirty_flag[u] = 0;
  for (const std::uint32_t r : ws.touched) ws.prices[r] = prices[r];
}

void DemandEngine::BlockedExcess(std::span<const ProxyDecision> decisions,
                                 ThreadPool* pool, std::span<double> excess,
                                 std::vector<double>& partial) const {
  const std::size_t num_users = NumBidders();
  const std::size_t num_pools = NumPools();
  const std::size_t blocks =
      (num_users + kExcessBlockBidders - 1) / kExcessBlockBidders;
  partial.assign(blocks * num_pools, 0.0);
  double* partials = partial.data();
  ParallelFor(pool, 0, blocks, [&, partials](std::size_t blk) {
    double* part = partials + blk * num_pools;
    const std::size_t u1 =
        std::min(num_users, (blk + 1) * kExcessBlockBidders);
    for (std::size_t u = blk * kExcessBlockBidders; u < u1; ++u) {
      const ProxyDecision& d = decisions[u];
      if (!d.Active()) continue;
      const std::uint32_t b =
          bundle_begin_[u] + static_cast<std::uint32_t>(d.bundle_index);
      const std::uint32_t e1 = item_begin_[b + 1];
      for (std::uint32_t e = item_begin_[b]; e < e1; ++e) {
        part[item_pool_[e]] += item_qty_[e];
      }
    }
  });
  // Merge in block order: the result is independent of the thread count,
  // and with a single block it is exactly the user-order serial sum.
  MergePartials(blocks, partial, excess);
}

void DemandEngine::ExcessFromDecisions(
    std::span<const ProxyDecision> decisions, ThreadPool* pool,
    std::span<double> excess) const {
  PM_CHECK_MSG(decisions.size() == NumBidders(),
               "decision vector of size " << decisions.size() << " for "
                                          << NumBidders() << " bidders");
  PM_CHECK(excess.size() == NumPools());
  std::vector<double> partial;
  BlockedExcess(decisions, pool, excess, partial);
}

void DemandEngine::UpdateExcess(std::span<const ProxyDecision> old_decisions,
                                std::span<const ProxyDecision> new_decisions,
                                std::span<double> excess) const {
  PM_CHECK(old_decisions.size() == NumBidders());
  PM_CHECK(new_decisions.size() == NumBidders());
  PM_CHECK(excess.size() == NumPools());
  for (std::size_t u = 0; u < new_decisions.size(); ++u) {
    if (old_decisions[u].bundle_index != new_decisions[u].bundle_index) {
      ApplyBundleDiff(static_cast<std::uint32_t>(u),
                      old_decisions[u].bundle_index,
                      new_decisions[u].bundle_index, excess);
    }
  }
}

void DemandEngine::ApplyBundleDiff(std::uint32_t u, std::int32_t from,
                                   std::int32_t to,
                                   std::span<double> excess) const {
  if (from != ProxyDecision::kNothing) {
    const std::uint32_t b = bundle_begin_[u] + static_cast<std::uint32_t>(from);
    const std::uint32_t e1 = item_begin_[b + 1];
    for (std::uint32_t e = item_begin_[b]; e < e1; ++e) {
      excess[item_pool_[e]] -= item_qty_[e];
    }
  }
  if (to != ProxyDecision::kNothing) {
    const std::uint32_t b = bundle_begin_[u] + static_cast<std::uint32_t>(to);
    const std::uint32_t e1 = item_begin_[b + 1];
    for (std::uint32_t e = item_begin_[b]; e < e1; ++e) {
      excess[item_pool_[e]] += item_qty_[e];
    }
  }
}

}  // namespace pm::auction
