#include "auction/increment_policy.h"

#include <algorithm>

#include "common/check.h"

namespace pm::auction {
namespace {

class AdditivePolicy final : public IncrementPolicy {
 public:
  explicit AdditivePolicy(double alpha) : alpha_(alpha) {
    PM_CHECK_MSG(alpha > 0.0, "alpha must be positive");
  }

  void ComputeStep(std::span<const double> excess,
                   std::span<const double> /*prices*/,
                   std::span<double> step) const override {
    for (std::size_t r = 0; r < excess.size(); ++r) {
      step[r] = excess[r] > 0.0 ? alpha_ * excess[r] : 0.0;
    }
  }

  std::string_view Name() const override { return "additive"; }

 private:
  double alpha_;
};

class CappedPolicy final : public IncrementPolicy {
 public:
  CappedPolicy(double alpha, double delta) : alpha_(alpha), delta_(delta) {
    PM_CHECK_MSG(alpha > 0.0 && delta > 0.0,
                 "alpha and delta must be positive");
  }

  void ComputeStep(std::span<const double> excess,
                   std::span<const double> /*prices*/,
                   std::span<double> step) const override {
    for (std::size_t r = 0; r < excess.size(); ++r) {
      step[r] =
          excess[r] > 0.0 ? std::min(alpha_ * excess[r], delta_) : 0.0;
    }
  }

  std::string_view Name() const override { return "capped"; }

 private:
  double alpha_;
  double delta_;
};

class RelativeCappedPolicy final : public IncrementPolicy {
 public:
  RelativeCappedPolicy(double alpha, double delta, double floor)
      : alpha_(alpha), delta_(delta), floor_(floor) {
    PM_CHECK_MSG(alpha > 0.0 && delta > 0.0 && floor > 0.0,
                 "alpha, delta and floor must be positive");
  }

  void ComputeStep(std::span<const double> excess,
                   std::span<const double> prices,
                   std::span<double> step) const override {
    for (std::size_t r = 0; r < excess.size(); ++r) {
      if (excess[r] <= 0.0) {
        step[r] = 0.0;
        continue;
      }
      const double cap = std::max(delta_ * prices[r], floor_);
      step[r] = std::min(alpha_ * excess[r], cap);
    }
  }

  std::string_view Name() const override { return "relative-capped"; }

 private:
  double alpha_;
  double delta_;
  double floor_;
};

class CostNormalizedPolicy final : public IncrementPolicy {
 public:
  CostNormalizedPolicy(double alpha, double delta,
                       std::vector<double> base_costs)
      : alpha_(alpha), delta_(delta), weights_(std::move(base_costs)) {
    PM_CHECK_MSG(alpha > 0.0 && delta > 0.0,
                 "alpha and delta must be positive");
    PM_CHECK_MSG(!weights_.empty(), "base costs must be provided");
    double mean = 0.0;
    for (double c : weights_) {
      PM_CHECK_MSG(c > 0.0, "base costs must be positive");
      mean += c;
    }
    mean /= static_cast<double>(weights_.size());
    for (double& c : weights_) c /= mean;
  }

  void ComputeStep(std::span<const double> excess,
                   std::span<const double> /*prices*/,
                   std::span<double> step) const override {
    PM_CHECK_MSG(excess.size() == weights_.size(),
                 "cost-normalized policy built for " << weights_.size()
                                                     << " pools, called with "
                                                     << excess.size());
    for (std::size_t r = 0; r < excess.size(); ++r) {
      step[r] = excess[r] > 0.0
                    ? weights_[r] * std::min(alpha_ * excess[r], delta_)
                    : 0.0;
    }
  }

  std::string_view Name() const override { return "cost-normalized"; }

 private:
  double alpha_;
  double delta_;
  std::vector<double> weights_;  // c_r / mean(c).
};

class MultiplicativePolicy final : public IncrementPolicy {
 public:
  MultiplicativePolicy(double alpha, double delta, double floor)
      : alpha_(alpha), delta_(delta), floor_(floor) {
    PM_CHECK_MSG(alpha > 0.0 && delta > 0.0 && floor > 0.0,
                 "alpha, delta and floor must be positive");
  }

  void ComputeStep(std::span<const double> excess,
                   std::span<const double> prices,
                   std::span<double> step) const override {
    for (std::size_t r = 0; r < excess.size(); ++r) {
      if (excess[r] <= 0.0) {
        step[r] = 0.0;
        continue;
      }
      const double base = std::max(prices[r], floor_);
      step[r] = base * std::min(alpha_ * excess[r], delta_);
    }
  }

  std::string_view Name() const override { return "multiplicative"; }

 private:
  double alpha_;
  double delta_;
  double floor_;
};

}  // namespace

std::unique_ptr<IncrementPolicy> MakeAdditivePolicy(double alpha) {
  return std::make_unique<AdditivePolicy>(alpha);
}

std::unique_ptr<IncrementPolicy> MakeCappedPolicy(double alpha,
                                                  double delta) {
  return std::make_unique<CappedPolicy>(alpha, delta);
}

std::unique_ptr<IncrementPolicy> MakeRelativeCappedPolicy(double alpha,
                                                          double delta,
                                                          double floor) {
  return std::make_unique<RelativeCappedPolicy>(alpha, delta, floor);
}

std::unique_ptr<IncrementPolicy> MakeCostNormalizedPolicy(
    double alpha, double delta, std::vector<double> base_costs) {
  return std::make_unique<CostNormalizedPolicy>(alpha, delta,
                                                std::move(base_costs));
}

std::unique_ptr<IncrementPolicy> MakeMultiplicativePolicy(double alpha,
                                                          double delta,
                                                          double floor) {
  return std::make_unique<MultiplicativePolicy>(alpha, delta, floor);
}

}  // namespace pm::auction
