// planetmarket: price-increment policies g(x, p).
//
// §III.C.2 discusses the update-increment function: the naive choice
// g = α·z⁺ "often causes the prices to move too quickly in the early
// rounds and then too slowly in the later ones"; Eq. (3) caps it as
// g = min(α·z⁺, δ·e); and a further refinement normalizes increments "for
// differences in the base resource prices" so cheap resources (disk) do
// not end up out of proportion. All three are implemented, plus a
// multiplicative variant, so the convergence ablation can compare them.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pm::auction {

/// Strategy interface mapping (excess demand, prices) to a non-negative
/// additive price step. `excess` is the *normalized* excess demand the
/// auction provides (see ClockAuctionConfig::normalize_excess).
class IncrementPolicy {
 public:
  virtual ~IncrementPolicy() = default;

  /// Writes the step for each pool into `step` (same size as prices).
  /// Must be non-negative, and zero wherever excess <= 0.
  virtual void ComputeStep(std::span<const double> excess,
                           std::span<const double> prices,
                           std::span<double> step) const = 0;

  /// Display name for reports.
  virtual std::string_view Name() const = 0;
};

/// g = α·z⁺ — the simplest choice.
std::unique_ptr<IncrementPolicy> MakeAdditivePolicy(double alpha);

/// Eq. (3): g = min(α·z⁺, δ·e), component-wise, with e the all-ones
/// vector. δ is an absolute cap per round.
std::unique_ptr<IncrementPolicy> MakeCappedPolicy(double alpha,
                                                  double delta);

/// Prose variant of Eq. (3): "no price changes by more than some fixed
/// fraction" — g = min(α·z⁺, δ·p), a cap relative to the current price.
/// A floor on the cap keeps zero-reserve pools able to move.
std::unique_ptr<IncrementPolicy> MakeRelativeCappedPolicy(double alpha,
                                                          double delta,
                                                          double floor);

/// Cost-normalized: g_r = c̃_r · min(α·z⁺_r, δ), where c̃_r = c_r / mean(c)
/// scales the step by the pool's base cost so cheap resources rise in
/// proportion (§III.C.2's normalization adjustment).
std::unique_ptr<IncrementPolicy> MakeCostNormalizedPolicy(
    double alpha, double delta, std::vector<double> base_costs);

/// Multiplicative: g = p · min(α·z⁺, δ) (geometric clock). Requires
/// strictly positive starting prices to move at all; the factory takes a
/// floor used when p_r == 0.
std::unique_ptr<IncrementPolicy> MakeMultiplicativePolicy(double alpha,
                                                          double delta,
                                                          double floor);

}  // namespace pm::auction
