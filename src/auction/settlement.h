// planetmarket: settlement of a finished clock auction.
//
// Translates the final prices and proxy decisions into awards and
// payments: winners take the cheapest bundle of their indifference set and
// pay/receive x_u·p at the uniform linear prices (§III.A design goal 1-2).
// The operator is the counterparty for the net position of every pool —
// it sells consumed supply and absorbs any user-sold surplus.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "auction/clock_auction.h"

namespace pm::auction {

/// One pool-level fill intent of an award: the net quantity the awarded
/// bundle trades on one pool (> 0 buys, < 0 sells). The settlement layer
/// downstream turns buy intents into physical placements and reports per
/// intent how much actually landed (§V.B: a won bid is only worth its
/// quota if the bin-packer can place it).
struct FillIntent {
  PoolId pool = 0;
  double qty = 0.0;
};

/// One winner's award.
struct Award {
  UserId user = kInvalidUser;

  /// Index of the awarded bundle within the user's bid.
  int bundle_index = 0;

  /// x_u·p — positive: user pays; negative: user receives |payment|.
  double payment = 0.0;

  /// The bid premium γ_u = |π_u − x_u·p| / |x_u·p| of §V.C Eq. (5);
  /// NaN when the payment is zero.
  double premium = 0.0;

  /// Net per-pool quantities of the awarded bundle, aggregated over
  /// duplicate items, in first-appearance order (deterministic).
  std::vector<FillIntent> intents;
};

/// The settled outcome of one auction.
struct Settlement {
  /// Awards for winning users, in user order.
  std::vector<Award> awards;

  /// Users whose proxies dropped out (π too low at the final prices).
  std::vector<UserId> losers;

  /// Net operator cash flow: Σ payments. Positive: the operator is paid.
  double operator_revenue = 0.0;

  /// Per pool: units of operator supply consumed (≥ 0, ≤ supply).
  std::vector<double> supply_sold;

  /// Per pool: user-offered units beyond user demand, absorbed by the
  /// operator (≥ 0).
  std::vector<double> surplus_absorbed;

  /// Fraction of bids that settled (|awards| / |bids|) — the "% settled"
  /// column of Table I.
  double settled_fraction = 0.0;
};

/// Computes the settlement from an auction and its result. The result must
/// come from the same auction instance.
Settlement Settle(const ClockAuction& auction,
                  const ClockAuctionResult& result);

/// Premium statistics over an auction's winners (Table I): median and mean
/// of γ_u. Returns false when there are no winners with nonzero payment.
struct PremiumStats {
  double median = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};
PremiumStats ComputePremiumStats(const Settlement& settlement);

}  // namespace pm::auction
