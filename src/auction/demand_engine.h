// planetmarket: the arena-compiled demand engine.
//
// The clock auction's inner loop — evaluate G_u(p) for every user, sum the
// chosen bundles into excess demand — is the hot path of the whole system
// (§III.C.4 predicts "at least one order of magnitude" from lower-level
// code). BidderProxy::Evaluate answers one query by chasing per-bundle
// std::vector<BundleItem> heap allocations; at planet scale that is a
// pointer-chase per bundle and an out-of-line Dot call per candidate.
//
// DemandEngine compiles a bid set ONCE into a contiguous CSR-style arena in
// structure-of-arrays layout:
//
//   bundle_begin_[u]   .. bundle_begin_[u+1]    bundles of bidder u
//   item_begin_[b]     .. item_begin_[b+1]      (pool, qty) items of bundle b
//   item_pool_[], item_qty_[]                   flat item component arrays
//   bundle_limit_[b]                            π_u (or vector-π entry π_k)
//
// and serves every demand query from it with cache-linear sweeps. On top of
// the arena sit two inverted indexes:
//
//   pool_bidder_begin_[r] .. [r+1]  → bidders with any bundle touching pool r
//   pool_entry_begin_[r]  .. [r+1]  → (bundle, qty) entries containing pool r
//
// which enable *incremental* re-evaluation: when a price update moves only
// pools P (a clock round, or a bisection probe that moves exactly the
// stepped pools), cached per-bundle dot products are updated by delta
// (cost_b += Δp_r · q_{b,r} over touched entries) and only bidders touching
// P re-run their argmin. Probe cost drops from O(Σ_u |Q_u|) to O(touched).
//
// Determinism contract (the auction tests assert serial == parallel ==
// distributed bit-for-bit):
//   - Bundle costs are accumulated item-by-item in ascending pool order,
//     exactly like bid::Bundle::Dot, so full-evaluation decisions and costs
//     are bit-identical to the BidderProxy oracle.
//   - Full-evaluation excess is accumulated per fixed-size bidder block
//     (kExcessBlockBidders, independent of thread count) and the block
//     partials are merged in block order, so the result does not depend on
//     the thread pool. With fewer than one block of bidders this is exactly
//     the user-order serial sum, i.e. bit-identical to the oracle.
//   - Incremental updates apply decision diffs in ascending bidder order
//     (UpdateExcess mirrors this for the distributed auctioneer), and delta
//     cost updates walk touched pools in ascending pool order, so a sharded
//     engine (pm::net proxy nodes) reproduces the whole-market engine's
//     cached costs bit-for-bit.
//
// Incrementally-updated costs and excess can drift from a fresh evaluation
// by floating-point rounding (re-associated sums), bounded far below
// kPriceEps; decisions are compared with kPriceEps tolerance, so auction
// outcomes are unaffected (asserted by the randomized equivalence tests).
//
// The full-sweep dot product dispatches through a kernel (kernels.h):
// the default scalar kernel IS the oracle arithmetic above; the unrolled
// and SIMD kernels trade bit-exact costs for throughput under the relaxed
// equivalence tier (identical decisions, costs within
// PairwiseErrorBound, per-kernel bit-determinism across reruns, thread
// counts and shards — tests/kernels_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "auction/kernels.h"
#include "auction/proxy.h"
#include "bid/bid.h"
#include "common/check.h"
#include "common/thread_pool.h"

namespace pm::auction {

/// Compiled demand oracle for a fixed bid set. Immutable after
/// construction; all mutable query state lives in a Workspace, so one
/// engine can serve concurrent query streams.
class DemandEngine {
 public:
  /// Fixed bidder-block size for deterministic parallel excess
  /// accumulation (see the determinism contract above).
  static constexpr std::size_t kExcessBlockBidders = 512;

  /// Hybrid policy: when a price move touches more than half the pools, a
  /// full arena sweep is cheaper than the incremental machinery (delta
  /// walk, dirty dedup, diff bookkeeping) and refreshes cached costs from
  /// scratch. The rule depends only on the touched-pool count, which is
  /// identical for the whole-market engine, every shard engine, and the
  /// distributed auctioneer — so all of them take the same branch and stay
  /// bit-for-bit in lockstep.
  static bool PrefersFullCollect(std::size_t touched_pools,
                                 std::size_t num_pools) {
    return touched_pools * 2 > num_pools;
  }

  /// Reusable per-query-stream state. Steady-state rounds perform zero
  /// allocations: every vector here is sized once on first use and reused.
  /// A workspace is bound to the engine that first uses it.
  class Workspace {
   public:
    Workspace() = default;

    /// Forgets cached state: the next CollectDemand is a full evaluation.
    void Reset() { valid_ = false; }

    /// True when decisions/excess reflect the last queried prices.
    bool valid() const { return valid_; }

    /// Decision per bidder (shard slot for sharded engines).
    const std::vector<ProxyDecision>& decisions() const {
      return decisions_;
    }

    /// Raw excess demand z = Σ_u x_u − s (empty when want_excess off).
    const std::vector<double>& excess() const { return excess_; }

    /// Skip excess accumulation entirely (distributed proxy nodes only
    /// report decisions; the auctioneer owns the excess). Must be set
    /// before the workspace's first CollectDemand — buffers are sized at
    /// bind time.
    void set_want_excess(bool want) {
      PM_CHECK_MSG(owner == nullptr,
                   "set_want_excess after the workspace is bound");
      want_excess_ = want;
    }

    /// Cumulative argmin evaluations served, full + incremental. The gap
    /// versus bidders × queries is the incremental win.
    long long proxies_evaluated() const { return proxies_evaluated_; }
    long long full_collections() const { return full_collections_; }
    long long incremental_collections() const {
      return incremental_collections_;
    }

    /// Logical work units for the profiler's deterministic channel:
    /// kernel dot-block calls issued by full sweeps (one per
    /// kExcessBlockBidders block — counted outside the parallel region,
    /// so thread-count independent) and bidders re-evaluated by
    /// incremental collections.
    long long dot_blocks() const { return dot_blocks_; }
    long long dirty_bidders() const { return dirty_bidders_; }

   private:
    friend class DemandEngine;

    const DemandEngine* owner = nullptr;
    std::vector<double> bundle_cost;     // Cached q_b·p per bundle.
    std::vector<ProxyDecision> decisions_;
    std::vector<double> excess_;
    std::vector<double> prices;          // Prices the cache reflects.
    std::vector<double> delta;           // Per-pool Δp scratch.
    std::vector<std::uint32_t> touched;  // Pools with Δp ≠ 0, ascending.
    std::vector<std::uint32_t> dirty;    // Bidders to re-evaluate.
    std::vector<std::uint8_t> dirty_flag;
    std::vector<std::int32_t> old_choice;  // Pre-update bundle index.
    std::vector<double> block_partial;   // blocks × R excess partials.
    bool valid_ = false;
    bool want_excess_ = true;
    long long proxies_evaluated_ = 0;
    long long full_collections_ = 0;
    long long incremental_collections_ = 0;
    long long dot_blocks_ = 0;
    long long dirty_bidders_ = 0;
  };

  /// Compiles the whole bid set. `supply` is the dense per-pool operator
  /// supply (excess = demand − supply); bids must already be validated.
  /// `config` picks the dot kernel (kernels.h); the default scalar kernel
  /// reproduces the historical engine byte for byte.
  DemandEngine(std::span<const bid::Bid> bids, std::vector<double> supply,
               DemandEngineConfig config = {});

  /// Compiles the shard bids[users[i]]; workspace decisions are indexed by
  /// shard slot i (the caller maps slots back to user ids). Used by the
  /// distributed proxy nodes.
  DemandEngine(std::span<const bid::Bid> bids,
               std::span<const std::uint32_t> users,
               std::vector<double> supply, DemandEngineConfig config = {});

  /// The concrete kernel this engine dispatches (kAuto already resolved).
  Kernel kernel() const { return kernel_; }

  /// Evaluates all demands at `prices` into `ws`. When the workspace holds
  /// a valid cache this is incremental: only bidders touching a moved pool
  /// are re-evaluated and excess is updated by decision diffs; otherwise a
  /// full arena sweep runs (fanned out over `pool` when provided). Either
  /// way the workspace afterwards holds decisions and (unless disabled)
  /// excess for exactly `prices`.
  void CollectDemand(std::span<const double> prices, ThreadPool* pool,
                     Workspace& ws) const;

  /// Deterministic blocked excess from an externally produced full
  /// decision vector (the distributed auctioneer aggregating proxy
  /// replies). Writes z = Σ chosen − supply into `excess` (size R).
  void ExcessFromDecisions(std::span<const ProxyDecision> decisions,
                           ThreadPool* pool,
                           std::span<double> excess) const;

  /// Incremental counterpart: applies the old→new decision diff to
  /// `excess` in ascending bidder order, touching only changed bidders.
  /// Matches the arithmetic of the engine's own incremental path exactly.
  void UpdateExcess(std::span<const ProxyDecision> old_decisions,
                    std::span<const ProxyDecision> new_decisions,
                    std::span<double> excess) const;

  std::size_t NumBidders() const { return bundle_begin_.size() - 1; }
  std::size_t NumPools() const { return supply_.size(); }
  std::size_t NumBundles() const { return item_begin_.size() - 1; }
  std::size_t NumItems() const { return item_pool_.size(); }
  const std::vector<double>& supply() const { return supply_; }

 private:
  void Compile(std::span<const bid::Bid> bids,
               std::span<const std::uint32_t> users);

  /// argmin over bidder u's bundles from cached costs; bit-identical
  /// comparisons to BidderProxy::Evaluate (lowest index wins ties within
  /// kPriceEps).
  ProxyDecision EvaluateFromCosts(std::uint32_t u,
                                  const double* bundle_cost) const;

  void FullCollect(std::span<const double> prices, ThreadPool* pool,
                   Workspace& ws) const;
  void IncrementalCollect(std::span<const double> prices, ThreadPool* pool,
                          Workspace& ws) const;

  /// Fixed-block deterministic excess accumulation (see the determinism
  /// contract above); `partial` is caller-provided scratch.
  void BlockedExcess(std::span<const ProxyDecision> decisions,
                     ThreadPool* pool, std::span<double> excess,
                     std::vector<double>& partial) const;

  /// Merges block partials in block order and subtracts supply.
  void MergePartials(std::size_t blocks, const std::vector<double>& partial,
                     std::span<double> excess) const;

  /// excess −= bidder u's bundle `from`; excess += bundle `to` (local
  /// indexes; kNothing allowed on either side).
  void ApplyBundleDiff(std::uint32_t u, std::int32_t from, std::int32_t to,
                       std::span<double> excess) const;

  std::vector<double> supply_;

  /// Resolved kernel choice and its block dot function (kernels.h). The
  /// scalar kernel is the bit-exact oracle; the vectorized kernels match
  /// decisions exactly and costs within PairwiseErrorBound.
  Kernel kernel_ = Kernel::kScalar;
  DotBlockFn dot_block_ = nullptr;

  // CSR arena (structure-of-arrays). The item component arrays are
  // 32-byte aligned so the vectorized kernels' loads start on register
  // boundaries (kernels.h).
  std::vector<std::uint32_t> bundle_begin_;  // size U+1.
  AlignedVector<std::uint32_t> item_begin_;  // size B+1.
  AlignedVector<PoolId> item_pool_;          // size NNZ, ascending per b.
  AlignedVector<double> item_qty_;           // size NNZ.
  std::vector<double> bundle_limit_;         // size B.
  std::vector<std::uint8_t> vector_pi_;      // size U.

  // Inverted indexes.
  std::vector<std::uint32_t> pool_bidder_begin_;  // size R+1.
  std::vector<std::uint32_t> pool_bidder_;        // deduped, ascending.
  std::vector<std::uint32_t> pool_entry_begin_;   // size R+1.
  std::vector<std::uint32_t> pool_entry_bundle_;  // ascending per pool.
  std::vector<double> pool_entry_qty_;
};

}  // namespace pm::auction
