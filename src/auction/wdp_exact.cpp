#include "auction/wdp_exact.h"

#include <algorithm>

#include "common/check.h"

namespace pm::auction {
namespace {

class Solver {
 public:
  Solver(const std::vector<bid::Bid>& bids,
         const std::vector<double>& supply, long long node_budget)
      : bids_(bids), supply_(supply), budget_(node_budget) {
    // Sum of best-case limits from user u onward: the optimistic bound.
    // Under the vector-π extension a user's best case is their largest
    // per-bundle limit.
    suffix_bound_.assign(bids_.size() + 1, 0.0);
    for (std::size_t u = bids_.size(); u-- > 0;) {
      double best = 0.0;
      for (std::size_t b = 0; b < bids_[u].bundles.size(); ++b) {
        best = std::max(best, bids_[u].LimitFor(b));
      }
      suffix_bound_[u] = suffix_bound_[u + 1] + best;
    }
    // Per-pool "relief" still available from users v >= u: the most
    // negative (selling) contribution each can make. Feasibility is a
    // property of the *final* winner set (Σ q ≤ s), so a partial sum may
    // exceed supply as long as enough future sellers could still rescue
    // it — pruning must account for that or seller-enabled allocations
    // are never explored.
    suffix_relief_.assign(bids_.size() + 1,
                          std::vector<double>(supply_.size(), 0.0));
    for (std::size_t u = bids_.size(); u-- > 0;) {
      suffix_relief_[u] = suffix_relief_[u + 1];
      for (std::size_t r = 0; r < supply_.size(); ++r) {
        double best_sell = 0.0;  // "Nothing" contributes 0.
        for (const bid::Bundle& bundle : bids_[u].bundles) {
          best_sell = std::min(
              best_sell, bundle.QuantityOf(static_cast<PoolId>(r)));
        }
        suffix_relief_[u][r] += best_sell;
      }
    }
    used_.assign(supply_.size(), 0.0);
    current_.assign(bids_.size(), -1);
    result_.chosen.assign(bids_.size(), -1);
    result_.total_surplus = 0.0;
  }

  WdpResult Run() {
    if (Viable(0)) Recurse(0, 0.0);
    result_.nodes_expanded = nodes_;
    return result_;
  }

 private:
  /// Can the current partial assignment still become feasible given the
  /// best-case selling from users >= next_u? At next_u == bids_.size()
  /// the relief is zero, so this is the exact Σ q ≤ s test.
  bool Viable(std::size_t next_u) const {
    for (std::size_t r = 0; r < supply_.size(); ++r) {
      if (used_[r] + suffix_relief_[next_u][r] > supply_[r] + 1e-9) {
        return false;
      }
    }
    return true;
  }

  void Apply(const bid::Bundle& bundle, double sign) {
    for (const bid::BundleItem& item : bundle.items()) {
      used_[item.pool] += sign * item.qty;
    }
  }

  void Recurse(std::size_t u, double surplus) {
    if (nodes_ >= budget_) return;
    ++nodes_;
    if (surplus + suffix_bound_[u] <= result_.total_surplus + 1e-12) {
      return;  // Even taking every remaining positive π cannot win.
    }
    if (u == bids_.size()) {
      // Viable(size) held on entry, so this assignment is feasible.
      if (surplus > result_.total_surplus) {
        result_.total_surplus = surplus;
        result_.chosen = current_;
      }
      return;
    }
    // Branch: each bundle of user u, then "nothing". Trying bundles first
    // finds good incumbents early, which powers the bound.
    for (std::size_t b = 0; b < bids_[u].bundles.size(); ++b) {
      const bid::Bundle& bundle = bids_[u].bundles[b];
      Apply(bundle, +1.0);
      if (Viable(u + 1)) {
        current_[u] = static_cast<int>(b);
        Recurse(u + 1, surplus + bids_[u].LimitFor(b));
        current_[u] = -1;
      }
      Apply(bundle, -1.0);
    }
    if (Viable(u + 1)) Recurse(u + 1, surplus);
  }

  const std::vector<bid::Bid>& bids_;
  const std::vector<double>& supply_;
  long long budget_;
  long long nodes_ = 0;
  std::vector<double> suffix_bound_;
  std::vector<std::vector<double>> suffix_relief_;
  std::vector<double> used_;
  std::vector<int> current_;
  WdpResult result_;
};

}  // namespace

WdpResult SolveWdpExact(const std::vector<bid::Bid>& bids,
                        const std::vector<double>& supply,
                        long long node_budget) {
  PM_CHECK_MSG(node_budget > 0, "node budget must be positive");
  const std::string problem = bid::ValidateBids(bids, supply.size());
  PM_CHECK_MSG(problem.empty(), "invalid bid set: " << problem);
  return Solver(bids, supply, node_budget).Run();
}

double DeclaredSurplus(const std::vector<bid::Bid>& bids,
                       const std::vector<int>& chosen) {
  PM_CHECK(bids.size() == chosen.size());
  double total = 0.0;
  for (std::size_t u = 0; u < bids.size(); ++u) {
    if (chosen[u] >= 0) {
      total += bids[u].LimitFor(static_cast<std::size_t>(chosen[u]));
    }
  }
  return total;
}

}  // namespace pm::auction
