// planetmarket: recurring simulation processes.
//
// PeriodicProcess models "run an auction every week" / "sample utilization
// every hour": a fixed-interval callback that can stop itself or be
// stopped externally. PoissonProcess models stochastic arrival streams
// (job arrivals in the fleet model).
#pragma once

#include <functional>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace pm::sim {

/// Invokes a callback at t0, t0+period, t0+2·period, … until Stop() or the
/// callback returns false. The callback receives its tick index (0-based).
class PeriodicProcess {
 public:
  /// Registers the process on `queue` (must outlive the process).
  /// `first_at` is absolute; `period` must be positive.
  PeriodicProcess(EventQueue& queue, SimTime first_at, SimTime period,
                  std::function<bool(int)> on_tick);

  ~PeriodicProcess() { Stop(); }

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Cancels the next pending tick; the process never fires again.
  void Stop();

  /// Ticks dispatched so far.
  int TickCount() const { return ticks_; }

  bool Running() const { return running_; }

 private:
  void Arm(SimTime when);

  EventQueue& queue_;
  SimTime period_;
  std::function<bool(int)> on_tick_;
  EventId pending_ = 0;
  int ticks_ = 0;
  bool running_ = true;
};

/// Schedules callback invocations with Exponential(rate) gaps: a Poisson
/// arrival process. Stops on Stop() or when the callback returns false.
class PoissonProcess {
 public:
  /// `rate` is arrivals per unit time (> 0). The first arrival is drawn
  /// relative to queue.Now().
  PoissonProcess(EventQueue& queue, double rate, RandomStream& rng,
                 std::function<bool()> on_arrival);

  ~PoissonProcess() { Stop(); }

  PoissonProcess(const PoissonProcess&) = delete;
  PoissonProcess& operator=(const PoissonProcess&) = delete;

  void Stop();

  int ArrivalCount() const { return arrivals_; }

 private:
  void Arm();

  EventQueue& queue_;
  double rate_;
  RandomStream& rng_;
  std::function<bool()> on_arrival_;
  EventId pending_ = 0;
  int arrivals_ = 0;
  bool running_ = true;
};

}  // namespace pm::sim
