// planetmarket: discrete-event simulation core.
//
// The longitudinal experiments (§V.B: six auctions over several months)
// are driven by a classic event-calendar simulation: job arrivals and
// departures mutate the fleet, a periodic auction event runs the market.
// Events at equal timestamps run in scheduling order (stable), which keeps
// multi-event ticks deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pm::sim {

/// Simulated time. The unit is chosen by the model (the market simulation
/// uses hours).
using SimTime = double;

/// Opaque handle to a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

/// A time-ordered event calendar with stable same-time ordering.
class EventQueue {
 public:
  EventQueue() = default;

  /// Current simulated time (the timestamp of the last dispatched event,
  /// initially 0).
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (must be >= Now()). Returns an
  /// id usable with Cancel.
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  /// Schedules `fn` `delay` time units from Now() (delay >= 0).
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Absolute-epoch scheduling: schedules `fn` at time `epoch` on the
  /// convention that epoch e's events fire before epoch e's auctions
  /// (drive the calendar with RunUntil(e) at the top of each epoch). The
  /// epoch is an exact integer timestamp, so same-epoch events keep their
  /// FIFO scheduling order and never race continuous-time events
  /// scheduled strictly inside the preceding epoch.
  EventId ScheduleAtEpoch(std::int64_t epoch, std::function<void()> fn);

  /// Cancels a pending event. Returns false if the event already ran, was
  /// cancelled before, or never existed.
  bool Cancel(EventId id);

  /// Runs events until the calendar is empty. Returns events dispatched.
  std::size_t RunAll();

  /// Runs events with timestamp <= `until`, then sets Now() to `until`
  /// (if `until` is beyond the last dispatched event). Returns events
  /// dispatched.
  std::size_t RunUntil(SimTime until);

  /// Dispatches exactly one event if any is pending. Returns true if an
  /// event ran.
  bool Step();

  /// Number of pending (non-cancelled) events.
  std::size_t PendingCount() const { return pending_; }

  bool Empty() const { return pending_ == 0; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;  // Tie-break: FIFO among equal timestamps.
    EventId id;
    std::function<void()> fn;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool IsCancelled(EventId id) const;

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<EventId> cancelled_;  // Small; linear scan is fine.
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t pending_ = 0;
};

}  // namespace pm::sim
