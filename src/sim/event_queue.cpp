#include "sim/event_queue.h"

#include <algorithm>

#include "common/check.h"

namespace pm::sim {

EventId EventQueue::ScheduleAt(SimTime when, std::function<void()> fn) {
  PM_CHECK_MSG(when >= now_, "cannot schedule in the past: " << when
                                                             << " < "
                                                             << now_);
  PM_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id, std::move(fn)});
  ++pending_;
  return id;
}

EventId EventQueue::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  PM_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId EventQueue::ScheduleAtEpoch(std::int64_t epoch,
                                    std::function<void()> fn) {
  return ScheduleAt(static_cast<SimTime>(epoch), std::move(fn));
}

bool EventQueue::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (IsCancelled(id)) return false;
  // We cannot remove from the heap directly; mark and skip on pop. The
  // caller only gets `true` if the event is still pending.
  // Determine pending-ness by scanning is avoided: we optimistically mark
  // and decrement, but only if the event has not run. Events that already
  // ran have been popped, so marking them would desynchronise pending_.
  // We track ran events implicitly: ids pop in arbitrary order, so keep a
  // conservative check — an id is "pending" iff it is not cancelled and
  // the heap still holds it. The heap scan is O(n) but Cancel is rare.
  // (std::priority_queue hides its container; use the documented trick.)
  struct Opener : std::priority_queue<Entry, std::vector<Entry>, Later> {
    static const std::vector<Entry>& container(
        const std::priority_queue<Entry, std::vector<Entry>, Later>& q) {
      return q.*&Opener::c;
    }
  };
  const auto& entries = Opener::container(heap_);
  const bool still_pending =
      std::any_of(entries.begin(), entries.end(),
                  [id](const Entry& e) { return e.id == id; });
  if (!still_pending) return false;
  cancelled_.push_back(id);
  --pending_;
  return true;
}

bool EventQueue::IsCancelled(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

bool EventQueue::Step() {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    if (IsCancelled(top.id)) {
      cancelled_.erase(
          std::remove(cancelled_.begin(), cancelled_.end(), top.id),
          cancelled_.end());
      continue;
    }
    now_ = top.when;
    --pending_;
    top.fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::RunAll() {
  std::size_t dispatched = 0;
  while (Step()) ++dispatched;
  return dispatched;
}

std::size_t EventQueue::RunUntil(SimTime until) {
  PM_CHECK_MSG(until >= now_, "RunUntil into the past: " << until);
  std::size_t dispatched = 0;
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (IsCancelled(top.id)) {
      const EventId id = top.id;
      heap_.pop();
      cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), id),
                       cancelled_.end());
      continue;
    }
    if (top.when > until) break;
    Step();
    ++dispatched;
  }
  now_ = std::max(now_, until);
  return dispatched;
}

}  // namespace pm::sim
