#include "sim/process.h"

#include "common/check.h"

namespace pm::sim {

PeriodicProcess::PeriodicProcess(EventQueue& queue, SimTime first_at,
                                 SimTime period,
                                 std::function<bool(int)> on_tick)
    : queue_(queue), period_(period), on_tick_(std::move(on_tick)) {
  PM_CHECK_MSG(period_ > 0.0, "period must be positive, got " << period_);
  PM_CHECK(on_tick_ != nullptr);
  Arm(first_at);
}

void PeriodicProcess::Arm(SimTime when) {
  pending_ = queue_.ScheduleAt(when, [this] {
    pending_ = 0;
    if (!running_) return;
    const int tick = ticks_++;
    const bool keep_going = on_tick_(tick);
    if (keep_going && running_) {
      Arm(queue_.Now() + period_);
    } else {
      running_ = false;
    }
  });
}

void PeriodicProcess::Stop() {
  running_ = false;
  if (pending_ != 0) {
    queue_.Cancel(pending_);
    pending_ = 0;
  }
}

PoissonProcess::PoissonProcess(EventQueue& queue, double rate,
                               RandomStream& rng,
                               std::function<bool()> on_arrival)
    : queue_(queue),
      rate_(rate),
      rng_(rng),
      on_arrival_(std::move(on_arrival)) {
  PM_CHECK_MSG(rate_ > 0.0, "rate must be positive, got " << rate_);
  PM_CHECK(on_arrival_ != nullptr);
  Arm();
}

void PoissonProcess::Arm() {
  const SimTime gap = rng_.Exponential(rate_);
  pending_ = queue_.ScheduleAfter(gap, [this] {
    pending_ = 0;
    if (!running_) return;
    ++arrivals_;
    const bool keep_going = on_arrival_();
    if (keep_going && running_) {
      Arm();
    } else {
      running_ = false;
    }
  });
}

void PoissonProcess::Stop() {
  running_ = false;
  if (pending_ != 0) {
    queue_.Cancel(pending_);
    pending_ = 0;
  }
}

}  // namespace pm::sim
