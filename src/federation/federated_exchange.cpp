#include "federation/federated_exchange.h"

#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace pm::federation {

std::uint64_t FederatedExchange::ShardWorkloadSeed(
    std::uint64_t federation_seed, std::size_t shard) {
  // One SplitMix64 stream per shard, decorrelated by the golden-ratio
  // increment — the same expansion the RNG layer uses for seeding.
  SplitMix64 mix(federation_seed ^
                 (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1)));
  return mix.Next();
}

std::uint64_t FederatedExchange::ShardMarketSeed(
    std::uint64_t federation_seed, std::size_t shard) {
  SplitMix64 mix(federation_seed ^
                 (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1)));
  mix.Next();  // Skip the workload seed.
  return mix.Next();
}

FederatedExchange::FederatedExchange(std::vector<ShardSpec> specs,
                                     FederationConfig config)
    : config_(std::move(config)) {
  PM_CHECK_MSG(!specs.empty(), "federation needs at least one shard");
  shards_.reserve(specs.size());
  for (std::size_t k = 0; k < specs.size(); ++k) {
    ShardSpec& spec = specs[k];
    PM_CHECK_MSG(!spec.name.empty(), "shard " << k << " needs a name");
    for (std::size_t j = 0; j < k; ++j) {
      PM_CHECK_MSG(shards_[j]->name != spec.name,
                   "duplicate shard name '" << spec.name << "'");
    }
    spec.workload.seed = ShardWorkloadSeed(config_.seed, k);
    spec.market.seed = ShardMarketSeed(config_.seed, k);
    // The wire path is a federation-level decision; reject a per-shard
    // setting rather than silently overwriting it.
    PM_CHECK_MSG(spec.market.distributed_proxy_nodes == 0,
                 "set FederationConfig::proxy_nodes_per_shard, not "
                 "ShardSpec::market.distributed_proxy_nodes");
    spec.market.distributed_proxy_nodes = config_.proxy_nodes_per_shard;
    // Aggregate-init: World has no default constructor (Fleet is built
    // whole by the generator).
    auto shard = std::unique_ptr<Shard>(
        new Shard{spec.name, agents::GenerateWorld(spec.workload), nullptr});
    shard->market = std::make_unique<exchange::Market>(
        &shard->world.fleet, &shard->world.agents,
        shard->world.fixed_prices, spec.market);
    shards_.push_back(std::move(shard));
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
}

const std::string& FederatedExchange::ShardName(std::size_t shard) const {
  PM_CHECK(shard < shards_.size());
  return shards_[shard]->name;
}

exchange::Market& FederatedExchange::ShardMarket(std::size_t shard) {
  PM_CHECK(shard < shards_.size());
  return *shards_[shard]->market;
}

const exchange::Market& FederatedExchange::ShardMarket(
    std::size_t shard) const {
  PM_CHECK(shard < shards_.size());
  return *shards_[shard]->market;
}

const agents::World& FederatedExchange::ShardWorld(std::size_t shard) const {
  PM_CHECK(shard < shards_.size());
  return shards_[shard]->world;
}

std::vector<ShardView> FederatedExchange::BuildShardViews() const {
  std::vector<ShardView> views;
  views.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    ShardView view;
    view.name = shard->name;
    view.registry = &shard->world.fleet.registry();
    view.reserve_prices = shard->market->CurrentReservePrices();
    // What the shard's auction will actually sell, not raw headroom: the
    // market only offers supply_fraction of free capacity each round.
    view.free_capacity = shard->world.fleet.FreeVector();
    for (double& units : view.free_capacity) {
      units *= shard->market->supply_fraction();
    }
    view.fixed_prices = shard->market->fixed_prices();
    views.push_back(std::move(view));
  }
  return views;
}

void FederatedExchange::EndowFederatedTeam(const std::string& team,
                                           Money per_shard_budget) {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->market->EndowTeam(team, per_shard_budget,
                             "federation endowment");
  }
}

void FederatedExchange::SubmitFederatedBid(FederatedBid bid) {
  // Validate here, not inside RunEpoch: a bad bid discovered mid-epoch
  // would either wedge the queue (router throws before the clear) or
  // leave earlier routed parts half-submitted to shard markets.
  PM_CHECK_MSG(!bid.team.empty(), "federated bid needs a billing team");
  if (!bid.home_shard.empty()) {
    bool known = false;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      known = known || shard->name == bid.home_shard;
    }
    PM_CHECK_MSG(known, "unknown home shard '" << bid.home_shard << "'");
  }
  pending_.push_back(std::move(bid));
}

FederationReport FederatedExchange::RunEpoch() {
  const int epoch = EpochCount();

  // 1. Snapshot + route. Routing reads a coherent pre-auction snapshot of
  // every shard; the queued federated bids become per-shard external bids.
  // Skipped entirely when nothing is pending — the snapshot costs a full
  // reserve-pricing pass per shard, which RunAuction repeats anyway.
  RoutingResult routing;
  if (!pending_.empty()) {
    MarketRouter router(config_.router, BuildShardViews());
    routing = router.Route(pending_);
    pending_.clear();
    for (const RoutedBid& routed : routing.routed) {
      shards_[routed.shard]->market->SubmitExternalBid(
          exchange::Market::ExternalBid{routed.team, routed.bid});
    }
  }

  // 2. Clear every shard. Shards share no mutable state, so the rounds
  // run concurrently; each shard's work is sequential within the shard,
  // which keeps results bit-identical across thread counts.
  std::vector<ShardEpochSummary> summaries(shards_.size());
  const auto run_shard = [&](std::size_t k) {
    summaries[k].shard = k;
    summaries[k].name = shards_[k]->name;
    summaries[k].report = shards_[k]->market->RunAuction();
  };
  if (pool_ != nullptr) {
    ParallelFor(pool_.get(), 0, shards_.size(), run_shard);
  } else {
    for (std::size_t k = 0; k < shards_.size(); ++k) run_shard(k);
  }

  // 3. Merge into the planet-wide report.
  history_.push_back(BuildFederationReport(epoch, std::move(summaries),
                                           std::move(routing)));
  return history_.back();
}

}  // namespace pm::federation
