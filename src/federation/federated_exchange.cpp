#include "federation/federated_exchange.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/table.h"
#include "exchange/endowment.h"

namespace pm::federation {

std::uint64_t FederatedExchange::ShardWorkloadSeed(
    std::uint64_t federation_seed, std::size_t shard) {
  // One SplitMix64 stream per shard, decorrelated by the golden-ratio
  // increment — the same expansion the RNG layer uses for seeding.
  SplitMix64 mix(federation_seed ^
                 (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1)));
  return mix.Next();
}

std::uint64_t FederatedExchange::ShardMarketSeed(
    std::uint64_t federation_seed, std::size_t shard) {
  SplitMix64 mix(federation_seed ^
                 (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1)));
  mix.Next();  // Skip the workload seed.
  return mix.Next();
}

FederatedExchange::FederatedExchange(std::vector<ShardSpec> specs,
                                     FederationConfig config)
    : config_(std::move(config)) {
  PM_CHECK_MSG(!specs.empty(), "federation needs at least one shard");
  shards_.reserve(specs.size());
  for (std::size_t k = 0; k < specs.size(); ++k) {
    ShardSpec& spec = specs[k];
    PM_CHECK_MSG(!spec.name.empty(), "shard " << k << " needs a name");
    for (std::size_t j = 0; j < k; ++j) {
      PM_CHECK_MSG(shards_[j]->name != spec.name,
                   "duplicate shard name '" << spec.name << "'");
    }
    spec.workload.seed = ShardWorkloadSeed(config_.seed, k);
    spec.market.seed = ShardMarketSeed(config_.seed, k);
    // The wire path is a federation-level decision; reject a per-shard
    // setting rather than silently overwriting it.
    PM_CHECK_MSG(spec.market.distributed_proxy_nodes == 0,
                 "set FederationConfig::proxy_nodes_per_shard, not "
                 "ShardSpec::market.distributed_proxy_nodes");
    spec.market.distributed_proxy_nodes = config_.proxy_nodes_per_shard;
    // Profiler wall channel: shard markets record collect/bisect/settle
    // spans into their reports; the barrier copies them into the
    // profiler. Wall-only — deterministic outputs are untouched.
    spec.market.phase_timings =
        config_.telemetry.enabled && config_.telemetry.profiler.wall_clock;
    PM_CHECK_MSG(!spec.market.wire_faults.Enabled(),
                 "set FederationConfig::wire_faults, not "
                 "ShardSpec::market.wire_faults");
    if (config_.wire_faults.Enabled()) {
      PM_CHECK_MSG(config_.proxy_nodes_per_shard > 0,
                   "wire_faults need a wire: set proxy_nodes_per_shard");
      spec.market.wire_faults = config_.wire_faults;
      // One fault-seed stream per shard, so shards draw decorrelated
      // fault patterns but each reproduces bit for bit.
      SplitMix64 mix(config_.wire_faults.seed ^
                     (0xbf58476d1ce4e5b9ULL *
                      (static_cast<std::uint64_t>(k) + 1)));
      spec.market.wire_faults.seed = mix.Next();
    }
    // Aggregate-init: World has no default constructor (Fleet is built
    // whole by the generator).
    auto shard = std::unique_ptr<Shard>(
        new Shard{spec.name, agents::GenerateWorld(spec.workload), nullptr});
    shard->market = std::make_unique<exchange::Market>(
        &shard->world.fleet, &shard->world.agents,
        shard->world.fixed_prices, spec.market);
    shards_.push_back(std::move(shard));
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  if (config_.supervisor.enabled) {
    PM_CHECK_MSG(config_.supervisor.quarantine_streak >= 1 &&
                     config_.supervisor.backoff_base >= 1 &&
                     config_.supervisor.backoff_cap >=
                         config_.supervisor.backoff_base,
                 "supervisor: need quarantine_streak >= 1 and "
                 "1 <= backoff_base <= backoff_cap");
  }
  health_.resize(shards_.size());
  inject_fail_.assign(shards_.size(), 0);
  inject_round_budget_.assign(shards_.size(), -1);

  // Telemetry plane. Null when the gate is off, so every instrumentation
  // site in the epoch loop costs one pointer test and nothing else.
  if (config_.telemetry.enabled) {
    std::vector<std::string> names;
    names.reserve(shards_.size());
    for (const std::unique_ptr<Shard>& shard : shards_) {
      names.push_back(shard->name);
    }
    telemetry_ = std::make_unique<telemetry::Telemetry>(config_.telemetry,
                                                        std::move(names));
  }

  // Economy layer. Everything stays null when disabled so the epoch loop
  // below is byte-for-byte the PR 2 path.
  if (config_.economy.arbitrage.enabled) {
    PM_CHECK_MSG(config_.economy.treasury,
                 "arbitrage needs the treasury: its margin account is "
                 "planet currency (set EconomyConfig::treasury)");
  }
  if (config_.economy.treasury) {
    std::vector<std::string> names;
    names.reserve(shards_.size());
    for (const std::unique_ptr<Shard>& shard : shards_) {
      names.push_back(shard->name);
    }
    treasury_ = std::make_unique<FederationTreasury>(std::move(names));
  }
  if (config_.economy.arbitrage.enabled) {
    arbitrage_ = std::make_unique<ArbitrageAgent>(config_.economy.arbitrage);
    treasury_->Mint(arbitrage_->team(), config_.economy.arbitrage.margin,
                    "arbitrage margin account");
  }
  if (config_.economy.rebalance.enabled) {
    rebalancer_ = std::make_unique<FleetRebalancer>(
        config_.economy.rebalance, shards_.size());
  }
}

const std::string& FederatedExchange::ShardName(std::size_t shard) const {
  PM_CHECK(shard < shards_.size());
  return shards_[shard]->name;
}

exchange::Market& FederatedExchange::ShardMarket(std::size_t shard) {
  PM_CHECK(shard < shards_.size());
  return *shards_[shard]->market;
}

const exchange::Market& FederatedExchange::ShardMarket(
    std::size_t shard) const {
  PM_CHECK(shard < shards_.size());
  return *shards_[shard]->market;
}

const agents::World& FederatedExchange::ShardWorld(std::size_t shard) const {
  PM_CHECK(shard < shards_.size());
  return shards_[shard]->world;
}

agents::World& FederatedExchange::MutableShardWorld(std::size_t shard) {
  PM_CHECK(shard < shards_.size());
  return shards_[shard]->world;
}

Money FederatedExchange::RetireFederatedTeam(const std::string& team) {
  if (treasury_ != nullptr) {
    // Stop the epoch allowance first so a retire scheduled mid-run can
    // never race a later push for the same team.
    for (std::size_t i = 0; i < federated_teams_.size(); ++i) {
      if (federated_teams_[i].team == team) {
        federated_teams_.erase(federated_teams_.begin() +
                               static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    return treasury_->Burn(team, treasury_->PlanetBalance(team),
                           "retire federated team: " + team, EpochCount());
  }
  Money removed;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    removed += shard->market->WithdrawTeam(team, "retire federated team");
  }
  return removed;
}

std::vector<ShardView> FederatedExchange::BuildShardViews() const {
  std::vector<ShardView> views;
  views.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    ShardView view;
    view.name = shard->name;
    view.registry = &shard->world.fleet.registry();
    view.reserve_prices = shard->market->CurrentReservePrices();
    // What the shard's auction will actually sell, not raw headroom: the
    // market only offers supply_fraction of free capacity each round.
    view.free_capacity = shard->world.fleet.FreeVector();
    for (double& units : view.free_capacity) {
      units *= shard->market->supply_fraction();
    }
    view.fixed_prices = shard->market->fixed_prices();
    // Outcome feedback for the router: the unit-weighted fraction of
    // recently awarded buys this shard failed to place. Only computed
    // when the router actually folds it into heat — the scan over
    // recent awards is wasted work otherwise.
    view.placement_failure_rate =
        config_.router.failure_heat_weight > 0.0
            ? exchange::RecentPlacementFailureRate(
                  shard->market->History(), config_.router.failure_window)
            : 0.0;
    // Failure-domain gating: the router refuses quarantined shards and
    // sheds load off degraded/recovering ones.
    view.health = health_[views.size()].status;
    views.push_back(std::move(view));
  }
  return views;
}

const ShardHealthStatus& FederatedExchange::ShardHealthOf(
    std::size_t shard) const {
  PM_CHECK(shard < health_.size());
  return health_[shard];
}

void FederatedExchange::InjectShardFailure(std::size_t shard) {
  PM_CHECK(shard < shards_.size());
  inject_fail_[shard] = 1;
}

void FederatedExchange::InjectEpochRoundBudget(std::size_t shard,
                                               int max_rounds) {
  PM_CHECK(shard < shards_.size());
  PM_CHECK_MSG(max_rounds >= 0, "round budget must be non-negative");
  inject_round_budget_[shard] = max_rounds;
}

void FederatedExchange::EmergencySweep(int epoch) {
  if (treasury_ == nullptr) return;
  const std::string memo =
      "emergency sweep epoch " + std::to_string(epoch);
  for (const std::string& team : treasury_->Teams()) {
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const Money remaining = shards_[k]->market->WithdrawTeam(team, memo);
      treasury_->Sweep(team, k, remaining, epoch);
    }
  }
}

std::vector<const cluster::Fleet*> FederatedExchange::ShardFleets() const {
  std::vector<const cluster::Fleet*> fleets;
  fleets.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    fleets.push_back(&shard->world.fleet);
  }
  return fleets;
}

void FederatedExchange::EndowFederatedTeam(const std::string& team,
                                           Money per_shard_budget) {
  if (treasury_ != nullptr) {
    // The settlement sweep withdraws this name's entire local balance in
    // every shard each epoch — a collision with a resident team would
    // silently confiscate that team's budget. Fail fast instead.
    for (const std::unique_ptr<Shard>& shard : shards_) {
      for (const agents::TeamAgent& agent : shard->world.agents) {
        PM_CHECK_MSG(agent.profile().name != team,
                     "federated team '"
                         << team << "' collides with a resident team in "
                         << "shard '" << shard->name
                         << "'; the treasury sweep would drain it");
      }
    }
    // One planet-wide mint; shard budgets become per-epoch allowances
    // pushed (and swept back) by RunEpoch.
    treasury_->Mint(team,
                    per_shard_budget *
                        static_cast<std::int64_t>(shards_.size()),
                    "federated endowment: " + team);
    for (FederatedTeam& registered : federated_teams_) {
      if (registered.team == team) {
        registered.per_shard_allowance = per_shard_budget;
        return;
      }
    }
    federated_teams_.push_back(FederatedTeam{team, per_shard_budget});
    return;
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->market->EndowTeam(team, per_shard_budget,
                             "federation endowment");
  }
}

void FederatedExchange::SubmitFederatedBid(FederatedBid bid) {
  // Validate here, not inside RunEpoch: a bad bid discovered mid-epoch
  // would either wedge the queue (router throws before the clear) or
  // leave earlier routed parts half-submitted to shard markets.
  PM_CHECK_MSG(!bid.team.empty(), "federated bid needs a billing team");
  if (!bid.home_shard.empty()) {
    bool known = false;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      known = known || shard->name == bid.home_shard;
    }
    PM_CHECK_MSG(known, "unknown home shard '" << bid.home_shard << "'");
  }
  if (telemetry_ != nullptr && config_.telemetry.trace_bids) {
    // A supervisor re-queue re-enters through pending_ directly and keeps
    // its trace; only a fresh bid opens a lifecycle here.
    if (bid.trace == 0) bid.trace = telemetry_->tracer().NewTrace();
    telemetry::Span& span =
        telemetry_->EmitSpan(bid.trace, "submit", EpochCount(), -1);
    span.attrs.emplace_back("team", bid.team);
    span.attrs.emplace_back("tag", bid.tag);
    span.attrs.emplace_back("limit", FormatF(bid.limit, 2));
  }
  pending_.push_back(std::move(bid));
}

FederationReport FederatedExchange::RunEpoch() {
  const int epoch = EpochCount();
  if (!config_.supervisor.enabled && treasury_ != nullptr) {
    // Unsupervised: a shard throwing mid-epoch propagates to the caller,
    // but never with this epoch's allowances stranded in shard floats —
    // the emergency sweep reconciles every (team, shard) pair first, so
    // the planet ledger's invariants (conservation AND zero floats
    // between epochs) hold in every terminal state.
    try {
      return RunEpochInternal(epoch);
    } catch (...) {
      EmergencySweep(epoch);
      throw;
    }
  }
  return RunEpochInternal(epoch);
}

void FederatedExchange::RunEpochs(const int n) {
  PM_CHECK_MSG(n >= 0, "RunEpochs needs a non-negative epoch count");
  if (n > 1 && CanPipeline()) {
    RunEpochsPipelined(n);
    return;
  }
  for (int i = 0; i < n; ++i) RunEpoch();
}

bool FederatedExchange::CanPipeline() const {
  if (!config_.pipelined || pool_ == nullptr) return false;
  // Every epoch-barrier phase that writes shard state (or reads state the
  // overlapped auctions mutate) forces the serial loop: supervision
  // (checkpoints + restores), the treasury (endowments + sweeps),
  // arbitrage (external bids), the rebalancer (cluster migrations), a
  // routing pass (external bids), and fault injection (the pipelined
  // shard task skips the injection checks).
  if (config_.supervisor.enabled) return false;
  if (treasury_ != nullptr || arbitrage_ != nullptr ||
      rebalancer_ != nullptr) {
    return false;
  }
  if (!pending_.empty()) return false;
  // Wall-clock epoch timing brackets the whole serial epoch; there is no
  // faithful equivalent once collections overlap barriers.
  if (telemetry_ != nullptr && config_.telemetry.wall_clock_timings) {
    return false;
  }
  for (const char f : inject_fail_) {
    if (f != 0) return false;
  }
  for (const int b : inject_round_budget_) {
    if (b >= 0) return false;
  }
  return true;
}

void FederatedExchange::RunEpochsPipelined(const int n) {
  const int e0 = EpochCount();
  const int e_end = e0 + n;

  // Captured once: pool registries are append-only and total capacities
  // only change under migrations, which CanPipeline() excludes — so the
  // barrier's clearing-spread pass never reads live shard state.
  std::vector<const PoolRegistry*> registries;
  std::vector<std::vector<double>> capacities;
  registries.reserve(shards_.size());
  capacities.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    registries.push_back(&shard->world.fleet.registry());
    capacities.push_back(shard->world.fleet.CapacityVector());
  }

  // Double-buffered per-shard summaries, keyed by epoch parity. A shard
  // task for epoch e writes buffers[e & 1][k]; the barrier for epoch e
  // swaps that whole vector out under the lock. Reusing a parity slot
  // for epoch e + 2 is safe because the scheduling window below only
  // admits epoch e + 2 after barrier e has committed (barrier_done >= e),
  // i.e. after the slot was swapped out.
  std::mutex mu;
  std::condition_variable cv;
  std::array<std::vector<ShardEpochSummary>, 2> buffers;
  for (std::vector<ShardEpochSummary>& buffer : buffers) {
    buffer.resize(shards_.size());
  }
  std::vector<int> done_epoch(shards_.size(), e0 - 1);
  std::vector<int> next_epoch(shards_.size(), e0);
  std::vector<char> parked(shards_.size(), 0);
  int barrier_done = e0 - 1;
  int running = 0;
  std::exception_ptr first_error;

  // One in-flight task per shard, repost-scheduled: a task clears ONE
  // epoch for ONE shard and never blocks, so the pipeline cannot
  // deadlock however few worker threads the pool has. When a shard runs
  // out of window (epoch e + 3 before barrier e + 1 commits) it parks;
  // the barrier unparks it. Every notify happens while holding the
  // mutex, so the main thread cannot observe the final state change,
  // return, and destroy `cv` while a task is still about to signal it.
  std::function<void(std::size_t, int)> collect =
      [&](const std::size_t k, const int e) {
        try {
          ShardEpochSummary summary;
          summary.shard = k;
          summary.name = shards_[k]->name;
          summary.report = shards_[k]->market->RunAuction();
          std::lock_guard<std::mutex> lock(mu);
          buffers[e & 1][k] = std::move(summary);
          done_epoch[k] = e;
          const int next = e + 1;
          next_epoch[k] = next;
          if (first_error == nullptr && next < e_end &&
              next <= barrier_done + 2) {
            pool_->Post([&collect, k, next] { collect(k, next); });
          } else {
            parked[k] = 1;
            --running;
          }
          cv.notify_all();
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
          parked[k] = 1;
          --running;
          cv.notify_all();
        }
      };

  {
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      ++running;
      pool_->Post([&collect, k, e0] { collect(k, e0); });
    }
  }

  // Profiler wall channel: pipeline-window spans live here and ONLY
  // here — occupancy (shards already collecting ahead of the barrier)
  // and bubble (barrier wait) are scheduling-dependent, so they never
  // enter the deterministic channel (the pipelined-vs-serial metrics
  // byte-identity gate pins that).
  telemetry::PhaseProfiler* prof =
      telemetry_ != nullptr && config_.telemetry.profiler.wall_clock
          ? telemetry_->profiler()
          : nullptr;
  const std::size_t fed_track =
      prof == nullptr ? 0 : prof->federation_track();

  const RoutingResult no_routing;
  const std::vector<std::uint64_t> no_traces;
  for (int e = e0; e < e_end; ++e) {
    const auto all_done = [&] {
      for (const int d : done_epoch) {
        if (d < e) return false;
      }
      return true;
    };
    telemetry::ScopedSpan wait_span(prof, fed_track, e, "window-wait");
    int overlap = 0;
    std::vector<ShardEpochSummary> summaries(shards_.size());
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] {
        return all_done() || (first_error != nullptr && running == 0);
      });
      // A failed shard never finishes epoch e, but epochs every shard
      // completed before the failure still commit — exactly the prefix
      // the serial loop would have committed before rethrowing.
      if (!all_done()) break;
      buffers[e & 1].swap(summaries);
      // Window occupancy at barrier entry: shards already done with a
      // later epoch than the one this barrier commits.
      for (const int d : done_epoch) {
        if (d > e) ++overlap;
      }
    }
    wait_span.AddArg("occupancy", static_cast<double>(overlap));
    wait_span.Stop();

    // The epoch barrier: single-threaded settlement + telemetry for
    // epoch e, byte-identical to the serial RunEpochInternal tail for a
    // pipeline-eligible configuration, while shard collections for
    // epochs e + 1 / e + 2 already run on the pool.
    telemetry::ScopedSpan barrier_span(prof, fed_track, e, "barrier");
    barrier_span.AddArg("occupancy", static_cast<double>(overlap));
    IngestShardTelemetry(e, summaries, no_routing, no_traces);
    FederationReport report =
        BuildFederationReport(e, std::move(summaries), RoutingResult{});
    report.health = HealthBlock{};
    report.clearing_spread =
        ComputeClearingSpread(report, registries, capacities);
    CloseEpochTelemetry(e, report, /*time_epoch=*/false, {});
    history_.push_back(std::move(report));
    barrier_span.Stop();

    {
      std::lock_guard<std::mutex> lock(mu);
      barrier_done = e;
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        if (parked[k] != 0 && first_error == nullptr &&
            next_epoch[k] < e_end && next_epoch[k] <= barrier_done + 2) {
          parked[k] = 0;
          ++running;
          const int next = next_epoch[k];
          pool_->Post([&collect, k, next] { collect(k, next); });
        }
      }
    }
  }

  // Drain before `collect`, `cv`, and the buffers leave scope; rethrow
  // the first shard failure exactly like the serial unsupervised loop.
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return running == 0; });
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void FederatedExchange::IngestShardTelemetry(
    const int epoch, const std::vector<ShardEpochSummary>& summaries,
    const RoutingResult& routing,
    const std::vector<std::uint64_t>& epoch_traces) {
  if (telemetry_ == nullptr) return;
  telemetry::MetricsRegistry& reg = telemetry_->registry();
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const ShardEpochSummary& s = summaries[k];
    telemetry::Labels by_shard;
    by_shard.shard = shards_[k]->name;
    if (!s.participated) {
      telemetry_->RecordEvent(k, epoch, "quarantined: sat the epoch out");
      continue;
    }
    if (s.failed) {
      reg.AddCounter("fed_shard_failures", by_shard, 1.0);
      telemetry_->RecordEvent(k, epoch, "auction crashed: " + s.failure);
      continue;
    }
    const exchange::AuctionReport& r = s.report;
    // Hot-path counters surfaced through the report chain (DemandEngine
    // workspace → ClockAuctionResult → AuctionReport) — nothing here
    // ever executed inside the auction loops.
    reg.AddCounter("fed_auction_rounds", by_shard,
                   static_cast<double>(r.rounds));
    reg.AddCounter("fed_demand_evaluations", by_shard,
                   static_cast<double>(r.demand_evaluations));
    reg.AddCounter("fed_proxies_reevaluated", by_shard,
                   static_cast<double>(r.proxies_reevaluated));
    reg.AddCounter("fed_bisection_probes", by_shard,
                   static_cast<double>(r.bisection_probes));
    {
      telemetry::Labels by_phase = by_shard;
      by_phase.phase = "full";
      reg.AddCounter("fed_engine_collections", by_phase,
                     static_cast<double>(r.full_collections));
      by_phase.phase = "incremental";
      reg.AddCounter("fed_engine_collections", by_phase,
                     static_cast<double>(r.incremental_collections));
    }
    reg.AddCounter("fed_bids_seen", by_shard,
                   static_cast<double>(r.num_bids));
    reg.AddCounter("fed_winners", by_shard,
                   static_cast<double>(r.num_winners));
    reg.AddCounter("fed_external_rejections", by_shard,
                   static_cast<double>(r.external_rejected));
    // Revenue is a net flow (sell-side payouts can push it negative in
    // an epoch), so it is a per-epoch gauge, not a monotone counter;
    // the snapshot series carries its history.
    reg.SetGauge("fed_operator_revenue_dollars", by_shard,
                 r.operator_revenue);
    reg.AddCounter("fed_placement_failures", by_shard,
                   static_cast<double>(r.placement_failures));
    reg.AddCounter("fed_partial_placements", by_shard,
                   static_cast<double>(r.partial_placements));
    reg.AddCounter("fed_refund_dollars", by_shard, r.refund_total);
    reg.AddCounter("fed_move_billing_dollars", by_shard,
                   r.move_billing_total);
    reg.AddCounter("fed_jobs_added", by_shard,
                   static_cast<double>(r.jobs_added));
    reg.AddCounter("fed_jobs_removed", by_shard,
                   static_cast<double>(r.jobs_removed));
    reg.AddCounter("fed_transport_messages", by_shard,
                   static_cast<double>(r.transport_messages));
    reg.AddCounter("fed_transport_bytes", by_shard,
                   static_cast<double>(r.transport_bytes));
    reg.SetGauge("fed_utilization_spread", by_shard,
                 exchange::UtilizationSpread(r.post_utilization));
    reg.SetGauge("fed_rounds_last_epoch", by_shard,
                 static_cast<double>(r.rounds));
    const PoolRegistry& pools = shards_[k]->world.fleet.registry();
    for (std::size_t p = 0; p < r.settled_prices.size(); ++p) {
      telemetry::Labels by_kind = by_shard;
      by_kind.kind = std::string(
          ToString(pools.KeyOf(static_cast<PoolId>(p)).kind));
      reg.Observe("fed_clearing_price", by_kind, r.settled_prices[p],
                  /*lo=*/0.0, /*hi=*/50.0, /*bins=*/25);
      if (config_.telemetry.watchdog.recording_rules) {
        // The watchdog's point-in-time price surface: the histogram
        // above keeps the distribution, the rule engine and console
        // need this epoch's exact price per (shard, kind).
        reg.SetGauge("fed_clearing_price_dollars", by_kind,
                     r.settled_prices[p]);
      }
    }
    if (config_.telemetry.watchdog.recording_rules) {
      // Awarded buy-side dollars, the refund-storm denominator.
      // Monotone by construction (payments clamp at zero).
      double awarded = 0.0;
      for (const exchange::AwardRecord& a : r.awards) {
        awarded += std::max(0.0, a.payment);
      }
      reg.AddCounter("fed_awarded_dollars", by_shard, awarded);
    }
    if (config_.telemetry.profiler.work_accounting) {
      // The profiler's deterministic work-accounting channel: logical
      // cost counters for this shard-epoch, plus the per-(epoch, shard)
      // work tree the flight recorder attaches to containment dumps.
      // Dot-blocks carry the resolved kernel tier on the phase label so
      // a de-vectorization shows up as a series switch.
      telemetry::Labels by_tier = by_shard;
      by_tier.phase = r.kernel;
      reg.AddCounter("fed_work_dot_blocks", by_tier,
                     static_cast<double>(r.dot_blocks));
      reg.AddCounter("fed_work_dirty_bidders", by_shard,
                     static_cast<double>(r.dirty_bidders));
      reg.AddCounter("fed_work_refund_ops", by_shard,
                     static_cast<double>(r.refund_ops));
      reg.AddCounter("fed_work_wire_retries", by_shard,
                     static_cast<double>(r.wire_frames_retried));
      reg.AddCounter("fed_work_wire_dedups", by_shard,
                     static_cast<double>(r.wire_frames_deduped));
      telemetry::WorkCounters work;
      work.dot_blocks = r.dot_blocks;
      work.dirty_bidders = r.dirty_bidders;
      work.bisection_probes = r.bisection_probes;
      work.full_collections = r.full_collections;
      work.incremental_collections = r.incremental_collections;
      work.wire_retries = r.wire_frames_retried;
      work.wire_dedups = r.wire_frames_deduped;
      work.refund_ops = static_cast<long long>(r.refund_ops);
      work.kernel = r.kernel;
      telemetry_->profiler()->RecordWork(epoch, k, std::move(work));
    }
    if (config_.telemetry.profiler.wall_clock) {
      // Wall channel: the shard's collect/bisect/settle spans were
      // measured on the worker thread but ride the report; copying them
      // here keeps every profiler mutation at the barrier.
      for (const PhaseSpan& span : r.phases) {
        telemetry_->profiler()->AddSpan(k, epoch, span);
      }
    }
    telemetry_->RecordEvent(
        k, epoch,
        "auction: rounds=" + std::to_string(r.rounds) +
            " bids=" + std::to_string(r.num_bids) + " winners=" +
            std::to_string(r.num_winners) +
            (r.converged ? "" : " (unconverged)"));
  }

  // Bid lifecycles: one shard-auction span per routed part, then its
  // settlement fate — the matching award, an explicit gate rejection,
  // or no award at all.
  if (config_.telemetry.trace_bids) {
    for (const RoutedBid& routed : routing.routed) {
      const std::uint64_t trace = epoch_traces[routed.bid_index];
      if (trace == 0) continue;
      const std::size_t k = routed.shard;
      const ShardEpochSummary& s = summaries[k];
      telemetry::Span& span = telemetry_->EmitSpan(
          trace, "shard-auction", epoch, static_cast<int>(k));
      span.attrs.emplace_back("bid", routed.bid.name);
      if (s.failed) {
        span.attrs.emplace_back("outcome", "crashed");
      } else {
        span.attrs.emplace_back("rounds",
                                std::to_string(s.report.rounds));
        span.attrs.emplace_back("converged",
                                s.report.converged ? "true" : "false");
      }
      telemetry_->MirrorSpan(span);
      if (s.failed) continue;

      const exchange::AwardRecord* award = nullptr;
      for (const exchange::AwardRecord& a : s.report.awards) {
        if (a.team == routed.team && a.bid_name == routed.bid.name) {
          award = &a;
          break;
        }
      }
      if (award != nullptr) {
        telemetry::Span& settle = telemetry_->EmitSpan(
            trace, "settle", epoch, static_cast<int>(k));
        settle.attrs.emplace_back("bid", routed.bid.name);
        settle.attrs.emplace_back("payment", FormatF(award->payment, 2));
        settle.attrs.emplace_back(
            "placement",
            std::string(exchange::ToString(award->outcome.status)));
        if (award->outcome.refund > 0.0) {
          settle.attrs.emplace_back("refund",
                                    FormatF(award->outcome.refund, 2));
        }
        telemetry_->MirrorSpan(settle);
        continue;
      }
      const exchange::ExternalRejection* rejection = nullptr;
      for (const exchange::ExternalRejection& rej :
           s.report.external_rejections) {
        if (rej.team == routed.team && rej.bid_name == routed.bid.name) {
          rejection = &rej;
          break;
        }
      }
      if (rejection != nullptr) {
        telemetry::Span& rejected = telemetry_->EmitSpan(
            trace, "reject", epoch, static_cast<int>(k));
        rejected.attrs.emplace_back("bid", routed.bid.name);
        rejected.attrs.emplace_back(
            "reason",
            std::string(exchange::ToString(rejection->reason)));
        telemetry_->MirrorSpan(rejected);
        continue;
      }
      telemetry::Span& lost = telemetry_->EmitSpan(
          trace, "no-award", epoch, static_cast<int>(k));
      lost.attrs.emplace_back("bid", routed.bid.name);
      telemetry_->MirrorSpan(lost);
    }
  }
}

void FederatedExchange::CloseEpochTelemetry(
    const int epoch, FederationReport& report, const bool time_epoch,
    const std::chrono::steady_clock::time_point wall_start) {
  if (telemetry_ == nullptr) return;
  telemetry::MetricsRegistry& reg = telemetry_->registry();
  const telemetry::Labels planet;
  reg.SetGauge("fed_clearing_spread", planet, report.clearing_spread);
  if (!report.migrations.empty()) {
    reg.AddCounter("fed_migrations", planet,
                   static_cast<double>(report.migrations.size()));
  }

  // Watchdog pass: recording rules write this epoch's derived gauges,
  // then the alert engine judges them — BEFORE the snapshot below so
  // both ride the epoch's series entry. Still single-threaded.
  const std::vector<telemetry::AlertTransition> transitions =
      telemetry_->EvaluateWatchdog(epoch);
  if (telemetry_->alerts() != nullptr) {
    report.alerts.enabled = true;
    report.alerts.transitions = transitions.size();
    report.alerts.firing = telemetry_->alerts()->FiringNames();
    for (const telemetry::AlertTransition& t : transitions) {
      // Mirror every lifecycle transition into the flight recorder:
      // a per-shard series lands in that shard's ring, a planet-wide
      // one in every ring (a containment dump should always explain
      // which alarms were ringing).
      const std::string line =
          "alert " + t.rule + " [" + t.series + "]: " +
          std::string(telemetry::ToString(t.from)) + " -> " +
          std::string(telemetry::ToString(t.to));
      const std::string shard_name =
          telemetry::KeyLabels(t.series).shard;
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        if (shard_name.empty() || shards_[k]->name == shard_name) {
          telemetry_->RecordEvent(k, epoch, line);
        }
      }
    }
  }
  reg.SnapshotEpoch(epoch);
  if (time_epoch) {
    reg.RecordTiming(
        "epoch_wall_seconds",
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count());
  }
}

FederationReport FederatedExchange::RunEpochInternal(const int epoch) {
  const bool supervised = config_.supervisor.enabled;

  // Wall-clock epoch timing is the one telemetry signal that cannot be
  // deterministic; it flows into the registry's separate timing block,
  // which only renders on an explicit MetricsJson(include_timings=true).
  const bool time_epoch =
      telemetry_ != nullptr && config_.telemetry.wall_clock_timings;
  std::chrono::steady_clock::time_point wall_start{};
  if (time_epoch) wall_start = std::chrono::steady_clock::now();

  // S0. Epoch-start health transitions and checkpoints. Quarantined
  // shards drain their backoff and sit the epoch out; one that has
  // drained moves to recovering and rejoins. Active shards are
  // checkpointed *before* any epoch mutation (allowance endowments
  // included), so a contained failure can roll the shard back to the
  // epoch boundary and RefundAllowance squares the planet ledger.
  std::vector<std::vector<std::uint8_t>> checkpoints(shards_.size());
  if (supervised) {
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      ShardHealthStatus& h = health_[k];
      if (h.status == ShardHealth::kQuarantined) {
        if (h.backoff_remaining > 0) {
          --h.backoff_remaining;
          h.active = false;
        } else {
          h.status = ShardHealth::kRecovering;
          ++h.retries;
          h.active = true;
        }
      } else {
        h.active = true;
      }
      if (h.active) checkpoints[k] = shards_[k]->market->Snapshot();
    }
  }
  const auto shard_active = [&](std::size_t k) {
    return !supervised || health_[k].active;
  };

  // 0. Treasury: push this epoch's shard allowances (planet account →
  // shard float → shard-local endowment), teams in registration order,
  // shards by index — deterministic, and clamped to each team's planet
  // balance so no push can create money.
  if (treasury_ != nullptr) {
    const std::string memo = "treasury allowance epoch " +
                             std::to_string(epoch);
    for (const FederatedTeam& team : federated_teams_) {
      // An underfunded team's remaining planet balance is divided
      // evenly (to the micro-dollar) across shards, so shard 0 cannot
      // drain the pot before later shards are funded at all.
      const std::vector<Money> fair_share = exchange::SplitEvenly(
          treasury_->PlanetBalance(team.team), shards_.size());
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        // Quarantined shards run no auction: money pushed there would
        // sit uselessly in the float all epoch.
        if (!shard_active(k)) continue;
        const Money granted = treasury_->PushAllowance(
            team.team, k,
            std::min(team.per_shard_allowance, fair_share[k]), epoch);
        if (!granted.IsZero()) {
          shards_[k]->market->EndowTeam(team.team, granted, memo);
        }
      }
    }
  }

  // One coherent pre-auction snapshot per epoch, built lazily: prices
  // and free capacity only move at auction time, so the arbitrage
  // planner and the router can share it — and an epoch with neither
  // pays nothing (the snapshot costs a full reserve-pricing pass per
  // shard, which RunAuction repeats anyway).
  std::vector<ShardView> views;
  const auto ensure_views = [&] {
    if (views.empty()) views = BuildShardViews();
  };

  // 0b. Arbitrage: plan from the previous epoch's clearing prices, fund
  // each buy from the margin account (clamped to what is left of it),
  // and enter the bids through the shards' external-bid gates. The
  // first epoch has no price signal, so the agent sits it out.
  std::vector<ArbitragePlan> arb_plans;
  std::size_t arb_buys_submitted = 0;
  std::size_t arb_sells_submitted = 0;
  if (arbitrage_ != nullptr && !history_.empty()) {
    ensure_views();
    arb_plans = arbitrage_->PlanEpoch(&history_.back(), views,
                                      ShardFleets(), epoch);
    for (ArbitragePlan& plan : arb_plans) {
      // A bid submitted to a quarantined shard would be stranded in its
      // external queue (no auction runs to consume it) and poison the
      // shard's next checkpoint.
      if (!shard_active(plan.shard)) continue;
      if (plan.is_buy) {
        const Money granted = treasury_->PushAllowance(
            arbitrage_->team(), plan.shard, plan.funding, epoch);
        if (granted.IsZero()) continue;  // Margin exhausted: skip the buy.
        shards_[plan.shard]->market->EndowTeam(
            arbitrage_->team(), granted,
            "arbitrage margin epoch " + std::to_string(epoch));
        // Cap the bid at ITS OWN funding, not the team's shard balance:
        // the market's gate clamps to the total balance, so two partially
        // funded buys in one shard could otherwise win for more than the
        // margin granted and settle as a local overdraft.
        plan.bid.limit = std::min(plan.bid.limit, granted.ToDouble());
        ++arb_buys_submitted;
      } else {
        ++arb_sells_submitted;
      }
      shards_[plan.shard]->market->SubmitExternalBid(
          exchange::Market::ExternalBid{arbitrage_->team(), plan.bid});
    }
  }

  // 1. Route. The queued federated bids become per-shard external bids,
  // placed against the shared snapshot. Under supervision the originals
  // are kept: a bid whose shard fails mid-epoch is re-queued for next
  // epoch's pass over the healthy shards.
  RoutingResult routing;
  std::vector<FederatedBid> epoch_bids;
  // Profiler wall channel: federation-track spans (route, barrier) are
  // recorded here on the single epoch thread. Null when unarmed.
  telemetry::PhaseProfiler* prof =
      telemetry_ != nullptr && config_.telemetry.profiler.wall_clock
          ? telemetry_->profiler()
          : nullptr;
  const std::size_t fed_track =
      prof == nullptr ? 0 : prof->federation_track();
  // Trace id per routing input (index-aligned with routing.decisions) —
  // captured before pending_ is cleared so the post-auction telemetry
  // passes can join shard outcomes back to bid lifecycles.
  std::vector<std::uint64_t> epoch_traces;
  if (!pending_.empty()) {
    telemetry::ScopedSpan route_span(prof, fed_track, epoch, "route");
    ensure_views();
    if (supervised) epoch_bids = pending_;
    if (telemetry_ != nullptr) {
      epoch_traces.reserve(pending_.size());
      for (const FederatedBid& fed : pending_) {
        epoch_traces.push_back(fed.trace);
      }
    }
    MarketRouter router(config_.router, std::move(views));
    if (treasury_ != nullptr && config_.router.budget_pressure > 0.0) {
      // Treasury-aware routing: a team low on planet money spills to
      // cheaper shards earlier (its effective spill threshold tightens
      // with its remaining balance).
      std::unordered_map<std::string, double> balances;
      for (const std::string& team : treasury_->Teams()) {
        balances.emplace(team,
                         treasury_->PlanetBalance(team).ToDouble());
      }
      routing = router.Route(pending_, balances);
    } else {
      routing = router.Route(pending_);
    }
    pending_.clear();
    // Batched per-shard submission: one gate call per shard instead of
    // one per routed part, keeping each shard's intra-batch order (the
    // routed order) — bid order inside every market is unchanged.
    std::vector<std::vector<exchange::Market::ExternalBid>> batches(
        shards_.size());
    for (const RoutedBid& routed : routing.routed) {
      batches[routed.shard].push_back(
          exchange::Market::ExternalBid{routed.team, routed.bid});
    }
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      if (!batches[k].empty()) {
        shards_[k]->market->SubmitExternalBids(std::move(batches[k]));
      }
    }

    // Telemetry: router decisions and spill reasons (single-threaded —
    // the shard auctions have not started).
    if (telemetry_ != nullptr) {
      telemetry::MetricsRegistry& reg = telemetry_->registry();
      for (const RouteDecision& decision : routing.decisions) {
        telemetry::Labels by_policy;
        by_policy.phase = std::string(ToString(decision.policy));
        if (decision.shards.empty()) {
          reg.AddCounter("fed_router_unroutable", by_policy, 1.0);
        } else {
          reg.AddCounter("fed_router_bids_routed", by_policy, 1.0);
          if (decision.spilled) {
            reg.AddCounter("fed_router_spills", by_policy, 1.0);
          }
        }
      }
      reg.AddCounter("fed_router_parts_placed", telemetry::Labels{},
                     static_cast<double>(routing.routed.size()));
      if (config_.telemetry.trace_bids) {
        for (std::size_t i = 0; i < routing.decisions.size(); ++i) {
          if (epoch_traces[i] == 0) continue;
          const RouteDecision& decision = routing.decisions[i];
          telemetry::Span& span =
              telemetry_->EmitSpan(epoch_traces[i], "route", epoch, -1);
          span.attrs.emplace_back("policy",
                                  std::string(ToString(decision.policy)));
          span.attrs.emplace_back(
              "parts", std::to_string(decision.shards.size()));
          span.attrs.emplace_back("spilled",
                                  decision.spilled ? "true" : "false");
          if (!decision.shards.empty()) {
            span.attrs.emplace_back("heat",
                                    FormatF(decision.preferred_heat, 3));
          }
        }
        for (const RoutedBid& routed : routing.routed) {
          const std::uint64_t trace = epoch_traces[routed.bid_index];
          if (trace == 0) continue;
          telemetry::Span& span = telemetry_->EmitSpan(
              trace, "enqueue", epoch, static_cast<int>(routed.shard));
          span.attrs.emplace_back("bid", routed.bid.name);
          span.attrs.emplace_back("limit", FormatF(routed.bid.limit, 2));
          telemetry_->MirrorSpan(span);
        }
      }
    }
  }

  // 2. Clear every shard. Shards share no mutable state, so the rounds
  // run concurrently; each shard's work is sequential within the shard,
  // which keeps results bit-identical across thread counts. Under
  // supervision each shard epoch runs inside a containment boundary:
  // the catch is INSIDE the per-shard lambda (ParallelFor only rethrows
  // the first exception after every chunk finishes, which would lose all
  // but one failure and kill the whole epoch), so a failed shard records
  // its fault and the planet epoch completes without it.
  std::vector<ShardEpochSummary> summaries(shards_.size());
  const auto run_shard = [&](std::size_t k) {
    summaries[k].shard = k;
    summaries[k].name = shards_[k]->name;
    if (!shard_active(k)) {
      summaries[k].participated = false;
      return;
    }
    const auto run_one = [&] {
      exchange::AuctionReport r = shards_[k]->market->RunAuction();
      // Injected crash: the auction ran to completion and mutated the
      // shard before the fault lands — the worst case for containment.
      PM_CHECK_MSG(inject_fail_[k] == 0,
                   "injected failure: shard " << k << " ('"
                       << shards_[k]->name << "') crashed mid-epoch");
      const int budget = inject_round_budget_[k];
      PM_CHECK_MSG(budget < 0 || r.rounds <= budget,
                   "epoch budget exceeded: shard "
                       << k << " ('" << shards_[k]->name << "') took "
                       << r.rounds << " rounds (budget " << budget
                       << ")");
      summaries[k].report = std::move(r);
    };
    if (!supervised) {
      run_one();  // Failures propagate (first rethrown by ParallelFor).
      return;
    }
    try {
      run_one();
    } catch (const std::exception& e) {
      summaries[k].failed = true;
      summaries[k].failure = e.what();
    }
  };
  if (pool_ != nullptr) {
    ParallelFor(pool_.get(), 0, shards_.size(), run_shard);
  } else {
    for (std::size_t k = 0; k < shards_.size(); ++k) run_shard(k);
  }
  // One-shot injections are consumed by the epoch that ran them.
  std::fill(inject_fail_.begin(), inject_fail_.end(), 0);
  std::fill(inject_round_budget_.begin(), inject_round_budget_.end(), -1);

  // T1. Telemetry ingest at the epoch barrier: the shard auctions are
  // done and the epoch is single-threaded again, so every write in
  // IngestShardTelemetry is deterministic and ordered by shard index /
  // routed-part order, independent of how the shards were scheduled
  // above. It must run BEFORE the S1 containment pass so a failed
  // shard's flight dump can include its auction-phase spans and events.
  // The barrier span covers everything from here through T2 — the
  // single-threaded tail of the epoch.
  telemetry::ScopedSpan barrier_span(prof, fed_track, epoch, "barrier");
  IngestShardTelemetry(epoch, summaries, routing, epoch_traces);

  // S1. Containment aftermath: roll failed shards back to their epoch
  // checkpoints, advance every shard's health machine, square the planet
  // ledger, and recover the failed shards' federated bids.
  HealthBlock health_block;
  if (supervised) {
    health_block.supervised = true;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      ShardHealthStatus& h = health_[k];
      const ShardHealth before = h.status;
      if (!h.active) {
        ++health_block.quarantined_shards;
      } else if (summaries[k].failed) {
        // Bit-identical rejoin: the shard resumes from the exact state
        // the epoch started from, whatever the failure corrupted.
        shards_[k]->market->Restore(checkpoints[k]);
        ++h.restored_checkpoints;
        ++health_block.restored_checkpoints;
        ++health_block.failed_shards;
        ++h.failure_streak;
        if (h.failure_streak >= config_.supervisor.quarantine_streak) {
          // The streak is NOT reset: a recovering shard that fails its
          // probation epoch re-quarantines immediately, with backoff
          // doubled per quarantine up to the cap.
          h.status = ShardHealth::kQuarantined;
          int backoff = config_.supervisor.backoff_base;
          for (int i = 0; i < h.quarantine_count &&
                          backoff < config_.supervisor.backoff_cap;
               ++i) {
            backoff <<= 1;
          }
          h.backoff_remaining =
              std::min(backoff, config_.supervisor.backoff_cap);
          ++h.quarantine_count;
        } else {
          h.status = ShardHealth::kDegraded;
        }
      } else {
        h.failure_streak = 0;
        h.status = ShardHealth::kHealthy;
      }
      summaries[k].health = h.status;

      if (telemetry_ != nullptr) {
        const std::string transition = std::string(ToString(before)) +
                                       " -> " +
                                       std::string(ToString(h.status));
        if (h.active && before != h.status) {
          telemetry_->RecordEvent(k, epoch, "health: " + transition);
        }
        if (config_.telemetry.watchdog.recording_rules) {
          telemetry::MetricsRegistry& reg = telemetry_->registry();
          telemetry::Labels by_shard;
          by_shard.shard = shards_[k]->name;
          if (h.active && before != h.status) {
            // The health-flap counter the derived flap-rate rule reads.
            reg.AddCounter("fed_health_transitions", by_shard, 1.0);
          }
          // Post-transition health for the console (encodes the
          // ShardHealth enum value; telemetry/console.cpp decodes it).
          reg.SetGauge("fed_shard_health", by_shard,
                       static_cast<double>(h.status));
        }
        // Containment flight dump: the failed shard's recent ring (the
        // health event above included) plus the full span chain of every
        // traced bid that touched it this epoch.
        if (summaries[k].failed && config_.telemetry.flight_recorder) {
          std::vector<std::pair<std::uint64_t, std::vector<std::string>>>
              chains;
          for (const RoutedBid& routed : routing.routed) {
            if (routed.shard != k) continue;
            const std::uint64_t trace = epoch_traces[routed.bid_index];
            if (trace == 0) continue;
            bool seen = false;
            for (const auto& chain : chains) {
              seen = seen || chain.first == trace;
            }
            if (seen) continue;
            std::vector<std::string> lines;
            for (const telemetry::Span* span :
                 telemetry_->tracer().SpansOf(trace)) {
              lines.push_back(span->Render());
            }
            chains.emplace_back(trace, std::move(lines));
          }
          // The failing epoch's own report rolled back with the shard,
          // so the work tree shows the run-up — the recent epochs where
          // the shard was burning its round budget — plus an explicit
          // note for the unrecorded failure epoch.
          std::string work_tree;
          if (config_.telemetry.profiler.work_accounting) {
            work_tree =
                telemetry_->profiler()->RenderWorkTree(k, epoch);
          }
          telemetry_->recorder().DumpShard(k, shards_[k]->name, epoch,
                                           summaries[k].failure,
                                           transition, chains, work_tree);
        }
      }
    }

    // Failed shards' treasury floats: the restore reverted their
    // shard-local endowments, so nothing was spent and each team's full
    // outstanding allowance returns to its planet account.
    if (treasury_ != nullptr) {
      Money refunded;
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        if (!summaries[k].failed) continue;
        for (const std::string& team : treasury_->Teams()) {
          refunded += treasury_->RefundAllowance(team, k, epoch);
        }
      }
      health_block.refunded_allowance = refunded.ToDouble();
    }

    // Failed shards' routed federated bids. A bid all of whose parts
    // landed on failed shards is re-queued whole for next epoch's router
    // pass (reroute_failed_bids); parts whose sibling parts settled on
    // healthy shards — splits and mirrors — are counted refunded instead
    // (their money never left the planet ledger, and re-buying them
    // would double the quantities the healthy parts already won).
    for (std::size_t i = 0; i < routing.decisions.size(); ++i) {
      const RouteDecision& decision = routing.decisions[i];
      if (decision.shards.empty()) continue;
      std::size_t failed_parts = 0;
      for (std::size_t s : decision.shards) {
        if (summaries[s].failed) ++failed_parts;
      }
      if (failed_parts == 0) continue;
      const std::uint64_t trace =
          telemetry_ != nullptr ? epoch_traces[i] : 0;
      if (config_.supervisor.reroute_failed_bids &&
          failed_parts == decision.shards.size()) {
        pending_.push_back(epoch_bids[i]);
        ++health_block.rerouted_bids;
        if (trace != 0 && config_.telemetry.trace_bids) {
          telemetry::Span& span =
              telemetry_->EmitSpan(trace, "reroute", epoch, -1);
          span.attrs.emplace_back("reason", "every part on a failed shard");
        }
      } else {
        health_block.refunded_bids += failed_parts;
        if (trace != 0 && config_.telemetry.trace_bids) {
          telemetry::Span& span =
              telemetry_->EmitSpan(trace, "refund-part", epoch, -1);
          span.attrs.emplace_back("failed_parts",
                                  std::to_string(failed_parts));
          span.attrs.emplace_back(
              "parts", std::to_string(decision.shards.size()));
        }
      }
    }
    health_block.statuses = health_;

    // Supervisor counters for the registry (still single-threaded).
    if (telemetry_ != nullptr) {
      telemetry::MetricsRegistry& reg = telemetry_->registry();
      const telemetry::Labels planet;
      reg.AddCounter("fed_supervisor_failed_shards", planet,
                     static_cast<double>(health_block.failed_shards));
      reg.AddCounter("fed_supervisor_quarantined_epochs", planet,
                     static_cast<double>(health_block.quarantined_shards));
      reg.AddCounter(
          "fed_supervisor_restored_checkpoints", planet,
          static_cast<double>(health_block.restored_checkpoints));
      reg.AddCounter("fed_supervisor_rerouted_bids", planet,
                     static_cast<double>(health_block.rerouted_bids));
      reg.AddCounter("fed_supervisor_refunded_bids", planet,
                     static_cast<double>(health_block.refunded_bids));
      reg.AddCounter("fed_supervisor_refunded_allowance_dollars", planet,
                     health_block.refunded_allowance);
    }
  }

  // 3. Merge into the planet-wide report. The clearing-price spread is
  // measured before any rebalancing so it reflects the fleets the prices
  // were discovered on.
  FederationReport report = BuildFederationReport(epoch,
                                                  std::move(summaries),
                                                  std::move(routing));
  report.health = std::move(health_block);
  report.clearing_spread =
      ComputeClearingSpread(report, ShardFleets());

  // 4. Arbitrage digest: map this epoch's awards into the warehouse
  // before the money is swept.
  if (arbitrage_ != nullptr) {
    arbitrage_->ObserveEpoch(report);
    report.arbitrage.enabled = true;
    // Only bids that actually reached a shard's auction count — a buy
    // whose funding push came back empty was never submitted.
    report.arbitrage.buys_planned = arb_buys_submitted;
    report.arbitrage.sells_planned = arb_sells_submitted;
    report.arbitrage.holdings_units = arbitrage_->TotalHoldingsUnits();
    report.arbitrage.realized_pnl = arbitrage_->RealizedPnl();
    report.arbitrage.mark_to_market = arbitrage_->MarkToMarket();
    report.arbitrage.halted = arbitrage_->Halted();
  }

  // 5. Settlement sweep: every federated team's shard-local balance is
  // withdrawn to the shard operator and reconciled on the planet ledger.
  // Between epochs the shard floats are therefore exactly zero and the
  // treasury holds every federated dollar.
  if (treasury_ != nullptr) {
    const std::string memo = "treasury sweep epoch " +
                             std::to_string(epoch);
    for (const std::string& team : treasury_->Teams()) {
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        // Failed shards were restored to the epoch boundary (their
        // floats already refunded) and quarantined shards were never
        // funded: sweeping either would touch a ledger this epoch never
        // legitimately reached.
        if (supervised && (!report.shards[k].participated ||
                           report.shards[k].failed)) {
          continue;
        }
        const Money remaining =
            shards_[k]->market->WithdrawTeam(team, memo);
        treasury_->Sweep(team, k, remaining, epoch);
      }
    }
    report.treasury.enabled = true;
    report.treasury.minted = treasury_->TotalMinted().ToDouble();
    report.treasury.burned = treasury_->TotalBurned().ToDouble();
    report.treasury.team_total = treasury_->TeamTotal().ToDouble();
    report.treasury.float_total = treasury_->FloatTotal().ToDouble();
    report.treasury.shard_net_total =
        treasury_->ShardNetTotal().ToDouble();
    report.treasury.transfers = treasury_->Transfers().size();

    // Treasury flow gauges, read after the sweep so the float total is
    // the between-epochs invariant (zero) unless something leaked.
    if (telemetry_ != nullptr) {
      telemetry::MetricsRegistry& reg = telemetry_->registry();
      const telemetry::Labels planet;
      reg.SetGauge("fed_treasury_minted_dollars", planet,
                   report.treasury.minted);
      reg.SetGauge("fed_treasury_burned_dollars", planet,
                   report.treasury.burned);
      reg.SetGauge("fed_treasury_team_dollars", planet,
                   report.treasury.team_total);
      reg.SetGauge("fed_treasury_float_dollars", planet,
                   report.treasury.float_total);
      reg.SetGauge("fed_treasury_transfers", planet,
                   static_cast<double>(report.treasury.transfers));
      if (config_.telemetry.watchdog.recording_rules) {
        // |Σ accounts − (minted − burned)|: zero whenever the treasury's
        // conservation contract holds. The watchdog's drift alert
        // watches this; scenarios forbid it from ever firing.
        reg.SetGauge(
            "fed_treasury_conservation_residual_dollars", planet,
            std::abs(treasury_->CirculatingSupply().ToDouble() -
                     (report.treasury.minted - report.treasury.burned)));
      }
    }
  }

  // 6. Rebalance: whole-cluster migrations planned off the merged report
  // and applied serially — both shards' capacities change before the
  // next epoch.
  if (rebalancer_ != nullptr) {
    for (const MigrationPlan& plan :
         rebalancer_->Observe(report, ShardFleets())) {
      // Capacity never migrates into or out of a shard still proving
      // itself: a failed/quarantined shard's empty report reads as 0%
      // utilization, which would otherwise make it the planet's
      // favourite donor.
      if (supervised &&
          (health_[plan.from_shard].status != ShardHealth::kHealthy ||
           health_[plan.to_shard].status != ShardHealth::kHealthy)) {
        continue;
      }
      report.migrations.push_back(ApplyMigration(plan, epoch));
    }
  }

  // T2. Close the epoch's telemetry: planet-wide gauges, the logical
  // epoch snapshot, and — outside the deterministic channel — the
  // wall-clock timing (see CloseEpochTelemetry).
  CloseEpochTelemetry(epoch, report, time_epoch, wall_start);
  barrier_span.Stop();

  history_.push_back(std::move(report));
  return history_.back();
}

ClusterMigration FederatedExchange::ApplyMigration(
    const MigrationPlan& plan, int epoch) {
  PM_CHECK(plan.from_shard < shards_.size() &&
           plan.to_shard < shards_.size() &&
           plan.from_shard != plan.to_shard);
  Shard& from = *shards_[plan.from_shard];
  Shard& to = *shards_[plan.to_shard];
  cluster::Cluster moved = from.market->ExtractCluster(plan.cluster);
  // Qualify the name by origin: shard worlds reuse the generator's
  // cluster names ("r03"), so a bare adoption would collide. Repeat
  // migrations of the same base name into the same destination get a
  // deterministic "#<epoch>-<n>" suffix (n covers several same-base
  // clusters arriving in one epoch).
  const std::string base = plan.cluster.substr(0, plan.cluster.find('@'));
  std::string adopted = base + "@" + from.name;
  for (int n = 0; to.world.fleet.HasCluster(adopted); ++n) {
    adopted = base + "@" + from.name + "#" + std::to_string(epoch) + "-" +
              std::to_string(n);
  }
  moved.SetName(adopted);
  to.market->AdoptCluster(std::move(moved));

  // The arbitrage warehouse is keyed by (shard, pool): entries backed by
  // jobs that just travelled with the cluster must travel too.
  if (arbitrage_ != nullptr) {
    std::vector<std::pair<PoolId, PoolId>> pool_map;
    for (ResourceKind kind : kAllResourceKinds) {
      const auto from_pool =
          from.world.fleet.registry().Find(PoolKey{plan.cluster, kind});
      const auto to_pool =
          to.world.fleet.registry().Find(PoolKey{adopted, kind});
      if (from_pool.has_value() && to_pool.has_value()) {
        pool_map.emplace_back(*from_pool, *to_pool);
      }
    }
    arbitrage_->OnClusterMigrated(plan.from_shard, plan.to_shard,
                                  pool_map);
  }

  ClusterMigration record;
  record.cluster = plan.cluster;
  record.adopted_name = std::move(adopted);
  record.from_shard = plan.from_shard;
  record.to_shard = plan.to_shard;
  record.from_util = plan.from_util;
  record.to_util = plan.to_util;
  record.move_cost = plan.move_cost;
  record.expected_benefit = plan.expected_benefit;
  return record;
}

}  // namespace pm::federation
