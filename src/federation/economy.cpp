#include "federation/economy.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace pm::federation {

std::string_view ToString(CrossShardTransfer::Kind kind) {
  switch (kind) {
    case CrossShardTransfer::Kind::kMint:
      return "mint";
    case CrossShardTransfer::Kind::kBurn:
      return "burn";
    case CrossShardTransfer::Kind::kAllowance:
      return "allowance";
    case CrossShardTransfer::Kind::kReturn:
      return "return";
    case CrossShardTransfer::Kind::kSpend:
      return "spend";
    case CrossShardTransfer::Kind::kEarn:
      return "earn";
  }
  return "?";
}

FederationTreasury::FederationTreasury(std::vector<std::string> shard_names)
    : shard_names_(std::move(shard_names)) {
  PM_CHECK_MSG(!shard_names_.empty(), "treasury needs at least one shard");
  root_ = ledger_.CreateAccount("federation-root", Money(),
                                /*allow_negative=*/true);
  floats_.reserve(shard_names_.size());
  nets_.reserve(shard_names_.size());
  for (const std::string& name : shard_names_) {
    floats_.push_back(ledger_.CreateAccount("float:" + name));
    nets_.push_back(ledger_.CreateAccount("net:" + name,
                                          Money(),
                                          /*allow_negative=*/true));
  }
}

exchange::AccountId FederationTreasury::EnsureTeam(const std::string& team) {
  auto it = teams_.find(team);
  if (it != teams_.end()) return it->second;
  const exchange::AccountId id = ledger_.CreateAccount("team:" + team);
  teams_.emplace(team, id);
  team_order_.push_back(team);
  outstanding_.emplace(team, std::vector<Money>(floats_.size()));
  return id;
}

void FederationTreasury::Mint(const std::string& team, Money amount,
                              std::string memo, int epoch) {
  PM_CHECK_MSG(!amount.IsNegative(), "cannot mint a negative amount");
  if (amount.IsZero()) return;
  const exchange::AccountId id = EnsureTeam(team);
  const std::string status =
      ledger_.Transfer(root_, id, amount, std::move(memo));
  PM_CHECK_MSG(status.empty(), "mint failed: " << status);
  minted_ += amount;
  transfers_.push_back(CrossShardTransfer{CrossShardTransfer::Kind::kMint,
                                          epoch, team,
                                          CrossShardTransfer::kPlanetScope,
                                          amount});
}

Money FederationTreasury::Burn(const std::string& team, Money amount,
                               std::string memo, int epoch) {
  PM_CHECK_MSG(!amount.IsNegative(), "cannot burn a negative amount");
  const exchange::AccountId id = EnsureTeam(team);
  const Money burned = std::min(amount, ledger_.Balance(id));
  if (burned.IsZero()) return burned;
  const std::string status =
      ledger_.Transfer(id, root_, burned, std::move(memo));
  PM_CHECK_MSG(status.empty(), "burn failed: " << status);
  burned_ += burned;
  transfers_.push_back(CrossShardTransfer{CrossShardTransfer::Kind::kBurn,
                                          epoch, team,
                                          CrossShardTransfer::kPlanetScope,
                                          burned});
  return burned;
}

Money FederationTreasury::PushAllowance(const std::string& team,
                                        std::size_t shard, Money requested,
                                        int epoch) {
  PM_CHECK(shard < floats_.size());
  PM_CHECK_MSG(!requested.IsNegative(), "allowance must be non-negative");
  const exchange::AccountId id = EnsureTeam(team);
  const Money granted = std::min(requested, ledger_.Balance(id));
  if (granted.IsZero()) return granted;
  const std::string status =
      ledger_.Transfer(id, floats_[shard], granted,
                       "allowance " + team + " -> " + shard_names_[shard]);
  PM_CHECK_MSG(status.empty(), "allowance failed: " << status);
  outstanding_[team][shard] += granted;
  transfers_.push_back(CrossShardTransfer{
      CrossShardTransfer::Kind::kAllowance, epoch, team, shard, granted});
  return granted;
}

void FederationTreasury::Sweep(const std::string& team, std::size_t shard,
                               Money local_remaining, int epoch) {
  PM_CHECK(shard < floats_.size());
  PM_CHECK_MSG(!local_remaining.IsNegative(),
               "shard-local balances are non-negative");
  const exchange::AccountId id = EnsureTeam(team);
  Money& out = outstanding_[team][shard];

  // Unspent allowance (up to what is outstanding) returns to the team.
  const Money returned = std::min(out, local_remaining);
  if (!returned.IsZero()) {
    const std::string status = ledger_.Transfer(
        floats_[shard], id, returned,
        "sweep return " + shard_names_[shard] + " -> " + team);
    PM_CHECK_MSG(status.empty(), "sweep return failed: " << status);
    transfers_.push_back(CrossShardTransfer{
        CrossShardTransfer::Kind::kReturn, epoch, team, shard, returned});
  }

  if (out > local_remaining) {
    // The difference stayed with the shard operator: the team's auction
    // spending in that shard this epoch.
    const Money spent = out - local_remaining;
    const std::string status = ledger_.Transfer(
        floats_[shard], nets_[shard], spent,
        "sweep spend " + team + " @ " + shard_names_[shard]);
    PM_CHECK_MSG(status.empty(), "sweep spend failed: " << status);
    transfers_.push_back(CrossShardTransfer{
        CrossShardTransfer::Kind::kSpend, epoch, team, shard, spent});
  } else if (local_remaining > out) {
    // The team earned money inside the shard (sold resources for more
    // than its allowance): the shard's net account pays it out, going
    // negative when the shard operator was a net payer.
    const Money earned = local_remaining - out;
    const std::string status = ledger_.Transfer(
        nets_[shard], id, earned,
        "sweep earn " + team + " @ " + shard_names_[shard]);
    PM_CHECK_MSG(status.empty(), "sweep earn failed: " << status);
    transfers_.push_back(CrossShardTransfer{
        CrossShardTransfer::Kind::kEarn, epoch, team, shard, earned});
  }
  out = Money();
}

Money FederationTreasury::RefundAllowance(const std::string& team,
                                          std::size_t shard, int epoch) {
  PM_CHECK(shard < floats_.size());
  const exchange::AccountId id = EnsureTeam(team);
  Money& out = outstanding_[team][shard];
  const Money refunded = out;
  if (refunded.IsZero()) return refunded;
  const std::string status = ledger_.Transfer(
      floats_[shard], id, refunded,
      "refund allowance " + shard_names_[shard] + " -> " + team);
  PM_CHECK_MSG(status.empty(), "allowance refund failed: " << status);
  transfers_.push_back(CrossShardTransfer{
      CrossShardTransfer::Kind::kReturn, epoch, team, shard, refunded});
  out = Money();
  return refunded;
}

Money FederationTreasury::PlanetBalance(const std::string& team) const {
  auto it = teams_.find(team);
  if (it == teams_.end()) return Money();
  return ledger_.Balance(it->second);
}

Money FederationTreasury::ShardFloat(std::size_t shard) const {
  PM_CHECK(shard < floats_.size());
  return ledger_.Balance(floats_[shard]);
}

Money FederationTreasury::ShardNet(std::size_t shard) const {
  PM_CHECK(shard < nets_.size());
  return ledger_.Balance(nets_[shard]);
}

Money FederationTreasury::Outstanding(const std::string& team,
                                      std::size_t shard) const {
  PM_CHECK(shard < floats_.size());
  auto it = outstanding_.find(team);
  if (it == outstanding_.end()) return Money();
  return it->second[shard];
}

Money FederationTreasury::TeamTotal() const {
  Money total;
  for (const auto& [team, id] : teams_) total += ledger_.Balance(id);
  return total;
}

Money FederationTreasury::FloatTotal() const {
  Money total;
  for (const exchange::AccountId id : floats_) total += ledger_.Balance(id);
  return total;
}

Money FederationTreasury::ShardNetTotal() const {
  Money total;
  for (const exchange::AccountId id : nets_) total += ledger_.Balance(id);
  return total;
}

Money FederationTreasury::CirculatingSupply() const {
  return TeamTotal() + FloatTotal() + ShardNetTotal();
}

std::string FederationTreasury::Render() const {
  std::ostringstream os;
  os << "=== federation treasury ===\n" << ledger_.RenderAccounts();
  os << "minted " << minted_.ToString() << ", burned "
     << burned_.ToString() << ", circulating "
     << CirculatingSupply().ToString() << " ("
     << transfers_.size() << " cross-shard transfers)\n";
  return os.str();
}

}  // namespace pm::federation
