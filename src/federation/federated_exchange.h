// planetmarket: the planet-wide federated exchange.
//
// The paper provisions compute across *planet-wide clusters*; a single
// Market clears one fleet. FederatedExchange fronts N per-cluster market
// shards — each a full exchange::Market with its own fleet, team
// population, ledger, reserve pricer, and arena-compiled DemandEngine —
// and adds the thin federation layer on top:
//
//   demand  ──► MarketRouter places federation-level bids onto shards
//               (affinity / cheapest / split / mirrored, with spill-over
//               when a shard's reserve-weighted price runs hot);
//   clearing ─► every shard runs its clock auction concurrently on a
//               ThreadPool (or serially — bit-identical either way, since
//               shards share no mutable state);
//   reporting ► per-shard reports merge into one planet-wide
//               FederationReport (federation/report.h).
//
// Determinism contract: shard k's world and market draw their seeds from
// ShardWorkloadSeed/ShardMarketSeed(config.seed, k), every shard's round
// is sequential within the shard, and shards are independent — so a
// federated epoch is bit-identical across thread counts, across reruns
// with the same seeds, and (per shard) to running that shard's
// Market::RunAuction standalone with the same bids and seeds. Shards can
// also run behind pm::net proxy nodes (proxy_nodes_per_shard), which
// changes where the demand evaluation work runs, not the mechanism.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "agents/workload_gen.h"
#include "common/thread_pool.h"
#include "exchange/market.h"
#include "federation/report.h"
#include "federation/router.h"

namespace pm::federation {

/// One shard's recipe: a synthetic world plus the market over it. The
/// workload and market seeds are overridden with federation-derived
/// streams (see ShardWorkloadSeed) so shards never share RNG state, and
/// `market.distributed_proxy_nodes` must be left at 0 — the wire path is
/// configured federation-wide via FederationConfig::proxy_nodes_per_shard
/// (construction fails loudly otherwise).
struct ShardSpec {
  std::string name;
  agents::WorkloadConfig workload;
  exchange::MarketConfig market;
};

/// Federation-level configuration.
struct FederationConfig {
  /// Base seed; shard k's workload and market seeds derive from it.
  std::uint64_t seed = 20090425;

  RouterConfig router;

  /// Worker threads for concurrent shard auctions; 0 or 1 runs shards
  /// serially inline. Results are identical either way.
  std::size_t num_threads = 0;

  /// When > 0, every shard's binding auctions run over the pm::net wire
  /// protocol behind this many proxy nodes. Requires each ShardSpec's
  /// auction config to be distributed-compatible (no intra-round
  /// bisection, thread pool, or trajectory recording) — construction
  /// fails loudly otherwise.
  std::size_t proxy_nodes_per_shard = 0;
};

/// N sharded markets behind one planet-wide exchange.
class FederatedExchange {
 public:
  FederatedExchange(std::vector<ShardSpec> specs, FederationConfig config);

  /// Deterministic per-shard seed derivation, exposed so a shard's world
  /// and market can be reconstructed standalone (the bit-identical
  /// equivalence contract of tests/federation_test.cpp).
  static std::uint64_t ShardWorkloadSeed(std::uint64_t federation_seed,
                                         std::size_t shard);
  static std::uint64_t ShardMarketSeed(std::uint64_t federation_seed,
                                       std::size_t shard);

  std::size_t NumShards() const { return shards_.size(); }
  const std::string& ShardName(std::size_t shard) const;
  exchange::Market& ShardMarket(std::size_t shard);
  const exchange::Market& ShardMarket(std::size_t shard) const;
  const agents::World& ShardWorld(std::size_t shard) const;

  /// The router's snapshot of every shard (current reserve prices, free
  /// capacity, fixed prices).
  std::vector<ShardView> BuildShardViews() const;

  /// Mints budget for a planet-wide team in every shard's local market
  /// (local ledgers are authoritative; cross-shard budget transfers are a
  /// follow-up — see docs/federation.md).
  void EndowFederatedTeam(const std::string& team, Money per_shard_budget);

  /// Queues a federation-level bid for the next epoch's routing pass.
  void SubmitFederatedBid(FederatedBid bid);

  std::size_t PendingFederatedBids() const { return pending_.size(); }

  /// Runs one settlement epoch: snapshot shard views, route queued
  /// federated bids, run every shard's auction round (concurrently when
  /// configured), and merge the results. Returns the epoch's report (also
  /// appended to History()).
  FederationReport RunEpoch();

  const std::vector<FederationReport>& History() const { return history_; }
  int EpochCount() const { return static_cast<int>(history_.size()); }

 private:
  struct Shard {
    std::string name;
    agents::World world;
    std::unique_ptr<exchange::Market> market;
  };

  FederationConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;  // Stable addresses: each
                                                // market points into its
                                                // shard's world.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<FederatedBid> pending_;
  std::vector<FederationReport> history_;
};

}  // namespace pm::federation
