// planetmarket: the planet-wide federated exchange.
//
// The paper provisions compute across *planet-wide clusters*; a single
// Market clears one fleet. FederatedExchange fronts N per-cluster market
// shards — each a full exchange::Market with its own fleet, team
// population, ledger, reserve pricer, and arena-compiled DemandEngine —
// and adds the thin federation layer on top:
//
//   demand  ──► MarketRouter places federation-level bids onto shards
//               (affinity / cheapest / split / mirrored, with spill-over
//               when a shard's reserve-weighted price runs hot);
//   clearing ─► every shard runs its clock auction concurrently on a
//               ThreadPool (or serially — bit-identical either way, since
//               shards share no mutable state);
//   reporting ► per-shard reports merge into one planet-wide
//               FederationReport (federation/report.h).
//
// Determinism contract: shard k's world and market draw their seeds from
// ShardWorkloadSeed/ShardMarketSeed(config.seed, k), every shard's round
// is sequential within the shard, and shards are independent — so a
// federated epoch is bit-identical across thread counts, across reruns
// with the same seeds, and (per shard) to running that shard's
// Market::RunAuction standalone with the same bids and seeds. Shards can
// also run behind pm::net proxy nodes (proxy_nodes_per_shard), which
// changes where the demand evaluation work runs, not the mechanism.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "agents/workload_gen.h"
#include "common/thread_pool.h"
#include "exchange/market.h"
#include "federation/arbitrage.h"
#include "federation/economy.h"
#include "federation/health.h"
#include "federation/rebalance.h"
#include "federation/report.h"
#include "federation/router.h"
#include "telemetry/telemetry.h"

namespace pm::federation {

/// The planet-wide economy layer on top of the sharded exchange. All
/// three features default OFF, in which case an epoch's market outcomes
/// (prices, awards, settlements, fleet state) are bit-identical to the
/// plain PR 2 federation (shard-local minting, no cross-shard agents,
/// static fleets) — asserted by tests/federation_economy_test.cpp. The
/// reporting plane does always stamp the read-only cross-shard
/// clearing-price spread on the epoch report (the arbitrage bench's
/// baseline needs it), which touches no market state.
struct EconomyConfig {
  /// One planet-wide ledger: EndowFederatedTeam mints planet currency
  /// instead of per-shard budgets, every epoch pushes shard allowances
  /// before the auctions and sweeps shard balances back afterwards
  /// (money conserved modulo explicit mints/burns — see economy.h).
  bool treasury = false;

  /// Cross-shard arbitrage agents (requires `treasury`: the agent's
  /// working capital is a treasury margin account).
  ArbitrageConfig arbitrage;

  /// Whole-cluster migration between shards.
  RebalanceConfig rebalance;
};

/// One shard's recipe: a synthetic world plus the market over it. The
/// workload and market seeds are overridden with federation-derived
/// streams (see ShardWorkloadSeed) so shards never share RNG state, and
/// `market.distributed_proxy_nodes` must be left at 0 — the wire path is
/// configured federation-wide via FederationConfig::proxy_nodes_per_shard
/// (construction fails loudly otherwise).
struct ShardSpec {
  std::string name;
  agents::WorkloadConfig workload;
  exchange::MarketConfig market;
};

/// Federation-level configuration.
struct FederationConfig {
  /// Base seed; shard k's workload and market seeds derive from it.
  std::uint64_t seed = 20090425;

  RouterConfig router;

  /// Worker threads for concurrent shard auctions; 0 or 1 runs shards
  /// serially inline. Results are identical either way.
  std::size_t num_threads = 0;

  /// Pipelined epochs (RunEpochs): overlap shard demand collection for
  /// epoch e+1 with the single-threaded settlement/telemetry barrier of
  /// epoch e, using double-buffered per-shard summary slots and a depth-2
  /// epoch window. Off (the default), RunEpochs is a plain serial
  /// RunEpoch loop — bit-identical to today's federation. On, the
  /// pipeline engages only for configurations whose barrier does not
  /// write shard state (no supervisor, no treasury/arbitrage/rebalancer,
  /// no queued federated bids, no wall-clock timings, and a thread pool
  /// to overlap on); anything else silently falls back to the serial
  /// loop, which preserves supervisor/checkpoint semantics by
  /// construction. Pipelined results are bit-identical to serial either
  /// way: each shard's auction sequence is unchanged and the barrier
  /// consumes epochs strictly in order (tests/pipelined_federation_test).
  bool pipelined = false;

  /// When > 0, every shard's binding auctions run over the pm::net wire
  /// protocol behind this many proxy nodes. Requires each ShardSpec's
  /// auction config to be distributed-compatible (no intra-round
  /// bisection, thread pool, or trajectory recording) — construction
  /// fails loudly otherwise.
  std::size_t proxy_nodes_per_shard = 0;

  /// Treasury / arbitrage / rebalancing (all default off).
  EconomyConfig economy;

  /// Epoch supervisor (failure domains). Off (the default), RunEpoch is
  /// bit-identical to the unsupervised federation: no checkpoints are
  /// taken and a shard failure propagates as an exception — after an
  /// emergency treasury sweep so the planet ledger's conservation
  /// invariant holds even then. On, each shard epoch runs inside a
  /// containment boundary: a throwing shard (or one exceeding an injected
  /// round budget) is rolled back to its epoch-boundary checkpoint, its
  /// treasury float refunded, its routed bids re-routed or refunded, and
  /// its health machine advanced (healthy → degraded → quarantined →
  /// recovering) while the planet epoch completes without it.
  SupervisorConfig supervisor;

  /// The telemetry plane (metrics registry, bid tracing, flight
  /// recorder). Off (the default), no Telemetry object is constructed,
  /// every instrumentation site below costs one null-pointer test, and
  /// epoch behavior plus every report is bit-identical to a federation
  /// without the plane (asserted by tests/telemetry_test.cpp). On, all
  /// telemetry writes happen in RunEpoch's single-threaded barrier
  /// sections, so exports stay byte-identical across thread counts.
  telemetry::TelemetryConfig telemetry;

  /// Federation-wide lossy-wire injection for the shards' proxy paths.
  /// Requires proxy_nodes_per_shard > 0; each shard derives its own fault
  /// seed from `wire_faults.seed` and its index, so fault patterns differ
  /// per shard but reproduce bit for bit. Per-shard
  /// ShardSpec::market.wire_faults must be left disabled (construction
  /// fails loudly otherwise), mirroring the proxy-node rule.
  net::FaultConfig wire_faults;
};

/// N sharded markets behind one planet-wide exchange.
class FederatedExchange {
 public:
  FederatedExchange(std::vector<ShardSpec> specs, FederationConfig config);

  /// Deterministic per-shard seed derivation, exposed so a shard's world
  /// and market can be reconstructed standalone (the bit-identical
  /// equivalence contract of tests/federation_test.cpp).
  static std::uint64_t ShardWorkloadSeed(std::uint64_t federation_seed,
                                         std::size_t shard);
  static std::uint64_t ShardMarketSeed(std::uint64_t federation_seed,
                                       std::size_t shard);

  std::size_t NumShards() const { return shards_.size(); }
  const std::string& ShardName(std::size_t shard) const;
  exchange::Market& ShardMarket(std::size_t shard);
  const exchange::Market& ShardMarket(std::size_t shard) const;
  const agents::World& ShardWorld(std::size_t shard) const;

  /// Mutable access to a shard's world for scenario-driven mid-run
  /// mutation (demand shocks scaling team profiles, churn processes
  /// attached to the shard's fleet/agents). The shard's market keeps
  /// pointers into this world, so mutations are visible to the next
  /// epoch; callers must not add/remove agents or replace the fleet.
  agents::World& MutableShardWorld(std::size_t shard);

  /// The router's snapshot of every shard (current reserve prices, free
  /// capacity, fixed prices).
  std::vector<ShardView> BuildShardViews() const;

  /// Funds a planet-wide team. Without the treasury (the PR 2 path) this
  /// mints `per_shard_budget` in every shard's local ledger, which stays
  /// authoritative. With EconomyConfig::treasury it instead mints
  /// `per_shard_budget × NumShards()` of planet currency into the team's
  /// treasury account and registers a per-shard allowance of
  /// `per_shard_budget`: each epoch pushes (up to) that allowance into
  /// every shard before the auctions and sweeps the remainders back
  /// afterwards, so between epochs the planet ledger holds every
  /// federated dollar.
  void EndowFederatedTeam(const std::string& team, Money per_shard_budget);

  /// Retires a federated team (scenario cohorts leaving the planet): the
  /// team stops receiving epoch allowances and its remaining money is
  /// removed from circulation — burned from the planet ledger under the
  /// treasury (an explicit Burn record, so conservation still balances),
  /// or withdrawn from every shard's local ledger without one. Returns
  /// the amount removed. Unknown teams return zero.
  Money RetireFederatedTeam(const std::string& team);

  /// Queues a federation-level bid for the next epoch's routing pass.
  void SubmitFederatedBid(FederatedBid bid);

  std::size_t PendingFederatedBids() const { return pending_.size(); }

  /// Runs one settlement epoch: snapshot shard views, route queued
  /// federated bids, run every shard's auction round (concurrently when
  /// configured), and merge the results. Returns the epoch's report (also
  /// appended to History()).
  FederationReport RunEpoch();

  /// Runs `n` epochs. With FederationConfig::pipelined on and an
  /// eligible configuration (see the flag's comment) the epochs run
  /// through the overlapped pipeline; otherwise this is exactly a serial
  /// RunEpoch loop. History() gains `n` reports either way, bit-identical
  /// between the two paths.
  void RunEpochs(int n);

  const std::vector<FederationReport>& History() const { return history_; }
  int EpochCount() const { return static_cast<int>(history_.size()); }

  // ------------------------------------------------- failure domains --
  /// Shard k's live health record (all-healthy defaults when the
  /// supervisor is off).
  const ShardHealthStatus& ShardHealthOf(std::size_t shard) const;

  /// One-shot fault injection: the next epoch, shard k's auction runs to
  /// completion and then throws — exactly the shape of a crash landing
  /// after state was mutated, so containment must roll the shard back.
  /// With the supervisor on the failure is contained; off, it propagates
  /// out of RunEpoch (after the emergency treasury sweep). Cleared after
  /// the epoch; scenario timelines re-inject per epoch.
  void InjectShardFailure(std::size_t shard);

  /// One-shot virtual-time epoch budget: next epoch, shard k fails if its
  /// auction takes more than `max_rounds` clock rounds — the deterministic
  /// stand-in for a wall-clock epoch deadline. Contained or propagated
  /// exactly like InjectShardFailure.
  void InjectEpochRoundBudget(std::size_t shard, int max_rounds);

  /// Read-only fleet pointers in shard order (price-signal and
  /// rebalancing helpers take these).
  std::vector<const cluster::Fleet*> ShardFleets() const;

  /// The planet ledger (null when EconomyConfig::treasury is off).
  const FederationTreasury* treasury() const { return treasury_.get(); }

  /// The cross-shard arbitrageur (null when disabled).
  const ArbitrageAgent* arbitrageur() const { return arbitrage_.get(); }

  /// The fleet rebalancer (null when disabled).
  const FleetRebalancer* rebalancer() const { return rebalancer_.get(); }

  /// The telemetry plane (null when FederationConfig::telemetry is off).
  const telemetry::Telemetry* telemetry() const { return telemetry_.get(); }

 private:
  struct Shard {
    std::string name;
    agents::World world;
    std::unique_ptr<exchange::Market> market;
  };

  /// A treasury-funded planet-wide team and its per-shard epoch
  /// allowance.
  struct FederatedTeam {
    std::string team;
    Money per_shard_allowance;
  };

  /// Executes one planned cluster migration and returns its record.
  ClusterMigration ApplyMigration(const MigrationPlan& plan, int epoch);

  /// The epoch body; RunEpoch wraps it with the exception-unwind path.
  FederationReport RunEpochInternal(int epoch);

  /// True when RunEpochs may take the overlapped pipeline: the barrier
  /// must not write shard state (see FederationConfig::pipelined).
  bool CanPipeline() const;

  /// The overlapped epoch pipeline (only called when CanPipeline()).
  void RunEpochsPipelined(int n);

  /// The T1 barrier block: per-shard metric ingest plus bid-lifecycle
  /// spans. Single-threaded by contract; shared verbatim by the serial
  /// epoch and the pipelined barrier so the two stay byte-identical.
  void IngestShardTelemetry(int epoch,
                            const std::vector<ShardEpochSummary>& summaries,
                            const RoutingResult& routing,
                            const std::vector<std::uint64_t>& epoch_traces);

  /// The T2 barrier block: planet gauges, watchdog pass, epoch snapshot,
  /// optional wall-clock timing. Shared like IngestShardTelemetry.
  void CloseEpochTelemetry(
      int epoch, FederationReport& report, bool time_epoch,
      std::chrono::steady_clock::time_point wall_start);

  /// Reconciles every (team, shard) float back onto the planet ledger —
  /// the exception-unwind path for the unsupervised federation: without
  /// it a shard throwing mid-epoch leaves this epoch's allowances
  /// stranded in shard floats forever (conservation still sums, but the
  /// between-epochs zero-float contract breaks and the money is lost to
  /// its teams). Withdraws each team's shard-local balance and sweeps.
  void EmergencySweep(int epoch);

  FederationConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;  // Stable addresses: each
                                                // market points into its
                                                // shard's world.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<FederatedBid> pending_;
  std::vector<FederationReport> history_;

  // Failure domains (one slot per shard).
  std::vector<ShardHealthStatus> health_;
  std::vector<char> inject_fail_;        // One-shot crash injection.
  std::vector<int> inject_round_budget_; // One-shot budgets (-1 = none).

  // Economy layer (all null/empty when disabled).
  std::unique_ptr<FederationTreasury> treasury_;
  std::unique_ptr<ArbitrageAgent> arbitrage_;
  std::unique_ptr<FleetRebalancer> rebalancer_;
  std::vector<FederatedTeam> federated_teams_;

  // Telemetry plane (null when FederationConfig::telemetry is off).
  std::unique_ptr<telemetry::Telemetry> telemetry_;
};

}  // namespace pm::federation
