// planetmarket: the federation treasury — one planet-wide currency pool.
//
// PR 2 left each shard minting its own money (EndowFederatedTeam endowed a
// planet-wide team in every local ledger independently), so the federation
// had no notion of total currency: prices in hot and cool shards could
// drift apart with nothing coupling budgets across markets. The treasury
// is the federation-level ledger the ROADMAP calls for, shaped after the
// central banks of Tycoon-style auctioneer federations: one planet-wide
// account per team, explicit cross-shard transfer records, and an
// allowance/sweep cycle per epoch.
//
//   mint      ──► root → team (the only way money enters circulation)
//   push      ──► team → shard float  +  a matching shard-local endowment
//   auction   ──► the shard's own ledger settles as always (PR 2 path)
//   sweep     ──► shard float → team (unspent) and → shard-net (spent);
//                 the team's local balance is withdrawn to the shard
//                 operator, so between epochs every federated dollar is
//                 back on the planet ledger
//
// Conservation contract (asserted by tests/federation_economy_test.cpp):
// at every point, Σ team balances + Σ shard floats + Σ shard-net equals
// TotalMinted() − TotalBurned(); between epochs every shard float is zero
// and every federated team's shard-local budget is zero. Money therefore
// only enters or leaves the federation through explicit Mint/Burn records.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/money.h"
#include "exchange/ledger.h"

namespace pm::federation {

/// One explicit cross-shard money movement, beyond the raw journal: which
/// team, which shard, which epoch, and why. `shard == kPlanetScope` marks
/// planet-level mints/burns.
struct CrossShardTransfer {
  static constexpr std::size_t kPlanetScope = static_cast<std::size_t>(-1);

  enum class Kind {
    kMint,       // root → team: new currency.
    kBurn,       // team → root: currency retired.
    kAllowance,  // team → shard float: budget pushed into a shard.
    kReturn,     // shard float → team: unspent allowance swept back.
    kSpend,      // shard float → shard-net: what the shard kept.
    kEarn,       // shard-net → team: local earnings pulled to the planet.
  };

  Kind kind = Kind::kMint;
  int epoch = -1;  // -1 for out-of-epoch movements (initial mints).
  std::string team;
  std::size_t shard = kPlanetScope;
  Money amount;
};

std::string_view ToString(CrossShardTransfer::Kind kind);

/// The planet-wide ledger: per-team accounts, one float account per shard
/// (money currently pushed into that shard's local market), and one
/// net-settlement account per shard (cumulative amount the shard's
/// operator kept from — or paid out to — federated teams).
class FederationTreasury {
 public:
  explicit FederationTreasury(std::vector<std::string> shard_names);

  std::size_t NumShards() const { return floats_.size(); }

  // ---------------------------------------------------------- currency --
  /// Mints new planet currency into a team's account (creating it on
  /// first use). The only way money enters circulation.
  void Mint(const std::string& team, Money amount, std::string memo,
            int epoch = -1);

  /// Retires currency from a team's account (clamped to its balance).
  /// Returns the amount actually burned.
  Money Burn(const std::string& team, Money amount, std::string memo,
             int epoch = -1);

  // -------------------------------------------------------- epoch flow --
  /// Moves up to `requested` from the team's planet account into shard
  /// `k`'s float, recording the outstanding allowance. Returns the amount
  /// actually granted (clamped to the planet balance; zero when broke).
  /// The caller must mirror the grant with a shard-local endowment.
  Money PushAllowance(const std::string& team, std::size_t shard,
                      Money requested, int epoch);

  /// Reconciles one (team, shard) pair after the shard's auction:
  /// `local_remaining` is the team's shard-local balance, which the
  /// caller must have withdrawn back to the shard's operator. Unspent
  /// allowance returns to the team, spent allowance moves to the shard's
  /// net account, and local earnings beyond the allowance are drawn from
  /// the shard's net account (which may go negative — the shard operator
  /// paid the team more than it collected).
  void Sweep(const std::string& team, std::size_t shard,
             Money local_remaining, int epoch);

  /// Returns the team's entire outstanding allowance in shard `k` to its
  /// planet account as a kReturn — the failure-domain path: the shard was
  /// restored from its epoch checkpoint, so nothing was actually spent and
  /// Sweep's local_remaining (zero after a restore-and-withdraw) would
  /// wrongly book the whole float as kSpend. Returns the amount refunded.
  Money RefundAllowance(const std::string& team, std::size_t shard,
                        int epoch);

  // ---------------------------------------------------------- balances --
  Money PlanetBalance(const std::string& team) const;
  Money ShardFloat(std::size_t shard) const;
  Money ShardNet(std::size_t shard) const;
  /// Allowance pushed to (team, shard) and not yet swept.
  Money Outstanding(const std::string& team, std::size_t shard) const;

  Money TotalMinted() const { return minted_; }
  Money TotalBurned() const { return burned_; }
  /// Σ team balances + Σ floats + Σ shard-net. Invariant: equals
  /// TotalMinted() − TotalBurned() at all times.
  Money CirculatingSupply() const;
  Money TeamTotal() const;
  Money FloatTotal() const;
  Money ShardNetTotal() const;

  /// Teams with planet accounts, in creation order.
  const std::vector<std::string>& Teams() const { return team_order_; }

  const std::vector<CrossShardTransfer>& Transfers() const {
    return transfers_;
  }
  const exchange::Ledger& ledger() const { return ledger_; }

  /// Renders the planet ledger page (accounts + supply line).
  std::string Render() const;

 private:
  exchange::AccountId EnsureTeam(const std::string& team);

  exchange::Ledger ledger_;
  exchange::AccountId root_;                  // Mint source, allow-negative.
  std::vector<exchange::AccountId> floats_;   // One per shard.
  std::vector<exchange::AccountId> nets_;     // One per shard, allow-negative.
  std::vector<std::string> shard_names_;
  std::unordered_map<std::string, exchange::AccountId> teams_;
  std::vector<std::string> team_order_;
  // Outstanding allowance per (team, shard), reset to zero by Sweep.
  std::unordered_map<std::string, std::vector<Money>> outstanding_;
  std::vector<CrossShardTransfer> transfers_;
  Money minted_;
  Money burned_;
};

}  // namespace pm::federation
