#include "federation/router.h"

#include <algorithm>
#include <array>
#include <limits>
#include <map>

#include "common/check.h"

namespace pm::federation {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Kinds the requirement actually asks for.
bool HasPositiveQuantity(const cluster::TaskShape& quantity) {
  for (ResourceKind kind : kAllResourceKinds) {
    if (quantity.Of(kind) > 0.0) return true;
  }
  return false;
}

}  // namespace

std::string_view ToString(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kHomeAffinity:
      return "home-affinity";
    case RoutingPolicy::kCheapestPrice:
      return "cheapest-price";
    case RoutingPolicy::kSplit:
      return "split";
    case RoutingPolicy::kMirrored:
      return "mirrored";
  }
  return "unknown";
}

MarketRouter::MarketRouter(RouterConfig config, std::vector<ShardView> views)
    : config_(std::move(config)), views_(std::move(views)) {
  PM_CHECK_MSG(!views_.empty(), "router needs at least one shard");
  PM_CHECK_MSG(config_.spill_threshold > 0.0,
               "spill threshold must be positive");
  for (const ShardView& view : views_) {
    PM_CHECK_MSG(view.registry != nullptr,
                 "shard view '" << view.name << "' has no registry");
    PM_CHECK_MSG(view.reserve_prices.size() == view.registry->size() &&
                     view.free_capacity.size() == view.registry->size() &&
                     view.fixed_prices.size() == view.registry->size(),
                 "shard view '" << view.name
                                << "' vectors must cover every pool");
  }
}

ShardQuote MarketRouter::Quote(std::size_t shard,
                               const cluster::TaskShape& quantity) const {
  PM_CHECK(shard < views_.size());
  const ShardView& view = views_[shard];
  ShardQuote best;
  if (view.health == ShardHealth::kQuarantined) {
    return best;  // Sitting out this epoch: never a routing target.
  }
  const double health_penalty =
      view.health == ShardHealth::kHealthy
          ? 0.0
          : config_.degraded_heat_penalty;
  bool have_best = false;
  bool best_feasible = false;
  for (const std::string& cluster : view.registry->Clusters()) {
    ShardQuote quote;
    quote.viable = true;
    quote.cluster = cluster;
    quote.fit = kInf;
    bool usable = true;
    for (ResourceKind kind : kAllResourceKinds) {
      const double qty = quantity.Of(kind);
      if (qty <= 0.0) continue;
      const auto pool = view.registry->Find(PoolKey{cluster, kind});
      if (!pool.has_value()) {
        usable = false;
        break;
      }
      quote.reserve_cost += view.reserve_prices[*pool] * qty;
      quote.fixed_cost += view.fixed_prices[*pool] * qty;
      quote.fit = std::min(quote.fit, view.free_capacity[*pool] / qty);
    }
    if (!usable) continue;
    if (quote.fit == kInf) quote.fit = 0.0;  // Nothing was requested.
    quote.heat =
        quote.fixed_cost > 0.0 ? quote.reserve_cost / quote.fixed_cost : 1.0;
    // Outcome-aware heat: a shard that recently failed to place awarded
    // buys is congested below the price signal (machines fragmented or
    // capacity gone); count that against it.
    quote.heat *=
        1.0 + config_.failure_heat_weight * view.placement_failure_rate;
    // Failure-domain shedding: a shard still proving itself after a
    // contained failure reads hotter than its prices claim.
    quote.heat *= 1.0 + health_penalty;
    const bool feasible = quote.fit >= 1.0;
    // Feasible clusters beat infeasible ones; within a class, cheapest
    // reserve cost wins; ties keep the earliest-interned cluster.
    bool better = false;
    if (!have_best) {
      better = true;
    } else if (feasible != best_feasible) {
      better = feasible;
    } else if (feasible) {
      better = quote.reserve_cost < best.reserve_cost;
    } else {
      better = quote.fit > best.fit;
    }
    if (better) {
      best = quote;
      best_feasible = feasible;
      have_best = true;
    }
  }
  return best;  // viable stays false when no cluster covered the kinds.
}

bid::Bid MarketRouter::Materialize(const ShardQuote& quote,
                                   std::size_t shard,
                                   const FederatedBid& fed,
                                   const cluster::TaskShape& quantity,
                                   double limit,
                                   const std::string& suffix) const {
  const ShardView& view = views_[shard];
  std::vector<bid::BundleItem> items;
  for (ResourceKind kind : kAllResourceKinds) {
    const double qty = quantity.Of(kind);
    if (qty <= 0.0) continue;
    const auto pool = view.registry->Find(PoolKey{quote.cluster, kind});
    PM_CHECK(pool.has_value());
    items.push_back(bid::BundleItem{*pool, qty});
  }
  bid::Bid bid;
  bid.name = "fed/" + fed.team + "/" + fed.tag + suffix;
  bid.bundles.emplace_back(std::move(items));
  bid.limit = limit;
  return bid;
}

double MarketRouter::EffectiveSpillThreshold(const FederatedBid& bid,
                                             double planet_balance) const {
  if (config_.budget_pressure <= 0.0 || !(bid.limit > 0.0)) {
    return config_.spill_threshold;
  }
  // Squeeze ramps 0 → 1 as the team's remaining planet balance falls
  // from budget_comfort × limit to nothing; a squeezed team's threshold
  // tightens proportionally (floored just above 1 so heat == 1 shards —
  // priced at their fixed baseline — are never spilled from).
  const double comfort =
      std::max(1e-9, config_.budget_comfort) * bid.limit;
  const double squeeze =
      1.0 - std::clamp(planet_balance / comfort, 0.0, 1.0);
  const double tightened =
      config_.spill_threshold * (1.0 - config_.budget_pressure * squeeze);
  return std::max(1.0 + 1e-9, tightened);
}

RoutingResult MarketRouter::Route(
    const std::vector<FederatedBid>& bids) const {
  return Route(bids, {});
}

RoutingResult MarketRouter::Route(
    const std::vector<FederatedBid>& bids,
    const std::unordered_map<std::string, double>& planet_balances) const {
  RoutingResult result;
  result.decisions.reserve(bids.size());
  const std::size_t num_shards = views_.size();

  // Batched quoting: Quote() is a pure function of (views, quantity) and
  // costs a full cluster scan per shard, so quoting every shard once per
  // DISTINCT requested shape — instead of once per bid — turns an epoch
  // with B bids over D distinct shapes from B×S cluster scans into D×S.
  // Identical bids get the exact same quote object either way, so
  // routing decisions are unchanged bit for bit.
  std::map<std::array<double, kNumResourceKinds>, std::vector<ShardQuote>>
      quote_cache;
  const auto quotes_for =
      [&](const cluster::TaskShape& quantity)
      -> const std::vector<ShardQuote>& {
    std::array<double, kNumResourceKinds> key;
    for (ResourceKind kind : kAllResourceKinds) {
      key[static_cast<std::size_t>(kind)] = quantity.Of(kind);
    }
    auto it = quote_cache.find(key);
    if (it == quote_cache.end()) {
      std::vector<ShardQuote> fresh;
      fresh.reserve(num_shards);
      for (std::size_t s = 0; s < num_shards; ++s) {
        fresh.push_back(Quote(s, quantity));
      }
      it = quote_cache.emplace(key, std::move(fresh)).first;
    }
    return it->second;
  };

  for (std::size_t bid_index = 0; bid_index < bids.size(); ++bid_index) {
    const FederatedBid& fed = bids[bid_index];
    const auto balance = planet_balances.find(fed.team);
    const double spill =
        balance != planet_balances.end()
            ? EffectiveSpillThreshold(fed, balance->second)
            : config_.spill_threshold;
    RouteDecision decision;
    decision.team = fed.team;
    decision.tag = fed.tag;
    decision.policy = config_.policy;
    decision.spill_threshold = spill;
    if (!HasPositiveQuantity(fed.quantity) || !(fed.limit > 0.0)) {
      result.decisions.push_back(std::move(decision));  // Unroutable.
      continue;
    }

    const std::vector<ShardQuote>& quotes = quotes_for(fed.quantity);
    bool any_viable = false;
    for (const ShardQuote& quote : quotes) {
      any_viable = any_viable || quote.viable;
    }
    if (!any_viable) {
      // No shard's clusters cover the requested kinds: unroutable.
      result.decisions.push_back(std::move(decision));
      continue;
    }

    // The shard-wide cheapest, preferring shards whose quoted cluster can
    // hold the whole requirement.
    auto cheapest = [&](bool require_cool) -> std::size_t {
      std::size_t best = num_shards;
      for (int pass = 0; pass < 2 && best == num_shards; ++pass) {
        const bool need_fit = pass == 0;
        for (std::size_t s = 0; s < num_shards; ++s) {
          if (!quotes[s].viable) continue;
          if (require_cool && quotes[s].heat > spill) {
            continue;
          }
          if (need_fit && quotes[s].fit < 1.0) continue;
          if (best == num_shards ||
              quotes[s].reserve_cost < quotes[best].reserve_cost) {
            best = s;
          }
        }
      }
      return best;  // num_shards when every shard was filtered out.
    };

    RoutingPolicy policy = config_.policy;
    if (policy == RoutingPolicy::kHomeAffinity && fed.home_shard.empty()) {
      policy = RoutingPolicy::kCheapestPrice;  // No home to prefer.
    }

    switch (policy) {
      case RoutingPolicy::kHomeAffinity: {
        std::size_t home = num_shards;
        for (std::size_t s = 0; s < num_shards; ++s) {
          if (views_[s].name == fed.home_shard) {
            home = s;
            break;
          }
        }
        PM_CHECK_MSG(home < num_shards,
                     "unknown home shard '" << fed.home_shard << "'");
        decision.preferred_shard = home;
        decision.preferred_heat = quotes[home].heat;
        std::size_t target = home;
        if (!quotes[home].viable ||
            quotes[home].heat > spill) {
          // Unquotable or overheated home: spill to the cheapest cool
          // shard, or the globally cheapest when the whole planet runs
          // hot. any_viable guarantees cheapest(false) finds one.
          const std::size_t cool = cheapest(/*require_cool=*/true);
          target = cool < num_shards ? cool : cheapest(false);
          decision.spilled = target != home;
        }
        decision.shards.push_back(target);
        result.routed.push_back(RoutedBid{
            target, fed.team,
            Materialize(quotes[target], target, fed, fed.quantity,
                        fed.limit, ""),
            bid_index});
        break;
      }
      case RoutingPolicy::kCheapestPrice: {
        const std::size_t target = cheapest(/*require_cool=*/false);
        decision.preferred_shard = target;
        decision.preferred_heat = quotes[target].heat;
        decision.shards.push_back(target);
        result.routed.push_back(RoutedBid{
            target, fed.team,
            Materialize(quotes[target], target, fed, fed.quantity,
                        fed.limit, ""),
            bid_index});
        break;
      }
      case RoutingPolicy::kSplit: {
        // Candidates: cool viable shards, or every viable shard when
        // none is cool.
        std::vector<std::size_t> candidates;
        std::size_t viable_count = 0;
        for (std::size_t s = 0; s < num_shards; ++s) {
          if (!quotes[s].viable) continue;
          ++viable_count;
          if (quotes[s].heat <= spill) {
            candidates.push_back(s);
          }
        }
        decision.spilled = !candidates.empty() &&
                           candidates.size() < viable_count;
        if (candidates.empty()) {
          for (std::size_t s = 0; s < num_shards; ++s) {
            if (quotes[s].viable) candidates.push_back(s);
          }
        }
        decision.preferred_shard = candidates.front();
        decision.preferred_heat = quotes[candidates.front()].heat;
        // Weight by spare capacity for this requirement; equal split when
        // nothing has headroom.
        std::vector<double> weights;
        double total_weight = 0.0;
        for (std::size_t s : candidates) {
          const double w = std::max(0.0, quotes[s].fit);
          weights.push_back(w);
          total_weight += w;
        }
        if (total_weight <= 0.0) {
          weights.assign(candidates.size(), 1.0);
          total_weight = static_cast<double>(candidates.size());
        }
        // Last-part remainder keeps Σ parts == requested exactly.
        cluster::TaskShape assigned;
        double assigned_limit = 0.0;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          const std::size_t s = candidates[i];
          const bool last = i + 1 == candidates.size();
          cluster::TaskShape part;
          double part_limit = 0.0;
          if (last) {
            part = fed.quantity - assigned;
            part_limit = fed.limit - assigned_limit;
          } else {
            const double frac = weights[i] / total_weight;
            part = fed.quantity * frac;
            part_limit = fed.limit * frac;
          }
          assigned += part;
          assigned_limit += part_limit;
          if (!HasPositiveQuantity(part) || !(part_limit > 0.0)) continue;
          decision.shards.push_back(s);
          result.routed.push_back(RoutedBid{
              s, fed.team,
              Materialize(quotes[s], s, fed, part, part_limit,
                          "#s" + std::to_string(i)),
              bid_index});
        }
        break;
      }
      case RoutingPolicy::kMirrored: {
        // The k cheapest shards each carry a full copy. A team may win in
        // several markets at once — mirroring is an availability hedge,
        // priced accordingly.
        std::vector<std::size_t> order;
        for (std::size_t s = 0; s < num_shards; ++s) {
          if (quotes[s].viable) order.push_back(s);
        }
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                    if (quotes[a].reserve_cost != quotes[b].reserve_cost) {
                      return quotes[a].reserve_cost < quotes[b].reserve_cost;
                    }
                    return a < b;
                  });
        const std::size_t ways = std::max<std::size_t>(
            1, std::min(config_.mirror_ways, order.size()));
        decision.preferred_shard = order.front();
        decision.preferred_heat = quotes[order.front()].heat;
        for (std::size_t i = 0; i < ways; ++i) {
          const std::size_t s = order[i];
          decision.shards.push_back(s);
          result.routed.push_back(RoutedBid{
              s, fed.team,
              Materialize(quotes[s], s, fed, fed.quantity, fed.limit,
                          "#m" + std::to_string(i)),
              bid_index});
        }
        break;
      }
    }
    result.decisions.push_back(std::move(decision));
  }
  return result;
}

}  // namespace pm::federation
