// planetmarket: the planet-wide reporting plane.
//
// One federated epoch clears N independent market shards; operators read
// the planet through a single page, not N. FederationReport merges the
// per-shard AuctionReports with the routing audit into planet-wide
// aggregates — utilization percentiles across every pool on the planet,
// total revenue and migrations, wire traffic when shards run behind proxy
// nodes — reusing the stats/ and exchange/report machinery shard reports
// are built from.
#pragma once

#include <string>
#include <vector>

#include "exchange/report.h"
#include "federation/router.h"
#include "stats/descriptive.h"

namespace pm::federation {

/// One shard's slice of an epoch.
struct ShardEpochSummary {
  std::size_t shard = 0;
  std::string name;
  exchange::AuctionReport report;  // The shard's full auction report.

  // --------------------------------------------------- failure domains --
  /// False when the shard sat the epoch out (quarantined): `report` is
  /// default-constructed and excluded from every planet aggregate.
  bool participated = true;
  /// True when the shard's epoch failed and was contained: the shard was
  /// rolled back to its checkpoint, so `report` is default-constructed
  /// and excluded from aggregates (notably the all_converged fold — a
  /// contained failure is not a convergence failure).
  bool failed = false;
  /// What the failed shard threw (empty otherwise).
  std::string failure;
  /// Health after the post-epoch transition, for the report page.
  ShardHealth health = ShardHealth::kHealthy;
};

/// The planet ledger's state after an epoch's settlement sweep (all
/// amounts in display dollars; the treasury itself books exact Money).
/// Zero-valued and disabled when the federation runs without a treasury.
struct TreasurySnapshot {
  bool enabled = false;
  double minted = 0.0;
  double burned = 0.0;
  double team_total = 0.0;       // Σ planet team balances.
  double float_total = 0.0;      // Σ shard floats (zero between epochs).
  double shard_net_total = 0.0;  // Σ shard net-settlement accounts.
  std::size_t transfers = 0;     // Cross-shard transfer records so far.
};

/// The failure-domain block of an epoch: what the supervisor contained
/// and where every shard's health machine landed. Zeroed and disabled
/// when the federation runs without a supervisor.
struct HealthBlock {
  bool supervised = false;
  std::size_t failed_shards = 0;       // Contained failures this epoch.
  std::size_t quarantined_shards = 0;  // Sitting out this epoch.
  std::size_t rerouted_bids = 0;   // Failed shards' bids re-queued.
  std::size_t refunded_bids = 0;   // Failed shards' bids dropped instead.
  double refunded_allowance = 0.0; // Treasury floats refunded (dollars).
  std::size_t restored_checkpoints = 0;  // Restores performed this epoch.
  /// Post-transition health per shard (index-aligned with shards).
  std::vector<ShardHealthStatus> statuses;
};

/// The watchdog's verdict on an epoch: what the alert engine did at the
/// T2 barrier. Zeroed and disabled unless the telemetry watchdog's alert
/// gate is armed.
struct AlertBlock {
  bool enabled = false;
  std::size_t transitions = 0;      // Lifecycle transitions this epoch.
  std::vector<std::string> firing;  // Rule names firing after this epoch.
};

/// What the federation arbitrageur did this epoch.
struct ArbitrageSummary {
  bool enabled = false;
  std::size_t buys_planned = 0;
  std::size_t sells_planned = 0;
  double holdings_units = 0.0;  // Warehoused units across all shards.
  double realized_pnl = 0.0;    // Cumulative realized arbitrage P&L.
  double mark_to_market = 0.0;  // Unrealized value over basis.
  bool halted = false;          // Drawdown stop suppressing new buys.
};

/// One whole-cluster migration executed by the fleet rebalancer.
struct ClusterMigration {
  std::string cluster;       // Name in the donor fleet.
  std::string adopted_name;  // Qualified name in the receiving fleet.
  std::size_t from_shard = 0;
  std::size_t to_shard = 0;
  double from_util = 0.0;  // Donor percentile utilization at decision.
  double to_util = 0.0;    // Receiver percentile utilization at decision.
  double move_cost = 0.0;  // Priced §V.B reconfiguration cost (0 = free).
  double expected_benefit = 0.0;  // Benefit the pricing gate credited.
};

/// Everything recorded about one federated epoch.
struct FederationReport {
  int epoch = 0;

  std::vector<ShardEpochSummary> shards;

  // Routing audit: one decision per federated bid, plus the materialized
  // cross-market parts (kept so tests and replays can re-inject them).
  std::vector<RouteDecision> routing;
  std::vector<RoutedBid> routed;

  // Planet-wide aggregates.
  std::size_t total_bids = 0;
  std::size_t total_winners = 0;
  std::size_t total_moves = 0;
  std::size_t routed_parts = 0;   // Cross-market parts placed this epoch.
  std::size_t rejected_parts = 0; // Routed parts the shard gate rejected
                                  // (e.g. no budget in that shard).
  std::size_t spilled_bids = 0;   // Federated bids re-routed off their
                                  // preferred shard.
  double operator_revenue = 0.0;
  /// Placement outcomes across every shard: awards whose buy side failed
  /// (entirely or partially) the bin-packing step, and the dollars
  /// refunded for unplaced units (zero unless the shards'
  /// SettlementPolicy::refund_unplaced gate is on).
  std::size_t placement_failures = 0;
  std::size_t partial_placements = 0;
  double refund_total = 0.0;
  /// §V.B reconfiguration charges collected across shards (zero unless
  /// the shards' SettlementPolicy::bill_moves gate is on).
  double move_billing_total = 0.0;
  long long demand_evaluations = 0;
  long long transport_messages = 0;  // Wire traffic (proxy-node shards).
  long long transport_bytes = 0;
  int max_rounds = 0;      // The slowest shard's round count.
  bool all_converged = true;

  // Fleet health across every pool on the planet, post-auction.
  double utilization_spread = 0.0;          // exchange::UtilizationSpread.
  std::vector<double> utilization_deciles;  // p10..p90 across all pools.

  // Economy layer (zeroed when the corresponding feature is disabled).
  /// Cross-shard relative clearing-price spread, mean over kinds priced
  /// in at least two shards (see federation/arbitrage.h).
  double clearing_spread = 0.0;
  TreasurySnapshot treasury;
  ArbitrageSummary arbitrage;
  std::vector<ClusterMigration> migrations;

  /// Failure-domain audit (disabled without a supervisor).
  HealthBlock health;

  /// Watchdog audit (disabled without the telemetry alert gate).
  AlertBlock alerts;
};

/// Merges per-shard summaries and the routing audit into one report.
FederationReport BuildFederationReport(int epoch,
                                       std::vector<ShardEpochSummary> shards,
                                       RoutingResult routing);

/// Renders the planet-wide summary page: one row per shard plus the
/// aggregate block.
std::string RenderFederationSummary(const FederationReport& report);

}  // namespace pm::federation
