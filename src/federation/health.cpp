#include "federation/health.h"

namespace pm::federation {

std::string_view ToString(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kQuarantined:
      return "quarantined";
    case ShardHealth::kRecovering:
      return "recovering";
  }
  return "?";
}

}  // namespace pm::federation
