#include "federation/report.h"

#include <algorithm>
#include <sstream>

#include "common/table.h"

namespace pm::federation {

FederationReport BuildFederationReport(
    int epoch, std::vector<ShardEpochSummary> shards,
    RoutingResult routing) {
  FederationReport report;
  report.epoch = epoch;
  report.routing = std::move(routing.decisions);
  report.routed = std::move(routing.routed);
  report.routed_parts = report.routed.size();
  for (const RouteDecision& decision : report.routing) {
    if (decision.spilled) ++report.spilled_bids;
  }

  std::vector<double> planet_utilization;
  for (ShardEpochSummary& shard : shards) {
    if (!shard.participated || shard.failed) {
      // Quarantined or contained-failed shards ran no settled auction:
      // their default-constructed reports must not poison the planet
      // aggregates (all_converged especially — a contained failure is
      // not a convergence failure).
      continue;
    }
    const exchange::AuctionReport& r = shard.report;
    report.total_bids += r.num_bids;
    report.total_winners += r.num_winners;
    report.rejected_parts += r.external_rejected;
    report.total_moves += r.moves.size();
    report.operator_revenue += r.operator_revenue;
    report.placement_failures += r.placement_failures;
    report.partial_placements += r.partial_placements;
    report.refund_total += r.refund_total;
    report.move_billing_total += r.move_billing_total;
    report.demand_evaluations += r.demand_evaluations;
    report.transport_messages += r.transport_messages;
    report.transport_bytes += r.transport_bytes;
    report.max_rounds = std::max(report.max_rounds, r.rounds);
    report.all_converged = report.all_converged && r.converged;
    planet_utilization.insert(planet_utilization.end(),
                              r.post_utilization.begin(),
                              r.post_utilization.end());
  }
  if (!planet_utilization.empty()) {
    report.utilization_spread =
        exchange::UtilizationSpread(planet_utilization);
    for (int decile = 1; decile <= 9; ++decile) {
      report.utilization_deciles.push_back(
          stats::Quantile(planet_utilization, decile / 10.0));
    }
  }
  report.shards = std::move(shards);
  return report;
}

std::string RenderFederationSummary(const FederationReport& report) {
  std::ostringstream os;
  os << "=== federation epoch " << (report.epoch + 1) << " ===\n";
  TextTable table({"shard", "bids", "won", "rounds", "conv", "revenue",
                   "moves", "wire msgs"});
  for (const ShardEpochSummary& shard : report.shards) {
    if (!shard.participated || shard.failed) {
      const std::string why =
          shard.failed ? "FAILED" : "quarantined";
      table.AddRow({shard.name, why, "-", "-", "-", "-", "-", "-"});
      continue;
    }
    const exchange::AuctionReport& r = shard.report;
    table.AddRow({shard.name, std::to_string(r.num_bids),
                  std::to_string(r.num_winners), std::to_string(r.rounds),
                  r.converged ? "yes" : "NO",
                  "$" + FormatF(r.operator_revenue, 2),
                  std::to_string(r.moves.size()),
                  std::to_string(r.transport_messages)});
  }
  table.AddRow({"planet", std::to_string(report.total_bids),
                std::to_string(report.total_winners),
                std::to_string(report.max_rounds),
                report.all_converged ? "yes" : "NO",
                "$" + FormatF(report.operator_revenue, 2),
                std::to_string(report.total_moves),
                std::to_string(report.transport_messages)});
  os << table.Render();
  os << "routing: " << report.routing.size() << " federated bids -> "
     << report.routed_parts << " parts, " << report.spilled_bids
     << " spilled, " << report.rejected_parts << " rejected at the gate\n";
  os << "placement: " << report.placement_failures << " failures, "
     << report.partial_placements << " partial awards, refunds $"
     << FormatF(report.refund_total, 2);
  if (report.move_billing_total > 0.0) {
    os << ", move bills $" << FormatF(report.move_billing_total, 2);
  }
  os << '\n';
  os << "utilization spread " << FormatF(report.utilization_spread, 2)
     << " pp";
  if (!report.utilization_deciles.empty()) {
    os << "; deciles";
    for (double d : report.utilization_deciles) {
      os << ' ' << FormatPct(d, 0);
    }
  }
  os << '\n';
  os << "clearing-price spread " << FormatPct(report.clearing_spread, 1)
     << " across shards\n";
  if (report.treasury.enabled) {
    os << "treasury: minted $" << FormatF(report.treasury.minted, 2)
       << ", teams $" << FormatF(report.treasury.team_total, 2)
       << ", float $" << FormatF(report.treasury.float_total, 2)
       << ", shard-net $" << FormatF(report.treasury.shard_net_total, 2)
       << " (" << report.treasury.transfers << " transfers)\n";
  }
  if (report.arbitrage.enabled) {
    os << "arbitrage: " << report.arbitrage.buys_planned << " buys, "
       << report.arbitrage.sells_planned << " sells, warehouse "
       << FormatF(report.arbitrage.holdings_units, 1)
       << " units, realized P&L $"
       << FormatF(report.arbitrage.realized_pnl, 2) << ", mark $"
       << FormatF(report.arbitrage.mark_to_market, 2)
       << (report.arbitrage.halted ? " [drawdown stop: buys halted]"
                                   : "")
       << '\n';
  }
  if (report.health.supervised) {
    os << "health: " << report.health.failed_shards << " failed, "
       << report.health.quarantined_shards << " quarantined, "
       << report.health.restored_checkpoints << " restores, "
       << report.health.rerouted_bids << " bids rerouted, "
       << report.health.refunded_bids << " refunded, allowance $"
       << FormatF(report.health.refunded_allowance, 2) << " returned\n";
    for (std::size_t k = 0; k < report.health.statuses.size(); ++k) {
      const ShardHealthStatus& s = report.health.statuses[k];
      if (s.status == ShardHealth::kHealthy && s.retries == 0 &&
          s.restored_checkpoints == 0) {
        continue;  // Only shards with a story get a line.
      }
      os << "  shard " << k << " ["
         << (k < report.shards.size() ? report.shards[k].name : "?")
         << "]: " << ToString(s.status) << ", streak "
         << s.failure_streak << ", backoff " << s.backoff_remaining
         << ", retries " << s.retries << ", restores "
         << s.restored_checkpoints << '\n';
    }
  }
  if (report.alerts.enabled) {
    os << "alerts: " << report.alerts.transitions
       << " transition(s), firing:";
    if (report.alerts.firing.empty()) os << " (none)";
    for (const std::string& name : report.alerts.firing) {
      os << " " << name;
    }
    os << '\n';
  }
  for (const ClusterMigration& migration : report.migrations) {
    os << "rebalance: cluster " << migration.cluster << " (shard "
       << migration.from_shard << ", util "
       << FormatPct(migration.from_util, 0) << ") -> shard "
       << migration.to_shard << " (util "
       << FormatPct(migration.to_util, 0) << ") as "
       << migration.adopted_name;
    if (migration.move_cost > 0.0) {
      os << " (move cost $" << FormatF(migration.move_cost, 2)
         << " vs benefit $" << FormatF(migration.expected_benefit, 2)
         << ")";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace pm::federation
