// planetmarket: cross-shard arbitrage — the single-market kArbitrageur
// strategy lifted to the federation.
//
// §V.C's bidders showed "increasing sophistication towards arbitrage
// opportunities" inside one market; across a federation the same pressure
// is what couples prices between otherwise independent shards (Tycoon and
// the federated-cloud-marketplace literature both rely on it). The
// ArbitrageAgent is a planet-wide bidder funded by a treasury margin
// account: it reads the previous epoch's per-shard clearing prices from
// the federation report, buys capacity through SubmitExternalBid in the
// shard quoting a kind cheapest (warehousing it as real placed jobs, which
// raises that shard's utilization and therefore its congestion-weighted
// reserve), and resells warehoused holdings in shards whose prices have
// risen past its cost basis (releasing capacity, pulling prices back
// down). The visible effect — asserted by bench/arbitrage_spread.cpp — is
// the cross-shard clearing-price spread shrinking over epochs.
//
// Deterministic throughout: price signals are medians over fixed pool
// orders, shard/pool ties break toward the lowest index, and the agent
// draws nothing from any RNG.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/fleet.h"
#include "common/money.h"
#include "exchange/market.h"
#include "federation/report.h"
#include "federation/router.h"

namespace pm::federation {

/// Tuning for the federation arbitrageur.
struct ArbitrageConfig {
  bool enabled = false;

  /// Billing identity of the agent's bids ("fed/<team>/arb-…").
  std::string team = "fed/arbitrage";

  /// Planet-wide working capital, minted into the treasury once at
  /// federation construction.
  Money margin = Money::FromDollars(100000);

  /// Minimum relative spread (max − min)/min between the priciest and the
  /// cheapest shard's clearing price of a kind before buying.
  double min_spread = 0.15;

  /// Minimum relative gain over cost basis before reselling a holding.
  double min_margin = 0.10;

  /// Fraction of the cheapest shard's free capacity bought per trade.
  double buy_fraction = 0.10;

  /// Buy limit = qty × clearing price × buy_markup.
  double buy_markup = 1.10;

  /// Sell ask = qty × clearing price × sell_markdown (the uniform price
  /// still pays at least the ask when the offer settles).
  double sell_markdown = 0.90;

  /// Fraction of a sellable holding released per epoch. Dumping a whole
  /// warehouse at once crashes the receiving shard's prices and re-opens
  /// the spread from the other side; metering the release keeps the
  /// correction one-sided.
  double sell_fraction = 0.35;

  /// Sells require the shard's price ≥ this fraction of the cross-shard
  /// mean for the kind. 1.0 releases only in above-average shards (most
  /// convergent); slightly below 1.0 lets profits realize near the mean
  /// at negligible spread cost.
  double sell_gate_fraction = 0.9;

  /// Trades below this many units are not worth placing.
  double min_trade_units = 1.0;

  // ---------------------------------------------- outcome-aware gates --
  /// Warehouse accounting reads each award's PlacementOutcome: only
  /// physically placed units enter, at cost net of any unplaced-unit
  /// refund — the warehouse tracks exact physical backing instead of
  /// quota-layer promises. Off (default) keeps the quota-based
  /// accounting bit for bit.
  bool outcome_aware = false;

  /// Mark-to-market drawdown stop: each epoch the warehouse is valued at
  /// the previous epoch's median prices; when equity (realized P&L +
  /// unrealized value over basis) falls more than this fraction of the
  /// margin below its running peak, new buys halt (sells continue — they
  /// shed risk). 0 (default) disables the stop.
  double drawdown_stop = 0.0;
};

/// One bid the agent decided to place this epoch. (A sell bundle can mix
/// kinds; the bid's bundle items are the authoritative contents.)
struct ArbitragePlan {
  std::size_t shard = 0;
  bool is_buy = true;
  double qty = 0.0;
  Money funding;  // Allowance to push before the auction (zero on sells).
  bid::Bid bid;   // Ready for Market::SubmitExternalBid under team().
};

/// Cross-shard clearing-price dispersion of one epoch: per kind, the
/// relative spread (max − min)/min of the per-shard price signals,
/// averaged over kinds priced in at least two shards.
double ComputeClearingSpread(
    const FederationReport& report,
    const std::vector<const cluster::Fleet*>& fleets);

/// Same spread over pre-captured per-shard capacity vectors instead of
/// live fleet reads. The pipelined federation barrier uses this: epoch
/// e's spread is measured while shard auctions for e+1 are already
/// mutating fleet free-capacity state, but total capacities (what
/// KindPrice filters on) only change under migrations, which the
/// pipeline excludes — so capturing them once at pipeline start is
/// exact, and the barrier never touches live shard state.
double ComputeClearingSpread(
    const FederationReport& report,
    const std::vector<const PoolRegistry*>& registries,
    const std::vector<std::vector<double>>& capacities);

/// The planet-wide arbitrage bidder.
class ArbitrageAgent {
 public:
  explicit ArbitrageAgent(ArbitrageConfig config);

  const std::string& team() const { return config_.team; }
  const ArbitrageConfig& config() const { return config_; }

  /// Decides this epoch's bids from the previous epoch's clearing prices
  /// (`prev` may be null on the first epoch — the agent sits out) and the
  /// current shard views/fleets. Plans are remembered so the next
  /// ObserveEpoch can map awards back to quantities.
  std::vector<ArbitragePlan> PlanEpoch(
      const FederationReport* prev, const std::vector<ShardView>& views,
      const std::vector<const cluster::Fleet*>& fleets, int epoch);

  /// Digests the epoch's outcome: settled buys enter the warehouse at
  /// their realized unit price, settled sells leave it and realize P&L.
  /// With ArbitrageConfig::outcome_aware the buy side reads each
  /// award's PlacementOutcome — only physically placed units enter, at
  /// cost net of refunds, so the warehouse is exact physical backing.
  /// Without it the warehouse is quota-backed: it matches the placed
  /// jobs except when a shard's bin-packing failed a won buy, in which
  /// case a later sell settles quota-only through the market's
  /// dead-cluster/no-job guards.
  void ObserveEpoch(const FederationReport& report);

  /// Re-homes warehouse entries when the fleet rebalancer migrates a
  /// cluster: holdings keyed to the donor's (shard, pool) move to the
  /// receiving shard's adopted pools (basis blended), because the
  /// physical jobs backing them travelled with the cluster. Without
  /// this, sells in the donor shard would collect payment for capacity
  /// that already left, and the migrated jobs could never be released.
  void OnClusterMigrated(
      std::size_t from_shard, std::size_t to_shard,
      const std::vector<std::pair<PoolId, PoolId>>& pool_map);

  /// Test seam: plants a warehouse entry directly. Production code only
  /// builds holdings through ObserveEpoch (settled awards); tests use
  /// this to pin OnClusterMigrated's re-homing behavior.
  void SeedHoldingsForTest(std::size_t shard, PoolId pool, double units,
                           double basis);

  /// Units warehoused in one shard (all pools).
  double HoldingsUnits(std::size_t shard) const;
  /// Units warehoused across the whole federation.
  double TotalHoldingsUnits() const;
  double RealizedPnl() const { return realized_pnl_; }

  /// Unrealized warehouse value over basis at the most recent epoch's
  /// price signal (updated by PlanEpoch; holdings of unpriced kinds are
  /// carried at basis, contributing zero).
  double MarkToMarket() const { return mark_to_market_; }
  /// Running peak of equity = realized P&L + mark-to-market.
  double PeakEquity() const { return peak_equity_; }
  /// Whether the drawdown stop is currently suppressing new buys.
  bool Halted() const { return halted_; }

  /// Digests one epoch's mark-to-market into the equity peak and the
  /// halt flag (called by PlanEpoch; public so the risk rule is testable
  /// without fabricating a whole federation).
  void UpdateRisk(double mark_to_market);

  /// The per-(shard, kind) price signal: median settled price over the
  /// shard's positive-capacity pools of that kind, NaN when the kind has
  /// no priced pool there. Exposed for the bench and tests.
  static double KindPrice(const exchange::AuctionReport& report,
                          const PoolRegistry& registry,
                          const std::vector<double>& capacity,
                          ResourceKind kind);

 private:
  struct Holding {
    double units = 0.0;
    double basis = 0.0;  // Average cost, dollars per unit.
  };

  ArbitrageConfig config_;
  std::vector<std::unordered_map<PoolId, Holding>> holdings_;  // Per shard.
  std::vector<ArbitragePlan> last_plans_;
  double realized_pnl_ = 0.0;
  double mark_to_market_ = 0.0;
  double peak_equity_ = 0.0;
  bool halted_ = false;
};

}  // namespace pm::federation
