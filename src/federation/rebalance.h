// planetmarket: fleet rebalancing — migrating whole clusters between
// market shards.
//
// Arbitrage couples shard prices through demand; rebalancing couples them
// through supply. When one shard's utilization percentile has exceeded a
// configurable spread over another's for K consecutive epochs, the
// federation moves physical capacity where the demand is: the *coolest*
// cluster of the coolest shard (spare machines nobody is bidding up) is
// extracted from its market — jobs, machines, quota records and all — and
// adopted by the hottest shard, whose reserve prices relax as its free
// capacity grows. The §V story of teams migrating across clusters, applied
// one level up, to the clusters themselves.
//
// Determinism contract (docs/federation.md): migrations are planned only
// from epoch reports (identical across thread counts), shard ties break
// toward the lowest index, cluster ties break by a seeded FNV/SplitMix
// rank — so two runs with the same seeds migrate the same clusters at the
// same epochs, bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/fleet.h"
#include "federation/report.h"

namespace pm::federation {

/// Rebalancing policy knobs.
struct RebalanceConfig {
  bool enabled = false;

  /// Utilization-percentile gap (as a fraction, e.g. 0.30 = 30 points)
  /// between the hottest and coolest shard that counts as imbalance.
  double spread_threshold = 0.30;

  /// Consecutive epochs the gap must persist before capacity moves (K).
  int consecutive_epochs = 2;

  /// Which percentile of each shard's per-pool utilization is compared
  /// (0.9 ranks shards by their hot tail, 0.5 by their median pool).
  double percentile = 0.9;

  /// Whole clusters migrated per triggering epoch.
  std::size_t max_migrations_per_epoch = 1;

  /// Seed for deterministic tie-breaks among equally-cool clusters.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;

  // ----------------------------------------------- §V.B move pricing --
  /// Reconfiguration cost per unit of *used* capacity travelling with a
  /// migrated cluster — the running jobs that must be re-homed across
  /// shard boundaries. All-zero (default) keeps migrations free: every
  /// candidate clears the gate, the legacy behavior.
  cluster::TaskShape move_cost_weights;

  /// Dollar value the hot shard gains per unit of donated *free*
  /// capacity per point of utilization spread. The gate: a candidate
  /// migrates only when spread × free units × benefit_per_free_unit ≥
  /// its priced move cost.
  double benefit_per_free_unit = 1.0;
};

/// One planned cluster move (executed by FederatedExchange).
struct MigrationPlan {
  std::size_t from_shard = 0;  // Cool shard donating capacity.
  std::size_t to_shard = 0;    // Hot shard receiving it.
  std::string cluster;         // Cluster name within the donor fleet.
  double from_util = 0.0;      // Donor's percentile utilization.
  double to_util = 0.0;        // Receiver's percentile utilization.
  double move_cost = 0.0;      // Priced §V.B reconfiguration cost.
  double expected_benefit = 0.0;  // What the spread relief is worth.
};

/// Watches epoch reports and decides when capacity moves.
class FleetRebalancer {
 public:
  FleetRebalancer(RebalanceConfig config, std::size_t num_shards);

  /// Digests one epoch's post-auction utilizations. Returns the cluster
  /// moves to execute now: empty until the hot/cool spread has persisted
  /// for `consecutive_epochs` epochs, then up to
  /// `max_migrations_per_epoch` plans (and the streak resets).
  std::vector<MigrationPlan> Observe(
      const FederationReport& report,
      const std::vector<const cluster::Fleet*>& fleets);

  /// Epochs the current imbalance has persisted.
  int Streak() const { return streak_; }

  /// Deterministic tie-break rank for a cluster name (FNV-1a folded
  /// through SplitMix64 with the config seed and epoch). Exposed for the
  /// determinism tests.
  static std::uint64_t TieRank(std::uint64_t seed, int epoch,
                               const std::string& cluster);

 private:
  RebalanceConfig config_;
  std::size_t num_shards_;
  int streak_ = 0;
};

}  // namespace pm::federation
