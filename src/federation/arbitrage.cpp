#include "federation/arbitrage.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "stats/descriptive.h"

namespace pm::federation {
namespace {

/// Kinds indexed 0..kNumResourceKinds-1 (matches the enum values).
std::size_t KindIndex(ResourceKind kind) {
  return static_cast<std::size_t>(kind);
}

}  // namespace

ArbitrageAgent::ArbitrageAgent(ArbitrageConfig config)
    : config_(std::move(config)) {
  PM_CHECK_MSG(!config_.team.empty(), "arbitrage agent needs a team name");
  PM_CHECK_MSG(config_.min_spread > 0.0 && config_.min_margin >= 0.0,
               "arbitrage thresholds must be positive");
  PM_CHECK_MSG(config_.buy_fraction > 0.0 && config_.buy_fraction <= 1.0,
               "buy_fraction must be in (0, 1]");
  PM_CHECK_MSG(config_.sell_fraction > 0.0 && config_.sell_fraction <= 1.0,
               "sell_fraction must be in (0, 1]");
}

double ArbitrageAgent::KindPrice(const exchange::AuctionReport& report,
                                 const PoolRegistry& registry,
                                 const std::vector<double>& capacity,
                                 ResourceKind kind) {
  std::vector<double> prices;
  const std::size_t limit =
      std::min(report.settled_prices.size(),
               std::min(capacity.size(), registry.size()));
  for (PoolId r = 0; r < limit; ++r) {
    if (registry.KeyOf(r).kind != kind) continue;
    if (capacity[r] <= 0.0) continue;  // Extracted clusters price nothing.
    prices.push_back(report.settled_prices[r]);
  }
  if (prices.empty()) return std::numeric_limits<double>::quiet_NaN();
  return stats::Median(prices);
}

double ComputeClearingSpread(
    const FederationReport& report,
    const std::vector<const cluster::Fleet*>& fleets) {
  PM_CHECK(report.shards.size() == fleets.size());
  std::vector<const PoolRegistry*> registries;
  std::vector<std::vector<double>> capacities;
  registries.reserve(fleets.size());
  capacities.reserve(fleets.size());
  for (const cluster::Fleet* fleet : fleets) {
    registries.push_back(&fleet->registry());
    capacities.push_back(fleet->CapacityVector());
  }
  return ComputeClearingSpread(report, registries, capacities);
}

double ComputeClearingSpread(
    const FederationReport& report,
    const std::vector<const PoolRegistry*>& registries,
    const std::vector<std::vector<double>>& capacities) {
  PM_CHECK(report.shards.size() == registries.size() &&
           report.shards.size() == capacities.size());
  double total = 0.0;
  int kinds = 0;
  for (ResourceKind kind : kAllResourceKinds) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    int priced = 0;
    for (std::size_t k = 0; k < report.shards.size(); ++k) {
      const double p = ArbitrageAgent::KindPrice(
          report.shards[k].report, *registries[k], capacities[k], kind);
      if (std::isnan(p) || p <= 0.0) continue;
      lo = std::min(lo, p);
      hi = std::max(hi, p);
      ++priced;
    }
    if (priced < 2) continue;
    total += (hi - lo) / lo;
    ++kinds;
  }
  return kinds > 0 ? total / kinds : 0.0;
}

std::vector<ArbitragePlan> ArbitrageAgent::PlanEpoch(
    const FederationReport* prev, const std::vector<ShardView>& views,
    const std::vector<const cluster::Fleet*>& fleets, int epoch) {
  PM_CHECK(views.size() == fleets.size());
  if (holdings_.size() < views.size()) holdings_.resize(views.size());
  last_plans_.clear();
  if (prev == nullptr || prev->shards.size() != views.size()) {
    // First epoch (or the shard set changed shape): no price signal yet.
    return last_plans_;
  }

  // Per-(shard, kind) clearing-price signals from the previous epoch.
  std::vector<std::array<double, kNumResourceKinds>> signal(views.size());
  for (std::size_t k = 0; k < views.size(); ++k) {
    const std::vector<double> capacity = fleets[k]->CapacityVector();
    for (ResourceKind kind : kAllResourceKinds) {
      signal[k][KindIndex(kind)] = KindPrice(
          prev->shards[k].report, fleets[k]->registry(), capacity, kind);
    }
  }

  // Cross-shard mean price per kind: the sell-side reference. Selling is
  // only price-convergent in shards quoting ABOVE the mean — releasing
  // capacity into a below-mean shard would push its price further down
  // and re-open the spread from the other side.
  std::array<double, kNumResourceKinds> kind_mean;
  for (ResourceKind kind : kAllResourceKinds) {
    double total = 0.0;
    int priced = 0;
    for (std::size_t k = 0; k < views.size(); ++k) {
      const double p = signal[k][KindIndex(kind)];
      if (std::isnan(p) || p <= 0.0) continue;
      total += p;
      ++priced;
    }
    kind_mean[KindIndex(kind)] =
        priced > 0 ? total / priced
                   : std::numeric_limits<double>::quiet_NaN();
  }

  // Risk pass: mark the warehouse to this epoch's price signal and run
  // the drawdown stop. Unpriced kinds carry at basis (zero unrealized).
  {
    double mark = 0.0;
    for (std::size_t k = 0; k < holdings_.size(); ++k) {
      std::vector<PoolId> held;
      held.reserve(holdings_[k].size());
      for (const auto& [pool, holding] : holdings_[k]) {
        held.push_back(pool);
      }
      std::sort(held.begin(), held.end());  // Deterministic FP order.
      for (const PoolId pool : held) {
        const Holding& holding = holdings_[k].at(pool);
        if (k >= views.size() || pool >= fleets[k]->registry().size()) {
          continue;
        }
        const ResourceKind kind = fleets[k]->registry().KeyOf(pool).kind;
        const double price = signal[k][KindIndex(kind)];
        if (std::isnan(price) || price <= 0.0) continue;
        mark += holding.units * (price - holding.basis);
      }
    }
    UpdateRisk(mark);
  }

  // Buy targets first (the decision, not yet the bids): per kind, the
  // cheapest shard when the cross-shard spread clears min_spread.
  std::array<std::size_t, kNumResourceKinds> buy_target;
  std::array<double, kNumResourceKinds> buy_spread;
  buy_target.fill(views.size());
  buy_spread.fill(0.0);
  for (ResourceKind kind : kAllResourceKinds) {
    std::size_t cheap = views.size(), dear = views.size();
    for (std::size_t k = 0; k < views.size(); ++k) {
      const double p = signal[k][KindIndex(kind)];
      if (std::isnan(p) || p <= 0.0) continue;
      if (cheap == views.size() || p < signal[cheap][KindIndex(kind)]) {
        cheap = k;
      }
      if (dear == views.size() || p > signal[dear][KindIndex(kind)]) {
        dear = k;
      }
    }
    if (cheap == views.size() || dear == views.size() || cheap == dear) {
      continue;
    }
    const double price_cheap = signal[cheap][KindIndex(kind)];
    const double price_dear = signal[dear][KindIndex(kind)];
    const double spread = (price_dear - price_cheap) / price_cheap;
    if (spread < config_.min_spread) continue;
    buy_target[KindIndex(kind)] = cheap;
    buy_spread[KindIndex(kind)] = spread;
  }

  // Sells: release warehoused capacity where the local price has risen
  // past cost basis × (1 + min_margin) AND sits above the planet mean
  // for the kind. One sell bid per shard, bundling every pool that
  // clears both bars (ask = Σ qty·price·markdown). A shard being bought
  // this epoch is deliberately NOT excluded: the simultaneous sell leg
  // turns over old inventory at its locked-in margin while the buy
  // restocks at the current price — a market-maker stance whose
  // measured effect (bench/arbitrage_spread.cpp) is to damp the agent's
  // own buy-side overshoot; suppressing it makes the spread series
  // oscillate.
  for (std::size_t k = 0; k < views.size(); ++k) {
    std::vector<bid::BundleItem> items;
    double ask = 0.0;
    // Pool order is interning order: deterministic.
    std::vector<PoolId> held;
    held.reserve(holdings_[k].size());
    for (const auto& [pool, holding] : holdings_[k]) held.push_back(pool);
    std::sort(held.begin(), held.end());
    for (const PoolId pool : held) {
      const Holding& holding = holdings_[k].at(pool);
      double qty = holding.units * config_.sell_fraction;
      // Geometric metering alone would strand the tail of every holding
      // below min_trade_units/sell_fraction forever; once the metered
      // slice falls under the floor, drain the whole position instead.
      if (qty < config_.min_trade_units) qty = holding.units;
      if (qty < config_.min_trade_units) continue;
      const ResourceKind kind = fleets[k]->registry().KeyOf(pool).kind;
      const double price = signal[k][KindIndex(kind)];
      if (std::isnan(price) || price <= 0.0) continue;
      if (price < holding.basis * (1.0 + config_.min_margin)) continue;
      if (price <
          kind_mean[KindIndex(kind)] * config_.sell_gate_fraction) {
        continue;
      }
      items.push_back(bid::BundleItem{pool, -qty});
      ask += qty * price * config_.sell_markdown;
    }
    if (items.empty()) continue;
    ArbitragePlan plan;
    plan.shard = k;
    plan.is_buy = false;
    for (const bid::BundleItem& item : items) plan.qty += -item.qty;
    plan.bid.name = config_.team + "/arb-sell-e" +
                    std::to_string(epoch) + "-s" + std::to_string(k);
    plan.bid.bundles.emplace_back(std::move(items));
    plan.bid.limit = -std::max(ask, 1.0);
    last_plans_.push_back(std::move(plan));
  }

  // Buys: materialize the targets chosen above (lowest shard/pool index
  // wins ties) — unless the drawdown stop tripped: a warehouse deep
  // under water stops averaging down and lets the sell side de-risk.
  for (ResourceKind kind : kAllResourceKinds) {
    if (halted_) break;
    const std::size_t cheap = buy_target[KindIndex(kind)];
    if (cheap == views.size()) continue;
    const double price_cheap = signal[cheap][KindIndex(kind)];
    const double spread = buy_spread[KindIndex(kind)];

    // Buy a slice of EVERY pool of the kind in the cheap shard (one
    // bundle, pools in interning order): a single-pool purchase would
    // barely move the shard's median price signal, but lifting the whole
    // kind's utilization moves the congestion-weighted reserves that the
    // next epoch clears against.
    const ShardView& view = views[cheap];
    std::vector<bid::BundleItem> items;
    double total_qty = 0.0;
    // Impact control: trade size shrinks with the remaining spread, so
    // the correction tapers instead of overshooting (the price signal
    // lags one epoch — full-size trades near convergence ping-pong).
    const double fraction = config_.buy_fraction * std::min(1.0, spread);
    for (const PoolId pool : view.registry->PoolsOfKind(kind)) {
      if (pool >= view.free_capacity.size()) continue;
      const double qty = view.free_capacity[pool] * fraction;
      if (qty < config_.min_trade_units) continue;
      items.push_back(bid::BundleItem{pool, qty});
      total_qty += qty;
    }
    if (items.empty()) continue;

    ArbitragePlan plan;
    plan.shard = cheap;
    plan.is_buy = true;
    plan.qty = total_qty;
    plan.bid.name = config_.team + "/arb-buy-e" + std::to_string(epoch) +
                    "-" + std::string(pm::ToString(kind));
    plan.bid.bundles.emplace_back(std::move(items));
    plan.bid.limit = total_qty * price_cheap * config_.buy_markup;
    // Fund the limit (rounded up a dollar) so the budget gate never
    // clamps the bid below what was planned.
    plan.funding =
        Money::FromDollarsRounded(plan.bid.limit) + Money::FromDollars(1);
    last_plans_.push_back(std::move(plan));
  }
  return last_plans_;
}

void ArbitrageAgent::UpdateRisk(double mark_to_market) {
  mark_to_market_ = mark_to_market;
  const double equity = realized_pnl_ + mark_to_market_;
  peak_equity_ = std::max(peak_equity_, equity);
  halted_ = config_.drawdown_stop > 0.0 &&
            peak_equity_ - equity >
                config_.drawdown_stop * config_.margin.ToDouble();
}

void ArbitrageAgent::ObserveEpoch(const FederationReport& report) {
  if (holdings_.size() < report.shards.size()) {
    holdings_.resize(report.shards.size());
  }
  for (const ArbitragePlan& plan : last_plans_) {
    if (plan.shard >= report.shards.size()) continue;
    const exchange::AuctionReport& shard = report.shards[plan.shard].report;
    for (const exchange::AwardRecord& award : shard.awards) {
      if (award.team != config_.team) continue;
      if (award.bid_name != plan.bid.name) continue;
      if (plan.is_buy && config_.outcome_aware) {
        // Exact physical backing: only the units the bin-packer landed
        // enter the warehouse, at cost net of the unplaced-unit refund.
        const exchange::PlacementOutcome& outcome = award.outcome;
        if (outcome.placed_units <= 0.0) continue;
        const double paid =
            std::max(0.0, std::abs(award.payment) - outcome.refund);
        const double per_unit = paid / outcome.placed_units;
        for (const exchange::PoolFill& fill : outcome.fills) {
          if (fill.placed <= 0.0) continue;
          Holding& holding = holdings_[plan.shard][fill.pool];
          const double total = holding.units + fill.placed;
          holding.basis = (holding.basis * holding.units +
                           per_unit * fill.placed) /
                          total;
          holding.units = total;
        }
        continue;
      }
      // award.payment covers the whole bundle; spread it over the items
      // in proportion to quantity (pools of one kind clear near one
      // another, and the warehouse basis is bookkeeping, not settlement).
      const bid::Bundle& bundle = plan.bid.bundles.front();
      double bundle_qty = 0.0;
      for (const bid::BundleItem& item : bundle.items()) {
        bundle_qty += std::abs(item.qty);
      }
      if (bundle_qty <= 0.0) continue;
      const double per_unit = std::abs(award.payment) / bundle_qty;
      for (const bid::BundleItem& item : bundle.items()) {
        Holding& holding = holdings_[plan.shard][item.pool];
        if (plan.is_buy) {
          const double total = holding.units + item.qty;
          if (total > 0.0) {
            holding.basis = (holding.basis * holding.units +
                             per_unit * item.qty) /
                            total;
          }
          holding.units = total;
        } else {
          const double sold = -item.qty;  // Sell items are negative.
          const double covered = std::min(holding.units, sold);
          // Sellers receive money: per_unit × sold is this item's share
          // of the (negative) payment.
          realized_pnl_ += per_unit * sold - holding.basis * covered;
          holding.units = std::max(0.0, holding.units - sold);
        }
      }
    }
  }
  // Drop emptied holdings so sell planning stays proportional to the
  // live warehouse.
  for (auto& shard_holdings : holdings_) {
    for (auto it = shard_holdings.begin(); it != shard_holdings.end();) {
      if (it->second.units <= 1e-9) {
        it = shard_holdings.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ArbitrageAgent::SeedHoldingsForTest(std::size_t shard, PoolId pool,
                                         double units, double basis) {
  if (holdings_.size() <= shard) holdings_.resize(shard + 1);
  holdings_[shard][pool] = Holding{units, basis};
}

void ArbitrageAgent::OnClusterMigrated(
    std::size_t from_shard, std::size_t to_shard,
    const std::vector<std::pair<PoolId, PoolId>>& pool_map) {
  if (from_shard >= holdings_.size()) return;
  if (holdings_.size() <= to_shard) holdings_.resize(to_shard + 1);
  for (const auto& [from_pool, to_pool] : pool_map) {
    auto it = holdings_[from_shard].find(from_pool);
    if (it == holdings_[from_shard].end()) continue;
    Holding& dst = holdings_[to_shard][to_pool];
    const double total = dst.units + it->second.units;
    if (total > 0.0) {
      dst.basis = (dst.basis * dst.units +
                   it->second.basis * it->second.units) /
                  total;
    }
    dst.units = total;
    holdings_[from_shard].erase(it);
  }
}

double ArbitrageAgent::HoldingsUnits(std::size_t shard) const {
  if (shard >= holdings_.size()) return 0.0;
  double units = 0.0;
  for (const auto& [pool, holding] : holdings_[shard]) {
    units += holding.units;
  }
  return units;
}

double ArbitrageAgent::TotalHoldingsUnits() const {
  double units = 0.0;
  for (std::size_t k = 0; k < holdings_.size(); ++k) {
    units += HoldingsUnits(k);
  }
  return units;
}

}  // namespace pm::federation
