#include "federation/rebalance.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "net/serializer.h"
#include "stats/descriptive.h"

namespace pm::federation {

FleetRebalancer::FleetRebalancer(RebalanceConfig config,
                                 std::size_t num_shards)
    : config_(std::move(config)), num_shards_(num_shards) {
  PM_CHECK_MSG(num_shards_ >= 2,
               "rebalancing needs at least two shards to move between");
  PM_CHECK_MSG(config_.spread_threshold > 0.0,
               "spread_threshold must be positive");
  PM_CHECK_MSG(config_.consecutive_epochs >= 1,
               "consecutive_epochs must be at least 1");
  PM_CHECK_MSG(config_.percentile >= 0.0 && config_.percentile <= 1.0,
               "percentile must be in [0, 1]");
}

std::uint64_t FleetRebalancer::TieRank(std::uint64_t seed, int epoch,
                                       const std::string& cluster) {
  // net::Fnv1a over the name (implementation-defined std::hash would
  // break cross-platform determinism), folded through SplitMix64 with
  // the seed and epoch so tie orders differ between epochs but never
  // between runs.
  const std::uint64_t h = net::Fnv1a(
      reinterpret_cast<const std::uint8_t*>(cluster.data()),
      cluster.size());
  SplitMix64 mix(seed ^ h ^
                 (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                              epoch + 1)));
  return mix.Next();
}

std::vector<MigrationPlan> FleetRebalancer::Observe(
    const FederationReport& report,
    const std::vector<const cluster::Fleet*>& fleets) {
  PM_CHECK(report.shards.size() == fleets.size());
  std::vector<MigrationPlan> plans;
  if (report.shards.size() < 2) return plans;

  // Rank shards by the configured percentile of their per-pool
  // post-auction utilization. Pools of previously-extracted clusters
  // stay in the registry at zero capacity and zero utilization — they
  // must not count, or a donor shard would look ever cooler after each
  // donation and be drained to its one-cluster floor. Ties break toward
  // the lowest shard index.
  std::vector<double> utils(report.shards.size(), 0.0);
  for (std::size_t k = 0; k < report.shards.size(); ++k) {
    const std::vector<double>& post =
        report.shards[k].report.post_utilization;
    const std::vector<double> capacity = fleets[k]->CapacityVector();
    std::vector<double> live;
    live.reserve(post.size());
    const std::size_t limit = std::min(post.size(), capacity.size());
    for (std::size_t r = 0; r < limit; ++r) {
      if (capacity[r] > 0.0) live.push_back(post[r]);
    }
    utils[k] = live.empty() ? 0.0
                            : stats::Quantile(live, config_.percentile);
  }
  std::size_t hot = 0, cool = 0;
  for (std::size_t k = 1; k < utils.size(); ++k) {
    if (utils[k] > utils[hot]) hot = k;
    if (utils[k] < utils[cool]) cool = k;
  }
  const double spread = utils[hot] - utils[cool];
  if (spread <= config_.spread_threshold || hot == cool) {
    streak_ = 0;
    return plans;
  }
  ++streak_;
  if (streak_ < config_.consecutive_epochs) return plans;

  // Donor: the coolest shard that can still donate (every fleet keeps at
  // least one cluster) AND is itself a full spread cooler than the
  // receiver — the absolute coolest may already be at its floor, and
  // falling back to a shard nearly as hot as the receiver would migrate
  // capacity between two hot shards and ping-pong. The streak is
  // consumed only when a migration actually happens, so persistent
  // imbalance is not re-counted from scratch after a fruitless trigger.
  std::size_t donor_shard = fleets.size();
  for (std::size_t k = 0; k < fleets.size(); ++k) {
    if (k == hot || fleets[k]->NumClusters() < 2) continue;
    if (utils[hot] - utils[k] <= config_.spread_threshold) continue;
    if (donor_shard == fleets.size() || utils[k] < utils[donor_shard]) {
      donor_shard = k;
    }
  }
  if (donor_shard == fleets.size()) return plans;  // Nobody can donate.
  cool = donor_shard;
  const cluster::Fleet& donor = *fleets[cool];
  struct Candidate {
    double utilization;
    std::uint64_t rank;
    std::string name;
  };
  std::vector<Candidate> candidates;
  for (const std::string& name : donor.ClusterNames()) {
    candidates.push_back(Candidate{
        donor.ClusterByName(name).MaxUtilization(),
        TieRank(config_.seed, report.epoch, name), name});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.utilization != b.utilization) {
                return a.utilization < b.utilization;
              }
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.name < b.name;
            });

  // §V.B pricing gate: a move costs move_cost_weights · used shape (the
  // jobs re-homed with the cluster) and is expected to deliver the
  // donor→receiver spread times the donated free units. Candidates whose
  // priced cost exceeds the expected benefit stay put — with the default
  // all-zero weights every candidate clears, the legacy behavior.
  const double move_spread = utils[hot] - utils[cool];
  const std::size_t moves =
      std::min(config_.max_migrations_per_epoch,
               donor.NumClusters() - 1);  // Keep one behind.
  for (std::size_t i = 0; i < candidates.size() && plans.size() < moves;
       ++i) {
    const cluster::Cluster& cl = donor.ClusterByName(candidates[i].name);
    cluster::TaskShape used;
    cluster::TaskShape free;
    for (ResourceKind kind : kAllResourceKinds) {
      used.Of(kind) = cl.Used(kind);
      free.Of(kind) = cl.Free(kind);
    }
    MigrationPlan plan;
    plan.from_shard = cool;
    plan.to_shard = hot;
    plan.cluster = candidates[i].name;
    plan.from_util = utils[cool];
    plan.to_util = utils[hot];
    plan.move_cost = cluster::Dot(used, config_.move_cost_weights);
    plan.expected_benefit = move_spread * cluster::TotalUnits(free) *
                            config_.benefit_per_free_unit;
    if (plan.expected_benefit < plan.move_cost) continue;  // Not worth it.
    plans.push_back(std::move(plan));
  }
  // The streak is consumed only by an executed migration; an epoch where
  // every candidate failed the donate/pricing gates keeps counting, so
  // persistent imbalance is not re-counted from scratch.
  if (!plans.empty()) streak_ = 0;
  return plans;
}

}  // namespace pm::federation
