// planetmarket: shard failure domains — the health state machine that the
// epoch supervisor drives.
//
// Each shard owns a four-state health record:
//
//   healthy ──fail──► degraded ──streak──► quarantined ──backoff──►
//   recovering ──clean epoch──► healthy   (fail again ──► quarantined)
//
// A *failure* is a shard epoch that threw (PM_CHECK tripping anywhere in
// the auction/settlement path, a wire link going down after retry
// exhaustion) or blew through its injected round budget. The supervisor
// contains the failure — the shard is rolled back to its epoch-boundary
// checkpoint, its treasury float refunded, its routed bids re-routed or
// refunded — and this record decides what the shard is allowed to do next
// epoch. Backoff is denominated in epochs (virtual time), doubling per
// quarantine up to a cap, so the whole trajectory is deterministic and
// bit-identical across reruns and thread counts.
#pragma once

#include <cstdint>
#include <string_view>

namespace pm::federation {

/// Where a shard sits in its failure-recovery lifecycle.
enum class ShardHealth {
  kHealthy,      // Full participant.
  kDegraded,     // Failed recently; participates but sheds routed load.
  kQuarantined,  // Sitting out entirely while its backoff drains.
  kRecovering,   // Backoff drained; on probation for one clean epoch.
};

std::string_view ToString(ShardHealth health);

/// Supervisor policy knobs. Defaults keep the supervisor off: RunEpoch is
/// then bit-identical to the pre-supervisor federation (no checkpoints are
/// taken, failures propagate as exceptions after an emergency float sweep).
struct SupervisorConfig {
  bool enabled = false;

  /// Consecutive failures before a shard is quarantined (a single failure
  /// only degrades it).
  int quarantine_streak = 2;

  /// Epochs of backoff on first quarantine; doubles per subsequent
  /// quarantine (base, 2·base, 4·base, ...) up to `backoff_cap`.
  int backoff_base = 1;
  int backoff_cap = 8;

  /// What happens to a failed/quarantined shard's routed federated bids:
  /// true re-queues the original FederatedBids for next epoch's router
  /// pass over the healthy shards; false drops them (their money was never
  /// spent — the restore reverted the shard and the treasury refunded the
  /// float — so "refunded" is bookkeeping, not a transfer).
  bool reroute_failed_bids = true;
};

/// One shard's live health record, owned by FederatedExchange and
/// summarized into FederationReport::health each epoch.
struct ShardHealthStatus {
  ShardHealth status = ShardHealth::kHealthy;

  /// Consecutive failed epochs (reset by any clean active epoch).
  int failure_streak = 0;

  /// Epochs of quarantine left to sit out (counts down at epoch start).
  int backoff_remaining = 0;

  /// Times this shard has entered quarantine (drives exponential backoff).
  int quarantine_count = 0;

  /// Recovery attempts: quarantined → recovering transitions.
  int retries = 0;

  /// Checkpoint restores performed on this shard (one per contained
  /// failure).
  int restored_checkpoints = 0;

  /// Whether the shard runs an auction this epoch (false while
  /// quarantined). Set by the supervisor at epoch start.
  bool active = true;
};

}  // namespace pm::federation
