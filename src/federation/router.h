// planetmarket: cross-market bid routing (the federation's demand plane).
//
// A FederatedBid names a team, a resource requirement, and a payment
// limit — but no market. MarketRouter places it onto per-cluster market
// shards by policy, the thin federation layer of Tycoon-style auctioneer
// federations and the economic grid brokers of Buyya et al.: local markets
// clear independently; only bid *placement* crosses market boundaries.
//
// Placement is price- and capacity-aware. For each shard the router quotes
// the requirement against the shard's cheapest feasible cluster at current
// reserve prices, and derives a "heat" ratio (reserve-weighted cost over
// the pre-market fixed-price cost). When a preferred shard's heat crosses
// RouterConfig::spill_threshold the bid spills to a cooler shard — the
// paper's §V cross-cluster migration signal, applied before the auction
// instead of after it.
//
// Everything here is deterministic: quotes iterate clusters in registry
// interning order, ties break toward the lowest shard index, and split
// parts are derived with a last-part remainder so requested quantities are
// conserved exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bid/bid.h"
#include "cluster/job.h"
#include "common/types.h"
#include "federation/health.h"

namespace pm::federation {

/// How a federated bid is placed onto shards.
enum class RoutingPolicy {
  kHomeAffinity,   // The bid's home shard, spilling when it runs hot.
  kCheapestPrice,  // The shard quoting the lowest reserve-weighted cost.
  kSplit,          // Divided across cool shards by spare capacity.
  kMirrored,       // Full copies on the cheapest k shards (may double-win).
};

std::string_view ToString(RoutingPolicy policy);

/// A shard-agnostic demand: what a planet-wide team asks the federation
/// for. The router turns it into concrete pool-indexed bids.
struct FederatedBid {
  std::string team;              // Billing identity, federation-wide.
  std::string tag = "bid";       // Routed parts are named "fed/<team>/<tag>…".
  cluster::TaskShape quantity;   // Requested units per kind (all >= 0).
  double limit = 0.0;            // Max total payment across all parts.
  std::string home_shard;        // kHomeAffinity's preference (by name).
  /// Telemetry trace ID stamped by FederatedExchange::SubmitFederatedBid
  /// when the telemetry plane is on (0 = untraced). Survives supervisor
  /// re-queues, so a rerouted bid keeps its original lifecycle trace.
  std::uint64_t trace = 0;
};

/// The router's read-only view of one shard, snapshotted by the exchange
/// before routing (prices move only at auction time, so a snapshot is
/// coherent for the whole routing pass).
struct ShardView {
  std::string name;
  const PoolRegistry* registry = nullptr;
  std::vector<double> reserve_prices;  // Current congestion-weighted p̃.
  std::vector<double> free_capacity;   // Operator-sellable units per pool.
  std::vector<double> fixed_prices;    // Pre-market baseline prices.
  /// Unit-weighted fraction of recently awarded buy units the shard
  /// failed to place (exchange::RecentPlacementFailureRate). Folded into
  /// quote heat when RouterConfig::failure_heat_weight > 0: a shard that
  /// keeps selling quota it cannot deliver physically is hot in a way
  /// reserve prices alone do not show.
  double placement_failure_rate = 0.0;
  /// Failure-domain status from the epoch supervisor. Quarantined shards
  /// quote viable == false (they run no auction this epoch, so routing a
  /// bid there would strand it); degraded and recovering shards shed load
  /// through RouterConfig::degraded_heat_penalty. Healthy (the default)
  /// changes nothing.
  ShardHealth health = ShardHealth::kHealthy;
};

/// One concrete bid the router placed on one shard.
struct RoutedBid {
  std::size_t shard = 0;
  std::string team;
  bid::Bid bid;
  /// Index of the originating FederatedBid in the routing input (and so
  /// into RoutingResult::decisions) — the join key the telemetry plane
  /// uses to map shard-level awards back to bid lifecycles.
  std::size_t bid_index = 0;
};

/// Routing audit record for one federated bid (index-aligned with the
/// input), consumed by the federation reporting plane.
struct RouteDecision {
  std::string team;
  std::string tag;
  RoutingPolicy policy = RoutingPolicy::kCheapestPrice;
  std::size_t preferred_shard = 0;    // Where policy pointed first.
  std::vector<std::size_t> shards;    // Where parts actually landed.
  bool spilled = false;               // Re-routed off the preferred shard.
  double preferred_heat = 1.0;        // Reserve/fixed cost ratio there.
  /// The spill threshold this bid was actually routed under — equal to
  /// RouterConfig::spill_threshold unless budget pressure tightened it.
  double spill_threshold = 0.0;
};

/// Router tuning.
struct RouterConfig {
  RoutingPolicy policy = RoutingPolicy::kCheapestPrice;

  /// Spill when the preferred shard quotes more than this multiple of the
  /// fixed-price cost for the requirement (reserve prices grow with
  /// congestion, so heat is a pure congestion signal).
  double spill_threshold = 3.0;

  /// Copies placed by kMirrored (clamped to the shard count).
  std::size_t mirror_ways = 2;

  // ------------------------------------------------ outcome-aware gates --
  /// Placement-failure heat: every quote's heat is scaled by
  /// (1 + failure_heat_weight × shard placement_failure_rate), so shards
  /// that recently sold quota they could not place read hotter than
  /// their reserve prices claim. 0 (default) ignores failure rates.
  double failure_heat_weight = 0.0;

  /// Epochs of shard history the failure rate is averaged over (consumed
  /// by FederatedExchange::BuildShardViews).
  int failure_window = 3;

  /// Treasury-aware spill: > 0 tightens a bid's effective spill
  /// threshold as the team's remaining planet balance shrinks toward the
  /// bid's limit — a team running out of planet money spills to cheaper
  /// shards earlier instead of paying hot-shard prices. The threshold
  /// scales by (1 − budget_pressure × squeeze) where squeeze ramps from
  /// 0 (balance ≥ budget_comfort × limit) to 1 (balance 0). 0 (default)
  /// ignores balances; balances reach the router via the Route overload.
  double budget_pressure = 0.0;

  /// Multiples of the bid limit the team must hold for zero squeeze.
  double budget_comfort = 4.0;

  // ---------------------------------------------- failure-domain gates --
  /// Heat multiplier applied to degraded and recovering shards: their
  /// quotes read as heat × (1 + degraded_heat_penalty), so routed load
  /// sheds toward healthy shards while the shaky one proves itself. 0
  /// (default) routes purely on price. Quarantined shards are excluded
  /// outright regardless of this knob.
  double degraded_heat_penalty = 0.0;
};

/// A per-shard quote for one requirement.
struct ShardQuote {
  bool viable = false;       // False: no cluster covers every requested
                             // kind; the other fields are meaningless and
                             // routing skips the shard.
  std::string cluster;       // Chosen cluster within the shard.
  double reserve_cost = 0.0; // Requirement · reserve prices there.
  double fixed_cost = 0.0;   // Requirement · fixed prices there.
  double heat = 1.0;         // reserve_cost / fixed_cost (1 when free).
  double fit = 0.0;          // Copies of the requirement the headroom holds.
};

/// Everything one routing pass produced.
struct RoutingResult {
  std::vector<RoutedBid> routed;
  std::vector<RouteDecision> decisions;  // Index-aligned with the inputs.
};

/// Routes federated bids onto shards against a fixed snapshot of views.
class MarketRouter {
 public:
  MarketRouter(RouterConfig config, std::vector<ShardView> views);

  std::size_t NumShards() const { return views_.size(); }
  const std::vector<ShardView>& views() const { return views_; }

  /// Quotes `quantity` on one shard: cheapest feasible cluster at reserve
  /// prices (falling back to the most-spacious cluster when nothing fits
  /// whole). A shard where no cluster covers every requested kind comes
  /// back with viable == false rather than failing. Deterministic:
  /// clusters are scanned in interning order with first-wins ties.
  ShardQuote Quote(std::size_t shard,
                   const cluster::TaskShape& quantity) const;

  /// Routes every bid. Bids with no positive quantity, a non-positive
  /// limit, or no viable shard are recorded with an empty `shards` list
  /// and produce no parts.
  RoutingResult Route(const std::vector<FederatedBid>& bids) const;

  /// Treasury-aware overload: `planet_balances` (team → remaining planet
  /// balance in dollars) lets budget_pressure tighten each bid's
  /// effective spill threshold. Teams absent from the map route as if
  /// unconstrained.
  RoutingResult Route(
      const std::vector<FederatedBid>& bids,
      const std::unordered_map<std::string, double>& planet_balances) const;

  /// The spill threshold a bid routes under, given the team's remaining
  /// planet balance (exposed for tests).
  double EffectiveSpillThreshold(const FederatedBid& bid,
                                 double planet_balance) const;

 private:
  bid::Bid Materialize(const ShardQuote& quote, std::size_t shard,
                       const FederatedBid& fed,
                       const cluster::TaskShape& quantity, double limit,
                       const std::string& suffix) const;

  RouterConfig config_;
  std::vector<ShardView> views_;
};

}  // namespace pm::federation
