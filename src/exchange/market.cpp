#include "exchange/market.h"

#include <algorithm>
#include <cmath>

#include "agents/strategy.h"
#include "auction/system_check.h"
#include "common/check.h"
#include "net/distributed_auction.h"

namespace pm::exchange {
namespace {

/// Splits awarded quota per cluster into buy/sell shapes.
struct ClusterDelta {
  cluster::TaskShape bought;
  cluster::TaskShape sold;
};

std::unordered_map<std::string, ClusterDelta> SplitByCluster(
    const PoolRegistry& registry, const bid::Bundle& bundle) {
  std::unordered_map<std::string, ClusterDelta> deltas;
  for (const bid::BundleItem& item : bundle.items()) {
    const PoolKey& key = registry.KeyOf(item.pool);
    ClusterDelta& delta = deltas[key.cluster];
    if (item.qty > 0.0) {
      delta.bought.Of(key.kind) += item.qty;
    } else {
      delta.sold.Of(key.kind) += -item.qty;
    }
  }
  return deltas;
}

}  // namespace

auction::ClockAuctionConfig DefaultMarketAuctionConfig() {
  auction::ClockAuctionConfig config;
  config.policy_kind =
      auction::ClockAuctionConfig::PolicyKind::kMultiplicative;
  config.alpha = 0.4;
  config.delta = 0.08;
  config.step_floor = 1e-3;
  config.demand_eps = 2e-3;  // Tolerate 0.2 % aggregate oversubscription.
  config.intra_round_bisection = true;
  return config;
}

Market::Market(cluster::Fleet* fleet,
               std::vector<agents::TeamAgent>* agents,
               std::vector<double> fixed_prices, MarketConfig config)
    : fleet_(fleet),
      agents_(agents),
      fixed_prices_(std::move(fixed_prices)),
      config_(std::move(config)),
      pricer_(config_.weighting != nullptr
                  ? std::shared_ptr<const reserve::WeightingFunction>(
                        config_.weighting)
                  : std::shared_ptr<const reserve::WeightingFunction>(
                        reserve::MakeExp2Weighting())),
      ledger_(),
      accounts_(&ledger_),
      rng_(RandomStream::Substream(config_.seed, 0)) {
  PM_CHECK(fleet_ != nullptr && agents_ != nullptr);
  PM_CHECK_MSG(fixed_prices_.size() == fleet_->NumPools(),
               "fixed prices must cover every pool");
  PM_CHECK_MSG(config_.supply_fraction > 0.0 &&
                   config_.supply_fraction <= 1.0,
               "supply fraction must be in (0, 1]");
  if (config_.distributed_proxy_nodes > 0) {
    const std::string incompatible =
        auction::DistributedIncompatibility(config_.auction);
    PM_CHECK_MSG(incompatible.empty(),
                 "distributed market: " << incompatible);
  }
  // §I quota bootstrap: every team starts entitled to exactly what it
  // already runs, and its usage is charged accordingly.
  for (const cluster::JobLocation& loc : fleet_->AllJobs()) {
    const cluster::Job* job =
        fleet_->ClusterByName(loc.cluster).FindJob(loc.job);
    PM_CHECK(job != nullptr);
    ApplyJobQuota(job->team, loc.cluster, job->TotalDemand(),
                  /*add=*/true);
  }
}

void Market::ApplyJobQuota(const std::string& team,
                           const std::string& cluster,
                           const cluster::TaskShape& demand, bool add) {
  const PoolRegistry& registry = fleet_->registry();
  if (add) {
    quota_.Charge(team, registry, cluster, demand);
  } else {
    quota_.Refund(team, registry, cluster, demand);
  }
  for (ResourceKind kind : kAllResourceKinds) {
    const double amount = demand.Of(kind);
    if (amount <= 0.0) continue;
    const auto pool = registry.Find(PoolKey{cluster, kind});
    PM_CHECK(pool.has_value());
    if (add) {
      quota_.Grant(team, *pool, amount);
    } else {
      quota_.Release(team, *pool, amount);
    }
  }
}

std::vector<double> Market::CurrentReservePrices() const {
  return pricer_.PriceFleet(*fleet_);
}

void Market::SubmitExternalBid(ExternalBid bid) {
  PM_CHECK_MSG(!bid.team.empty(), "external bid needs a billing team");
  external_.push_back(std::move(bid));
}

void Market::EndowTeam(const std::string& team, Money amount,
                       std::string memo) {
  accounts_.Endow(team, amount, std::move(memo));
}

Money Market::WithdrawTeam(const std::string& team, std::string memo) {
  return accounts_.WithdrawAll(team, std::move(memo));
}

cluster::Cluster Market::ExtractCluster(const std::string& name) {
  // Validate before touching the quota table: if the fleet-level check
  // below were left to fail after the refunds, a rejected extraction
  // would leave jobs running with no recorded quota.
  PM_CHECK_MSG(fleet_->NumClusters() > 1,
               "cannot extract the fleet's last cluster");
  cluster::Cluster& cl = fleet_->ClusterByName(name);
  // Undo the quota bootstrap for every job leaving with the cluster; the
  // destination market re-applies it on adoption.
  for (cluster::JobId id : cl.JobIds()) {
    const cluster::Job* job = cl.FindJob(id);
    PM_CHECK(job != nullptr);
    ApplyJobQuota(job->team, name, job->TotalDemand(), /*add=*/false);
  }
  return fleet_->ExtractCluster(name);
}

void Market::AdoptCluster(cluster::Cluster cluster) {
  const std::string name = cluster.name();
  fleet_->AdoptCluster(std::move(cluster));
  const PoolRegistry& registry = fleet_->registry();
  // Grow per-pool market state to the enlarged registry. New pools enter
  // at the operator's unit cost — the same pre-market baseline every
  // other pool started from.
  if (fixed_prices_.size() < registry.size()) {
    const std::vector<double> costs = fleet_->CostVector();
    for (std::size_t r = fixed_prices_.size(); r < registry.size(); ++r) {
      fixed_prices_.push_back(costs[r]);
    }
  }
  for (agents::TeamAgent& agent : *agents_) {
    agent.ExtendPoolSpace(fixed_prices_);
  }
  // Re-key the incoming jobs into this market's id space: job ids are
  // only unique per market, and a collision would corrupt fleet-level
  // job lookups. The counter first jumps past every adopted id so no
  // fresh id can land on a job still waiting to be renumbered.
  // Placements are untouched.
  cluster::Cluster& cl = fleet_->ClusterByName(name);
  for (const cluster::JobId id : cl.JobIds()) {
    next_job_id_ = std::max(next_job_id_, id + 1);
  }
  for (const cluster::JobId id : cl.JobIds()) {
    cl.RenumberJob(id, next_job_id_++);
  }
  // Quota bootstrap for the adopted jobs (their teams may be foreign —
  // administratively owned by another shard's population; the table
  // tracks them all the same).
  for (cluster::JobId id : cl.JobIds()) {
    const cluster::Job* job = cl.FindJob(id);
    PM_CHECK(job != nullptr);
    ApplyJobQuota(job->team, name, job->TotalDemand(), /*add=*/true);
  }
}

Market::CollectedBids Market::CollectBids(
    const std::vector<double>& reserve,
    const std::vector<double>& utilization,
    const std::vector<double>& free_supply) {
  CollectedBids collected;
  collected.per_agent.assign(agents_->size(), 0);
  for (std::size_t a = 0; a < agents_->size(); ++a) {
    agents::TeamAgent& agent = (*agents_)[a];
    agents::MarketView view;
    view.registry = &fleet_->registry();
    view.reserve_prices = reserve;
    view.utilization = utilization;
    view.free_capacity = free_supply;
    view.budget = accounts_.BudgetOf(agent.profile().name).ToDouble();
    view.auction_index = AuctionCount();
    std::vector<bid::Bid> bids = agent.MakeBids(view);
    collected.per_agent[a] = bids.size();
    for (std::size_t i = 0; i < bids.size(); ++i) {
      // Budget discipline at the gate: a buyer's limit may not exceed its
      // budget (strategies already clamp; enforce anyway). The vector-π
      // entries are what the mechanism reads when present, so they get
      // the same clamp.
      if (bids[i].limit > view.budget) bids[i].limit = view.budget;
      for (double& limit : bids[i].bundle_limits) {
        if (limit > view.budget) limit = view.budget;
      }
      const std::string problem =
          bid::ValidateBid(bids[i], fleet_->NumPools());
      if (!problem.empty()) continue;  // Malformed bids never reach the auction.
      collected.origin.push_back(BidOrigin{a, i, agent.profile().name});
      collected.bids.push_back(std::move(bids[i]));
    }
  }
  // External (federation-routed) bids join after the resident agents', in
  // submission order, under the same budget gate. The clamp must cover
  // the vector-π extension too — bundle_limits, when present, are what
  // the mechanism reads, so clamping only the scalar would let an
  // external bid spend past its budget.
  for (ExternalBid& external : external_) {
    const double budget = accounts_.BudgetOf(external.team).ToDouble();
    if (external.bid.limit > budget) external.bid.limit = budget;
    for (double& limit : external.bid.bundle_limits) {
      if (limit > budget) limit = budget;
    }
    const std::string problem =
        bid::ValidateBid(external.bid, fleet_->NumPools());
    if (!problem.empty()) {
      // Rejected (typically a buy whose limit clamped to a zero budget):
      // counted so the federation can see routed parts that never reached
      // the auction.
      ++collected.external_rejected;
      continue;
    }
    BidOrigin origin;
    origin.team = external.team;
    collected.origin.push_back(std::move(origin));
    collected.bids.push_back(std::move(external.bid));
  }
  external_.clear();
  bid::AssignUserIds(collected.bids);
  return collected;
}

std::vector<double> Market::ComputePreliminaryPrices(
    std::vector<bid::Bid> bids) const {
  bid::AssignUserIds(bids);
  std::vector<double> supply = fleet_->FreeVector();
  for (double& s : supply) s *= config_.supply_fraction;
  auction::ClockAuction auction(std::move(bids), std::move(supply),
                                CurrentReservePrices());
  return auction.Run(config_.auction).prices;
}

AuctionReport Market::RunAuction() {
  AuctionReport report;
  report.auction_index = AuctionCount();
  report.fixed_prices = fixed_prices_;
  report.pre_utilization = fleet_->UtilizationVector();
  report.reserve_prices = pricer_.Price(
      fleet_->registry(), report.pre_utilization, fleet_->CostVector());

  // First auction: endow budgets at the fixed prices.
  if (!endowed_) {
    const std::vector<Money> endowments = ComputeEndowments(
        fleet_->registry(), *agents_, fixed_prices_, config_.endowment);
    for (std::size_t a = 0; a < agents_->size(); ++a) {
      accounts_.Endow((*agents_)[a].profile().name, endowments[a],
                      "initial endowment");
    }
    endowed_ = true;
  }

  std::vector<double> supply = fleet_->FreeVector();
  for (double& s : supply) s *= config_.supply_fraction;

  CollectedBids collected =
      CollectBids(report.reserve_prices, report.pre_utilization, supply);
  report.num_bids = collected.bids.size();
  report.external_rejected = collected.external_rejected;

  auction::ClockAuction auction(collected.bids, supply,
                                report.reserve_prices);
  auction::ClockAuctionResult result;
  if (config_.distributed_proxy_nodes > 0) {
    // Wire path: the same mechanism behind pm::net proxy nodes.
    net::DistributedConfig dist;
    dist.num_proxy_nodes = config_.distributed_proxy_nodes;
    dist.auction = config_.auction;
    net::DistributedResult distributed =
        net::RunDistributedAuction(auction, dist);
    result = std::move(distributed.result);
    report.transport_messages = distributed.transport.messages_sent;
    report.transport_bytes = distributed.transport.bytes_sent;
  } else {
    result = auction.Run(config_.auction);
  }
  report.rounds = result.rounds;
  report.converged = result.converged;
  report.demand_evaluations = result.demand_evaluations;
  report.settled_prices = result.prices;

  if (config_.audit_system && result.converged) {
    // The audit tolerance must cover the configured aggregate-demand
    // tolerance, or converged-by-definition results would be flagged.
    const double tolerance = std::max(1e-6, config_.auction.demand_eps);
    const auction::SystemCheckResult audit =
        auction::CheckSystemConstraints(auction, result, tolerance);
    PM_CHECK_MSG(audit.Feasible(),
                 "SYSTEM constraints violated: " << audit.ToString());
  }

  const auction::Settlement settlement = auction::Settle(auction, result);
  report.num_winners = settlement.awards.size();
  report.premium = auction::ComputePremiumStats(settlement);
  report.settled_fraction = settlement.settled_fraction;
  report.operator_revenue = settlement.operator_revenue;

  // Money: winners pay (or are paid by) the operator treasury.
  for (const auction::Award& award : settlement.awards) {
    const bid::Bid& b = collected.bids[award.user];
    const std::string& team = collected.origin[award.user].team;
    report.awards.push_back(AwardRecord{team, b.name, award.bundle_index,
                                        award.payment, award.premium});
    const Money amount = Money::FromDollarsRounded(std::abs(award.payment));
    std::string status;
    if (award.payment > 0.0) {
      status = accounts_.ChargeTeam(team, amount, "auction: " + b.name);
      if (!status.empty()) {
        // Overdraft: settle anyway (the quota is already committed) but
        // surface it — the budget gate failed, e.g. two winning buy bids
        // from one team.
        ++report.overdrafts;
        accounts_.Endow(team, amount - accounts_.BudgetOf(team),
                        "overdraft cover: " + b.name);
        status = accounts_.ChargeTeam(team, amount,
                                      "auction (overdraft): " + b.name);
        PM_CHECK_MSG(status.empty(), "settlement failed: " << status);
      }
    } else if (award.payment < 0.0) {
      accounts_.PayTeam(team, amount, "auction: " + b.name);
    }
  }

  RecordTrades(collected, settlement, report);
  ApplyPhysicalSettlement(collected, settlement, report);
  RefreshTeamProfiles();

  // Let every agent observe the uniform clearing prices (losers learn
  // from the public signal too — §III.A's "clear signaling").
  std::vector<std::vector<agents::BidOutcome>> outcomes(agents_->size());
  for (std::size_t a = 0; a < agents_->size(); ++a) {
    outcomes[a].resize(collected.per_agent[a]);
  }
  for (const auction::Award& award : settlement.awards) {
    const BidOrigin& origin = collected.origin[award.user];
    if (origin.IsExternal()) continue;  // No resident agent to notify.
    if (origin.local < outcomes[origin.agent].size()) {
      outcomes[origin.agent][origin.local] = agents::BidOutcome{
          true, award.bundle_index, award.payment};
    }
  }
  for (std::size_t a = 0; a < agents_->size(); ++a) {
    (*agents_)[a].ObserveOutcome(report.settled_prices, outcomes[a]);
  }

  report.post_utilization = fleet_->UtilizationVector();
  history_.push_back(report);
  return history_.back();
}

void Market::RecordTrades(const CollectedBids& collected,
                          const auction::Settlement& settlement,
                          AuctionReport& report) const {
  // Pre-compute each cluster's pre-auction utilization percentile per
  // kind (Figure 7's y-axis).
  const PoolRegistry& registry = fleet_->registry();
  for (const auction::Award& award : settlement.awards) {
    const bid::Bid& b = collected.bids[award.user];
    const std::string& team = collected.origin[award.user].team;
    const bid::Bundle& bundle =
        b.bundles[static_cast<std::size_t>(award.bundle_index)];
    for (const bid::BundleItem& item : bundle.items()) {
      const PoolKey& key = registry.KeyOf(item.pool);
      // A pool can outlive its cluster (migrated to another shard); such
      // quota-only trades carry no live percentile, and a 0.0 sentinel
      // would read as a real coldest-cluster rank in the Figure 7
      // distributions — drop the sample instead.
      if (!fleet_->HasCluster(key.cluster)) continue;
      TradeSample sample;
      sample.kind = key.kind;
      sample.is_bid = item.qty > 0.0;
      sample.qty = std::abs(item.qty);
      sample.team = team;
      sample.util_percentile =
          fleet_->UtilizationPercentile(key.cluster, key.kind);
      report.trades.push_back(std::move(sample));
    }
  }
}

void Market::ApplyPhysicalSettlement(const CollectedBids& collected,
                                     const auction::Settlement& settlement,
                                     AuctionReport& report) {
  const PoolRegistry& registry = fleet_->registry();
  for (const auction::Award& award : settlement.awards) {
    const bid::Bid& b = collected.bids[award.user];
    const BidOrigin& origin = collected.origin[award.user];
    const std::string& team = origin.team;
    const bid::Bundle& bundle =
        b.bundles[static_cast<std::size_t>(award.bundle_index)];

    // Quota first: the settled trade changes the team's entitlements
    // regardless of how (or whether) the physical placement lands.
    for (const bid::BundleItem& item : bundle.items()) {
      if (item.qty > 0.0) {
        quota_.Grant(team, item.pool, item.qty);
      } else {
        quota_.Release(team, item.pool, -item.qty);
      }
    }

    if (agents::IsArbitrageBidName(b.name) && !origin.IsExternal()) {
      // Arbitrage trades move quota, not jobs: adjust the warehouse.
      std::vector<double>& holdings =
          (*agents_)[origin.agent].mutable_holdings();
      holdings.resize(registry.size(), 0.0);
      for (const bid::BundleItem& item : bundle.items()) {
        holdings[item.pool] =
            std::max(0.0, holdings[item.pool] + item.qty);
      }
      continue;
    }

    const auto deltas = SplitByCluster(registry, bundle);
    std::string sold_from;
    std::string bought_in;

    // Releases first: free the capacity before anyone re-buys it.
    for (const auto& [cluster_name, delta] : deltas) {
      if (delta.sold.cpu <= 0.0 && delta.sold.ram_gb <= 0.0 &&
          delta.sold.disk_tb <= 0.0) {
        continue;
      }
      // The cluster may have migrated to another shard since the pools
      // were interned: the quota release above still stands, but there
      // is nothing physical to vacate here.
      if (!fleet_->HasCluster(cluster_name)) continue;
      sold_from = cluster_name;
      // Remove this team's jobs in the cluster, largest first, until the
      // sold quantities are covered (whole-job granularity; slight
      // over-release returns to the operator's free pool).
      cluster::Cluster& cl = fleet_->ClusterByName(cluster_name);
      std::vector<std::pair<double, cluster::JobId>> candidates;
      for (cluster::JobId id : cl.JobIds()) {
        const cluster::Job* job = cl.FindJob(id);
        if (job != nullptr && job->team == team) {
          candidates.emplace_back(job->TotalDemand().cpu, id);
        }
      }
      std::sort(candidates.rbegin(), candidates.rend());
      cluster::TaskShape freed;
      for (const auto& [cpu, id] : candidates) {
        if (freed.cpu >= delta.sold.cpu &&
            freed.ram_gb >= delta.sold.ram_gb &&
            freed.disk_tb >= delta.sold.disk_tb) {
          break;
        }
        const std::optional<cluster::Job> removed = cl.RemoveJob(id);
        PM_CHECK(removed.has_value());
        quota_.Refund(team, registry, cluster_name,
                      removed->TotalDemand());
        freed += removed->TotalDemand();
        ++report.jobs_removed;
      }
    }

    for (const auto& [cluster_name, delta] : deltas) {
      if (delta.bought.cpu <= 0.0 && delta.bought.ram_gb <= 0.0 &&
          delta.bought.disk_tb <= 0.0) {
        continue;
      }
      // Quota won in a cluster that has since migrated away cannot
      // materialize physically; count it with the bin-packing failures.
      if (!fleet_->HasCluster(cluster_name)) {
        ++report.placement_failures;
        continue;
      }
      bought_in = cluster_name;
      // Materialize the bought quota as a job split into machine-sized
      // tasks.
      int tasks = 1;
      for (ResourceKind kind : kAllResourceKinds) {
        const double cap = config_.max_task_shape.Of(kind);
        if (cap > 0.0 && delta.bought.Of(kind) > 0.0) {
          tasks = std::max(
              tasks, static_cast<int>(
                         std::ceil(delta.bought.Of(kind) / cap)));
        }
      }
      cluster::Job job;
      job.id = next_job_id_++;
      job.team = team;
      job.tasks = tasks;
      job.shape = delta.bought * (1.0 / static_cast<double>(tasks));
      bool placed = fleet_->AddJob(cluster_name, job);
      if (!placed) {
        // Fragmentation: retry with tasks twice as fine.
        job.tasks *= 2;
        job.shape = delta.bought * (1.0 / job.tasks);
        job.id = next_job_id_++;
        placed = fleet_->AddJob(cluster_name, job);
      }
      if (placed) {
        quota_.Charge(team, registry, cluster_name, delta.bought);
        ++report.jobs_added;
      } else {
        ++report.placement_failures;
      }
    }

    if (!sold_from.empty() || !bought_in.empty()) {
      MoveRecord move;
      move.team = team;
      move.from_cluster = sold_from;
      move.to_cluster = bought_in;
      for (const auto& [cluster_name, delta] : deltas) {
        move.amount += delta.bought;
      }
      report.moves.push_back(std::move(move));
    }
  }
}

void Market::RefreshTeamProfiles() {
  // Recompute footprints from the fleet and re-home teams to their
  // center of mass.
  std::unordered_map<std::string, cluster::TaskShape> footprints;
  std::unordered_map<std::string, std::unordered_map<std::string, double>>
      cpu_by_cluster;
  for (const cluster::JobLocation& loc : fleet_->AllJobs()) {
    const cluster::Job* job =
        fleet_->ClusterByName(loc.cluster).FindJob(loc.job);
    PM_CHECK(job != nullptr);
    footprints[job->team] += job->TotalDemand();
    cpu_by_cluster[job->team][loc.cluster] += job->TotalDemand().cpu;
  }
  for (agents::TeamAgent& agent : *agents_) {
    agents::TeamProfile& profile = agent.mutable_profile();
    auto it = footprints.find(profile.name);
    if (it == footprints.end()) continue;  // Keep the seed footprint.
    profile.footprint = it->second;
    const auto& clusters = cpu_by_cluster[profile.name];
    double best_cpu = 0.0;
    for (const auto& [cluster_name, cpu] : clusters) {
      if (cpu > best_cpu) {
        best_cpu = cpu;
        profile.home_cluster = cluster_name;
      }
    }
  }
}

}  // namespace pm::exchange
