#include "exchange/market.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "auction/kernels.h"
#include "auction/system_check.h"
#include "common/check.h"
#include "common/phase_span.h"
#include "net/distributed_auction.h"

namespace pm::exchange {

auction::ClockAuctionConfig DefaultMarketAuctionConfig() {
  auction::ClockAuctionConfig config;
  config.policy_kind =
      auction::ClockAuctionConfig::PolicyKind::kMultiplicative;
  config.alpha = 0.4;
  config.delta = 0.08;
  config.step_floor = 1e-3;
  config.demand_eps = 2e-3;  // Tolerate 0.2 % aggregate oversubscription.
  config.intra_round_bisection = true;
  return config;
}

Market::Market(cluster::Fleet* fleet,
               std::vector<agents::TeamAgent>* agents,
               std::vector<double> fixed_prices, MarketConfig config)
    : fleet_(fleet),
      agents_(agents),
      fixed_prices_(std::move(fixed_prices)),
      config_(std::move(config)),
      pricer_(config_.weighting != nullptr
                  ? std::shared_ptr<const reserve::WeightingFunction>(
                        config_.weighting)
                  : std::shared_ptr<const reserve::WeightingFunction>(
                        reserve::MakeExp2Weighting())),
      ledger_(),
      accounts_(&ledger_),
      rng_(RandomStream::Substream(config_.seed, 0)) {
  PM_CHECK(fleet_ != nullptr && agents_ != nullptr);
  PM_CHECK_MSG(fixed_prices_.size() == fleet_->NumPools(),
               "fixed prices must cover every pool");
  PM_CHECK_MSG(config_.supply_fraction > 0.0 &&
                   config_.supply_fraction <= 1.0,
               "supply fraction must be in (0, 1]");
  if (config_.distributed_proxy_nodes > 0) {
    const std::string incompatible =
        auction::DistributedIncompatibility(config_.auction);
    PM_CHECK_MSG(incompatible.empty(),
                 "distributed market: " << incompatible);
  }
  // §I quota bootstrap: every team starts entitled to exactly what it
  // already runs, and its usage is charged accordingly.
  for (const cluster::JobLocation& loc : fleet_->AllJobs()) {
    const cluster::Job* job =
        fleet_->ClusterByName(loc.cluster).FindJob(loc.job);
    PM_CHECK(job != nullptr);
    ApplyJobQuota(job->team, loc.cluster, job->TotalDemand(),
                  /*add=*/true);
  }
}

void Market::ApplyJobQuota(const std::string& team,
                           const std::string& cluster,
                           const cluster::TaskShape& demand, bool add) {
  const PoolRegistry& registry = fleet_->registry();
  if (add) {
    quota_.Charge(team, registry, cluster, demand);
  } else {
    quota_.Refund(team, registry, cluster, demand);
  }
  for (ResourceKind kind : kAllResourceKinds) {
    const double amount = demand.Of(kind);
    if (amount <= 0.0) continue;
    const auto pool = registry.Find(PoolKey{cluster, kind});
    PM_CHECK(pool.has_value());
    if (add) {
      quota_.Grant(team, *pool, amount);
    } else {
      quota_.Release(team, *pool, amount);
    }
  }
}

std::vector<double> Market::CurrentReservePrices() const {
  return pricer_.PriceFleet(*fleet_);
}

void Market::SubmitExternalBid(ExternalBid bid) {
  PM_CHECK_MSG(!bid.team.empty(), "external bid needs a billing team");
  external_.push_back(std::move(bid));
}

void Market::SubmitExternalBids(std::vector<ExternalBid> bids) {
  external_.reserve(external_.size() + bids.size());
  for (ExternalBid& bid : bids) {
    SubmitExternalBid(std::move(bid));
  }
}

void Market::EndowTeam(const std::string& team, Money amount,
                       std::string memo) {
  accounts_.Endow(team, amount, std::move(memo));
}

Money Market::WithdrawTeam(const std::string& team, std::string memo) {
  return accounts_.WithdrawAll(team, std::move(memo));
}

cluster::Cluster Market::ExtractCluster(const std::string& name) {
  // Validate before touching the quota table: if the fleet-level check
  // below were left to fail after the refunds, a rejected extraction
  // would leave jobs running with no recorded quota.
  PM_CHECK_MSG(fleet_->NumClusters() > 1,
               "cannot extract the fleet's last cluster");
  cluster::Cluster& cl = fleet_->ClusterByName(name);
  // Undo the quota bootstrap for every job leaving with the cluster; the
  // destination market re-applies it on adoption.
  for (cluster::JobId id : cl.JobIds()) {
    const cluster::Job* job = cl.FindJob(id);
    PM_CHECK(job != nullptr);
    ApplyJobQuota(job->team, name, job->TotalDemand(), /*add=*/false);
  }
  return fleet_->ExtractCluster(name);
}

void Market::AdoptCluster(cluster::Cluster cluster) {
  const std::string name = cluster.name();
  fleet_->AdoptCluster(std::move(cluster));
  const PoolRegistry& registry = fleet_->registry();
  // Grow per-pool market state to the enlarged registry. New pools enter
  // at the operator's unit cost — the same pre-market baseline every
  // other pool started from.
  if (fixed_prices_.size() < registry.size()) {
    const std::vector<double> costs = fleet_->CostVector();
    for (std::size_t r = fixed_prices_.size(); r < registry.size(); ++r) {
      fixed_prices_.push_back(costs[r]);
    }
  }
  for (agents::TeamAgent& agent : *agents_) {
    agent.ExtendPoolSpace(fixed_prices_);
  }
  // Re-key the incoming jobs into this market's id space: job ids are
  // only unique per market, and a collision would corrupt fleet-level
  // job lookups. The counter first jumps past every adopted id so no
  // fresh id can land on a job still waiting to be renumbered.
  // Placements are untouched.
  cluster::Cluster& cl = fleet_->ClusterByName(name);
  for (const cluster::JobId id : cl.JobIds()) {
    next_job_id_ = std::max(next_job_id_, id + 1);
  }
  for (const cluster::JobId id : cl.JobIds()) {
    cl.RenumberJob(id, next_job_id_++);
  }
  // Quota bootstrap for the adopted jobs (their teams may be foreign —
  // administratively owned by another shard's population; the table
  // tracks them all the same).
  for (cluster::JobId id : cl.JobIds()) {
    const cluster::Job* job = cl.FindJob(id);
    PM_CHECK(job != nullptr);
    ApplyJobQuota(job->team, name, job->TotalDemand(), /*add=*/true);
  }
}

Market::CollectedBids Market::CollectBids(
    const std::vector<double>& reserve,
    const std::vector<double>& utilization,
    const std::vector<double>& free_supply) {
  CollectedBids collected;
  collected.per_agent.assign(agents_->size(), 0);
  for (std::size_t a = 0; a < agents_->size(); ++a) {
    agents::TeamAgent& agent = (*agents_)[a];
    agents::MarketView view;
    view.registry = &fleet_->registry();
    view.reserve_prices = reserve;
    view.utilization = utilization;
    view.free_capacity = free_supply;
    view.budget = accounts_.BudgetOf(agent.profile().name).ToDouble();
    view.auction_index = AuctionCount();
    std::vector<bid::Bid> bids = agent.MakeBids(view);
    collected.per_agent[a] = bids.size();
    for (std::size_t i = 0; i < bids.size(); ++i) {
      // Budget discipline at the gate: a buyer's limit may not exceed its
      // budget (strategies already clamp; enforce anyway). The vector-π
      // entries are what the mechanism reads when present, so they get
      // the same clamp.
      if (bids[i].limit > view.budget) bids[i].limit = view.budget;
      for (double& limit : bids[i].bundle_limits) {
        if (limit > view.budget) limit = view.budget;
      }
      const std::string problem =
          bid::ValidateBid(bids[i], fleet_->NumPools());
      if (!problem.empty()) continue;  // Malformed bids never reach the auction.
      collected.origin.push_back(BidOrigin{a, i, agent.profile().name});
      collected.bids.push_back(std::move(bids[i]));
    }
  }
  // External (federation-routed) bids join after the resident agents', in
  // submission order, under the same budget gate. The clamp must cover
  // the vector-π extension too — bundle_limits, when present, are what
  // the mechanism reads, so clamping only the scalar would let an
  // external bid spend past its budget.
  for (ExternalBid& external : external_) {
    // Validate before the clamp to tell the two rejection classes apart:
    // a bid malformed as submitted is a validation failure; one that only
    // breaks after its limit clamps to the local budget was starved.
    const bool valid_as_submitted =
        bid::ValidateBid(external.bid, fleet_->NumPools()).empty();
    const double budget = accounts_.BudgetOf(external.team).ToDouble();
    if (external.bid.limit > budget) external.bid.limit = budget;
    for (double& limit : external.bid.bundle_limits) {
      if (limit > budget) limit = budget;
    }
    const std::string problem =
        bid::ValidateBid(external.bid, fleet_->NumPools());
    if (!problem.empty()) {
      // Rejected: recorded with the reason so the federation can see —
      // and assert on — routed parts that never reached the auction.
      collected.external_rejections.push_back(ExternalRejection{
          external.team, external.bid.name,
          valid_as_submitted ? ExternalRejection::Reason::kBudget
                             : ExternalRejection::Reason::kValidation});
      continue;
    }
    BidOrigin origin;
    origin.team = external.team;
    collected.origin.push_back(std::move(origin));
    collected.bids.push_back(std::move(external.bid));
  }
  external_.clear();
  bid::AssignUserIds(collected.bids);
  return collected;
}

std::vector<double> Market::ComputePreliminaryPrices(
    std::vector<bid::Bid> bids) const {
  bid::AssignUserIds(bids);
  std::vector<double> supply = fleet_->FreeVector();
  for (double& s : supply) s *= config_.supply_fraction;
  auction::ClockAuction auction(std::move(bids), std::move(supply),
                                CurrentReservePrices(),
                                config_.demand_engine);
  return auction.Run(config_.auction).prices;
}

AuctionReport Market::RunAuction() {
  AuctionReport report;
  report.auction_index = AuctionCount();
  report.fixed_prices = fixed_prices_;
  report.pre_utilization = fleet_->UtilizationVector();
  report.reserve_prices = pricer_.Price(
      fleet_->registry(), report.pre_utilization, fleet_->CostVector());

  // First auction: endow budgets at the fixed prices.
  if (!endowed_) {
    const std::vector<Money> endowments = ComputeEndowments(
        fleet_->registry(), *agents_, fixed_prices_, config_.endowment);
    for (std::size_t a = 0; a < agents_->size(); ++a) {
      accounts_.Endow((*agents_)[a].profile().name, endowments[a],
                      "initial endowment");
    }
    endowed_ = true;
  }

  std::vector<double> supply = fleet_->FreeVector();
  for (double& s : supply) s *= config_.supply_fraction;

  CollectedBids collected =
      CollectBids(report.reserve_prices, report.pre_utilization, supply);
  report.num_bids = collected.bids.size();
  report.external_rejected = collected.external_rejections.size();
  report.external_rejections = std::move(collected.external_rejections);

  auction::ClockAuction auction(collected.bids, supply,
                                report.reserve_prices,
                                config_.demand_engine);
  auction::ClockAuctionResult result;
  if (config_.distributed_proxy_nodes > 0) {
    // Wire path: the same mechanism behind pm::net proxy nodes.
    net::DistributedConfig dist;
    dist.num_proxy_nodes = config_.distributed_proxy_nodes;
    dist.auction = config_.auction;
    if (config_.wire_faults.Enabled()) {
      dist.faults = config_.wire_faults;
      // Each auction gets its own fault pattern, reproducibly: mix the
      // configured wire seed with the auction index.
      dist.faults.seed =
          SplitMix64(config_.wire_faults.seed ^
                     (0xa0761d6478bd642fULL *
                      (static_cast<std::uint64_t>(history_.size()) + 1)))
              .Next();
    }
    net::DistributedResult distributed =
        net::RunDistributedAuction(auction, dist);
    result = std::move(distributed.result);
    report.transport_messages = distributed.transport.messages_sent;
    report.transport_bytes = distributed.transport.bytes_sent;
    report.wire_frames_retried = distributed.transport.frames_retried;
    report.wire_frames_deduped = distributed.transport.frames_duplicated +
                                 distributed.transport.frames_stale;
  } else if (config_.phase_timings) {
    auction::ClockAuctionConfig timed = config_.auction;
    timed.collect_phase_timings = true;
    result = auction.Run(timed);
  } else {
    result = auction.Run(config_.auction);
  }
  report.rounds = result.rounds;
  report.converged = result.converged;
  report.demand_evaluations = result.demand_evaluations;
  report.proxies_reevaluated = result.proxies_reevaluated;
  report.bisection_probes = result.bisection_probes;
  report.full_collections = result.full_collections;
  report.incremental_collections = result.incremental_collections;
  report.dot_blocks = result.dot_blocks;
  report.dirty_bidders = result.dirty_bidders;
  report.kernel = auction::ToString(auction.engine().kernel());
  report.phases = std::move(result.phases);
  report.settled_prices = result.prices;

  if (config_.audit_system && result.converged) {
    // The audit tolerance must cover the configured aggregate-demand
    // tolerance, or converged-by-definition results would be flagged.
    const double tolerance = std::max(1e-6, config_.auction.demand_eps);
    const auction::SystemCheckResult audit =
        auction::CheckSystemConstraints(auction, result, tolerance);
    PM_CHECK_MSG(audit.Feasible(),
                 "SYSTEM constraints violated: " << audit.ToString());
  }

  // Wall channel: the settle span covers settlement computation through
  // the full pipeline (billing → quota → placement → refunds → moves).
  ScopedPhaseTimer settle_timer(
      config_.phase_timings ? &report.phases : nullptr, "settle");

  const auction::Settlement settlement = auction::Settle(auction, result);
  report.num_winners = settlement.awards.size();
  report.premium = auction::ComputePremiumStats(settlement);
  report.settled_fraction = settlement.settled_fraction;
  report.operator_revenue = settlement.operator_revenue;

  RecordTrades(collected, settlement, report);

  // Settlement pipeline: billing → quota → placement → outcome →
  // (gated) refunds → move pricing, award by award.
  std::vector<SettlementPipeline::AwardInput> inputs;
  inputs.reserve(settlement.awards.size());
  for (const auction::Award& award : settlement.awards) {
    const BidOrigin& origin = collected.origin[award.user];
    SettlementPipeline::AwardInput input;
    input.bid = &collected.bids[award.user];
    input.award = &award;
    input.team = origin.team;
    input.agent = origin.IsExternal()
                      ? SettlementPipeline::AwardInput::kExternalAgent
                      : origin.agent;
    inputs.push_back(std::move(input));
  }
  SettlementPipeline pipeline(fleet_, agents_, &quota_, &accounts_,
                              config_.settlement, config_.max_task_shape,
                              &next_job_id_);
  pipeline.Execute(inputs, report.settled_prices, report);
  settle_timer.Stop();
  RefreshTeamProfiles();

  // Let every agent observe the uniform clearing prices (losers learn
  // from the public signal too — §III.A's "clear signaling").
  std::vector<std::vector<agents::BidOutcome>> outcomes(agents_->size());
  for (std::size_t a = 0; a < agents_->size(); ++a) {
    outcomes[a].resize(collected.per_agent[a]);
  }
  // report.awards is index-aligned with settlement.awards (the pipeline
  // appends one record per input, in order), so award a's placement
  // outcome is report.awards[a].outcome.
  for (std::size_t a = 0; a < settlement.awards.size(); ++a) {
    const auction::Award& award = settlement.awards[a];
    const BidOrigin& origin = collected.origin[award.user];
    if (origin.IsExternal()) continue;  // No resident agent to notify.
    if (origin.local < outcomes[origin.agent].size()) {
      agents::BidOutcome outcome{true, award.bundle_index, award.payment};
      if (config_.outcome_feedback) {
        const PlacementOutcome& placed = report.awards[a].outcome;
        outcome.awarded_units = placed.awarded_units;
        outcome.placed_units = placed.placed_units;
        for (const PoolFill& fill : placed.fills) {
          if (fill.placed < fill.awarded) {
            outcome.unplaced_pools.push_back(fill.pool);
          }
        }
      }
      outcomes[origin.agent][origin.local] = std::move(outcome);
    }
  }
  for (std::size_t a = 0; a < agents_->size(); ++a) {
    (*agents_)[a].ObserveOutcome(report.settled_prices, outcomes[a]);
  }

  report.post_utilization = fleet_->UtilizationVector();
  history_.push_back(report);
  return history_.back();
}

void Market::RecordTrades(const CollectedBids& collected,
                          const auction::Settlement& settlement,
                          AuctionReport& report) const {
  // Pre-compute each cluster's pre-auction utilization percentile per
  // kind (Figure 7's y-axis).
  const PoolRegistry& registry = fleet_->registry();
  for (const auction::Award& award : settlement.awards) {
    const bid::Bid& b = collected.bids[award.user];
    const std::string& team = collected.origin[award.user].team;
    const bid::Bundle& bundle =
        b.bundles[static_cast<std::size_t>(award.bundle_index)];
    for (const bid::BundleItem& item : bundle.items()) {
      const PoolKey& key = registry.KeyOf(item.pool);
      // A pool can outlive its cluster (migrated to another shard); such
      // quota-only trades carry no live percentile, and a 0.0 sentinel
      // would read as a real coldest-cluster rank in the Figure 7
      // distributions — drop the sample instead.
      if (!fleet_->HasCluster(key.cluster)) continue;
      TradeSample sample;
      sample.kind = key.kind;
      sample.is_bid = item.qty > 0.0;
      sample.qty = std::abs(item.qty);
      sample.team = team;
      sample.util_percentile =
          fleet_->UtilizationPercentile(key.cluster, key.kind);
      report.trades.push_back(std::move(sample));
    }
  }
}

void Market::RefreshTeamProfiles() {
  // Recompute footprints from the fleet and re-home teams to their
  // center of mass.
  std::unordered_map<std::string, cluster::TaskShape> footprints;
  std::unordered_map<std::string, std::unordered_map<std::string, double>>
      cpu_by_cluster;
  for (const cluster::JobLocation& loc : fleet_->AllJobs()) {
    const cluster::Job* job =
        fleet_->ClusterByName(loc.cluster).FindJob(loc.job);
    PM_CHECK(job != nullptr);
    footprints[job->team] += job->TotalDemand();
    cpu_by_cluster[job->team][loc.cluster] += job->TotalDemand().cpu;
  }
  for (agents::TeamAgent& agent : *agents_) {
    agents::TeamProfile& profile = agent.mutable_profile();
    auto it = footprints.find(profile.name);
    if (it == footprints.end()) continue;  // Keep the seed footprint.
    profile.footprint = it->second;
    const auto& clusters = cpu_by_cluster[profile.name];
    double best_cpu = 0.0;
    for (const auto& [cluster_name, cpu] : clusters) {
      if (cpu > best_cpu) {
        best_cpu = cpu;
        profile.home_cluster = cluster_name;
      }
    }
  }
}

}  // namespace pm::exchange
