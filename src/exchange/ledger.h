// planetmarket: a double-entry ledger for budget dollars.
//
// §V describes accounting/billing as part of the commercialization stack
// around the market (out of the paper's scope, but required to run one).
// This is the minimum honest implementation: named accounts, transfers
// recorded as journal entries, and a conservation invariant — the sum of
// all balances equals the sum of all opening balances, always.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/money.h"

namespace pm::exchange {

/// Dense account handle.
using AccountId = std::uint32_t;

/// One executed transfer.
struct JournalEntry {
  AccountId from = 0;
  AccountId to = 0;
  Money amount;        // Always >= 0; direction is from → to.
  std::string memo;
  int sequence = 0;    // Monotonic per-ledger.
};

/// Append-only set of accounts with transfer journaling.
class Ledger {
 public:
  Ledger() = default;

  /// Creates an account. `allow_negative` permits overdrafts (used by the
  /// operator treasury, which mints endowments and absorbs sales).
  AccountId CreateAccount(std::string name, Money opening = Money(),
                          bool allow_negative = false);

  std::size_t NumAccounts() const { return accounts_.size(); }
  const std::string& NameOf(AccountId id) const;
  Money Balance(AccountId id) const;
  bool AllowsNegative(AccountId id) const;

  /// Moves `amount` (must be >= 0) from → to. Returns the empty string on
  /// success or a reason ("insufficient funds …") without changing state.
  std::string Transfer(AccountId from, AccountId to, Money amount,
                       std::string memo);

  /// All executed transfers, in order.
  const std::vector<JournalEntry>& Journal() const { return journal_; }

  /// Conservation check value: Σ balances. Transfers never change it.
  Money TotalBalance() const;

  /// Renders the account table (name, balance) for reports.
  std::string RenderAccounts() const;

  /// Checkpoint restore: appends an account with an exact (possibly
  /// negative) balance and no journal entry. Restore replays accounts in
  /// saved order so AccountIds round-trip.
  AccountId RestoreAccount(std::string name, Money balance,
                           bool allow_negative);

  /// Checkpoint restore of the journal and its sequence counter.
  void RestoreJournal(std::vector<JournalEntry> journal, int next_sequence);

 private:
  struct Account {
    std::string name;
    Money balance;
    bool allow_negative = false;
  };

  std::vector<Account> accounts_;
  std::vector<JournalEntry> journal_;
  int next_sequence_ = 0;
};

}  // namespace pm::exchange
