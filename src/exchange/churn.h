// planetmarket: organic workload churn between auctions.
//
// The paper's experiments ran "over the course of several months" (§V.B):
// between auctions, teams' workloads kept evolving — services launched,
// grew and retired independently of the market. ChurnProcess reproduces
// that background evolution on the simulation clock: Poisson job
// arrivals (placed in each team's home cluster) with exponential
// lifetimes. Combined with a PeriodicProcess running Market::RunAuction,
// this yields the full longitudinal setting: the market periodically
// re-prices a fleet that never stops changing underneath it.
#pragma once

#include <cstdint>

#include "agents/team.h"
#include "cluster/fleet.h"
#include "cluster/quota.h"
#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/process.h"

namespace pm::exchange {

/// Tuning for the churn stream. Time unit matches the event queue
/// (hours in the provided examples/benches).
struct ChurnConfig {
  /// Fleet-wide job arrival rate (jobs per hour). Arrivals pick a team
  /// weighted by footprint — big teams launch more services.
  double arrival_rate = 0.5;

  /// Mean job lifetime (hours); lifetimes are exponential. Jobs also
  /// die when their team vacates the cluster mid-life (the market's
  /// physical settlement removes them); that is handled gracefully.
  double mean_lifetime = 300.0;

  /// Per-task shape ranges for arriving jobs.
  double min_task_cpu = 0.5;
  double max_task_cpu = 4.0;
  int min_tasks = 2;
  int max_tasks = 24;

  std::uint64_t seed = 1;
};

/// Statistics accumulated by a churn run.
struct ChurnStats {
  long long jobs_started = 0;
  long long jobs_finished = 0;
  long long placement_failures = 0;  // Arrival did not fit the cluster.
  long long quota_rejections = 0;    // Arrival denied by quota (§I).
};

/// The background arrival/departure stream. Construction arms the
/// process; it runs until Stop() or queue exhaustion.
class ChurnProcess {
 public:
  /// `queue`, `fleet` and `agents` must outlive the process. When a
  /// `quota` table is supplied (typically Market::mutable_quota()),
  /// arrivals are admission-controlled against it — §I's "allocation
  /// limits mapped into the low-level scheduling algorithms" — and
  /// usage is charged/refunded as churn jobs come and go.
  ChurnProcess(sim::EventQueue& queue, cluster::Fleet* fleet,
               std::vector<agents::TeamAgent>* agents, ChurnConfig config,
               cluster::QuotaTable* quota = nullptr);

  ~ChurnProcess();

  ChurnProcess(const ChurnProcess&) = delete;
  ChurnProcess& operator=(const ChurnProcess&) = delete;

  /// Halts future arrivals (scheduled departures still drain).
  void Stop();

  const ChurnStats& stats() const { return stats_; }

 private:
  bool OnArrival();

  sim::EventQueue& queue_;
  cluster::Fleet* fleet_;
  std::vector<agents::TeamAgent>* agents_;
  ChurnConfig config_;
  cluster::QuotaTable* quota_;
  RandomStream rng_;
  ChurnStats stats_;
  cluster::JobId next_job_id_ = 5'000'000;  // Churn-owned id space.
  std::unique_ptr<sim::PoissonProcess> arrivals_;
};

}  // namespace pm::exchange
