#include "exchange/churn.h"

#include <algorithm>

#include "common/check.h"

namespace pm::exchange {

ChurnProcess::ChurnProcess(sim::EventQueue& queue, cluster::Fleet* fleet,
                           std::vector<agents::TeamAgent>* agents,
                           ChurnConfig config,
                           cluster::QuotaTable* quota)
    : queue_(queue),
      fleet_(fleet),
      agents_(agents),
      config_(config),
      quota_(quota),
      rng_(config.seed) {
  PM_CHECK(fleet_ != nullptr && agents_ != nullptr);
  PM_CHECK_MSG(!agents_->empty(), "churn needs at least one team");
  PM_CHECK_MSG(config_.arrival_rate > 0.0, "arrival rate must be positive");
  PM_CHECK_MSG(config_.mean_lifetime > 0.0, "lifetime must be positive");
  arrivals_ = std::make_unique<sim::PoissonProcess>(
      queue_, config_.arrival_rate, rng_, [this] { return OnArrival(); });
}

ChurnProcess::~ChurnProcess() { Stop(); }

void ChurnProcess::Stop() {
  if (arrivals_ != nullptr) arrivals_->Stop();
}

bool ChurnProcess::OnArrival() {
  // Pick a team, footprint-weighted: large teams launch more services.
  std::vector<double> weights;
  weights.reserve(agents_->size());
  for (const agents::TeamAgent& agent : *agents_) {
    weights.push_back(std::max(agent.profile().footprint.cpu, 1.0));
  }
  const std::size_t team_index = rng_.PickWeighted(weights);
  const agents::TeamProfile& profile =
      (*agents_)[team_index].profile();

  cluster::Job job;
  job.id = next_job_id_++;
  job.team = profile.name;
  const double task_cpu =
      rng_.Uniform(config_.min_task_cpu, config_.max_task_cpu);
  job.shape = cluster::TaskShape{task_cpu,
                                 task_cpu * rng_.Uniform(2.0, 6.0),
                                 rng_.Uniform(0.05, 1.0)};
  job.tasks = static_cast<int>(
      rng_.UniformInt(config_.min_tasks, config_.max_tasks));

  if (!fleet_->HasCluster(profile.home_cluster)) {
    ++stats_.placement_failures;
    return true;
  }
  // §I admission control: the quota granted by the market is the hard
  // limit the scheduler enforces.
  if (quota_ != nullptr &&
      quota_->WouldExceed(profile.name, fleet_->registry(),
                          profile.home_cluster, job.TotalDemand())) {
    ++stats_.quota_rejections;
    return true;
  }
  if (!fleet_->AddJob(profile.home_cluster, job)) {
    ++stats_.placement_failures;
    return true;  // Keep the stream alive; the cluster was full.
  }
  if (quota_ != nullptr) {
    quota_->Charge(profile.name, fleet_->registry(),
                   profile.home_cluster, job.TotalDemand());
  }
  ++stats_.jobs_started;

  // Schedule retirement. The job may have been removed earlier by the
  // market's physical settlement (team sold the capacity); RemoveJob
  // returning nullopt is the normal signal for that — the market
  // refunded its quota when it removed it.
  const sim::SimTime lifetime =
      rng_.Exponential(1.0 / config_.mean_lifetime);
  const cluster::JobId id = job.id;
  queue_.ScheduleAfter(lifetime, [this, id] {
    const std::string where = fleet_->LocateJob(id);
    if (where.empty()) return;  // Already gone (market settlement).
    const cluster::Job* job_ptr =
        fleet_->ClusterByName(where).FindJob(id);
    PM_CHECK(job_ptr != nullptr);
    const std::string team = job_ptr->team;
    const cluster::TaskShape demand = job_ptr->TotalDemand();
    if (fleet_->RemoveJob(id).has_value()) {
      if (quota_ != nullptr) {
        quota_->Refund(team, fleet_->registry(), where, demand);
      }
      ++stats_.jobs_finished;
    }
  });
  return true;
}

}  // namespace pm::exchange
