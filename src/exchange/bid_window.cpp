#include "exchange/bid_window.h"

#include <algorithm>

#include "common/check.h"

namespace pm::exchange {

BidWindow::BidWindow(
    sim::EventQueue& queue, sim::SimTime close_at, sim::SimTime tick_period,
    std::function<std::vector<double>(std::vector<bid::Bid>)>
        compute_preliminary)
    : queue_(queue), compute_preliminary_(std::move(compute_preliminary)) {
  PM_CHECK(compute_preliminary_ != nullptr);
  PM_CHECK_MSG(close_at > queue.Now(),
               "window must close in the future");
  PM_CHECK_MSG(tick_period > 0.0, "tick period must be positive");
  close_event_ = queue_.ScheduleAt(close_at, [this] {
    close_event_ = 0;
    Close();
  });
  tick_process_ = std::make_unique<sim::PeriodicProcess>(
      queue_, queue.Now() + tick_period, tick_period, [this](int) {
        if (!open_) return false;
        OnTick();
        return true;
      });
}

BidWindow::~BidWindow() {
  // Cancel pending events; do not run the binding close from a dtor.
  if (close_event_ != 0) queue_.Cancel(close_event_);
  if (tick_process_ != nullptr) tick_process_->Stop();
}

bool BidWindow::Submit(bid::Bid bid) {
  if (!open_) return false;
  book_.push_back(std::move(bid));
  return true;
}

std::size_t BidWindow::Amend(const std::string& name,
                             bid::Bid replacement) {
  if (!open_) return 0;
  const std::size_t removed = Withdraw(name);
  if (removed > 0) {
    book_.push_back(std::move(replacement));
  }
  return removed;
}

std::size_t BidWindow::Withdraw(const std::string& name) {
  if (!open_) return 0;
  const auto new_end =
      std::remove_if(book_.begin(), book_.end(),
                     [&name](const bid::Bid& b) { return b.name == name; });
  const auto removed =
      static_cast<std::size_t>(book_.end() - new_end);
  book_.erase(new_end, book_.end());
  return removed;
}

const std::vector<double>& BidWindow::LatestPreliminaryPrices() const {
  static const std::vector<double> kEmpty;
  return ticks_.empty() ? kEmpty : ticks_.back().prices;
}

void BidWindow::OnTick() {
  PreliminaryTick tick;
  tick.at = queue_.Now();
  tick.bids_in_book = book_.size();
  std::vector<bid::Bid> snapshot = book_;
  bid::AssignUserIds(snapshot);
  tick.prices = compute_preliminary_(std::move(snapshot));
  ticks_.push_back(std::move(tick));
}

std::vector<bid::Bid> BidWindow::Close() {
  if (!open_) return {};
  open_ = false;
  if (close_event_ != 0) {
    queue_.Cancel(close_event_);
    close_event_ = 0;
  }
  tick_process_->Stop();
  std::vector<bid::Bid> final_bids = std::move(book_);
  book_.clear();
  bid::AssignUserIds(final_bids);
  return final_bids;
}

}  // namespace pm::exchange
