// planetmarket: market account management on top of the ledger.
//
// One treasury account represents the operator (allowed to run negative:
// it mints the budget endowment and is the counterparty of every trade);
// each team gets a budget account created on first use.
#pragma once

#include <string>
#include <unordered_map>

#include "exchange/ledger.h"

namespace pm::exchange {

/// Team/operator account registry bound to one ledger.
class MarketAccounts {
 public:
  /// Creates the operator treasury on `ledger` (which must outlive this).
  explicit MarketAccounts(Ledger* ledger);

  /// The operator's account.
  AccountId operator_account() const { return operator_; }

  /// Returns the team's account, creating it (with zero balance) on first
  /// use.
  AccountId EnsureTeam(const std::string& team);

  /// Current budget of a team (zero if the team has no account yet).
  Money BudgetOf(const std::string& team) const;

  /// Mints `amount` of new budget dollars to a team (treasury → team).
  void Endow(const std::string& team, Money amount, std::string memo);

  /// Settlement transfers. Both return the ledger status (empty = ok).
  std::string ChargeTeam(const std::string& team, Money amount,
                         std::string memo);
  std::string PayTeam(const std::string& team, Money amount,
                      std::string memo);

  /// Moves a team's entire remaining balance to the operator and returns
  /// it — the federation treasury's end-of-epoch sweep. Zero (and no
  /// journal entry) when the team has no account or no balance.
  Money WithdrawAll(const std::string& team, std::string memo);

  const Ledger& ledger() const { return *ledger_; }

  /// Checkpoint restore: rebinds this registry to the (freshly restored)
  /// ledger contents. `operator_account` is the saved operator id; every
  /// other ledger account is re-indexed as a team account keyed by its
  /// name — the market ledger holds exactly the treasury plus one account
  /// per team.
  void RebindForRestore(AccountId operator_account);

 private:
  Ledger* ledger_;
  AccountId operator_;
  std::unordered_map<std::string, AccountId> teams_;
};

}  // namespace pm::exchange
