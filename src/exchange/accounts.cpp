#include "exchange/accounts.h"

#include "common/check.h"

namespace pm::exchange {

MarketAccounts::MarketAccounts(Ledger* ledger) : ledger_(ledger) {
  PM_CHECK(ledger != nullptr);
  operator_ = ledger_->CreateAccount("operator-treasury", Money(),
                                     /*allow_negative=*/true);
}

AccountId MarketAccounts::EnsureTeam(const std::string& team) {
  auto it = teams_.find(team);
  if (it != teams_.end()) return it->second;
  const AccountId id = ledger_->CreateAccount(team);
  teams_.emplace(team, id);
  return id;
}

Money MarketAccounts::BudgetOf(const std::string& team) const {
  auto it = teams_.find(team);
  if (it == teams_.end()) return Money();
  return ledger_->Balance(it->second);
}

void MarketAccounts::Endow(const std::string& team, Money amount,
                           std::string memo) {
  const AccountId id = EnsureTeam(team);
  const std::string status =
      ledger_->Transfer(operator_, id, amount, std::move(memo));
  PM_CHECK_MSG(status.empty(), "endowment failed: " << status);
}

std::string MarketAccounts::ChargeTeam(const std::string& team,
                                       Money amount, std::string memo) {
  return ledger_->Transfer(EnsureTeam(team), operator_, amount,
                           std::move(memo));
}

Money MarketAccounts::WithdrawAll(const std::string& team,
                                  std::string memo) {
  const Money balance = BudgetOf(team);
  // Team accounts cannot actually go negative (they are created without
  // overdraft and settlement pre-covers shortfalls); the IsNegative arm
  // is defensive.
  if (balance.IsZero() || balance.IsNegative()) return Money();
  const std::string status = ChargeTeam(team, balance, std::move(memo));
  PM_CHECK_MSG(status.empty(), "withdraw failed: " << status);
  return balance;
}

std::string MarketAccounts::PayTeam(const std::string& team, Money amount,
                                    std::string memo) {
  return ledger_->Transfer(operator_, EnsureTeam(team), amount,
                           std::move(memo));
}

void MarketAccounts::RebindForRestore(AccountId operator_account) {
  PM_CHECK_MSG(operator_account < ledger_->NumAccounts(),
               "restored operator account " << operator_account
                                            << " not in ledger");
  operator_ = operator_account;
  teams_.clear();
  for (AccountId id = 0; id < ledger_->NumAccounts(); ++id) {
    if (id == operator_) continue;
    teams_.emplace(ledger_->NameOf(id), id);
  }
}

}  // namespace pm::exchange
