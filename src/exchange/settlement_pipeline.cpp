#include "exchange/settlement_pipeline.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "agents/strategy.h"
#include "common/check.h"

namespace pm::exchange {
namespace {

/// Splits awarded quota per cluster into buy/sell shapes.
struct ClusterDelta {
  cluster::TaskShape bought;
  cluster::TaskShape sold;
};

std::unordered_map<std::string, ClusterDelta> SplitByCluster(
    const PoolRegistry& registry, const bid::Bundle& bundle) {
  std::unordered_map<std::string, ClusterDelta> deltas;
  for (const bid::BundleItem& item : bundle.items()) {
    const PoolKey& key = registry.KeyOf(item.pool);
    ClusterDelta& delta = deltas[key.cluster];
    if (item.qty > 0.0) {
      delta.bought.Of(key.kind) += item.qty;
    } else {
      delta.sold.Of(key.kind) += -item.qty;
    }
  }
  return deltas;
}

}  // namespace

SettlementPipeline::SettlementPipeline(
    cluster::Fleet* fleet, std::vector<agents::TeamAgent>* agents,
    cluster::QuotaTable* quota, MarketAccounts* accounts,
    const SettlementPolicy& policy,
    const cluster::TaskShape& max_task_shape, cluster::JobId* next_job_id)
    : fleet_(fleet),
      agents_(agents),
      quota_(quota),
      accounts_(accounts),
      policy_(policy),
      max_task_shape_(max_task_shape),
      next_job_id_(next_job_id) {
  PM_CHECK(fleet_ != nullptr && agents_ != nullptr && quota_ != nullptr &&
           accounts_ != nullptr && next_job_id_ != nullptr);
}

void SettlementPipeline::Execute(const std::vector<AwardInput>& awards,
                                 const std::vector<double>& settled_prices,
                                 AuctionReport& report) {
  for (const AwardInput& input : awards) {
    PM_CHECK(input.bid != nullptr && input.award != nullptr);
    report.awards.push_back(AwardRecord{
        input.team, input.bid->name, input.award->bundle_index,
        input.award->payment, input.award->premium, PlacementOutcome{}});
    SettleMoney(input, report);
    // The record reference stays valid for the rest of this iteration:
    // nothing below appends to report.awards.
    ApplyPhysical(input, settled_prices, report.awards.back(), report);
  }
}

void SettlementPipeline::SettleMoney(const AwardInput& input,
                                     AuctionReport& report) {
  const auction::Award& award = *input.award;
  const std::string& name = input.bid->name;
  const Money amount = Money::FromDollarsRounded(std::abs(award.payment));
  std::string status;
  if (award.payment > 0.0) {
    status = accounts_->ChargeTeam(input.team, amount, "auction: " + name);
    if (!status.empty()) {
      // Overdraft: settle anyway (the quota is already committed) but
      // surface it — the budget gate failed, e.g. two winning buy bids
      // from one team.
      ++report.overdrafts;
      accounts_->Endow(input.team, amount - accounts_->BudgetOf(input.team),
                       "overdraft cover: " + name);
      status = accounts_->ChargeTeam(input.team, amount,
                                     "auction (overdraft): " + name);
      PM_CHECK_MSG(status.empty(), "settlement failed: " << status);
    }
  } else if (award.payment < 0.0) {
    accounts_->PayTeam(input.team, amount, "auction: " + name);
  }
}

void SettlementPipeline::ApplyPhysical(
    const AwardInput& input, const std::vector<double>& settled_prices,
    AwardRecord& record, AuctionReport& report) {
  const PoolRegistry& registry = fleet_->registry();
  const bid::Bid& b = *input.bid;
  const std::string& team = input.team;
  const bid::Bundle& bundle =
      b.bundles[static_cast<std::size_t>(input.award->bundle_index)];
  PlacementOutcome& outcome = record.outcome;

  // Quota first: the settled trade changes the team's entitlements
  // regardless of how (or whether) the physical placement lands.
  for (const bid::BundleItem& item : bundle.items()) {
    if (item.qty > 0.0) {
      quota_->Grant(team, item.pool, item.qty);
    } else {
      quota_->Release(team, item.pool, -item.qty);
    }
  }

  if (agents::IsArbitrageBidName(b.name) && !input.IsExternal()) {
    // Arbitrage trades move quota, not jobs: adjust the warehouse. The
    // outcome records the intents as delivered-in-full — there was no
    // physical placement to fail.
    std::vector<double>& holdings =
        (*agents_)[input.agent].mutable_holdings();
    holdings.resize(registry.size(), 0.0);
    for (const bid::BundleItem& item : bundle.items()) {
      holdings[item.pool] = std::max(0.0, holdings[item.pool] + item.qty);
    }
    outcome.quota_only = true;
    for (const auction::FillIntent& intent : input.award->intents) {
      if (intent.qty <= 0.0) continue;
      outcome.fills.push_back(PoolFill{intent.pool, intent.qty, intent.qty});
      outcome.awarded_units += intent.qty;
      outcome.placed_units += intent.qty;
    }
    return;
  }

  // Per-pool buy quantities from the award's fill intents. Bundle items
  // are canonical (duplicate pools merged at construction), so these
  // equal the positive cluster-delta entries; reading the intents keeps
  // the outcome — and any refund drawn from it — anchored to exactly
  // what the auction awarded and priced.
  std::unordered_map<PoolId, double> net_buy;
  for (const auction::FillIntent& intent : input.award->intents) {
    if (intent.qty > 0.0) net_buy.emplace(intent.pool, intent.qty);
  }

  const auto deltas = SplitByCluster(registry, bundle);
  std::string sold_from;
  std::string bought_in;
  cluster::TaskShape placed_bought;  // Buy-side shape that physically landed.

  // Releases first: free the capacity before anyone re-buys it.
  for (const auto& [cluster_name, delta] : deltas) {
    if (delta.sold.cpu <= 0.0 && delta.sold.ram_gb <= 0.0 &&
        delta.sold.disk_tb <= 0.0) {
      continue;
    }
    // The cluster may have migrated to another shard since the pools
    // were interned: the quota release above still stands, but there
    // is nothing physical to vacate here.
    if (!fleet_->HasCluster(cluster_name)) continue;
    sold_from = cluster_name;
    // Remove this team's jobs in the cluster, largest first, until the
    // sold quantities are covered (whole-job granularity; slight
    // over-release returns to the operator's free pool).
    cluster::Cluster& cl = fleet_->ClusterByName(cluster_name);
    std::vector<std::pair<double, cluster::JobId>> candidates;
    for (cluster::JobId id : cl.JobIds()) {
      const cluster::Job* job = cl.FindJob(id);
      if (job != nullptr && job->team == team) {
        candidates.emplace_back(job->TotalDemand().cpu, id);
      }
    }
    std::sort(candidates.rbegin(), candidates.rend());
    cluster::TaskShape freed;
    for (const auto& [cpu, id] : candidates) {
      if (freed.cpu >= delta.sold.cpu &&
          freed.ram_gb >= delta.sold.ram_gb &&
          freed.disk_tb >= delta.sold.disk_tb) {
        break;
      }
      const std::optional<cluster::Job> removed = cl.RemoveJob(id);
      PM_CHECK(removed.has_value());
      quota_->Refund(team, registry, cluster_name, removed->TotalDemand());
      freed += removed->TotalDemand();
      ++report.jobs_removed;
    }
  }

  for (const auto& [cluster_name, delta] : deltas) {
    if (delta.bought.cpu <= 0.0 && delta.bought.ram_gb <= 0.0 &&
        delta.bought.disk_tb <= 0.0) {
      continue;
    }
    // Record the buy-side fills of this cluster up front; `placed` stays
    // zero unless the placement below lands. A pool whose sells covered
    // its buys awarded nothing net and records no fill.
    const std::size_t first_fill = outcome.fills.size();
    for (ResourceKind kind : kAllResourceKinds) {
      if (delta.bought.Of(kind) <= 0.0) continue;
      const auto pool = registry.Find(PoolKey{cluster_name, kind});
      PM_CHECK(pool.has_value());
      const auto net = net_buy.find(*pool);
      if (net == net_buy.end()) continue;
      outcome.fills.push_back(PoolFill{*pool, net->second, 0.0});
      outcome.awarded_units += net->second;
    }
    // Quota won in a cluster that has since migrated away cannot
    // materialize physically; count it with the bin-packing failures.
    if (!fleet_->HasCluster(cluster_name)) {
      ++report.placement_failures;
      continue;
    }
    bought_in = cluster_name;
    // Materialize the bought quota as a job split into machine-sized
    // tasks.
    int tasks = 1;
    for (ResourceKind kind : kAllResourceKinds) {
      const double cap = max_task_shape_.Of(kind);
      if (cap > 0.0 && delta.bought.Of(kind) > 0.0) {
        tasks = std::max(
            tasks, static_cast<int>(std::ceil(delta.bought.Of(kind) / cap)));
      }
    }
    cluster::Job job;
    job.id = (*next_job_id_)++;
    job.team = team;
    job.tasks = tasks;
    job.shape = delta.bought * (1.0 / static_cast<double>(tasks));
    bool placed = fleet_->AddJob(cluster_name, job);
    if (!placed) {
      // Fragmentation: retry with tasks twice as fine.
      job.tasks *= 2;
      job.shape = delta.bought * (1.0 / job.tasks);
      job.id = (*next_job_id_)++;
      placed = fleet_->AddJob(cluster_name, job);
    }
    if (placed) {
      quota_->Charge(team, registry, cluster_name, delta.bought);
      placed_bought += delta.bought;
      ++report.jobs_added;
      for (std::size_t f = first_fill; f < outcome.fills.size(); ++f) {
        outcome.fills[f].placed = outcome.fills[f].awarded;
        outcome.placed_units += outcome.fills[f].placed;
      }
    } else {
      ++report.placement_failures;
    }
  }

  // Outcome verdict over the buy side (sells release at whole-job
  // granularity and never fail).
  if (outcome.awarded_units > 0.0) {
    if (outcome.placed_units <= 0.0) {
      outcome.status = PlacementOutcome::Status::kFailed;
    } else if (outcome.placed_units <
               outcome.awarded_units * (1.0 - 1e-12)) {
      outcome.status = PlacementOutcome::Status::kPartial;
      ++report.partial_placements;
    }
  }

  // Gated refund: unplaced units hand their entitlement back and are
  // repaid pro rata at the settled pool prices — the award is worth what
  // physically landed, no more.
  if (policy_.refund_unplaced) {
    double refund_value = 0.0;
    for (const PoolFill& fill : outcome.fills) {
      const double unplaced = fill.awarded - fill.placed;
      if (unplaced <= 0.0) continue;
      PM_CHECK(fill.pool < settled_prices.size());
      quota_->Release(team, fill.pool, unplaced);
      refund_value += unplaced * settled_prices[fill.pool];
      outcome.refunded_units += unplaced;
    }
    if (outcome.refunded_units > 0.0) {
      const Money refund = Money::FromDollarsRounded(refund_value);
      if (!refund.IsZero()) {
        accounts_->PayTeam(team, refund, "refund unplaced: " + b.name);
      }
      outcome.refund = refund.ToDouble();
      report.refund_total += outcome.refund;
      ++report.refund_ops;
    }
  }

  if (!sold_from.empty() || !bought_in.empty()) {
    MoveRecord move;
    move.team = team;
    move.from_cluster = sold_from;
    move.to_cluster = bought_in;
    for (const auto& [cluster_name, delta] : deltas) {
      move.amount += delta.bought;
    }
    move.reconfig_cost = Dot(move.amount, policy_.move_cost_weights);
    // Gated billing: the §V.B reconfiguration cost becomes a real charge
    // on the moving team, clamped to its remaining balance — a move can
    // exhaust the budget but never overdraft the ledger. Only the
    // physically PLACED shape is billable: a buy the bin-packer bounced
    // triggered no reconfiguration work, so billing its (recorded)
    // awarded-shape cost would charge the team for a move that never
    // happened — on top of the refund path already unwinding its money.
    const double billable =
        Dot(placed_bought, policy_.move_cost_weights);
    if (policy_.bill_moves && billable > 0.0) {
      const Money charge = std::min(Money::FromDollarsRounded(billable),
                                    accounts_->BudgetOf(team));
      if (!charge.IsZero()) {
        const std::string status = accounts_->ChargeTeam(
            team, charge, "move reconfig: " + b.name);
        PM_CHECK_MSG(status.empty(), "move billing failed: " << status);
        move.billed = charge.ToDouble();
        report.move_billing_total += move.billed;
      }
    }
    report.moves.push_back(std::move(move));
  }
}

}  // namespace pm::exchange
