#include "exchange/capacity_advice.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace pm::exchange {

std::string_view ToString(CapacityAction action) {
  switch (action) {
    case CapacityAction::kExpand:
      return "expand";
    case CapacityAction::kRepurpose:
      return "repurpose";
  }
  return "unknown";
}

std::vector<CapacityAdvice> AdviseCapacity(
    const std::vector<AuctionReport>& history,
    const PoolRegistry& registry, const AdvicePolicy& policy) {
  PM_CHECK_MSG(policy.window >= 1, "window must be at least 1");
  std::vector<CapacityAdvice> advice;
  if (history.empty()) return advice;

  const std::size_t first =
      history.size() > static_cast<std::size_t>(policy.window)
          ? history.size() - static_cast<std::size_t>(policy.window)
          : 0;
  const std::size_t num_pools = registry.size();

  for (PoolId r = 0; r < num_pools; ++r) {
    double ratio_sum = 0.0;
    double util_sum = 0.0;
    int n = 0;
    for (std::size_t h = first; h < history.size(); ++h) {
      const AuctionReport& report = history[h];
      PM_CHECK_MSG(report.settled_prices.size() == num_pools,
                   "report does not match registry");
      if (report.fixed_prices[r] <= 0.0) continue;
      ratio_sum += report.settled_prices[r] / report.fixed_prices[r];
      util_sum += report.pre_utilization[r];
      ++n;
    }
    if (n == 0) continue;
    const double mean_ratio = ratio_sum / n;
    const double mean_util = util_sum / n;

    if (mean_ratio >= policy.hot_ratio &&
        mean_util >= policy.hot_utilization) {
      CapacityAdvice a;
      a.pool = r;
      a.action = CapacityAction::kExpand;
      a.mean_price_ratio = mean_ratio;
      a.mean_utilization = mean_util;
      std::ostringstream os;
      os << "clears at " << FormatF(mean_ratio, 2)
         << "x the fixed price at " << FormatPct(mean_util, 0)
         << " utilization over the last " << n
         << " auction(s): demand persistently exceeds supply";
      a.rationale = os.str();
      advice.push_back(std::move(a));
    } else if (mean_ratio <= policy.cold_ratio &&
               mean_util <= policy.cold_utilization) {
      CapacityAdvice a;
      a.pool = r;
      a.action = CapacityAction::kRepurpose;
      a.mean_price_ratio = mean_ratio;
      a.mean_utilization = mean_util;
      std::ostringstream os;
      os << "clears at " << FormatF(mean_ratio, 2)
         << "x the fixed price at " << FormatPct(mean_util, 0)
         << " utilization over the last " << n
         << " auction(s): capacity is stranded";
      a.rationale = os.str();
      advice.push_back(std::move(a));
    }
  }

  std::sort(advice.begin(), advice.end(),
            [](const CapacityAdvice& a, const CapacityAdvice& b) {
              if (a.action != b.action) {
                return a.action == CapacityAction::kExpand;
              }
              // Expansion: highest ratio first. Repurposing: lowest.
              return a.action == CapacityAction::kExpand
                         ? a.mean_price_ratio > b.mean_price_ratio
                         : a.mean_price_ratio < b.mean_price_ratio;
            });
  return advice;
}

std::string RenderCapacityAdvice(const std::vector<CapacityAdvice>& advice,
                                 const PoolRegistry& registry) {
  if (advice.empty()) {
    return "capacity advice: prices and utilization are balanced; no "
           "action indicated\n";
  }
  TextTable table({"pool", "action", "price ratio", "utilization",
                   "rationale"});
  table.SetAlign(4, Align::kLeft);
  for (const CapacityAdvice& a : advice) {
    table.AddRow({registry.NameOf(a.pool),
                  std::string(ToString(a.action)),
                  FormatF(a.mean_price_ratio, 2),
                  FormatPct(a.mean_utilization, 1), a.rationale});
  }
  return table.Render();
}

}  // namespace pm::exchange
