// planetmarket: the "market summary" page (Figure 3).
//
// The paper's trading front end greets users with a market summary listing
// the participating clusters, the number of active bids and offers in
// each, and the current market prices from the clock auction. This module
// renders that page as text from a market's latest report.
#pragma once

#include <string>

#include "exchange/market.h"

namespace pm::exchange {

/// Renders the market-summary table for the latest auction (or the
/// pre-market state when none has run): one row per cluster with current
/// utilization, bid/offer counts from the last round, and current market
/// prices per resource kind.
std::string RenderMarketSummary(const Market& market);

/// Renders the bid-entry confirmation the front end shows in step two of
/// bid entry (Figure 4): the covering amounts of CPU/RAM/disk and the
/// current market prices for those components, for a prospective bundle.
std::string RenderBidPreview(const Market& market,
                             const std::string& cluster,
                             const cluster::TaskShape& requirements);

}  // namespace pm::exchange
