// planetmarket: the outcome-aware settlement pipeline (§V.B).
//
// A converged auction produces awards; this pipeline is everything that
// happens to one award afterwards, in order:
//
//   billing   ──► the team pays (or is paid) the uniform price x_u·p
//   quota     ──► bought entitlements granted, sold entitlements released
//   placement ──► sells vacate whole jobs; buys bin-pack into new jobs
//   outcome   ──► every AwardRecord carries a PlacementOutcome: which
//                 pool-level fill intents landed physically and which did
//                 not (a won bid is only worth its quota if the
//                 bin-packer can place it)
//   refund    ──► [gate: refund_unplaced] unplaced buy units hand their
//                 entitlement back and are refunded pro rata at the
//                 settled pool prices
//   pricing   ──► [gate: move_cost_weights] executed MoveRecords carry
//                 the §V.B reconfiguration cost weights · moved shape
//
// With both gates at their defaults the pipeline reproduces the legacy
// Market settlement bit for bit — same ledger journal, same quota table,
// same fleet mutations, in the same order — and only *adds* the recorded
// outcomes. Upstream layers (federation arbitrage warehouse, router
// heat, fleet rebalancer) consume the outcomes so the planet economy
// tracks real resource delivery, not auction-layer promises.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "agents/team.h"
#include "auction/settlement.h"
#include "cluster/fleet.h"
#include "cluster/quota.h"
#include "exchange/accounts.h"
#include "exchange/report.h"

namespace pm::exchange {

/// Settlement behavior gates. Defaults reproduce the legacy (quota-only,
/// unpriced) settlement exactly.
struct SettlementPolicy {
  /// When on, a buy's unplaced units hand their entitlement back and the
  /// team is refunded qty × settled price per unplaced pool unit (the
  /// operator pays; for federated teams the refund is swept back to the
  /// FederationTreasury with the rest of the local balance). Off: the
  /// team keeps quota-only entitlement and its money — the legacy path.
  bool refund_unplaced = false;

  /// §V.B reconfiguration cost per moved unit (cpu / ram_gb / disk_tb).
  /// All-zero leaves MoveRecord::reconfig_cost at 0 — moves stay
  /// unpriced, the legacy behavior. Costs are recorded; billing them is
  /// gated separately on `bill_moves`.
  cluster::TaskShape move_cost_weights;

  /// When on, the §V.B reconfiguration cost of each move's physically
  /// PLACED buy shape (weights · placed units — a bounced placement did
  /// no reconfiguration work and is never billed for it) is charged to
  /// the moving team (team → operator) at settlement, clamped to the
  /// team's remaining balance so the ledger can never overdraft on a
  /// move (the unpaid remainder is the operator's bad debt;
  /// MoveRecord::billed records what was actually collected). The charge
  /// is an ordinary intra-shard transfer, so the federation treasury's
  /// conservation invariant covers it: billed dollars surface as shard
  /// spend at the epoch sweep. Off (default): costs are recorded but
  /// never billed — the legacy behavior, bit for bit.
  bool bill_moves = false;
};

/// Executes the settlement of one auction round against live market
/// state. Built per round by Market::RunAuction; stateless between
/// rounds except through the structures it mutates.
class SettlementPipeline {
 public:
  /// One award joined with its bid and billing identity. `agent` is the
  /// resident agent index for resident bids, kExternalAgent for
  /// federation-routed ones.
  struct AwardInput {
    static constexpr std::size_t kExternalAgent =
        static_cast<std::size_t>(-1);
    const bid::Bid* bid = nullptr;
    const auction::Award* award = nullptr;
    std::string team;
    std::size_t agent = kExternalAgent;

    bool IsExternal() const { return agent == kExternalAgent; }
  };

  SettlementPipeline(cluster::Fleet* fleet,
                     std::vector<agents::TeamAgent>* agents,
                     cluster::QuotaTable* quota, MarketAccounts* accounts,
                     const SettlementPolicy& policy,
                     const cluster::TaskShape& max_task_shape,
                     cluster::JobId* next_job_id);

  /// Settles every award end to end (billing → quota → placement →
  /// outcome → refund → move pricing), appending AwardRecords, moves,
  /// and counters to `report`. `settled_prices` are the round's uniform
  /// clearing prices (refund pricing reads them).
  void Execute(const std::vector<AwardInput>& awards,
               const std::vector<double>& settled_prices,
               AuctionReport& report);

 private:
  /// Billing: the team pays/receives |payment|; overdrafts are covered
  /// loudly (counted on the report) so the quota commitment stands.
  void SettleMoney(const AwardInput& input, AuctionReport& report);

  /// Quota, physical placement, outcome recording, gated refund, and
  /// move pricing for one award.
  void ApplyPhysical(const AwardInput& input,
                     const std::vector<double>& settled_prices,
                     AwardRecord& record, AuctionReport& report);

  cluster::Fleet* fleet_;
  std::vector<agents::TeamAgent>* agents_;
  cluster::QuotaTable* quota_;
  MarketAccounts* accounts_;
  const SettlementPolicy& policy_;
  const cluster::TaskShape& max_task_shape_;
  cluster::JobId* next_job_id_;
};

}  // namespace pm::exchange
