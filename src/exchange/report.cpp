#include "exchange/report.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace pm::exchange {

std::vector<double> PriceRatios(const AuctionReport& report) {
  PM_CHECK(report.settled_prices.size() == report.fixed_prices.size());
  std::vector<double> ratios(report.settled_prices.size());
  for (std::size_t r = 0; r < ratios.size(); ++r) {
    ratios[r] = report.fixed_prices[r] > 0.0
                    ? report.settled_prices[r] / report.fixed_prices[r]
                    : std::numeric_limits<double>::quiet_NaN();
  }
  return ratios;
}

std::vector<double> TradePercentiles(const AuctionReport& report,
                                     ResourceKind kind, bool is_bid) {
  std::vector<double> out;
  for (const TradeSample& t : report.trades) {
    if (t.kind == kind && t.is_bid == is_bid) {
      out.push_back(t.util_percentile);
    }
  }
  return out;
}

stats::BoxplotSummary TradeBoxplot(const AuctionReport& report,
                                   ResourceKind kind, bool is_bid) {
  const std::vector<double> samples =
      TradePercentiles(report, kind, is_bid);
  if (samples.empty()) return stats::BoxplotSummary{};
  return stats::Boxplot(samples);
}

double UtilizationSpread(const std::vector<double>& utilization) {
  if (utilization.empty()) return 0.0;
  return 100.0 * stats::MeanAbsDeviation(utilization);
}

}  // namespace pm::exchange
