#include "exchange/report.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace pm::exchange {

std::string_view ToString(PlacementOutcome::Status status) {
  switch (status) {
    case PlacementOutcome::Status::kPlaced:
      return "placed";
    case PlacementOutcome::Status::kPartial:
      return "partial";
    case PlacementOutcome::Status::kFailed:
      return "failed";
  }
  return "?";
}

std::string_view ToString(ExternalRejection::Reason reason) {
  switch (reason) {
    case ExternalRejection::Reason::kBudget:
      return "budget";
    case ExternalRejection::Reason::kValidation:
      return "validation";
  }
  return "?";
}

double RecentPlacementFailureRate(const std::vector<AuctionReport>& history,
                                  int window) {
  if (window <= 0) return 0.0;
  double awarded = 0.0;
  double unplaced = 0.0;
  const std::size_t first =
      history.size() > static_cast<std::size_t>(window)
          ? history.size() - static_cast<std::size_t>(window)
          : 0;
  for (std::size_t i = first; i < history.size(); ++i) {
    for (const AwardRecord& award : history[i].awards) {
      if (award.outcome.quota_only) continue;  // No placement intended.
      awarded += award.outcome.awarded_units;
      unplaced += award.outcome.awarded_units - award.outcome.placed_units;
    }
  }
  return awarded > 0.0 ? unplaced / awarded : 0.0;
}

std::vector<double> PriceRatios(const AuctionReport& report) {
  PM_CHECK(report.settled_prices.size() == report.fixed_prices.size());
  std::vector<double> ratios(report.settled_prices.size());
  for (std::size_t r = 0; r < ratios.size(); ++r) {
    ratios[r] = report.fixed_prices[r] > 0.0
                    ? report.settled_prices[r] / report.fixed_prices[r]
                    : std::numeric_limits<double>::quiet_NaN();
  }
  return ratios;
}

std::vector<double> TradePercentiles(const AuctionReport& report,
                                     ResourceKind kind, bool is_bid) {
  std::vector<double> out;
  for (const TradeSample& t : report.trades) {
    if (t.kind == kind && t.is_bid == is_bid) {
      out.push_back(t.util_percentile);
    }
  }
  return out;
}

stats::BoxplotSummary TradeBoxplot(const AuctionReport& report,
                                   ResourceKind kind, bool is_bid) {
  const std::vector<double> samples =
      TradePercentiles(report, kind, is_bid);
  if (samples.empty()) return stats::BoxplotSummary{};
  return stats::Boxplot(samples);
}

double UtilizationSpread(const std::vector<double>& utilization) {
  if (utilization.empty()) return 0.0;
  return 100.0 * stats::MeanAbsDeviation(utilization);
}

}  // namespace pm::exchange
