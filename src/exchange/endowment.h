// planetmarket: initial budget disbursement.
//
// §IV.A property 5 ties the weighting function's dynamic range to "the
// strategy used for disbursement of initial budget dollars among bidders",
// which the paper does not elaborate. Our policy (documented substitution,
// DESIGN.md §2): each team is endowed in proportion to the value of its
// current footprint at the pre-market fixed prices, times a headroom
// multiplier — every team can afford its status quo plus growth, and big
// teams get proportionally bigger budgets (as any usage-based chargeback
// would give them).
#pragma once

#include <span>
#include <vector>

#include "agents/team.h"
#include "common/money.h"
#include "common/types.h"

namespace pm::exchange {

/// Endowment policy parameters.
struct EndowmentPolicy {
  /// Budget = multiplier × (footprint value at the given prices).
  double multiplier = 6.0;

  /// Floor so that zero-footprint teams can still participate.
  Money minimum = Money::FromDollars(100);
};

/// Value of `footprint` at per-pool `prices`, using the pools of
/// `home_cluster`.
double FootprintValue(const PoolRegistry& registry,
                      const std::string& home_cluster,
                      const cluster::TaskShape& footprint,
                      std::span<const double> prices);

/// Computes each agent's endowment under the policy.
std::vector<Money> ComputeEndowments(
    const PoolRegistry& registry,
    const std::vector<agents::TeamAgent>& agents,
    std::span<const double> prices, const EndowmentPolicy& policy);

/// Divides `total` into `parts` amounts that differ by at most one
/// micro-dollar and sum to `total` exactly (the first `total mod parts`
/// parts carry the extra micro). The federation's allowance push uses it
/// to divide an underfunded team's remaining planet balance fairly
/// across shards instead of letting shard 0 drain the pot.
std::vector<Money> SplitEvenly(Money total, std::size_t parts);

}  // namespace pm::exchange
