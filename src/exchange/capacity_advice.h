// planetmarket: operator decision support from price signals.
//
// §III.A: a persistent price increase "indicates to the system operator
// that there may be a shortage in the corresponding pool; the operator
// should address this shortage by increasing the supply of resources
// appropriately" — and §IV frames reserve prices as "the basis of a
// decision support framework ... that allows the operator to steer the
// system". This module turns a market's auction history into concrete
// capacity recommendations: pools whose clearing prices persistently sit
// far above the fixed baseline (and whose utilization is high) are
// expansion candidates; persistently discounted, idle pools are
// candidates for repurposing.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "exchange/report.h"

namespace pm::exchange {

/// What the operator should do with one pool.
enum class CapacityAction { kExpand, kRepurpose };

std::string_view ToString(CapacityAction action);

/// One recommendation.
struct CapacityAdvice {
  PoolId pool = kInvalidPool;
  CapacityAction action = CapacityAction::kExpand;

  /// Mean settled/fixed price ratio over the analysis window.
  double mean_price_ratio = 0.0;

  /// Mean pre-auction utilization over the window, in [0, 1].
  double mean_utilization = 0.0;

  /// Human-readable justification.
  std::string rationale;
};

/// Tuning for AdviseCapacity.
struct AdvicePolicy {
  /// Auctions considered (most recent `window` reports).
  int window = 3;

  /// A pool is an expansion candidate when its mean price ratio is at
  /// least this and its mean utilization at least `hot_utilization`.
  double hot_ratio = 1.30;
  double hot_utilization = 0.60;

  /// A pool is a repurposing candidate when its mean price ratio is at
  /// most this and its mean utilization at most `cold_utilization`.
  double cold_ratio = 0.75;
  double cold_utilization = 0.30;
};

/// Analyzes the trailing reports and returns recommendations, expansion
/// candidates first, each group sorted by decreasing severity. Returns
/// nothing when `history` is empty.
std::vector<CapacityAdvice> AdviseCapacity(
    const std::vector<AuctionReport>& history,
    const PoolRegistry& registry, const AdvicePolicy& policy = {});

/// Renders recommendations as a text table for operator reports.
std::string RenderCapacityAdvice(const std::vector<CapacityAdvice>& advice,
                                 const PoolRegistry& registry);

}  // namespace pm::exchange
