#include "exchange/summary.h"

#include <sstream>

#include "common/table.h"

namespace pm::exchange {

std::string RenderMarketSummary(const Market& market) {
  const cluster::Fleet& fleet = market.fleet();
  const PoolRegistry& registry = fleet.registry();
  const bool has_history = !market.History().empty();
  const AuctionReport* last =
      has_history ? &market.History().back() : nullptr;

  // Price source: last settled prices, else current reserves.
  const std::vector<double> prices =
      has_history ? last->settled_prices : market.CurrentReservePrices();
  const std::vector<double> util = fleet.UtilizationVector();

  // Count settled buys/sells per cluster from the last round's executed
  // moves (the paper's summary lists "active bids and offers in each").
  std::unordered_map<std::string, int> bids_in, offers_in;
  if (last != nullptr) {
    for (const MoveRecord& m : last->moves) {
      if (!m.to_cluster.empty()) ++bids_in[m.to_cluster];
      if (!m.from_cluster.empty()) ++offers_in[m.from_cluster];
    }
  }

  TextTable table({"cluster", "util cpu", "util ram", "util disk",
                   "bids", "offers", "$/core", "$/GB", "$/TB"});
  for (const std::string& cluster_name : fleet.ClusterNames()) {
    std::vector<std::string> row;
    row.push_back(cluster_name);
    const cluster::Cluster& cl = fleet.ClusterByName(cluster_name);
    for (ResourceKind kind : kAllResourceKinds) {
      row.push_back(FormatPct(cl.Utilization(kind), 1));
    }
    row.push_back(std::to_string(bids_in[cluster_name]));
    row.push_back(std::to_string(offers_in[cluster_name]));
    for (ResourceKind kind : kAllResourceKinds) {
      const auto id = registry.Find(PoolKey{cluster_name, kind});
      row.push_back(id.has_value() ? FormatF(prices[*id], 3) : "-");
    }
    table.AddRow(std::move(row));
  }

  std::ostringstream os;
  os << "=== MARKET SUMMARY ===\n";
  if (last != nullptr) {
    os << "after auction #" << (last->auction_index + 1) << "  ("
       << last->num_bids << " bids, " << last->num_winners
       << " settled, " << FormatPct(last->settled_fraction, 1)
       << " settle rate)\n";
    if (last->placement_failures + last->partial_placements > 0 ||
        last->refund_total > 0.0) {
      os << "placement: " << last->placement_failures << " failures, "
         << last->partial_placements << " partial awards, refunds $"
         << FormatF(last->refund_total, 2) << '\n';
    }
  } else {
    os << "pre-market state (prices shown are reserve prices)\n";
  }
  os << table.Render();
  return os.str();
}

std::string RenderBidPreview(const Market& market,
                             const std::string& cluster,
                             const cluster::TaskShape& requirements) {
  const PoolRegistry& registry = market.fleet().registry();
  const bool has_history = !market.History().empty();
  const std::vector<double> prices =
      has_history ? market.History().back().settled_prices
                  : market.CurrentReservePrices();

  TextTable table({"component", "amount", "unit", "market $/unit",
                   "covering cost"});
  double total = 0.0;
  for (ResourceKind kind : kAllResourceKinds) {
    const double qty = requirements.Of(kind);
    if (qty <= 0.0) continue;
    const auto id = registry.Find(PoolKey{cluster, kind});
    if (!id.has_value()) continue;
    const double cost = qty * prices[*id];
    total += cost;
    table.AddRow({std::string(pm::ToString(kind)), FormatF(qty, 1),
                  std::string(UnitOf(kind)), FormatF(prices[*id], 3),
                  FormatF(cost, 2)});
  }
  std::ostringstream os;
  os << "=== BID ENTRY (step 2 of 2) — cluster " << cluster << " ===\n"
     << table.Render() << "covering amount at current market prices: $"
     << FormatF(total, 2)
     << "\nenter a maximum bid price at or above this to be competitive\n";
  return os.str();
}

}  // namespace pm::exchange
