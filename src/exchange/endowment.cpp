#include "exchange/endowment.h"

#include <algorithm>

#include "common/check.h"

namespace pm::exchange {

double FootprintValue(const PoolRegistry& registry,
                      const std::string& home_cluster,
                      const cluster::TaskShape& footprint,
                      std::span<const double> prices) {
  PM_CHECK(prices.size() == registry.size());
  double value = 0.0;
  for (ResourceKind kind : kAllResourceKinds) {
    const auto id = registry.Find(PoolKey{home_cluster, kind});
    PM_CHECK_MSG(id.has_value(),
                 "cluster '" << home_cluster << "' missing pool for "
                             << pm::ToString(kind));
    value += footprint.Of(kind) * prices[*id];
  }
  return value;
}

std::vector<Money> ComputeEndowments(
    const PoolRegistry& registry,
    const std::vector<agents::TeamAgent>& agents,
    std::span<const double> prices, const EndowmentPolicy& policy) {
  PM_CHECK_MSG(policy.multiplier > 0.0, "multiplier must be positive");
  std::vector<Money> out;
  out.reserve(agents.size());
  for (const agents::TeamAgent& agent : agents) {
    const double value =
        FootprintValue(registry, agent.profile().home_cluster,
                       agent.profile().footprint, prices);
    Money endowment = Money::FromDollarsRounded(value * policy.multiplier);
    out.push_back(std::max(endowment, policy.minimum));
  }
  return out;
}

}  // namespace pm::exchange
