#include "exchange/endowment.h"

#include <algorithm>

#include "common/check.h"

namespace pm::exchange {

double FootprintValue(const PoolRegistry& registry,
                      const std::string& home_cluster,
                      const cluster::TaskShape& footprint,
                      std::span<const double> prices) {
  PM_CHECK(prices.size() == registry.size());
  double value = 0.0;
  for (ResourceKind kind : kAllResourceKinds) {
    const auto id = registry.Find(PoolKey{home_cluster, kind});
    PM_CHECK_MSG(id.has_value(),
                 "cluster '" << home_cluster << "' missing pool for "
                             << pm::ToString(kind));
    value += footprint.Of(kind) * prices[*id];
  }
  return value;
}

std::vector<Money> ComputeEndowments(
    const PoolRegistry& registry,
    const std::vector<agents::TeamAgent>& agents,
    std::span<const double> prices, const EndowmentPolicy& policy) {
  PM_CHECK_MSG(policy.multiplier > 0.0, "multiplier must be positive");
  std::vector<Money> out;
  out.reserve(agents.size());
  for (const agents::TeamAgent& agent : agents) {
    const double value =
        FootprintValue(registry, agent.profile().home_cluster,
                       agent.profile().footprint, prices);
    Money endowment = Money::FromDollarsRounded(value * policy.multiplier);
    out.push_back(std::max(endowment, policy.minimum));
  }
  return out;
}

std::vector<Money> SplitEvenly(Money total, std::size_t parts) {
  PM_CHECK_MSG(parts > 0, "cannot split into zero parts");
  PM_CHECK_MSG(!total.IsNegative(), "cannot split a negative amount");
  const std::int64_t micros = total.micros();
  const std::int64_t n = static_cast<std::int64_t>(parts);
  const std::int64_t base = micros / n;
  const std::int64_t extra = micros % n;
  std::vector<Money> out;
  out.reserve(parts);
  for (std::int64_t i = 0; i < n; ++i) {
    out.push_back(Money::FromMicros(base + (i < extra ? 1 : 0)));
  }
  return out;
}

}  // namespace pm::exchange
