// planetmarket: per-auction reports.
//
// Everything the paper's evaluation section reads off an auction is
// collected here: Figure 6's market/fixed price ratios, Figure 7's
// utilization-percentile trade samples, Table I's premium statistics, plus
// the physical consequences (migrations) for the longitudinal runs.
#pragma once

#include <string>
#include <vector>

#include "auction/settlement.h"
#include "cluster/job.h"
#include "common/types.h"
#include "stats/descriptive.h"

namespace pm::exchange {

/// One settled bundle item, annotated for Figure 7: the pre-auction
/// utilization percentile of the cluster the traded resource lives in.
struct TradeSample {
  ResourceKind kind = ResourceKind::kCpu;
  bool is_bid = true;           // true: bought (qty > 0); false: offered.
  double util_percentile = 0.0; // Cluster's pre-auction rank, 0–100.
  double qty = 0.0;             // Absolute units traded.
  std::string team;
};

/// One settled award, for billing detail and premium analysis.
struct AwardRecord {
  std::string team;
  std::string bid_name;   // "<team>/<tag>" as submitted.
  int bundle_index = -1;
  double payment = 0.0;   // Positive pays, negative receives.
  double premium = 0.0;   // γ_u of Eq. (5); NaN for zero payments.
};

/// A physical migration executed after settlement.
struct MoveRecord {
  std::string team;
  std::string from_cluster;  // Empty for pure growth.
  std::string to_cluster;    // Empty for pure shrink.
  cluster::TaskShape amount;
};

/// Everything recorded about one auction round.
struct AuctionReport {
  int auction_index = 0;

  // Inputs.
  std::vector<double> fixed_prices;     // Pre-market fixed prices.
  std::vector<double> reserve_prices;   // p̃ used this round.
  std::vector<double> pre_utilization;  // ψ per pool before the round.

  // Auction mechanics.
  std::size_t num_bids = 0;
  std::size_t num_winners = 0;
  /// External (federation-routed) bids rejected at the budget/validation
  /// gate and therefore never seen by the auction.
  std::size_t external_rejected = 0;
  int rounds = 0;
  bool converged = false;
  long long demand_evaluations = 0;

  // Wire traffic when the round ran behind pm::net proxy nodes
  // (MarketConfig::distributed_proxy_nodes > 0); zero on the in-process
  // serial path.
  long long transport_messages = 0;
  long long transport_bytes = 0;

  // Outcome.
  std::vector<double> settled_prices;
  auction::PremiumStats premium;     // Table I: median/mean of γ.
  double settled_fraction = 0.0;     // Table I: % settled.
  double operator_revenue = 0.0;
  std::vector<TradeSample> trades;   // Figure 7 samples.
  std::vector<AwardRecord> awards;   // Per-winner billing detail.

  // Physical application.
  std::vector<MoveRecord> moves;
  std::size_t jobs_added = 0;
  std::size_t jobs_removed = 0;
  std::size_t placement_failures = 0;  // Quota won but bin-packing failed.
  std::size_t overdrafts = 0;          // Budget violations at settlement.

  // Fleet health after the round.
  std::vector<double> post_utilization;
};

/// Figure 6's series: settled/fixed price ratio per pool (NaN where the
/// fixed price is zero).
std::vector<double> PriceRatios(const AuctionReport& report);

/// Figure 7's samples for one (kind, side) cell.
std::vector<double> TradePercentiles(const AuctionReport& report,
                                     ResourceKind kind, bool is_bid);

/// Boxplot summary of one Figure 7 cell; n == 0 when there were no such
/// trades.
stats::BoxplotSummary TradeBoxplot(const AuctionReport& report,
                                   ResourceKind kind, bool is_bid);

/// Cross-cluster utilization dispersion (mean absolute deviation of the
/// per-pool utilization, as percentage points) — the shortage/surplus
/// metric tracked by the reserve ablation and the timeline bench.
double UtilizationSpread(const std::vector<double>& utilization);

}  // namespace pm::exchange
