// planetmarket: per-auction reports.
//
// Everything the paper's evaluation section reads off an auction is
// collected here: Figure 6's market/fixed price ratios, Figure 7's
// utilization-percentile trade samples, Table I's premium statistics, plus
// the physical consequences (migrations) for the longitudinal runs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "auction/settlement.h"
#include "cluster/job.h"
#include "common/phase_span.h"
#include "common/types.h"
#include "stats/descriptive.h"

namespace pm::exchange {

/// One settled bundle item, annotated for Figure 7: the pre-auction
/// utilization percentile of the cluster the traded resource lives in.
struct TradeSample {
  ResourceKind kind = ResourceKind::kCpu;
  bool is_bid = true;           // true: bought (qty > 0); false: offered.
  double util_percentile = 0.0; // Cluster's pre-auction rank, 0–100.
  double qty = 0.0;             // Absolute units traded.
  std::string team;
};

/// One buy-side pool slice of an award: what the auction awarded versus
/// what the bin-packer physically delivered.
struct PoolFill {
  PoolId pool = 0;
  /// Units won at auction, net of same-pool sell items (> 0) — the
  /// quantity the quota grant and the payment actually covered.
  double awarded = 0.0;
  double placed = 0.0;  // Units materialized as placed jobs.
};

/// The physical fate of one award — §V.B ties market awards to real
/// reconfiguration, so every AwardRecord carries one. Sells release
/// capacity at whole-job granularity and cannot "fail"; the outcome
/// therefore tracks the buy side, where bin-packing can.
struct PlacementOutcome {
  enum class Status {
    kPlaced,   // Every bought unit landed (vacuously true for pure sells).
    kPartial,  // Some clusters placed, others failed.
    kFailed,   // No bought unit landed.
  };
  Status status = Status::kPlaced;

  /// Resident-arbitrageur trades move quota (warehouse), never jobs; no
  /// physical placement was intended.
  bool quota_only = false;

  /// Buy-side pools in cluster-delta order (deterministic).
  std::vector<PoolFill> fills;

  double awarded_units = 0.0;   // Σ fills[i].awarded.
  double placed_units = 0.0;    // Σ fills[i].placed.
  /// Units whose entitlement was handed back with the refund — equal to
  /// awarded − placed when SettlementPolicy::refund_unplaced is on, zero
  /// when the gate is off (the legacy quota-only settle).
  double refunded_units = 0.0;
  /// Dollars returned to the team for unplaced units (0 with the gate
  /// off); priced pro rata at the settled pool prices.
  double refund = 0.0;
};

std::string_view ToString(PlacementOutcome::Status status);

/// One settled award, for billing detail and premium analysis.
struct AwardRecord {
  std::string team;
  std::string bid_name;   // "<team>/<tag>" as submitted.
  int bundle_index = -1;
  double payment = 0.0;   // Positive pays, negative receives.
  double premium = 0.0;   // γ_u of Eq. (5); NaN for zero payments.
  PlacementOutcome outcome;
};

/// A physical migration executed after settlement.
struct MoveRecord {
  std::string team;
  std::string from_cluster;  // Empty for pure growth.
  std::string to_cluster;    // Empty for pure shrink.
  cluster::TaskShape amount;
  /// §V.B reconfiguration cost of the move (weights · amount); zero when
  /// SettlementPolicy::move_cost_weights is unset.
  double reconfig_cost = 0.0;
  /// Dollars actually collected from the moving team — nonzero only
  /// under SettlementPolicy::bill_moves. Billed on the physically
  /// placed shape only (a bounced placement reconfigured nothing) and
  /// clamped to the team's remaining balance at billing time, so it can
  /// undercut reconfig_cost on partial placements or empty budgets.
  double billed = 0.0;
};

/// A federation-routed bid bounced at the external-bid gate, with why —
/// budget (buy limit clamped to an empty local budget) or validation
/// (malformed as submitted). Routing layers assert on the reason.
struct ExternalRejection {
  enum class Reason { kBudget, kValidation };
  std::string team;
  std::string bid_name;
  Reason reason = Reason::kValidation;
};

std::string_view ToString(ExternalRejection::Reason reason);

/// Everything recorded about one auction round.
struct AuctionReport {
  int auction_index = 0;

  // Inputs.
  std::vector<double> fixed_prices;     // Pre-market fixed prices.
  std::vector<double> reserve_prices;   // p̃ used this round.
  std::vector<double> pre_utilization;  // ψ per pool before the round.

  // Auction mechanics.
  std::size_t num_bids = 0;
  std::size_t num_winners = 0;
  /// External (federation-routed) bids rejected at the budget/validation
  /// gate and therefore never seen by the auction.
  std::size_t external_rejected = 0;
  /// Per-bid detail for the rejections (size == external_rejected).
  std::vector<ExternalRejection> external_rejections;
  int rounds = 0;
  bool converged = false;
  long long demand_evaluations = 0;
  /// Engine-phase counters mirrored off ClockAuctionResult for the
  /// telemetry plane: argmin sweeps actually run, bisection-probe count,
  /// and the full-vs-incremental collection split (the latter two are
  /// zero on the wire path, where the engines live in the proxy nodes).
  long long proxies_reevaluated = 0;
  long long bisection_probes = 0;
  long long full_collections = 0;
  long long incremental_collections = 0;

  /// Profiler work-accounting counters (deterministic logical work,
  /// docs/observability.md "Phase profiler"): kernel dot-block calls
  /// per full sweep, bidders re-evaluated incrementally, and the
  /// resolved dot-kernel tier that served them. Like the collection
  /// split above, zero/empty on the wire path.
  long long dot_blocks = 0;
  long long dirty_bidders = 0;
  std::string kernel;

  // Wire traffic when the round ran behind pm::net proxy nodes
  // (MarketConfig::distributed_proxy_nodes > 0); zero on the in-process
  // serial path.
  long long transport_messages = 0;
  long long transport_bytes = 0;
  /// Lossy-wire recovery work (profiler channel): frames the sender
  /// retried, and duplicate/stale frames the receiver discarded.
  /// Deterministic per fault seed.
  long long wire_frames_retried = 0;
  long long wire_frames_deduped = 0;

  // Outcome.
  std::vector<double> settled_prices;
  auction::PremiumStats premium;     // Table I: median/mean of γ.
  double settled_fraction = 0.0;     // Table I: % settled.
  double operator_revenue = 0.0;
  std::vector<TradeSample> trades;   // Figure 7 samples.
  std::vector<AwardRecord> awards;   // Per-winner billing detail.

  // Physical application.
  std::vector<MoveRecord> moves;
  std::size_t jobs_added = 0;
  std::size_t jobs_removed = 0;
  std::size_t placement_failures = 0;  // Quota won but bin-packing failed.
  std::size_t partial_placements = 0;  // Awards with Status::kPartial.
  std::size_t overdrafts = 0;          // Budget violations at settlement.
  double refund_total = 0.0;  // Dollars refunded for unplaced units.
  /// Refund payouts executed (profiler channel: the op count behind
  /// refund_total — how many awards actually hit the refund path).
  std::size_t refund_ops = 0;
  /// §V.B reconfiguration charges collected from moving teams (zero
  /// unless SettlementPolicy::bill_moves is on).
  double move_billing_total = 0.0;

  // Fleet health after the round.
  std::vector<double> post_utilization;

  /// Wall-clock phase spans (collect/bisect from the auction, settle
  /// from the settlement section) when MarketConfig::phase_timings is
  /// on; the federation copies them into the profiler at the epoch
  /// barrier. Never read by any deterministic export.
  std::vector<PhaseSpan> phases;
};

/// Figure 6's series: settled/fixed price ratio per pool (NaN where the
/// fixed price is zero).
std::vector<double> PriceRatios(const AuctionReport& report);

/// Figure 7's samples for one (kind, side) cell.
std::vector<double> TradePercentiles(const AuctionReport& report,
                                     ResourceKind kind, bool is_bid);

/// Boxplot summary of one Figure 7 cell; n == 0 when there were no such
/// trades.
stats::BoxplotSummary TradeBoxplot(const AuctionReport& report,
                                   ResourceKind kind, bool is_bid);

/// Cross-cluster utilization dispersion (mean absolute deviation of the
/// per-pool utilization, as percentage points) — the shortage/surplus
/// metric tracked by the reserve ablation and the timeline bench.
double UtilizationSpread(const std::vector<double>& utilization);

/// Unit-weighted placement-failure rate over the last `window` reports:
/// Σ (awarded − placed) / Σ awarded across every award's buy-side
/// outcome, 0 when nothing was awarded. The federation router folds this
/// into shard heat — a shard that keeps winning quota it cannot place is
/// hot in a way reserve prices alone do not show.
double RecentPlacementFailureRate(const std::vector<AuctionReport>& history,
                                  int window);

}  // namespace pm::exchange
