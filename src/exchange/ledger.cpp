#include "exchange/ledger.h"

#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace pm::exchange {

AccountId Ledger::CreateAccount(std::string name, Money opening,
                                bool allow_negative) {
  PM_CHECK_MSG(!name.empty(), "account needs a name");
  const AccountId id = static_cast<AccountId>(accounts_.size());
  accounts_.push_back(Account{std::move(name), opening, allow_negative});
  return id;
}

const std::string& Ledger::NameOf(AccountId id) const {
  PM_CHECK_MSG(id < accounts_.size(), "unknown account " << id);
  return accounts_[id].name;
}

Money Ledger::Balance(AccountId id) const {
  PM_CHECK_MSG(id < accounts_.size(), "unknown account " << id);
  return accounts_[id].balance;
}

bool Ledger::AllowsNegative(AccountId id) const {
  PM_CHECK_MSG(id < accounts_.size(), "unknown account " << id);
  return accounts_[id].allow_negative;
}

std::string Ledger::Transfer(AccountId from, AccountId to, Money amount,
                             std::string memo) {
  PM_CHECK_MSG(from < accounts_.size() && to < accounts_.size(),
               "transfer between unknown accounts " << from << " and "
                                                    << to);
  if (amount.IsNegative()) {
    return "transfer amount must be non-negative (swap from/to instead)";
  }
  if (from == to) {
    return "cannot transfer an account to itself";
  }
  Account& src = accounts_[from];
  if (!src.allow_negative && src.balance < amount) {
    std::ostringstream os;
    os << "insufficient funds in '" << src.name << "': balance "
       << src.balance.ToString() << " < transfer " << amount.ToString();
    return os.str();
  }
  src.balance -= amount;
  accounts_[to].balance += amount;
  journal_.push_back(
      JournalEntry{from, to, amount, std::move(memo), next_sequence_++});
  return {};
}

AccountId Ledger::RestoreAccount(std::string name, Money balance,
                                 bool allow_negative) {
  PM_CHECK_MSG(!name.empty(), "account needs a name");
  PM_CHECK_MSG(allow_negative || !balance.IsNegative(),
               "restored balance of '" << name
                                       << "' is negative without overdraft");
  const AccountId id = static_cast<AccountId>(accounts_.size());
  accounts_.push_back(Account{std::move(name), balance, allow_negative});
  return id;
}

void Ledger::RestoreJournal(std::vector<JournalEntry> journal,
                            int next_sequence) {
  PM_CHECK_MSG(journal_.empty(), "RestoreJournal over a live journal");
  PM_CHECK_MSG(next_sequence >= static_cast<int>(journal.size()),
               "journal sequence counter behind the journal itself");
  journal_ = std::move(journal);
  next_sequence_ = next_sequence;
}

Money Ledger::TotalBalance() const {
  Money total;
  for (const Account& a : accounts_) total += a.balance;
  return total;
}

std::string Ledger::RenderAccounts() const {
  TextTable table({"account", "balance"});
  for (const Account& a : accounts_) {
    table.AddRow({a.name, a.balance.ToString()});
  }
  return table.Render();
}

}  // namespace pm::exchange
