// planetmarket: Market checkpoint/restore.
//
// Serializes the market's entire mutable state into one checksummed frame
// so a crashed shard can rejoin the federation bit-identically: every
// double is written as its raw bit pattern (accumulated float error in
// machine usage round-trips exactly), the fleet's pool-interning order is
// saved explicitly (PoolIds are append-only and can diverge from
// cluster-major order after migrations), RNG engine states resume the
// exact draw sequence, and the auction history is reduced to the digest
// the market actually feeds back into future behaviour (auction count and
// the placement-failure window).
//
// Snapshot() must be taken at an epoch boundary — no queued external bids
// (CHECKed) — which is where the federation's epoch supervisor takes it.
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "exchange/market.h"
#include "net/serializer.h"

namespace pm::exchange {
namespace {

constexpr std::uint32_t kSnapshotVersion = 1;

template <typename T>
T Req(std::optional<T> v, const char* what) {
  PM_CHECK_MSG(v.has_value(), "market snapshot truncated at " << what);
  return std::move(*v);
}

void WriteShape(net::Serializer& s, const cluster::TaskShape& shape) {
  s.WriteDouble(shape.cpu);
  s.WriteDouble(shape.ram_gb);
  s.WriteDouble(shape.disk_tb);
}

cluster::TaskShape ReadShape(net::Deserializer& d) {
  cluster::TaskShape shape;
  shape.cpu = Req(d.ReadDouble(), "shape.cpu");
  shape.ram_gb = Req(d.ReadDouble(), "shape.ram_gb");
  shape.disk_tb = Req(d.ReadDouble(), "shape.disk_tb");
  return shape;
}

void WriteRngState(net::Serializer& s,
                   const std::array<std::uint64_t, 4>& state) {
  for (std::uint64_t word : state) s.WriteU64(word);
}

std::array<std::uint64_t, 4> ReadRngState(net::Deserializer& d) {
  std::array<std::uint64_t, 4> state{};
  for (std::uint64_t& word : state) word = Req(d.ReadU64(), "rng state");
  return state;
}

}  // namespace

std::vector<std::uint8_t> Market::Snapshot() const {
  PM_CHECK_MSG(external_.empty(),
               "snapshot with queued external bids — checkpoints are "
               "epoch-boundary only");
  net::Serializer s;
  s.WriteU32(kSnapshotVersion);

  // Market scalars.
  s.WriteDoubleVector(fixed_prices_);
  s.WriteU8(endowed_ ? 1 : 0);
  s.WriteU64(next_job_id_);
  WriteRngState(s, rng_.SaveState());

  // Fleet: unit costs, policy, the exact pool-interning order, then every
  // cluster with machines (capacity + raw used bits) and placed jobs.
  WriteShape(s, fleet_->unit_costs());
  s.WriteU8(static_cast<std::uint8_t>(fleet_->policy()));
  const PoolRegistry& registry = fleet_->registry();
  s.WriteU32(static_cast<std::uint32_t>(registry.size()));
  for (PoolId r = 0; r < registry.size(); ++r) {
    const PoolKey& key = registry.KeyOf(r);
    s.WriteString(key.cluster);
    s.WriteU8(static_cast<std::uint8_t>(key.kind));
  }
  const std::vector<std::string> cluster_names = fleet_->ClusterNames();
  s.WriteU32(static_cast<std::uint32_t>(cluster_names.size()));
  for (const std::string& name : cluster_names) {
    const cluster::Cluster& cl = fleet_->ClusterByName(name);
    s.WriteString(name);
    s.WriteU32(static_cast<std::uint32_t>(cl.NumMachines()));
    for (const cluster::Machine& m : cl.machines()) {
      WriteShape(s, m.capacity());
      WriteShape(s, m.used());
    }
    const std::vector<cluster::Cluster::PlacedJobRecord> jobs =
        cl.ExportJobs();
    s.WriteU32(static_cast<std::uint32_t>(jobs.size()));
    for (const cluster::Cluster::PlacedJobRecord& rec : jobs) {
      s.WriteU64(rec.job.id);
      s.WriteString(rec.job.team);
      WriteShape(s, rec.job.shape);
      s.WriteI32(rec.job.tasks);
      s.WriteU32(static_cast<std::uint32_t>(rec.placement.tasks_placed.size()));
      for (int t : rec.placement.tasks_placed) s.WriteI32(t);
      s.WriteI32(rec.placement.tasks_failed);
    }
  }

  // Resident agents: identity is CHECK-matched on restore; learned state,
  // private RNG, holdings and placement memory are overwritten.
  s.WriteU32(static_cast<std::uint32_t>(agents_->size()));
  for (const agents::TeamAgent& agent : *agents_) {
    const agents::TeamProfile& profile = agent.profile();
    s.WriteString(profile.name);
    s.WriteU8(static_cast<std::uint8_t>(profile.strategy));
    s.WriteString(profile.home_cluster);
    WriteShape(s, profile.footprint);
    s.WriteDouble(profile.growth_rate);
    s.WriteDouble(profile.relocation_cost);
    s.WriteDouble(profile.value_multiplier);
    s.WriteDoubleVector(agent.learner().beliefs());
    s.WriteDouble(agent.learner().Markup());
    s.WriteI32(agent.learner().ObservationCount());
    WriteRngState(s, agent.rng().SaveState());
    s.WriteDoubleVector(agent.holdings());
    s.WriteDoubleVector(agent.placement_penalty());
  }

  // Ledger: accounts in id order with exact micro-dollar balances, then
  // the journal.
  s.WriteU32(accounts_.operator_account());
  s.WriteU32(static_cast<std::uint32_t>(ledger_.NumAccounts()));
  for (AccountId id = 0; id < ledger_.NumAccounts(); ++id) {
    s.WriteString(ledger_.NameOf(id));
    s.WriteI64(ledger_.Balance(id).micros());
    s.WriteU8(ledger_.AllowsNegative(id) ? 1 : 0);
  }
  const std::vector<JournalEntry>& journal = ledger_.Journal();
  s.WriteU32(static_cast<std::uint32_t>(journal.size()));
  for (const JournalEntry& e : journal) {
    s.WriteU32(e.from);
    s.WriteU32(e.to);
    s.WriteI64(e.amount.micros());
    s.WriteString(e.memo);
    s.WriteI32(e.sequence);
  }

  // Quota cells, deterministically flattened.
  const std::vector<cluster::QuotaTable::Row> rows = quota_.ExportRows();
  s.WriteU32(static_cast<std::uint32_t>(rows.size()));
  for (const cluster::QuotaTable::Row& row : rows) {
    s.WriteString(row.team);
    s.WriteU32(row.pool);
    s.WriteDouble(row.entitlement);
    s.WriteDouble(row.usage);
  }

  // History digest: only what feeds future behaviour — the auction count
  // and each award's placement outcome (the failure-rate window skips
  // quota-only awards, so that flag must survive the round trip).
  s.WriteU32(static_cast<std::uint32_t>(history_.size()));
  for (const AuctionReport& report : history_) {
    s.WriteI32(report.auction_index);
    s.WriteU32(static_cast<std::uint32_t>(report.awards.size()));
    for (const AwardRecord& award : report.awards) {
      s.WriteU8(award.outcome.quota_only ? 1 : 0);
      s.WriteDouble(award.outcome.awarded_units);
      s.WriteDouble(award.outcome.placed_units);
    }
  }

  return std::move(s).FinishWithChecksum();
}

void Market::Restore(const std::vector<std::uint8_t>& frame) {
  net::Deserializer d(frame);
  PM_CHECK_MSG(d.VerifyChecksum(), "market snapshot failed its checksum");
  const std::uint32_t version = Req(d.ReadU32(), "version");
  PM_CHECK_MSG(version == kSnapshotVersion,
               "market snapshot version " << version << " unsupported");

  fixed_prices_ = Req(d.ReadDoubleVector(), "fixed prices");
  endowed_ = Req(d.ReadU8(), "endowed") != 0;
  next_job_id_ = Req(d.ReadU64(), "next job id");
  rng_.RestoreState(ReadRngState(d));

  // Fleet.
  const cluster::TaskShape unit_costs = ReadShape(d);
  const auto policy =
      static_cast<cluster::PlacementPolicy>(Req(d.ReadU8(), "policy"));
  const std::uint32_t num_pools = Req(d.ReadU32(), "pool count");
  std::vector<PoolKey> pool_order;
  pool_order.reserve(num_pools);
  for (std::uint32_t r = 0; r < num_pools; ++r) {
    PoolKey key;
    key.cluster = Req(d.ReadString(), "pool cluster");
    key.kind = static_cast<ResourceKind>(Req(d.ReadU8(), "pool kind"));
    pool_order.push_back(std::move(key));
  }
  const std::uint32_t num_clusters = Req(d.ReadU32(), "cluster count");
  std::vector<cluster::Cluster> clusters;
  clusters.reserve(num_clusters);
  for (std::uint32_t c = 0; c < num_clusters; ++c) {
    std::string name = Req(d.ReadString(), "cluster name");
    const std::uint32_t num_machines = Req(d.ReadU32(), "machine count");
    std::vector<cluster::Machine> machines;
    machines.reserve(num_machines);
    for (std::uint32_t m = 0; m < num_machines; ++m) {
      const cluster::TaskShape capacity = ReadShape(d);
      const cluster::TaskShape used = ReadShape(d);
      cluster::Machine machine(capacity);
      machine.RestoreUsed(used);
      machines.push_back(machine);
    }
    cluster::Cluster cl(std::move(name), std::move(machines));
    const std::uint32_t num_jobs = Req(d.ReadU32(), "job count");
    std::vector<cluster::Cluster::PlacedJobRecord> records;
    records.reserve(num_jobs);
    for (std::uint32_t j = 0; j < num_jobs; ++j) {
      cluster::Cluster::PlacedJobRecord rec;
      rec.job.id = Req(d.ReadU64(), "job id");
      rec.job.team = Req(d.ReadString(), "job team");
      rec.job.shape = ReadShape(d);
      rec.job.tasks = Req(d.ReadI32(), "job tasks");
      const std::uint32_t placed = Req(d.ReadU32(), "placement count");
      rec.placement.tasks_placed.reserve(placed);
      for (std::uint32_t t = 0; t < placed; ++t) {
        rec.placement.tasks_placed.push_back(
            Req(d.ReadI32(), "task placement"));
      }
      rec.placement.tasks_failed = Req(d.ReadI32(), "tasks failed");
      records.push_back(std::move(rec));
    }
    cl.RestoreJobs(std::move(records));
    clusters.push_back(std::move(cl));
  }
  *fleet_ = cluster::Fleet::FromState(std::move(clusters), pool_order,
                                      unit_costs, policy);
  PM_CHECK_MSG(fixed_prices_.size() == fleet_->NumPools(),
               "restored fixed prices do not cover the restored pools");

  // Agents: the resident population is part of the market's construction,
  // so restore overwrites state in place and identity must match.
  const std::uint32_t num_agents = Req(d.ReadU32(), "agent count");
  PM_CHECK_MSG(num_agents == agents_->size(),
               "snapshot holds " << num_agents << " agents, market has "
                                 << agents_->size());
  for (agents::TeamAgent& agent : *agents_) {
    agents::TeamProfile& profile = agent.mutable_profile();
    const std::string name = Req(d.ReadString(), "agent name");
    PM_CHECK_MSG(name == profile.name,
                 "agent order mismatch: snapshot has '"
                     << name << "', market has '" << profile.name << "'");
    const auto strategy =
        static_cast<agents::StrategyKind>(Req(d.ReadU8(), "strategy"));
    PM_CHECK_MSG(strategy == profile.strategy,
                 "agent '" << name << "' changed strategy");
    profile.home_cluster = Req(d.ReadString(), "home cluster");
    profile.footprint = ReadShape(d);
    profile.growth_rate = Req(d.ReadDouble(), "growth rate");
    profile.relocation_cost = Req(d.ReadDouble(), "relocation cost");
    profile.value_multiplier = Req(d.ReadDouble(), "value multiplier");
    std::vector<double> beliefs = Req(d.ReadDoubleVector(), "beliefs");
    const double markup = Req(d.ReadDouble(), "markup");
    const int observations = Req(d.ReadI32(), "observations");
    agent.mutable_learner().RestoreState(std::move(beliefs), markup,
                                         observations);
    agent.rng().RestoreState(ReadRngState(d));
    agent.mutable_holdings() = Req(d.ReadDoubleVector(), "holdings");
    agent.RestorePlacementPenalty(
        Req(d.ReadDoubleVector(), "placement penalty"));
  }

  // Ledger: rebuilt from scratch (the member's address is stable, so the
  // accounts registry just rebinds to the restored contents).
  const AccountId operator_account = Req(d.ReadU32(), "operator account");
  const std::uint32_t num_accounts = Req(d.ReadU32(), "account count");
  ledger_ = Ledger();
  for (std::uint32_t a = 0; a < num_accounts; ++a) {
    std::string name = Req(d.ReadString(), "account name");
    const std::int64_t micros = Req(d.ReadI64(), "account balance");
    const bool allow_negative = Req(d.ReadU8(), "overdraft flag") != 0;
    ledger_.RestoreAccount(std::move(name), Money::FromMicros(micros),
                           allow_negative);
  }
  const std::uint32_t num_entries = Req(d.ReadU32(), "journal size");
  std::vector<JournalEntry> journal;
  journal.reserve(num_entries);
  for (std::uint32_t e = 0; e < num_entries; ++e) {
    JournalEntry entry;
    entry.from = Req(d.ReadU32(), "journal from");
    entry.to = Req(d.ReadU32(), "journal to");
    entry.amount = Money::FromMicros(Req(d.ReadI64(), "journal amount"));
    entry.memo = Req(d.ReadString(), "journal memo");
    entry.sequence = Req(d.ReadI32(), "journal sequence");
    journal.push_back(std::move(entry));
  }
  const int next_sequence = static_cast<int>(journal.size());
  ledger_.RestoreJournal(std::move(journal), next_sequence);
  accounts_.RebindForRestore(operator_account);

  // Quota.
  const std::uint32_t num_rows = Req(d.ReadU32(), "quota rows");
  std::vector<cluster::QuotaTable::Row> rows;
  rows.reserve(num_rows);
  for (std::uint32_t r = 0; r < num_rows; ++r) {
    cluster::QuotaTable::Row row;
    row.team = Req(d.ReadString(), "quota team");
    row.pool = Req(d.ReadU32(), "quota pool");
    row.entitlement = Req(d.ReadDouble(), "quota entitlement");
    row.usage = Req(d.ReadDouble(), "quota usage");
    rows.push_back(std::move(row));
  }
  quota_ = cluster::QuotaTable();
  quota_.RestoreRows(rows);

  // History digest.
  const std::uint32_t num_reports = Req(d.ReadU32(), "history size");
  history_.clear();
  history_.reserve(num_reports);
  for (std::uint32_t i = 0; i < num_reports; ++i) {
    AuctionReport report;
    report.auction_index = Req(d.ReadI32(), "history auction index");
    const std::uint32_t num_awards = Req(d.ReadU32(), "history awards");
    report.awards.reserve(num_awards);
    for (std::uint32_t a = 0; a < num_awards; ++a) {
      AwardRecord award;
      award.outcome.quota_only = Req(d.ReadU8(), "award quota flag") != 0;
      award.outcome.awarded_units = Req(d.ReadDouble(), "award units");
      award.outcome.placed_units = Req(d.ReadDouble(), "placed units");
      report.awards.push_back(std::move(award));
    }
    history_.push_back(std::move(report));
  }

  PM_CHECK_MSG(d.Exhausted(), "market snapshot has trailing bytes");
  external_.clear();
}

}  // namespace pm::exchange
