// planetmarket: the bid-collection window (§V.A, Figure 5).
//
// The trading platform collects bids over a window of time; during that
// window "the mapping, simulation, and price update process is run at
// periodic intervals … the preliminary, updated settlement prices are
// displayed on the market front end. At the conclusion of this phase,
// one last simulation is run [whose] results determine the final,
// binding market prices". BidWindow reproduces that flow on the
// simulation clock: bids accumulate, a periodic tick recomputes
// non-binding preliminary prices from the current book, and Close()
// returns the final bid set for the binding auction.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bid/bid.h"
#include "sim/event_queue.h"
#include "sim/process.h"

namespace pm::exchange {

/// One preliminary price computation during the window.
struct PreliminaryTick {
  sim::SimTime at = 0.0;
  std::size_t bids_in_book = 0;
  std::vector<double> prices;
};

/// A bid book that is open for a fixed span of simulated time.
class BidWindow {
 public:
  /// `compute_preliminary` maps the current book to non-binding prices
  /// (typically Market::ComputePreliminaryPrices); ticks fire every
  /// `tick_period` from opening until `close_at`. The window registers
  /// itself on `queue` immediately.
  BidWindow(sim::EventQueue& queue, sim::SimTime close_at,
            sim::SimTime tick_period,
            std::function<std::vector<double>(std::vector<bid::Bid>)>
                compute_preliminary);

  ~BidWindow();

  BidWindow(const BidWindow&) = delete;
  BidWindow& operator=(const BidWindow&) = delete;

  /// Submits a bid. Returns false (bid rejected) once the window closed.
  bool Submit(bid::Bid bid);

  /// Replaces the caller's earlier bids (matched by Bid::name): the
  /// "respond to environmental conditions" behaviour §II allows during
  /// the entry period. Returns the number of replaced bids.
  std::size_t Amend(const std::string& name, bid::Bid replacement);

  /// Withdraws all bids with the given name. Returns how many were
  /// removed. Only valid while open.
  std::size_t Withdraw(const std::string& name);

  bool IsOpen() const { return open_; }

  /// Number of bids currently in the book.
  std::size_t BookSize() const { return book_.size(); }

  /// Preliminary price history so far (one entry per fired tick).
  const std::vector<PreliminaryTick>& Ticks() const { return ticks_; }

  /// The most recent preliminary prices (empty before the first tick).
  const std::vector<double>& LatestPreliminaryPrices() const;

  /// Closes the book (idempotent; also fired automatically at
  /// `close_at`) and returns the final bids with user ids assigned —
  /// ready for the binding ClockAuction.
  std::vector<bid::Bid> Close();

 private:
  void OnTick();

  sim::EventQueue& queue_;
  std::function<std::vector<double>(std::vector<bid::Bid>)>
      compute_preliminary_;
  std::vector<bid::Bid> book_;
  std::vector<PreliminaryTick> ticks_;
  bool open_ = true;
  sim::EventId close_event_ = 0;
  std::unique_ptr<sim::PeriodicProcess> tick_process_;
};

}  // namespace pm::exchange
