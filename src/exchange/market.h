// planetmarket: the trading platform (§V.A).
//
// Market glues every substrate together into the paper's experimental
// resource economy:
//
//   utilization ψ ──► congestion-weighted reserves p̃ = φ(ψ)·c   (§IV)
//   team agents  ──► bids {Q_u, π_u}                             (§II)
//   free capacity ─► operator supply s
//   clock auction ─► uniform prices + allocations                (§III)
//   settlement   ──► ledger transfers, job migrations, reports   (§V)
//
// RunAuction() executes one full round; run it periodically (directly or
// from a sim::PeriodicProcess) to reproduce the §V.B longitudinal
// experiments. ComputePreliminaryPrices() is the non-binding price tick
// displayed during the bid-collection window (Figure 5).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "agents/team.h"
#include "auction/clock_auction.h"
#include "cluster/fleet.h"
#include "cluster/quota.h"
#include "exchange/accounts.h"
#include "exchange/endowment.h"
#include "exchange/report.h"
#include "reserve/reserve_pricer.h"

namespace pm::exchange {

/// Clock-auction defaults tuned for whole-market rounds: a multiplicative
/// (geometric) clock so high-priced pools move in proportion, a small
/// aggregate-demand tolerance so the final sub-percent excess over large
/// pools does not crawl for hundreds of rounds, and intra-round bisection
/// to land near the clearing price despite the geometric steps.
auction::ClockAuctionConfig DefaultMarketAuctionConfig();

/// Market configuration.
struct MarketConfig {
  /// Clock-auction tuning for each round.
  auction::ClockAuctionConfig auction = DefaultMarketAuctionConfig();

  /// Congestion weighting for reserve prices (defaults to φ1 = exp2, the
  /// steepest of the paper's example curves).
  std::shared_ptr<const reserve::WeightingFunction> weighting;

  /// Budget endowment policy, applied before the first auction.
  EndowmentPolicy endowment;

  /// Fraction of current free capacity the operator offers for sale each
  /// round.
  double supply_fraction = 1.0;

  /// Audit every converged auction against the SYSTEM constraints
  /// (§III.B) and fail loudly on violation.
  bool audit_system = true;

  /// Per-task caps used when materializing won quota into jobs (tasks are
  /// split so they fit real machines).
  cluster::TaskShape max_task_shape{8.0, 32.0, 4.0};
};

/// The periodic market over one fleet and one team population.
class Market {
 public:
  /// `fleet` and `agents` must outlive the market. `fixed_prices` are the
  /// pre-market per-pool prices (Figure 6's baseline).
  Market(cluster::Fleet* fleet, std::vector<agents::TeamAgent>* agents,
         std::vector<double> fixed_prices, MarketConfig config);

  /// Runs one binding auction round end-to-end and returns its report
  /// (also appended to History()).
  AuctionReport RunAuction();

  /// Non-binding price simulation on an explicit bid set: what the
  /// front end shows while the bid window is open. User ids are assigned;
  /// no money moves, no jobs move, agents learn nothing.
  std::vector<double> ComputePreliminaryPrices(
      std::vector<bid::Bid> bids) const;

  /// Current congestion-weighted reserve prices (recomputed from live
  /// fleet state).
  std::vector<double> CurrentReservePrices() const;

  const std::vector<AuctionReport>& History() const { return history_; }

  Money TeamBudget(const std::string& team) const {
    return accounts_.BudgetOf(team);
  }

  const Ledger& ledger() const { return ledger_; }
  const cluster::Fleet& fleet() const { return *fleet_; }
  const std::vector<double>& fixed_prices() const { return fixed_prices_; }

  /// The §I quota registry: entitlements granted/released by settled
  /// trades, usage charged/refunded as jobs come and go. Teams start
  /// entitled to exactly what they already run. Mutable access lets
  /// admission-control layers (e.g. ChurnProcess) share the table.
  const cluster::QuotaTable& quota() const { return quota_; }
  cluster::QuotaTable& mutable_quota() { return quota_; }

  /// Number of auctions run so far.
  int AuctionCount() const { return static_cast<int>(history_.size()); }

 private:
  struct CollectedBids {
    std::vector<bid::Bid> bids;
    /// For bid i: which agent produced it and its index within that
    /// agent's batch.
    std::vector<std::pair<std::size_t, std::size_t>> origin;
    /// Per-agent count of bids (for outcome fan-back).
    std::vector<std::size_t> per_agent;
  };

  CollectedBids CollectBids(const std::vector<double>& reserve,
                            const std::vector<double>& utilization,
                            const std::vector<double>& free_supply);

  void ApplyPhysicalSettlement(const CollectedBids& collected,
                               const auction::Settlement& settlement,
                               AuctionReport& report);

  void RecordTrades(const CollectedBids& collected,
                    const auction::Settlement& settlement,
                    AuctionReport& report) const;

  /// Recomputes every agent's footprint from the fleet and re-homes teams
  /// whose center of mass moved.
  void RefreshTeamProfiles();

  cluster::Fleet* fleet_;
  std::vector<agents::TeamAgent>* agents_;
  std::vector<double> fixed_prices_;
  MarketConfig config_;
  reserve::ReservePricer pricer_;
  Ledger ledger_;
  MarketAccounts accounts_;
  cluster::QuotaTable quota_;
  std::vector<AuctionReport> history_;
  bool endowed_ = false;
  cluster::JobId next_job_id_ = 1'000'000;  // Jobs created by the market.
};

}  // namespace pm::exchange
