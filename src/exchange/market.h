// planetmarket: the trading platform (§V.A).
//
// Market glues every substrate together into the paper's experimental
// resource economy:
//
//   utilization ψ ──► congestion-weighted reserves p̃ = φ(ψ)·c   (§IV)
//   team agents  ──► bids {Q_u, π_u}                             (§II)
//   free capacity ─► operator supply s
//   clock auction ─► uniform prices + allocations                (§III)
//   settlement   ──► ledger transfers, job migrations, reports   (§V)
//
// RunAuction() executes one full round; run it periodically (directly or
// from a sim::PeriodicProcess) to reproduce the §V.B longitudinal
// experiments. ComputePreliminaryPrices() is the non-binding price tick
// displayed during the bid-collection window (Figure 5).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "agents/team.h"
#include "auction/clock_auction.h"
#include "cluster/fleet.h"
#include "cluster/quota.h"
#include "common/rng.h"
#include "exchange/accounts.h"
#include "exchange/endowment.h"
#include "exchange/report.h"
#include "exchange/settlement_pipeline.h"
#include "net/faults.h"
#include "reserve/reserve_pricer.h"

namespace pm::exchange {

/// Clock-auction defaults tuned for whole-market rounds: a multiplicative
/// (geometric) clock so high-priced pools move in proportion, a small
/// aggregate-demand tolerance so the final sub-percent excess over large
/// pools does not crawl for hundreds of rounds, and intra-round bisection
/// to land near the clearing price despite the geometric steps.
auction::ClockAuctionConfig DefaultMarketAuctionConfig();

/// Market configuration.
struct MarketConfig {
  /// Clock-auction tuning for each round.
  auction::ClockAuctionConfig auction = DefaultMarketAuctionConfig();

  /// Demand-engine kernel selection (auction/kernels.h). The default
  /// scalar kernel reproduces the historical engine bit for bit; the
  /// vectorized kernels keep decisions identical and bound price drift
  /// (the relaxed-equivalence tier). Applies to the in-process serial
  /// engine and preliminary-price ticks; the distributed proxy path
  /// always runs the scalar oracle, which the serial==distributed
  /// bit-identity contract relies on.
  auction::DemandEngineConfig demand_engine;

  /// Congestion weighting for reserve prices (defaults to φ1 = exp2, the
  /// steepest of the paper's example curves).
  std::shared_ptr<const reserve::WeightingFunction> weighting;

  /// Budget endowment policy, applied before the first auction.
  EndowmentPolicy endowment;

  /// Fraction of current free capacity the operator offers for sale each
  /// round.
  double supply_fraction = 1.0;

  /// Audit every converged auction against the SYSTEM constraints
  /// (§III.B) and fail loudly on violation.
  bool audit_system = true;

  /// Per-task caps used when materializing won quota into jobs (tasks are
  /// split so they fit real machines).
  cluster::TaskShape max_task_shape{8.0, 32.0, 4.0};

  /// Outcome-aware settlement gates (refunds for unplaced units, §V.B
  /// move pricing). Defaults reproduce the legacy settlement bit for
  /// bit; PlacementOutcomes are recorded on every award either way.
  SettlementPolicy settlement;

  /// When on, each resident agent's BidOutcome carries its award's
  /// placement outcome (awarded/placed units, the pools whose fill fell
  /// short), feeding the agents' placement-failure memory so strategies
  /// down-weight chronically unplaceable clusters. Off (default), the
  /// outcome fields stay zero and every agent's state — and therefore
  /// every future epoch — is bit-identical to the price-only learner.
  bool outcome_feedback = false;

  /// Record wall-clock phase spans (auction collect/bisect + settle)
  /// into AuctionReport::phases — the profiler's wall channel. A few
  /// steady_clock reads per auction when on; never touches prices,
  /// decisions, counters, or any deterministic export. Serial path
  /// only: on the wire path the demand work runs inside the proxy
  /// nodes, so only the settle span is recorded.
  bool phase_timings = false;

  /// Seed of the market's private random stream (exposed via rng()).
  /// The core auction round is fully deterministic and draws nothing from
  /// it; the stream exists for market-scoped stochastic extensions
  /// (operator tooling, stochastic admission policies) so they never have
  /// to mint their own generator. Give every co-resident market its own
  /// seed — a federated exchange derives one per shard — so whatever does
  /// draw from the streams stays independent across markets.
  std::uint64_t seed = 0x5eedULL;

  /// When > 0, every binding auction runs over the pm::net wire protocol
  /// behind this many proxy nodes instead of the in-process serial engine
  /// (bit-identical by construction — distribution changes where the work
  /// runs, not the mechanism). Requires a distributed-compatible auction
  /// config: the constructor CHECKs
  /// auction::DistributedIncompatibility(auction).empty().
  /// ComputePreliminaryPrices stays serial — it is a non-binding local
  /// simulation either way.
  std::size_t distributed_proxy_nodes = 0;

  /// Lossy-wire injection for the distributed proxy path (ignored when
  /// distributed_proxy_nodes == 0). Off by default; when enabled, every
  /// auction derives a per-auction fault seed from `wire_faults.seed` and
  /// the auction index, so fault patterns differ across auctions but are
  /// reproducible bit for bit. Auction results are unchanged by the
  /// faults (exactly-once in-order reassembly) or the run throws
  /// CheckFailure on retry exhaustion.
  net::FaultConfig wire_faults;
};

/// The periodic market over one fleet and one team population.
class Market {
 public:
  /// `fleet` and `agents` must outlive the market. `fixed_prices` are the
  /// pre-market per-pool prices (Figure 6's baseline).
  Market(cluster::Fleet* fleet, std::vector<agents::TeamAgent>* agents,
         std::vector<double> fixed_prices, MarketConfig config);

  /// Runs one binding auction round end-to-end and returns its report
  /// (also appended to History()).
  AuctionReport RunAuction();

  /// A bid submitted from outside the market's own agent population — the
  /// federation router's cross-market parts, or any front end accepting
  /// bids on behalf of remote teams. `team` is the billing identity;
  /// `bid.name` should follow the "<team>/<tag>" convention so awards can
  /// be mapped back. The bid is queued and joins the next RunAuction after
  /// the resident agents' bids (submission order preserved); it settles
  /// through the normal path — quota moves, jobs materialize, money flows
  /// through `team`'s account. Buy limits are clamped to the team's
  /// budget, so fund the team first (EndowTeam).
  struct ExternalBid {
    std::string team;
    bid::Bid bid;
  };
  void SubmitExternalBid(ExternalBid bid);

  /// Batch gate: queues a whole per-shard routing batch in one call,
  /// preserving vector order (equivalent to SubmitExternalBid per entry,
  /// minus the per-call overhead — the federation router submits each
  /// shard's epoch batch through this).
  void SubmitExternalBids(std::vector<ExternalBid> bids);

  /// Number of external bids currently queued for the next auction.
  std::size_t PendingExternalBids() const { return external_.size(); }

  /// Mints budget for a team (resident or external) ahead of an auction.
  void EndowTeam(const std::string& team, Money amount, std::string memo);

  /// Withdraws a team's entire remaining budget back to the operator and
  /// returns it — the federation treasury's end-of-epoch sweep.
  Money WithdrawTeam(const std::string& team, std::string memo);

  /// Detaches a whole cluster for migration to another shard's market
  /// (the federation's fleet-transfer protocol): quota usage of its jobs
  /// is refunded and their entitlements released here, then the cluster —
  /// machines and jobs included — is extracted from the fleet. Its pools
  /// stay interned at zero capacity.
  cluster::Cluster ExtractCluster(const std::string& name);

  /// Attaches a migrated cluster: the fleet interns its pools, per-pool
  /// market state grows to match (fixed prices extend at the operator's
  /// unit cost, every resident agent's price beliefs extend at those
  /// prices), and the incoming jobs' usage and entitlements are charged
  /// to their teams — the same bootstrap the constructor applies.
  void AdoptCluster(cluster::Cluster cluster);

  /// Non-binding price simulation on an explicit bid set: what the
  /// front end shows while the bid window is open. User ids are assigned;
  /// no money moves, no jobs move, agents learn nothing.
  std::vector<double> ComputePreliminaryPrices(
      std::vector<bid::Bid> bids) const;

  /// Current congestion-weighted reserve prices (recomputed from live
  /// fleet state).
  std::vector<double> CurrentReservePrices() const;

  const std::vector<AuctionReport>& History() const { return history_; }

  Money TeamBudget(const std::string& team) const {
    return accounts_.BudgetOf(team);
  }

  const Ledger& ledger() const { return ledger_; }
  const cluster::Fleet& fleet() const { return *fleet_; }
  const std::vector<double>& fixed_prices() const { return fixed_prices_; }

  /// Fraction of free capacity offered for sale each round (capacity
  /// snapshots taken by routing layers must scale by this).
  double supply_fraction() const { return config_.supply_fraction; }

  /// The §I quota registry: entitlements granted/released by settled
  /// trades, usage charged/refunded as jobs come and go. Teams start
  /// entitled to exactly what they already run. Mutable access lets
  /// admission-control layers (e.g. ChurnProcess) share the table.
  const cluster::QuotaTable& quota() const { return quota_; }
  cluster::QuotaTable& mutable_quota() { return quota_; }

  /// Number of auctions run so far.
  int AuctionCount() const { return static_cast<int>(history_.size()); }

  /// The market's private random stream (derived from MarketConfig::seed;
  /// independent of every agent's stream). Market-scoped stochastic
  /// policies draw from here so that co-resident markets never share
  /// generator state.
  RandomStream& rng() { return rng_; }

  /// The seed this market was constructed with.
  std::uint64_t seed() const { return config_.seed; }

  /// Serializes the market's full mutable state — fleet (machines, jobs,
  /// pool-interning order), every resident agent (price beliefs, markup,
  /// private RNG, holdings, placement memory), ledger, quota table,
  /// market RNG and a digest of the auction history — into one checksummed
  /// frame. Must be taken at an epoch boundary: no external bids may be
  /// queued (CHECKed). Restore() on a market built with the same
  /// constructor arguments resumes the exact draw-for-draw behaviour of
  /// the snapshotted one; Snapshot() after a round trip is byte-identical.
  std::vector<std::uint8_t> Snapshot() const;

  /// Restores a frame produced by Snapshot() into this market. The market
  /// must front the same configuration (config, fixed-price length) and
  /// the same resident agent population (names and strategies are
  /// CHECK-matched) as the snapshotted one; fleet and agent state are
  /// overwritten in place. Queued external bids are discarded — the
  /// snapshot predates them by construction.
  void Restore(const std::vector<std::uint8_t>& frame);

 private:
  /// Where a collected bid came from: a resident agent (index + position
  /// in its batch, for outcome fan-back) or an external submission
  /// (agent == kExternalOrigin). `team` is always the billing identity.
  struct BidOrigin {
    static constexpr std::size_t kExternalOrigin =
        static_cast<std::size_t>(-1);
    std::size_t agent = kExternalOrigin;
    std::size_t local = 0;
    std::string team;

    bool IsExternal() const { return agent == kExternalOrigin; }
  };

  struct CollectedBids {
    std::vector<bid::Bid> bids;
    /// For bid i: its origin (index-aligned with `bids`).
    std::vector<BidOrigin> origin;
    /// Per-agent count of bids (for outcome fan-back).
    std::vector<std::size_t> per_agent;
    /// External bids bounced at the gate, with the reason (reported).
    std::vector<ExternalRejection> external_rejections;
  };

  /// The §I quota bootstrap for one job, shared by construction (every
  /// fleet job), cluster adoption (add = true: Charge + Grant) and
  /// cluster extraction (add = false: Refund + Release).
  void ApplyJobQuota(const std::string& team, const std::string& cluster,
                     const cluster::TaskShape& demand, bool add);

  CollectedBids CollectBids(const std::vector<double>& reserve,
                            const std::vector<double>& utilization,
                            const std::vector<double>& free_supply);

  void RecordTrades(const CollectedBids& collected,
                    const auction::Settlement& settlement,
                    AuctionReport& report) const;

  /// Recomputes every agent's footprint from the fleet and re-homes teams
  /// whose center of mass moved.
  void RefreshTeamProfiles();

  cluster::Fleet* fleet_;
  std::vector<agents::TeamAgent>* agents_;
  std::vector<double> fixed_prices_;
  MarketConfig config_;
  reserve::ReservePricer pricer_;
  Ledger ledger_;
  MarketAccounts accounts_;
  cluster::QuotaTable quota_;
  RandomStream rng_;
  std::vector<ExternalBid> external_;  // Queued for the next auction.
  std::vector<AuctionReport> history_;
  bool endowed_ = false;
  cluster::JobId next_job_id_ = 1'000'000;  // Jobs created by the market.
};

}  // namespace pm::exchange
