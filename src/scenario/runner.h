// planetmarket: the scenario runner — deterministic trace-driven
// simulation of a federated market under scripted shocks.
//
// ScenarioRunner owns one FederatedExchange built from the spec's shard
// recipes and a sim::EventQueue in epoch time. Run() executes:
//
//   for each epoch e:
//     queue.RunUntil(e)      — due scenario events (and churn arrivals)
//                              mutate the exchange *before* the auctions;
//     cohort bids            — active flash-crowd / price-war cohorts
//                              submit their federated bids;
//     exchange.RunEpoch()    — every shard clears (concurrently when
//                              configured — bit-identical either way);
//     sample metrics         — one EpochSample per epoch.
//
// Determinism contract (the scenario extension of docs/federation.md):
// one root seed drives everything. The federation derives per-shard
// workload/market streams from it as before; scenario event i draws its
// private stream from EventSeed(root, i) — a SplitMix64 expansion salted
// so event streams never collide with shard streams. Events run on the
// main thread between epochs, so a scenario run is bit-identical across
// reruns AND across FederationConfig::num_threads settings; the metrics
// JSON of two same-seed runs is byte-equal (tests/scenario_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "exchange/churn.h"
#include "federation/federated_exchange.h"
#include "scenario/metrics.h"
#include "scenario/scenario.h"
#include "sim/event_queue.h"

namespace pm::scenario {

/// Runner knobs; everything else comes from the spec.
struct RunnerConfig {
  std::uint64_t seed = 20090425;  // Root seed (overrides the spec's).
  int epochs = 0;                 // 0: the spec's default_epochs.
  std::size_t num_threads = 0;    // Shard-auction concurrency.
};

/// Drives one scenario end to end.
class ScenarioRunner {
 public:
  ScenarioRunner(ScenarioSpec spec, RunnerConfig config);
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  /// Scenario event i's private seed: SplitMix64 expansion of the root,
  /// salted apart from FederatedExchange::Shard*Seed so event and shard
  /// streams can never collide.
  static std::uint64_t EventSeed(std::uint64_t root, std::size_t index);

  /// Executes every epoch and returns the run's metrics (also kept on
  /// the runner). Call once.
  ScenarioMetrics Run();

  const federation::FederatedExchange& exchange() const {
    return *exchange_;
  }
  int Epochs() const { return epochs_; }

 private:
  /// An injected federated-bidder cohort (flash crowd or price war),
  /// active from its event's epoch until epoch + duration.
  struct Cohort {
    std::size_t event_index = 0;
    EventKind kind = EventKind::kFlashCrowd;
    std::vector<std::string> teams;
    std::size_t shard = 0;      // Price war's target shard.
    double magnitude = 1.0;
    bool active = false;
    std::unique_ptr<RandomStream> rng;  // The event's private stream.
  };

  /// Clusters extracted by an in-flight outage, awaiting recovery.
  struct Outage {
    std::size_t shard = 0;
    std::vector<cluster::Cluster> clusters;
  };

  /// One team's demand-shock bookkeeping: the pre-shock growth rate and
  /// the product of the multipliers of every window currently covering
  /// it. Shocks compose multiplicatively while overlapped, and when the
  /// last window closes the rate snaps back to `base` exactly — two
  /// interleaved windows can never strand a stale multiplier.
  struct ShockState {
    double base = 0.0;
    double product = 1.0;
    int active = 0;
  };

  /// A churn wave's process (kept alive so departures keep draining
  /// after Stop()).
  struct ChurnWave {
    std::unique_ptr<exchange::ChurnProcess> process;
  };

  void ScheduleTimeline();
  void Fire(std::size_t event_index);

  // Per-kind handlers (Fire dispatches; end-effects self-schedule).
  void FireDemandShock(std::size_t event_index);
  void FireShardOutage(std::size_t event_index);
  void FireCapacityExpansion(std::size_t event_index);
  void FireChurnWave(std::size_t event_index);
  void FireShardCrash(std::size_t event_index);

  /// Shared flash-crowd / price-war lifecycle: endow `count` federated
  /// teams named "<prefix>-N", activate the cohort, and schedule its
  /// retirement (deactivate + RetireFederatedTeam each member) at the
  /// window end. The kinds differ only in how SubmitCohortBids sizes
  /// and routes their bids.
  void SpawnCohort(std::size_t event_index, const char* prefix);

  /// Active cohorts submit this epoch's federated bids (cohort creation
  /// order, then team order — deterministic).
  void SubmitCohortBids();

  /// The approximate fixed-price cost of a requirement (spec unit costs
  /// dotted with the shape) — cohort bid limits anchor on it.
  double FixedCostOf(const cluster::TaskShape& shape) const;

  double TreasuryResidual() const;
  std::size_t TotalPools() const;
  long long ChurnStarted() const;

  void EvaluateSlos(ScenarioMetrics& metrics) const;

  ScenarioSpec spec_;
  RunnerConfig config_;
  int epochs_ = 0;
  sim::EventQueue queue_;
  std::unique_ptr<federation::FederatedExchange> exchange_;
  std::vector<Cohort> cohorts_;
  std::vector<Outage> outages_;
  std::vector<ChurnWave> churn_;
  /// Active demand-shock state per (shard, agent index).
  std::map<std::pair<std::size_t, std::size_t>, ShockState> shocks_;
  std::size_t events_fired_ = 0;
  std::size_t next_cohort_team_ = 0;  // Unique-name counter for cohorts.
  bool ran_ = false;
};

}  // namespace pm::scenario
