#include "scenario/metrics.h"

#include <cmath>
#include <sstream>

#include "common/table.h"

namespace pm::scenario {
namespace {

/// Fixed-precision double rendering for the deterministic JSON contract.
/// FormatF never emits exponents or locale separators, and 6 decimals
/// comfortably out-resolves every metric we sample (dollars, units,
/// spreads) without printing noise digits.
std::string Num(double value) {
  // Avoid "-0.000000": it round-trips fine but breaks byte-equality
  // between mathematically equal runs.
  if (value == 0.0) return FormatF(0.0, 6);
  return FormatF(value, 6);
}

std::string Bool(bool value) { return value ? "true" : "false"; }

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

EpochSample SampleEpoch(const federation::FederationReport& report,
                        std::size_t events_fired, double treasury_residual,
                        std::size_t total_pools, long long churn_started) {
  EpochSample sample;
  sample.epoch = report.epoch;
  sample.events_fired = events_fired;
  sample.total_bids = report.total_bids;
  sample.total_winners = report.total_winners;
  sample.operator_revenue = report.operator_revenue;
  sample.clearing_spread = report.clearing_spread;
  sample.utilization_spread = report.utilization_spread;
  if (report.utilization_deciles.size() == 9) {
    sample.utilization_p10 = report.utilization_deciles[0];
    sample.utilization_p50 = report.utilization_deciles[4];
    sample.utilization_p90 = report.utilization_deciles[8];
  }
  sample.all_converged = report.all_converged;
  sample.placement_failures = report.placement_failures;
  sample.partial_placements = report.partial_placements;
  for (const federation::ShardEpochSummary& shard : report.shards) {
    for (const exchange::AwardRecord& award : shard.report.awards) {
      sample.awarded_units += award.outcome.awarded_units;
      sample.placed_units += award.outcome.placed_units;
      sample.refunded_units += award.outcome.refunded_units;
    }
  }
  sample.refund_total = report.refund_total;
  sample.move_billing_total = report.move_billing_total;
  sample.treasury_residual = treasury_residual;
  sample.migrations = report.migrations.size();
  sample.total_pools = total_pools;
  sample.churn_started = churn_started;
  sample.failed_shards = report.health.failed_shards;
  sample.quarantined_shards = report.health.quarantined_shards;
  sample.restored_checkpoints = report.health.restored_checkpoints;
  sample.rerouted_bids = report.health.rerouted_bids;
  sample.refunded_bids = report.health.refunded_bids;
  sample.refunded_allowance = report.health.refunded_allowance;
  return sample;
}

std::string ScenarioMetrics::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"scenario\": " << Quote(scenario) << ",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"epochs\": " << epochs << ",\n";
  os << "  \"num_shards\": " << num_shards << ",\n";
  os << "  \"series\": [\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const EpochSample& s = series[i];
    os << "    {\"epoch\": " << s.epoch
       << ", \"events_fired\": " << s.events_fired
       << ", \"bids\": " << s.total_bids
       << ", \"winners\": " << s.total_winners
       << ", \"revenue\": " << Num(s.operator_revenue)
       << ", \"clearing_spread\": " << Num(s.clearing_spread)
       << ", \"utilization_spread\": " << Num(s.utilization_spread)
       << ", \"utilization_p10\": " << Num(s.utilization_p10)
       << ", \"utilization_p50\": " << Num(s.utilization_p50)
       << ", \"utilization_p90\": " << Num(s.utilization_p90)
       << ", \"all_converged\": " << Bool(s.all_converged)
       << ", \"placement_failures\": " << s.placement_failures
       << ", \"partial_placements\": " << s.partial_placements
       << ", \"awarded_units\": " << Num(s.awarded_units)
       << ", \"placed_units\": " << Num(s.placed_units)
       << ", \"refunded_units\": " << Num(s.refunded_units)
       << ", \"refund_total\": " << Num(s.refund_total)
       << ", \"move_billing_total\": " << Num(s.move_billing_total)
       << ", \"treasury_residual\": " << Num(s.treasury_residual)
       << ", \"migrations\": " << s.migrations
       << ", \"total_pools\": " << s.total_pools
       << ", \"churn_started\": " << s.churn_started
       << ", \"failed_shards\": " << s.failed_shards
       << ", \"quarantined_shards\": " << s.quarantined_shards
       << ", \"restored_checkpoints\": " << s.restored_checkpoints
       << ", \"rerouted_bids\": " << s.rerouted_bids
       << ", \"refunded_bids\": " << s.refunded_bids
       << ", \"refunded_allowance\": " << Num(s.refunded_allowance) << "}"
       << (i + 1 < series.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"totals\": {\n";
  os << "    \"refund_total\": " << Num(refund_total) << ",\n";
  os << "    \"awarded_units\": " << Num(awarded_units) << ",\n";
  os << "    \"placed_units\": " << Num(placed_units) << ",\n";
  os << "    \"refunded_units\": " << Num(refunded_units) << ",\n";
  os << "    \"move_billing_total\": " << Num(move_billing_total) << ",\n";
  os << "    \"placement_failures\": " << placement_failures << ",\n";
  os << "    \"peak_clearing_spread\": " << Num(peak_clearing_spread)
     << ",\n";
  os << "    \"max_treasury_residual\": " << Num(max_treasury_residual)
     << ",\n";
  os << "    \"shard_failures\": " << shard_failures << ",\n";
  os << "    \"checkpoint_restores\": " << checkpoint_restores
     << "\n  },\n";
  os << "  \"slo\": {\n";
  os << "    \"evaluated\": " << Bool(slos_evaluated) << ",\n";
  os << "    \"pass\": " << Bool(slo_pass) << ",\n";
  os << "    \"checks\": [\n";
  for (std::size_t i = 0; i < slos.size(); ++i) {
    os << "      {\"name\": " << Quote(slos[i].name)
       << ", \"pass\": " << Bool(slos[i].pass)
       << ", \"detail\": " << Quote(slos[i].detail) << "}"
       << (i + 1 < slos.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }\n";
  os << "}\n";
  return os.str();
}

}  // namespace pm::scenario
