#include "scenario/scenario.h"

#include "common/check.h"

namespace pm::scenario {

std::vector<std::string> ScenarioNames() {
  std::vector<std::string> names;
  for (const ScenarioSpec& spec : ScenarioLibrary()) {
    names.push_back(spec.name);
  }
  return names;
}

const ScenarioSpec& FindScenario(const std::string& name) {
  for (const ScenarioSpec& spec : ScenarioLibrary()) {
    if (spec.name == name) return spec;
  }
  PM_CHECK_MSG(false, "unknown scenario '" << name
                                           << "' (see ScenarioNames())");
  // Unreachable; PM_CHECK_MSG aborts.
  static const ScenarioSpec empty;
  return empty;
}

}  // namespace pm::scenario
