#include "scenario/events.h"

#include <sstream>

namespace pm::scenario {

std::string_view ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kDemandShock:
      return "demand-shock";
    case EventKind::kFlashCrowd:
      return "flash-crowd";
    case EventKind::kShardOutage:
      return "shard-outage";
    case EventKind::kPriceWar:
      return "price-war";
    case EventKind::kCapacityExpansion:
      return "capacity-expansion";
    case EventKind::kChurnWave:
      return "churn-wave";
    case EventKind::kShardCrash:
      return "shard-crash";
  }
  return "unknown";
}

std::string ValidateEvent(const ScenarioEvent& event,
                          std::size_t num_shards) {
  std::ostringstream problem;
  if (event.epoch < 0) {
    problem << ToString(event.kind) << ": negative epoch " << event.epoch;
    return problem.str();
  }
  if (event.duration < 1) {
    problem << ToString(event.kind) << ": duration " << event.duration
            << " < 1";
    return problem.str();
  }
  if (event.shard >= num_shards) {
    problem << ToString(event.kind) << ": shard " << event.shard
            << " out of range (" << num_shards << " shards)";
    return problem.str();
  }
  switch (event.kind) {
    case EventKind::kDemandShock:
      if (event.magnitude <= 0.0) return "demand-shock: magnitude must be > 0";
      if (event.count < 0) return "demand-shock: negative team count";
      break;
    case EventKind::kFlashCrowd:
    case EventKind::kPriceWar:
      if (event.count < 1) {
        problem << ToString(event.kind) << ": cohort needs count >= 1";
        return problem.str();
      }
      if (event.magnitude <= 0.0) {
        problem << ToString(event.kind) << ": magnitude must be > 0";
        return problem.str();
      }
      if (!(Money() < event.budget)) {
        problem << ToString(event.kind) << ": cohort needs a budget";
        return problem.str();
      }
      break;
    case EventKind::kShardOutage:
      if (event.magnitude <= 0.0 || event.magnitude > 1.0) {
        return "shard-outage: magnitude (cluster fraction) must be in (0, 1]";
      }
      break;
    case EventKind::kCapacityExpansion:
      if (event.count < 1) return "capacity-expansion: needs count >= 1 machines";
      if (event.magnitude <= 0.0) {
        return "capacity-expansion: magnitude (machine-shape scale) must "
               "be > 0";
      }
      break;
    case EventKind::kChurnWave:
      if (event.magnitude <= 0.0) {
        return "churn-wave: magnitude (arrival rate) must be > 0";
      }
      break;
    case EventKind::kShardCrash:
      if (event.count < 0) {
        return "shard-crash: count (round budget; 0 = hard crash) must "
               "be >= 0";
      }
      break;
  }
  return "";
}

}  // namespace pm::scenario
