// planetmarket: scenario specs and the named-scenario registry.
//
// A ScenarioSpec is a complete, replayable experiment: the shard worlds,
// the federation/economy configuration, the event timeline, and the
// SLO-style assertions the run must satisfy. The registry
// (scenario/library.cpp) ships named scenarios covering the stress
// regimes a market allocator is judged on — demand shocks, flash crowds,
// shard outages with recovery, price wars, capacity expansion, churn
// waves — each deterministic from one root seed (see
// ScenarioRunner::EventSeed and docs/scenarios.md).
#pragma once

#include <string>
#include <vector>

#include "federation/federated_exchange.h"
#include "scenario/events.h"

namespace pm::scenario {

/// SLO-style assertions evaluated on a finished run's metrics. Checks
/// that are trivially off (zero thresholds, false flags) are skipped;
/// treasury conservation and the awarded == placed + refunded identity
/// are always checked when the corresponding feature is enabled. Runs
/// shorter than min_epochs (the 1-epoch CI smokes) skip evaluation
/// entirely — their timelines have not played out.
struct SloPolicy {
  int min_epochs = 4;

  /// Max tolerated |Σ accounts − (minted − burned)| on the planet
  /// ledger, dollars (always checked when the treasury is on).
  double conservation_tolerance = 1e-6;

  /// Max tolerated RELATIVE per-epoch unit gap
  /// |awarded − placed − refunded| / max(1, awarded) — normalized so the
  /// identity check means the same thing for 10-unit and 10k-unit
  /// epochs. Always checked when the shards refund unplaced awards.
  double refund_identity_tolerance = 1e-9;

  bool require_all_converged = false;
  bool expect_refunds = false;             // Total refunds must be > 0.
  bool expect_placement_failures = false;
  bool expect_pool_growth = false;         // Pool count must grow mid-run.
  bool expect_churn = false;               // Churn jobs must have started.
  bool expect_move_billing = false;        // Move charges must be > 0.

  /// Peak cross-shard clearing spread must reach this (price war).
  double min_peak_clearing_spread = 0.0;

  /// Peak epoch bid count must reach this multiple of epoch 0's count
  /// (flash crowds swell the auction).
  double min_peak_bids_ratio = 0.0;

  /// Peak epoch operator revenue must reach this multiple of epoch 0's
  /// (demand shocks swell what the market collects).
  double min_peak_revenue_ratio = 0.0;

  // ----------------------------------------------- failure domains --
  bool expect_shard_failures = false;      // Σ contained failures > 0.
  bool expect_checkpoint_restores = false; // Σ restores > 0.
  /// The final epoch must run with zero failed and zero quarantined
  /// shards — every contained failure drained its backoff and rejoined.
  bool require_full_recovery = false;

  // ------------------------------------------------------ watchdog --
  /// Alert names (telemetry/alerts.h rule names) that MUST have fired at
  /// least once during the run, and names that must NEVER have fired —
  /// the scenario fails on missing or on spurious alerts. Either list
  /// being non-empty requires the spec to arm the telemetry watchdog
  /// (federation.telemetry.enabled + watchdog.alerts); the runner fails
  /// the SLO loudly when the assertion has no engine to read.
  std::vector<std::string> expect_alerts;
  std::vector<std::string> forbid_alerts;
};

/// A complete named experiment.
struct ScenarioSpec {
  std::string name;
  std::string description;
  std::vector<federation::ShardSpec> shards;
  federation::FederationConfig federation;  // Seed is overridden by the
                                            // runner's root seed.
  std::vector<ScenarioEvent> events;
  int default_epochs = 8;
  SloPolicy slo;
};

/// Registered scenario names, in registry order.
std::vector<std::string> ScenarioNames();

/// Looks a scenario up by name; CHECK-fails on unknown names (callers
/// list ScenarioNames() to the operator first).
const ScenarioSpec& FindScenario(const std::string& name);

/// The full registry (scenario/library.cpp defines it).
const std::vector<ScenarioSpec>& ScenarioLibrary();

}  // namespace pm::scenario
