#include "scenario/runner.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cluster/job.h"
#include "common/check.h"
#include "common/table.h"

namespace pm::scenario {
namespace {

/// Salt decorrelating event streams from the federation's shard streams
/// (which expand `seed ^ golden·(k+1)` directly — see
/// FederatedExchange::ShardWorkloadSeed). Any event index therefore
/// draws from a different SplitMix64 orbit than any shard index.
constexpr std::uint64_t kEventSalt = 0x5cea4210e7e47a1dULL;

/// `count` distinct indices in [0, n), sampled by rejection from the
/// event's stream (deterministic; the index spaces here are small).
std::vector<std::size_t> SampleDistinct(RandomStream& rng,
                                        std::size_t count, std::size_t n) {
  std::vector<std::size_t> picked;
  std::vector<bool> taken(n, false);
  while (picked.size() < count) {
    const std::size_t i = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
    if (taken[i]) continue;
    taken[i] = true;
    picked.push_back(i);
  }
  return picked;
}

}  // namespace

std::uint64_t ScenarioRunner::EventSeed(std::uint64_t root,
                                        std::size_t index) {
  SplitMix64 mix(root ^ kEventSalt ^
                 (0x9e3779b97f4a7c15ULL *
                  (static_cast<std::uint64_t>(index) + 1)));
  return mix.Next();
}

ScenarioRunner::ScenarioRunner(ScenarioSpec spec, RunnerConfig config)
    : spec_(std::move(spec)), config_(config) {
  PM_CHECK_MSG(!spec_.shards.empty(),
               "scenario '" << spec_.name << "' has no shards");
  epochs_ = config_.epochs > 0 ? config_.epochs : spec_.default_epochs;
  PM_CHECK_MSG(epochs_ > 0, "scenario needs at least one epoch");
  for (const ScenarioEvent& event : spec_.events) {
    const std::string problem =
        ValidateEvent(event, spec_.shards.size());
    PM_CHECK_MSG(problem.empty(),
                 "scenario '" << spec_.name << "': " << problem);
  }
  // One root seed drives the whole run: the federation derives its shard
  // streams from it, the events their private streams (EventSeed).
  spec_.federation.seed = config_.seed;
  spec_.federation.num_threads = config_.num_threads;
  exchange_ = std::make_unique<federation::FederatedExchange>(
      spec_.shards, spec_.federation);
  ScheduleTimeline();
}

ScenarioRunner::~ScenarioRunner() = default;

void ScenarioRunner::ScheduleTimeline() {
  // Timeline order == event-list order for same-epoch events (the queue
  // is FIFO among equal timestamps).
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    queue_.ScheduleAtEpoch(spec_.events[i].epoch, [this, i] { Fire(i); });
  }
}

void ScenarioRunner::Fire(std::size_t event_index) {
  ++events_fired_;
  switch (spec_.events[event_index].kind) {
    case EventKind::kDemandShock:
      return FireDemandShock(event_index);
    case EventKind::kFlashCrowd:
      return SpawnCohort(event_index, "flash");
    case EventKind::kShardOutage:
      return FireShardOutage(event_index);
    case EventKind::kPriceWar:
      return SpawnCohort(event_index, "war");
    case EventKind::kCapacityExpansion:
      return FireCapacityExpansion(event_index);
    case EventKind::kChurnWave:
      return FireChurnWave(event_index);
    case EventKind::kShardCrash:
      return FireShardCrash(event_index);
  }
}

void ScenarioRunner::FireShardCrash(std::size_t event_index) {
  const ScenarioEvent& event = spec_.events[event_index];
  // Injections are one-shot (consumed by the epoch that runs them), so a
  // multi-epoch crash window re-injects before each covered epoch.
  const auto inject = [this, shard = event.shard, count = event.count] {
    if (count > 0) {
      exchange_->InjectEpochRoundBudget(shard, count);
    } else {
      exchange_->InjectShardFailure(shard);
    }
  };
  inject();
  for (int e = 1; e < event.duration; ++e) {
    queue_.ScheduleAtEpoch(event.epoch + e, inject);
  }
}

void ScenarioRunner::FireDemandShock(std::size_t event_index) {
  const ScenarioEvent& event = spec_.events[event_index];
  agents::World& world = exchange_->MutableShardWorld(event.shard);
  RandomStream rng(EventSeed(config_.seed, event_index));

  std::vector<std::size_t> picked;
  if (event.count == 0 ||
      static_cast<std::size_t>(event.count) >= world.agents.size()) {
    picked.resize(world.agents.size());
    for (std::size_t a = 0; a < picked.size(); ++a) picked[a] = a;
  } else {
    picked = SampleDistinct(rng, static_cast<std::size_t>(event.count),
                            world.agents.size());
  }

  // Shocks compose: each covered team's rate is base × Π(active
  // multipliers), with `base` captured when its first window opens.
  for (std::size_t a : picked) {
    ShockState& state = shocks_[{event.shard, a}];
    agents::TeamProfile& profile = world.agents[a].mutable_profile();
    if (state.active == 0) state.base = profile.growth_rate;
    ++state.active;
    state.product *= event.magnitude;
    profile.growth_rate = state.base * state.product;
  }

  // The window closes: divide this shock back out and recompute from
  // base — so overlapping windows on one team unwind cleanly in any
  // order, and the last one to close restores `base` EXACTLY (no
  // accumulated rounding).
  queue_.ScheduleAtEpoch(
      event.epoch + event.duration,
      [this, shard = event.shard, magnitude = event.magnitude,
       picked = std::move(picked)] {
        agents::World& w = exchange_->MutableShardWorld(shard);
        for (std::size_t a : picked) {
          const auto it = shocks_.find({shard, a});
          PM_CHECK(it != shocks_.end() && it->second.active > 0);
          ShockState& state = it->second;
          --state.active;
          state.product /= magnitude;
          if (state.active == 0) {
            w.agents[a].mutable_profile().growth_rate = state.base;
            shocks_.erase(it);
          } else {
            w.agents[a].mutable_profile().growth_rate =
                state.base * state.product;
          }
        }
      });
}

void ScenarioRunner::SpawnCohort(std::size_t event_index,
                                 const char* prefix) {
  const ScenarioEvent& event = spec_.events[event_index];
  Cohort cohort;
  cohort.event_index = event_index;
  cohort.kind = event.kind;
  cohort.shard = event.shard;
  cohort.magnitude = event.magnitude;
  cohort.rng =
      std::make_unique<RandomStream>(EventSeed(config_.seed, event_index));
  for (int t = 0; t < event.count; ++t) {
    std::string team =
        std::string(prefix) + "-" + std::to_string(next_cohort_team_++);
    exchange_->EndowFederatedTeam(team, event.budget);
    cohort.teams.push_back(std::move(team));
  }
  cohort.active = true;
  cohorts_.push_back(std::move(cohort));

  const std::size_t cohort_index = cohorts_.size() - 1;
  queue_.ScheduleAtEpoch(event.epoch + event.duration,
                         [this, cohort_index] {
                           Cohort& c = cohorts_[cohort_index];
                           c.active = false;
                           for (const std::string& team : c.teams) {
                             exchange_->RetireFederatedTeam(team);
                           }
                         });
}

void ScenarioRunner::FireShardOutage(std::size_t event_index) {
  const ScenarioEvent& event = spec_.events[event_index];
  exchange::Market& market = exchange_->ShardMarket(event.shard);
  const std::vector<std::string> names = market.fleet().ClusterNames();
  if (names.size() <= 1) return;  // A previous outage already drained it.
  RandomStream rng(EventSeed(config_.seed, event_index));

  const std::size_t max_down = names.size() - 1;  // Never the last one.
  const std::size_t down = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(event.magnitude * static_cast<double>(max_down))),
      1, max_down);
  Outage outage;
  outage.shard = event.shard;
  for (std::size_t c : SampleDistinct(rng, down, names.size())) {
    outage.clusters.push_back(market.ExtractCluster(names[c]));
  }
  outages_.push_back(std::move(outage));

  // Recovery: the stored clusters come back whole (same names — their
  // pools stayed interned at zero capacity, so no new pool space).
  const std::size_t outage_index = outages_.size() - 1;
  queue_.ScheduleAtEpoch(event.epoch + event.duration,
                         [this, outage_index] {
                           Outage& o = outages_[outage_index];
                           exchange::Market& m =
                               exchange_->ShardMarket(o.shard);
                           for (cluster::Cluster& cl : o.clusters) {
                             m.AdoptCluster(std::move(cl));
                           }
                           o.clusters.clear();
                         });
}

void ScenarioRunner::FireCapacityExpansion(std::size_t event_index) {
  const ScenarioEvent& event = spec_.events[event_index];
  const agents::WorkloadConfig& workload =
      spec_.shards[event.shard].workload;
  cluster::TaskShape machine = workload.machine_shape * event.magnitude;
  cluster::Cluster fresh = cluster::Cluster::Homogeneous(
      "exp" + std::to_string(event_index) + "@" +
          exchange_->ShardName(event.shard),
      event.count, machine);
  exchange_->ShardMarket(event.shard).AdoptCluster(std::move(fresh));
}

void ScenarioRunner::FireChurnWave(std::size_t event_index) {
  const ScenarioEvent& event = spec_.events[event_index];
  agents::World& world = exchange_->MutableShardWorld(event.shard);
  exchange::Market& market = exchange_->ShardMarket(event.shard);

  // Burst quota by operator fiat (the Grant source quota.h names):
  // resident entitlements sit at exactly what each team runs, so without
  // a grant the §I admission check would reject every wave arrival. The
  // headroom stays after the wave — churn-launched services are real
  // workloads, not loans.
  const cluster::TaskShape burst{160.0, 960.0, 24.0};
  cluster::QuotaTable& quota = market.mutable_quota();
  const PoolRegistry& registry = world.fleet.registry();
  for (const agents::TeamAgent& agent : world.agents) {
    const agents::TeamProfile& profile = agent.profile();
    for (ResourceKind kind : kAllResourceKinds) {
      const auto pool =
          registry.Find(PoolKey{profile.home_cluster, kind});
      if (pool.has_value()) {
        quota.Grant(profile.name, *pool, burst.Of(kind));
      }
    }
  }

  exchange::ChurnConfig churn;
  churn.arrival_rate = event.magnitude;  // Jobs per epoch of sim time.
  // Lifetimes short enough that departures land inside the window, so a
  // wave is genuine churn (arrivals AND departures), not a pure ramp.
  churn.mean_lifetime = std::max(0.5, 0.5 * event.duration);
  churn.seed = EventSeed(config_.seed, event_index);
  churn_.push_back(ChurnWave{std::make_unique<exchange::ChurnProcess>(
      queue_, &world.fleet, &world.agents, churn,
      &market.mutable_quota())});

  const std::size_t wave_index = churn_.size() - 1;
  queue_.ScheduleAtEpoch(
      event.epoch + event.duration,
      [this, wave_index] { churn_[wave_index].process->Stop(); });
}

double ScenarioRunner::FixedCostOf(const cluster::TaskShape& shape) const {
  return cluster::Dot(shape, spec_.shards[0].workload.unit_costs);
}

void ScenarioRunner::SubmitCohortBids() {
  for (Cohort& cohort : cohorts_) {
    if (!cohort.active) continue;
    for (const std::string& team : cohort.teams) {
      federation::FederatedBid bid;
      bid.team = team;
      cluster::TaskShape quantity;
      if (cohort.kind == EventKind::kFlashCrowd) {
        // A newcomer's deployment: ~magnitude CPUs with RAM/disk in
        // commodity proportion, jittered per team per epoch.
        bid.tag = "flash";
        quantity.cpu = cohort.magnitude * cohort.rng->Uniform(0.8, 1.2);
        quantity.ram_gb = 4.0 * quantity.cpu;
        quantity.disk_tb = 0.05 * quantity.cpu;
        bid.limit = FixedCostOf(quantity) * 2.5;
      } else {
        // An aggressor: moderate size, outsized limit, pinned to the
        // contested shard (home-affinity routing keeps it there until
        // the shard runs extremely hot).
        bid.tag = "war";
        quantity.cpu = 16.0 * cohort.rng->Uniform(0.8, 1.2);
        quantity.ram_gb = 4.0 * quantity.cpu;
        quantity.disk_tb = 0.05 * quantity.cpu;
        bid.limit = FixedCostOf(quantity) * cohort.magnitude;
        bid.home_shard = exchange_->ShardName(cohort.shard);
      }
      exchange_->SubmitFederatedBid(std::move(bid));
    }
  }
}

double ScenarioRunner::TreasuryResidual() const {
  const federation::FederationTreasury* treasury = exchange_->treasury();
  if (treasury == nullptr) return 0.0;
  const Money residual = treasury->CirculatingSupply() -
                         (treasury->TotalMinted() - treasury->TotalBurned());
  return std::abs(residual.ToDouble());
}

std::size_t ScenarioRunner::TotalPools() const {
  std::size_t pools = 0;
  for (std::size_t k = 0; k < exchange_->NumShards(); ++k) {
    pools += exchange_->ShardMarket(k).fleet().NumPools();
  }
  return pools;
}

long long ScenarioRunner::ChurnStarted() const {
  long long started = 0;
  for (const ChurnWave& wave : churn_) {
    started += wave.process->stats().jobs_started;
  }
  return started;
}

ScenarioMetrics ScenarioRunner::Run() {
  PM_CHECK_MSG(!ran_, "ScenarioRunner::Run is one-shot");
  ran_ = true;

  ScenarioMetrics metrics;
  metrics.scenario = spec_.name;
  metrics.seed = config_.seed;
  metrics.epochs = epochs_;
  metrics.num_shards = spec_.shards.size();

  for (int e = 0; e < epochs_; ++e) {
    // Due events first: epoch e's shocks land before epoch e's auctions.
    queue_.RunUntil(static_cast<sim::SimTime>(e));
    SubmitCohortBids();
    const federation::FederationReport& report = exchange_->RunEpoch();
    metrics.series.push_back(SampleEpoch(report, events_fired_,
                                         TreasuryResidual(), TotalPools(),
                                         ChurnStarted()));
  }

  for (const EpochSample& sample : metrics.series) {
    metrics.refund_total += sample.refund_total;
    metrics.awarded_units += sample.awarded_units;
    metrics.placed_units += sample.placed_units;
    metrics.refunded_units += sample.refunded_units;
    metrics.move_billing_total += sample.move_billing_total;
    metrics.placement_failures += sample.placement_failures;
    metrics.peak_clearing_spread =
        std::max(metrics.peak_clearing_spread, sample.clearing_spread);
    metrics.max_treasury_residual =
        std::max(metrics.max_treasury_residual, sample.treasury_residual);
    metrics.shard_failures += sample.failed_shards;
    metrics.checkpoint_restores += sample.restored_checkpoints;
  }

  EvaluateSlos(metrics);
  return metrics;
}

void ScenarioRunner::EvaluateSlos(ScenarioMetrics& metrics) const {
  const SloPolicy& slo = spec_.slo;
  if (epochs_ < slo.min_epochs) {
    // A truncated run (the 1-epoch CI smokes) has not played the
    // timeline out; its assertions would be vacuous or wrong.
    metrics.slos_evaluated = false;
    metrics.slo_pass = true;
    return;
  }
  metrics.slos_evaluated = true;

  const auto check = [&metrics](const std::string& name, bool pass,
                                std::string detail) {
    metrics.slos.push_back(SloResult{name, pass, std::move(detail)});
    metrics.slo_pass = metrics.slo_pass && pass;
  };

  if (exchange_->treasury() != nullptr) {
    check("treasury-conservation",
          metrics.max_treasury_residual <= slo.conservation_tolerance,
          "max residual $" + FormatF(metrics.max_treasury_residual, 6) +
              " <= $" + FormatF(slo.conservation_tolerance, 6));
  }

  bool refunds_on = false;
  for (const federation::ShardSpec& shard : spec_.shards) {
    refunds_on = refunds_on || shard.market.settlement.refund_unplaced;
  }
  if (refunds_on) {
    double worst = 0.0;
    for (const EpochSample& sample : metrics.series) {
      const double gap = std::abs(sample.awarded_units -
                                  sample.placed_units -
                                  sample.refunded_units);
      worst = std::max(
          worst, gap / std::max(1.0, sample.awarded_units));
    }
    check("awarded-equals-placed-plus-refunded",
          worst <= slo.refund_identity_tolerance,
          "worst relative gap " + FormatF(worst, 9) + " <= " +
              FormatF(slo.refund_identity_tolerance, 9));
  }

  if (slo.require_all_converged) {
    bool all = true;
    for (const EpochSample& sample : metrics.series) {
      all = all && sample.all_converged;
    }
    check("all-epochs-converged", all,
          all ? "every epoch converged" : "an epoch failed to converge");
  }
  if (slo.expect_refunds) {
    check("refunds-nonzero", metrics.refund_total > 0.0,
          "refund total $" + FormatF(metrics.refund_total, 2) + " > 0");
  }
  if (slo.expect_placement_failures) {
    check("placement-failures-nonzero", metrics.placement_failures > 0,
          std::to_string(metrics.placement_failures) + " failures > 0");
  }
  if (slo.expect_pool_growth) {
    const std::size_t first = metrics.series.front().total_pools;
    const std::size_t last = metrics.series.back().total_pools;
    check("pool-space-grew", last > first,
          std::to_string(first) + " -> " + std::to_string(last) +
              " pools");
  }
  if (slo.expect_churn) {
    const long long started = metrics.series.back().churn_started;
    check("churn-started", started > 0,
          std::to_string(started) + " churn jobs > 0");
  }
  if (slo.expect_move_billing) {
    check("move-billing-nonzero", metrics.move_billing_total > 0.0,
          "move bills $" + FormatF(metrics.move_billing_total, 2) +
              " > 0");
  }
  if (slo.expect_shard_failures) {
    check("shard-failures-contained", metrics.shard_failures > 0,
          std::to_string(metrics.shard_failures) +
              " contained failures > 0");
  }
  if (slo.expect_checkpoint_restores) {
    check("checkpoint-restores-nonzero",
          metrics.checkpoint_restores > 0,
          std::to_string(metrics.checkpoint_restores) + " restores > 0");
  }
  if (slo.require_full_recovery) {
    const EpochSample& last = metrics.series.back();
    const bool recovered =
        last.failed_shards == 0 && last.quarantined_shards == 0;
    check("full-recovery", recovered,
          recovered ? "final epoch ran with every shard participating"
                    : "final epoch still had failed/quarantined shards");
  }
  if (slo.min_peak_clearing_spread > 0.0) {
    check("peak-clearing-spread",
          metrics.peak_clearing_spread >= slo.min_peak_clearing_spread,
          "peak " + FormatF(metrics.peak_clearing_spread, 4) + " >= " +
              FormatF(slo.min_peak_clearing_spread, 4));
  }
  if (slo.min_peak_bids_ratio > 0.0) {
    const double base =
        std::max<double>(1.0, metrics.series.front().total_bids);
    double peak = 0.0;
    for (const EpochSample& sample : metrics.series) {
      peak = std::max(peak, static_cast<double>(sample.total_bids));
    }
    check("peak-bids-ratio", peak / base >= slo.min_peak_bids_ratio,
          "peak/base " + FormatF(peak / base, 3) + " >= " +
              FormatF(slo.min_peak_bids_ratio, 3));
  }
  if (slo.min_peak_revenue_ratio > 0.0) {
    const double base =
        std::max(1.0, metrics.series.front().operator_revenue);
    double peak = 0.0;
    for (const EpochSample& sample : metrics.series) {
      peak = std::max(peak, sample.operator_revenue);
    }
    check("peak-revenue-ratio", peak / base >= slo.min_peak_revenue_ratio,
          "peak/base " + FormatF(peak / base, 3) + " >= " +
              FormatF(slo.min_peak_revenue_ratio, 3));
  }

  // Watchdog assertions: a scenario fails on a MISSING expected alert
  // and on a SPURIOUS forbidden one. Asserting without an armed alert
  // engine is a spec bug — fail loudly rather than skipping silently.
  if (!slo.expect_alerts.empty() || !slo.forbid_alerts.empty()) {
    const telemetry::Telemetry* tel = exchange_->telemetry();
    const telemetry::AlertEngine* alerts =
        tel == nullptr ? nullptr : tel->alerts();
    if (alerts == nullptr) {
      check("alert-engine-armed", false,
            "spec asserts alerts but telemetry.watchdog.alerts is off");
    } else {
      for (const std::string& name : slo.expect_alerts) {
        check("alert-fired:" + name, alerts->EverFired(name),
              "alert '" + name + "' must fire during the run");
      }
      for (const std::string& name : slo.forbid_alerts) {
        check("alert-silent:" + name, !alerts->EverFired(name),
              "alert '" + name + "' must never fire");
      }
    }
  }
}

}  // namespace pm::scenario
