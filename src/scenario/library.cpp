// planetmarket: the named-scenario library.
//
// Each scenario is a small, fast federation (a few shards, a few dozen
// teams each) plus a scripted timeline and the SLOs that make its
// verdict checkable. Worlds are deliberately compact so the whole
// registry sweeps in seconds (bench/scenario_suite.cpp) and 1-epoch
// smokes run in CI; the shocks are sized to move the market hard at
// that scale. Thresholds are calibrated against the default seed — the
// runs are deterministic, so a passing SLO stays passing until the
// mechanism itself changes.
#include "scenario/scenario.h"

namespace pm::scenario {
namespace {

/// A compact shard: `teams` bidders over 5 clusters, utilization spread
/// across [lo, hi] so congestion-weighted reserves have something to
/// price.
federation::ShardSpec CompactShard(std::string name, int teams, double lo,
                                   double hi) {
  federation::ShardSpec spec;
  spec.name = std::move(name);
  spec.workload.num_teams = teams;
  spec.workload.num_clusters = 5;
  spec.workload.min_machines_per_cluster = 14;
  spec.workload.max_machines_per_cluster = 26;
  spec.workload.min_target_utilization = lo;
  spec.workload.max_target_utilization = hi;
  spec.market.auction.max_rounds = 30000;
  return spec;
}

ScenarioSpec DemandShock() {
  ScenarioSpec spec;
  spec.name = "demand-shock";
  spec.description =
      "Every team in shard 0 wants 4x its usual growth for three epochs; "
      "prices and operator revenue must spike, money must stay conserved.";
  spec.shards.push_back(CompactShard("steady-a", 32, 0.30, 0.70));
  spec.shards.push_back(CompactShard("steady-b", 32, 0.30, 0.70));
  spec.federation.economy.treasury = true;
  spec.events.push_back(ScenarioEvent{EventKind::kDemandShock,
                                      /*epoch=*/2, /*duration=*/3,
                                      /*shard=*/0, /*magnitude=*/4.0,
                                      /*count=*/0, Money()});
  spec.slo.min_peak_revenue_ratio = 1.15;
  spec.slo.require_all_converged = true;
  return spec;
}

ScenarioSpec FlashCrowd() {
  ScenarioSpec spec;
  spec.name = "flash-crowd";
  spec.description =
      "Ten federated newcomers storm the planet for three epochs, buy "
      "wherever is cheapest, then leave; their money burns on exit.";
  spec.shards.push_back(CompactShard("west", 28, 0.25, 0.60));
  spec.shards.push_back(CompactShard("east", 28, 0.35, 0.75));
  spec.shards.push_back(CompactShard("south", 28, 0.20, 0.55));
  spec.federation.economy.treasury = true;
  spec.events.push_back(ScenarioEvent{EventKind::kFlashCrowd,
                                      /*epoch=*/2, /*duration=*/3,
                                      /*shard=*/0, /*magnitude=*/40.0,
                                      /*count=*/10,
                                      Money::FromDollars(60000)});
  spec.slo.min_peak_bids_ratio = 1.05;
  return spec;
}

ScenarioSpec ShardOutage() {
  ScenarioSpec spec;
  spec.name = "shard-outage";
  spec.description =
      "Half of shard 0's clusters fail for two epochs while displaced "
      "demand re-deploys as rigid monoliths; awards that cannot "
      "bin-pack must be refunded (awarded == placed + refunded), and "
      "outcome-aware residents learn to avoid the broken capacity.";
  spec.shards.push_back(CompactShard("fragile", 30, 0.45, 0.85));
  spec.shards.push_back(CompactShard("backup", 30, 0.20, 0.50));
  for (federation::ShardSpec& shard : spec.shards) {
    // Monolithic deployments: buys materialize as one task (the §V.B
    // experiments' rigid services), so a won award larger than any
    // machine's headroom fails placement and exercises the refund path.
    shard.market.max_task_shape =
        cluster::TaskShape{1e9, 1e9, 1e9};
    shard.market.settlement.refund_unplaced = true;
    shard.market.outcome_feedback = true;
  }
  spec.federation.economy.treasury = true;
  spec.events.push_back(ScenarioEvent{EventKind::kShardOutage,
                                      /*epoch=*/2, /*duration=*/2,
                                      /*shard=*/0, /*magnitude=*/0.5,
                                      /*count=*/0, Money()});
  // The displaced services: rigid 150-CPU failover deployments hunting
  // for new capacity during the outage window.
  spec.events.push_back(ScenarioEvent{EventKind::kFlashCrowd,
                                      /*epoch=*/2, /*duration=*/2,
                                      /*shard=*/1, /*magnitude=*/150.0,
                                      /*count=*/4,
                                      Money::FromDollars(120000)});
  spec.slo.expect_refunds = true;
  spec.slo.expect_placement_failures = true;
  spec.slo.min_epochs = 5;
  return spec;
}

ScenarioSpec PriceWar() {
  ScenarioSpec spec;
  spec.name = "price-war";
  spec.description =
      "Four deep-pocketed aggressors pin themselves to the contested "
      "shard and bid 8x fixed cost for three epochs; the cross-shard "
      "clearing spread must blow out while the ledger stays balanced.";
  spec.shards.push_back(CompactShard("contested", 30, 0.50, 0.85));
  spec.shards.push_back(CompactShard("quiet", 30, 0.20, 0.50));
  spec.federation.router.policy = federation::RoutingPolicy::kHomeAffinity;
  spec.federation.router.spill_threshold = 50.0;  // Stand and fight.
  spec.federation.economy.treasury = true;
  spec.events.push_back(ScenarioEvent{EventKind::kPriceWar,
                                      /*epoch=*/2, /*duration=*/3,
                                      /*shard=*/0, /*magnitude=*/8.0,
                                      /*count=*/4,
                                      Money::FromDollars(150000)});
  spec.slo.min_peak_clearing_spread = 0.25;
  return spec;
}

ScenarioSpec OutageDuringPriceWar() {
  ScenarioSpec spec;
  spec.name = "outage-during-price-war";
  spec.description =
      "The contested shard crashes hard in the middle of a price war — "
      "twice. The epoch supervisor must contain both failures, restore "
      "the shard from its checkpoint, refund its treasury float, "
      "quarantine it after the streak, and re-admit it after backoff; "
      "the planet finishes the run fully recovered with the ledger "
      "conserved throughout.";
  spec.shards.push_back(CompactShard("contested", 30, 0.50, 0.85));
  spec.shards.push_back(CompactShard("quiet", 30, 0.20, 0.50));
  for (federation::ShardSpec& shard : spec.shards) {
    // Refund-gated settlement keeps the awarded == placed + refunded
    // identity live through the crashes (the always-on SLO check).
    shard.market.settlement.refund_unplaced = true;
  }
  spec.federation.router.policy = federation::RoutingPolicy::kHomeAffinity;
  spec.federation.router.spill_threshold = 50.0;
  // Degraded shards look 50% hotter to the router, so the recovering
  // contested shard sheds load until it clears a probation epoch.
  spec.federation.router.degraded_heat_penalty = 0.5;
  spec.federation.economy.treasury = true;
  spec.federation.supervisor.enabled = true;
  spec.federation.supervisor.quarantine_streak = 2;
  spec.federation.supervisor.backoff_base = 1;
  // The war: four aggressors pin the contested shard at 8x fixed cost.
  spec.events.push_back(ScenarioEvent{EventKind::kPriceWar,
                                      /*epoch=*/1, /*duration=*/3,
                                      /*shard=*/0, /*magnitude=*/8.0,
                                      /*count=*/4,
                                      Money::FromDollars(150000)});
  // The outage: shard 0 crashes after its auction in epochs 2 and 3
  // (streak 2 -> quarantined with backoff 1), sits out epoch 4, runs
  // probation in epoch 5, and is healthy again for 6-7.
  spec.events.push_back(ScenarioEvent{EventKind::kShardCrash,
                                      /*epoch=*/2, /*duration=*/2,
                                      /*shard=*/0, /*magnitude=*/0.0,
                                      /*count=*/0, Money()});
  spec.slo.expect_shard_failures = true;
  spec.slo.expect_checkpoint_restores = true;
  spec.slo.require_full_recovery = true;
  spec.slo.min_epochs = 7;
  // Watchdog coverage: this scenario always runs with the full watchdog
  // armed — the containment alert must fire at the crash epochs and the
  // quarantine alert when the shard sits out; the treasury drift alert
  // must stay silent throughout (the conservation contract under fire).
  spec.federation.telemetry.enabled = true;
  spec.federation.telemetry.watchdog.recording_rules = true;
  spec.federation.telemetry.watchdog.alerts = true;
  spec.slo.expect_alerts = {"containment", "quarantine"};
  spec.slo.forbid_alerts = {"treasury-conservation-drift"};
  return spec;
}

ScenarioSpec CapacityExpansion() {
  ScenarioSpec spec;
  spec.name = "capacity-expansion";
  spec.description =
      "The operator lands two new clusters in the hot shard mid-run "
      "(append-only pool growth); priced+billed reconfiguration moves "
      "follow the new capacity and the planet ledger absorbs the bills.";
  spec.shards.push_back(CompactShard("cramped", 32, 0.55, 0.90));
  spec.shards.push_back(CompactShard("spare", 32, 0.25, 0.55));
  for (federation::ShardSpec& shard : spec.shards) {
    // Satellite coverage: §V.B move pricing with billing on — every
    // relocation into the new capacity is charged to the mover.
    shard.market.settlement.move_cost_weights =
        cluster::TaskShape{0.5, 0.02, 0.1};
    shard.market.settlement.bill_moves = true;
  }
  spec.federation.economy.treasury = true;
  spec.events.push_back(ScenarioEvent{EventKind::kCapacityExpansion,
                                      /*epoch=*/2, /*duration=*/1,
                                      /*shard=*/0, /*magnitude=*/1.0,
                                      /*count=*/20, Money()});
  spec.events.push_back(ScenarioEvent{EventKind::kCapacityExpansion,
                                      /*epoch=*/4, /*duration=*/1,
                                      /*shard=*/0, /*magnitude=*/1.0,
                                      /*count=*/20, Money()});
  spec.slo.expect_pool_growth = true;
  spec.slo.expect_move_billing = true;
  return spec;
}

ScenarioSpec ChurnWave() {
  ScenarioSpec spec;
  spec.name = "churn-wave";
  spec.description =
      "Background job churn surges through both shards in overlapping "
      "waves (quota-admitted arrivals, exponential lifetimes); the "
      "market keeps re-pricing a fleet that never sits still.";
  spec.shards.push_back(CompactShard("churny-a", 30, 0.30, 0.70));
  spec.shards.push_back(CompactShard("churny-b", 30, 0.30, 0.70));
  spec.federation.economy.treasury = true;
  spec.events.push_back(ScenarioEvent{EventKind::kChurnWave,
                                      /*epoch=*/1, /*duration=*/3,
                                      /*shard=*/0, /*magnitude=*/10.0,
                                      /*count=*/0, Money()});
  spec.events.push_back(ScenarioEvent{EventKind::kChurnWave,
                                      /*epoch=*/3, /*duration=*/3,
                                      /*shard=*/1, /*magnitude=*/10.0,
                                      /*count=*/0, Money()});
  spec.slo.expect_churn = true;
  return spec;
}

}  // namespace

const std::vector<ScenarioSpec>& ScenarioLibrary() {
  static const std::vector<ScenarioSpec> library = [] {
    std::vector<ScenarioSpec> specs;
    specs.push_back(DemandShock());
    specs.push_back(FlashCrowd());
    specs.push_back(ShardOutage());
    specs.push_back(PriceWar());
    specs.push_back(OutageDuringPriceWar());
    specs.push_back(CapacityExpansion());
    specs.push_back(ChurnWave());
    return specs;
  }();
  return library;
}

}  // namespace pm::scenario
