// planetmarket: scenario events — the scripted shocks of a run.
//
// A scenario drives a FederatedExchange through a timeline of events
// scheduled on the sim::EventQueue in epoch time: event `epoch` e fires
// before epoch e's auctions (the runner advances the calendar with
// RunUntil(e) at the top of each epoch), and windowed kinds schedule
// their own end-effect at epoch + duration. Every event draws whatever
// randomness it needs from its own SplitMix-derived stream
// (ScenarioRunner::EventSeed), so a scenario is bit-for-bit reproducible
// from one root seed regardless of which events a variant adds or drops.
//
// One struct covers every kind; the per-kind meaning of the generic
// knobs (shard / magnitude / count / budget / duration) is documented on
// the enumerators below and enforced by ValidateEvent.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "common/money.h"

namespace pm::scenario {

/// What kind of shock an event injects.
enum class EventKind {
  /// Demand shock: scale the growth_rate of `count` resident teams
  /// (0 = every team) in `shard` by `magnitude` for `duration` epochs,
  /// then restore the saved rates. Teams are sampled from the event
  /// stream. (The paper's bidders are the workload generator: growth
  /// rate IS the demand each team asks the market for.)
  kDemandShock,

  /// Flash crowd: inject `count` federated teams, each endowed `budget`
  /// per shard, that submit a routed buy of roughly `magnitude` CPU
  /// units (with RAM/disk in fixed proportion, jittered from the event
  /// stream) every epoch of the window; at epoch + duration the cohort
  /// retires and its remaining money is burned/withdrawn.
  kFlashCrowd,

  /// Shard outage: extract ceil(magnitude × (clusters − 1)) clusters
  /// (at least 1, never the last) from `shard`, chosen from the event
  /// stream — capacity loss through Market::ExtractCluster, so quota is
  /// refunded and the pools stay interned at zero capacity. At
  /// epoch + duration the stored clusters are re-adopted (recovery).
  kShardOutage,

  /// Price war: inject `count` aggressive federated bidders, endowed
  /// `budget` per shard, that bid `magnitude`× the fixed-price cost of
  /// their requirement on `shard` (home-affinity routed) every epoch of
  /// the window, then retire.
  kPriceWar,

  /// Capacity expansion: adopt a fresh, empty homogeneous cluster of
  /// `count` machines into `shard`, each machine `magnitude`× the
  /// shard's configured machine shape — the append-only pool-space
  /// growth path (the registry gains pools; fixed prices, learner
  /// beliefs and arbitrage holdings all extend). Instantaneous;
  /// duration is unused.
  kCapacityExpansion,

  /// Churn wave: attach an exchange::ChurnProcess to `shard` with
  /// arrival rate `magnitude` jobs per epoch (seeded from the event
  /// stream) for `duration` epochs, then stop arrivals (in-flight
  /// departures keep draining).
  kChurnWave,

  /// Shard crash: inject a one-shot epoch failure into `shard` for each
  /// of `duration` consecutive epochs. count == 0 injects a hard crash
  /// (the shard's auction completes, mutates state, then throws — see
  /// FederatedExchange::InjectShardFailure); count > 0 injects a
  /// virtual-time epoch budget of `count` clock rounds instead (the
  /// shard fails when its auction runs longer). With the federation's
  /// supervisor on, each failure is contained: checkpoint restore,
  /// float refund, bid re-route, health-machine advance. With it off
  /// the crash propagates out of Run — the containment-failure path.
  /// magnitude and budget are unused.
  kShardCrash,
};

std::string_view ToString(EventKind kind);

/// One scripted shock on the scenario timeline.
struct ScenarioEvent {
  EventKind kind = EventKind::kDemandShock;
  int epoch = 0;         // Fires before this epoch's auctions.
  int duration = 1;      // Epochs a windowed effect stays active.
  std::size_t shard = 0; // Target shard (kinds that have one).
  double magnitude = 1.0;
  int count = 0;
  Money budget;          // Per-shard funding for injected cohorts.
};

/// Returns "" when the event is well-formed against a federation of
/// `num_shards` shards, else a human-readable problem (the runner CHECKs
/// this at construction so a bad timeline fails before any epoch runs).
std::string ValidateEvent(const ScenarioEvent& event,
                          std::size_t num_shards);

}  // namespace pm::scenario
