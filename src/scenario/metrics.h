// planetmarket: scenario metrics — the structured time series a run emits.
//
// Every epoch of a scenario run is folded into one EpochSample (market
// aggregates, placement outcomes, the planet ledger's conservation
// residual, fired events), and the whole run into a ScenarioMetrics with
// totals and the verdicts of the scenario's SLO-style assertions.
// ToJson() renders everything with fixed-precision formatting and no
// environment-dependent content (no timestamps, no host data), so two
// runs of the same scenario from the same seed produce byte-identical
// JSON — the determinism contract tests/scenario_test.cpp asserts and
// the bench suite records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "federation/report.h"

namespace pm::scenario {

/// One epoch's slice of the run.
struct EpochSample {
  int epoch = 0;
  std::size_t events_fired = 0;  // Scenario events dispatched before it.

  // Market aggregates (from the FederationReport).
  std::size_t total_bids = 0;
  std::size_t total_winners = 0;
  double operator_revenue = 0.0;
  double clearing_spread = 0.0;   // Cross-shard relative price spread.
  double utilization_spread = 0.0;
  double utilization_p10 = 0.0;
  double utilization_p50 = 0.0;
  double utilization_p90 = 0.0;
  bool all_converged = true;

  // Placement outcomes (the PR 4 pipeline, summed across shard awards).
  std::size_t placement_failures = 0;
  std::size_t partial_placements = 0;
  double awarded_units = 0.0;
  double placed_units = 0.0;
  double refunded_units = 0.0;
  double refund_total = 0.0;       // Dollars.
  double move_billing_total = 0.0; // Dollars (bill_moves shards only).

  // Economy layer.
  double treasury_residual = 0.0;  // |Σ accounts − (minted − burned)|.
  std::size_t migrations = 0;

  // World shape.
  std::size_t total_pools = 0;     // Σ shard registry sizes.
  long long churn_started = 0;     // Cumulative churn jobs started.

  // Failure domains (all zero without an epoch supervisor).
  std::size_t failed_shards = 0;        // Contained failures this epoch.
  std::size_t quarantined_shards = 0;   // Shards sitting the epoch out.
  std::size_t restored_checkpoints = 0; // Checkpoint restores performed.
  std::size_t rerouted_bids = 0;        // Failed shards' bids re-queued.
  std::size_t refunded_bids = 0;        // Failed shards' parts refunded.
  double refunded_allowance = 0.0;      // Treasury floats returned ($).
};

/// The verdict of one SLO-style assertion.
struct SloResult {
  std::string name;
  bool pass = false;
  std::string detail;  // Human-readable observed-vs-required line.
};

/// Everything a scenario run emits.
struct ScenarioMetrics {
  std::string scenario;
  std::uint64_t seed = 0;
  int epochs = 0;
  std::size_t num_shards = 0;

  std::vector<EpochSample> series;

  // Run totals (sums / peaks over the series).
  double refund_total = 0.0;
  double awarded_units = 0.0;
  double placed_units = 0.0;
  double refunded_units = 0.0;
  double move_billing_total = 0.0;
  std::size_t placement_failures = 0;
  double peak_clearing_spread = 0.0;
  double max_treasury_residual = 0.0;
  std::size_t shard_failures = 0;       // Σ contained failures.
  std::size_t checkpoint_restores = 0;  // Σ restores across the run.

  /// SLO verdicts; empty when the run was too short to evaluate them
  /// (epochs < SloPolicy::min_epochs — the 1-epoch CI smokes).
  std::vector<SloResult> slos;
  bool slos_evaluated = false;
  bool slo_pass = true;  // True when every evaluated SLO passed (or none).

  /// Deterministic JSON rendering (fixed precision, no host/time data).
  std::string ToJson() const;
};

/// Folds one federated epoch report into a sample. `treasury_residual`,
/// `total_pools` and `churn_started` are runner-supplied (they read
/// state the report does not carry).
EpochSample SampleEpoch(const federation::FederationReport& report,
                        std::size_t events_fired, double treasury_residual,
                        std::size_t total_pools, long long churn_started);

}  // namespace pm::scenario
