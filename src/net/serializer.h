// planetmarket: binary wire serialization.
//
// Fixed-layout little-endian encoding with an FNV-1a checksum trailer.
// Every message that crosses a channel in the distributed auction is
// encoded through this layer, so the loop genuinely exercises
// marshalling — decode failures surface as protocol errors rather than
// silent corruption.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pm::net {

/// Append-only byte-buffer writer.
class Serializer {
 public:
  void WriteU8(std::uint8_t v);
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI32(std::int32_t v);
  void WriteI64(std::int64_t v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteDoubleVector(const std::vector<double>& v);
  void WriteBytes(const std::vector<std::uint8_t>& v);

  /// Appends the FNV-1a checksum of everything written so far and
  /// returns the finished frame.
  std::vector<std::uint8_t> FinishWithChecksum() &&;

  const std::vector<std::uint8_t>& bytes() const { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked reader over a frame produced by Serializer. All Read*
/// methods return nullopt on truncation; VerifyChecksum() must be called
/// first and strips the trailer.
class Deserializer {
 public:
  explicit Deserializer(std::vector<std::uint8_t> frame);

  /// Validates and removes the checksum trailer. Returns false on
  /// mismatch or truncation; the reader is then unusable.
  bool VerifyChecksum();

  std::optional<std::uint8_t> ReadU8();
  std::optional<std::uint32_t> ReadU32();
  std::optional<std::uint64_t> ReadU64();
  std::optional<std::int32_t> ReadI32();
  std::optional<std::int64_t> ReadI64();
  std::optional<double> ReadDouble();
  std::optional<std::string> ReadString();
  std::optional<std::vector<double>> ReadDoubleVector();
  std::optional<std::vector<std::uint8_t>> ReadBytes();

  /// True when every payload byte has been consumed.
  bool Exhausted() const { return pos_ == payload_size_; }

 private:
  bool Need(std::size_t n) const { return pos_ + n <= payload_size_; }

  std::vector<std::uint8_t> frame_;
  std::size_t payload_size_ = 0;
  std::size_t pos_ = 0;
  bool checksum_ok_ = false;
};

/// FNV-1a 64-bit hash of a byte range (exposed for tests).
std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t size);

}  // namespace pm::net
