// planetmarket: typed blocking channels.
//
// The distributed clock auction (Figure 1) runs the auctioneer and bidder
// proxies as separate threads exchanging serialized messages over these
// channels — an in-process stand-in for the RPC fabric the production
// system would use, with the same FIFO-per-sender semantics.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace pm::net {

/// An unbounded MPMC blocking queue. Close() wakes all waiters; Pop on a
/// closed, drained channel returns nullopt.
template <typename T>
class Channel {
 public:
  Channel() = default;

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a message. Returns false if the channel is closed.
  bool Push(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until a message arrives or the channel closes empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Closes the channel; pending messages remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool Closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace pm::net
