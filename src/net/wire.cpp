#include "net/wire.h"

namespace pm::net {

std::vector<std::uint8_t> Encode(const PriceAnnounce& msg) {
  Serializer s;
  s.WriteU8(static_cast<std::uint8_t>(MessageType::kPriceAnnounce));
  s.WriteI32(msg.round);
  s.WriteDoubleVector(msg.prices);
  return std::move(s).FinishWithChecksum();
}

std::vector<std::uint8_t> Encode(const DemandReply& msg) {
  Serializer s;
  s.WriteU8(static_cast<std::uint8_t>(MessageType::kDemandReply));
  s.WriteI32(msg.round);
  s.WriteU32(msg.node);
  s.WriteU32(static_cast<std::uint32_t>(msg.decisions.size()));
  for (const WireDecision& d : msg.decisions) {
    s.WriteU32(d.user);
    s.WriteI32(d.bundle_index);
    s.WriteDouble(d.cost);
  }
  return std::move(s).FinishWithChecksum();
}

std::vector<std::uint8_t> Encode(const Terminate& msg) {
  Serializer s;
  s.WriteU8(static_cast<std::uint8_t>(MessageType::kTerminate));
  s.WriteU8(msg.converged ? 1 : 0);
  return std::move(s).FinishWithChecksum();
}

std::vector<std::uint8_t> Encode(const Envelope& msg) {
  Serializer s;
  s.WriteU8(static_cast<std::uint8_t>(MessageType::kEnvelope));
  s.WriteU32(msg.link);
  s.WriteU32(msg.seq);
  s.WriteBytes(msg.payload);
  return std::move(s).FinishWithChecksum();
}

std::vector<std::uint8_t> Encode(const LinkDown& msg) {
  Serializer s;
  s.WriteU8(static_cast<std::uint8_t>(MessageType::kLinkDown));
  s.WriteU32(msg.link);
  return std::move(s).FinishWithChecksum();
}

std::optional<MessageType> PeekType(
    const std::vector<std::uint8_t>& frame) {
  Deserializer d(frame);
  if (!d.VerifyChecksum()) return std::nullopt;
  const auto type = d.ReadU8();
  if (!type) return std::nullopt;
  switch (static_cast<MessageType>(*type)) {
    case MessageType::kPriceAnnounce:
    case MessageType::kDemandReply:
    case MessageType::kTerminate:
    case MessageType::kEnvelope:
    case MessageType::kLinkDown:
      return static_cast<MessageType>(*type);
  }
  return std::nullopt;
}

std::optional<PriceAnnounce> DecodePriceAnnounce(
    std::vector<std::uint8_t> frame) {
  Deserializer d(std::move(frame));
  if (!d.VerifyChecksum()) return std::nullopt;
  const auto type = d.ReadU8();
  if (!type ||
      *type != static_cast<std::uint8_t>(MessageType::kPriceAnnounce)) {
    return std::nullopt;
  }
  PriceAnnounce msg;
  const auto round = d.ReadI32();
  auto prices = d.ReadDoubleVector();
  if (!round || !prices || !d.Exhausted()) return std::nullopt;
  msg.round = *round;
  msg.prices = std::move(*prices);
  return msg;
}

std::optional<DemandReply> DecodeDemandReply(
    std::vector<std::uint8_t> frame) {
  Deserializer d(std::move(frame));
  if (!d.VerifyChecksum()) return std::nullopt;
  const auto type = d.ReadU8();
  if (!type ||
      *type != static_cast<std::uint8_t>(MessageType::kDemandReply)) {
    return std::nullopt;
  }
  DemandReply msg;
  const auto round = d.ReadI32();
  const auto node = d.ReadU32();
  const auto count = d.ReadU32();
  if (!round || !node || !count) return std::nullopt;
  msg.round = *round;
  msg.node = *node;
  msg.decisions.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto user = d.ReadU32();
    const auto bundle = d.ReadI32();
    const auto cost = d.ReadDouble();
    if (!user || !bundle || !cost) return std::nullopt;
    msg.decisions.push_back(WireDecision{*user, *bundle, *cost});
  }
  if (!d.Exhausted()) return std::nullopt;
  return msg;
}

std::optional<Terminate> DecodeTerminate(std::vector<std::uint8_t> frame) {
  Deserializer d(std::move(frame));
  if (!d.VerifyChecksum()) return std::nullopt;
  const auto type = d.ReadU8();
  if (!type ||
      *type != static_cast<std::uint8_t>(MessageType::kTerminate)) {
    return std::nullopt;
  }
  const auto converged = d.ReadU8();
  if (!converged || !d.Exhausted()) return std::nullopt;
  return Terminate{*converged != 0};
}

std::optional<Envelope> DecodeEnvelope(std::vector<std::uint8_t> frame) {
  Deserializer d(std::move(frame));
  if (!d.VerifyChecksum()) return std::nullopt;
  const auto type = d.ReadU8();
  if (!type ||
      *type != static_cast<std::uint8_t>(MessageType::kEnvelope)) {
    return std::nullopt;
  }
  Envelope msg;
  const auto link = d.ReadU32();
  const auto seq = d.ReadU32();
  auto payload = d.ReadBytes();
  if (!link || !seq || !payload || !d.Exhausted()) return std::nullopt;
  msg.link = *link;
  msg.seq = *seq;
  msg.payload = std::move(*payload);
  return msg;
}

std::optional<LinkDown> DecodeLinkDown(std::vector<std::uint8_t> frame) {
  Deserializer d(std::move(frame));
  if (!d.VerifyChecksum()) return std::nullopt;
  const auto type = d.ReadU8();
  if (!type ||
      *type != static_cast<std::uint8_t>(MessageType::kLinkDown)) {
    return std::nullopt;
  }
  const auto link = d.ReadU32();
  if (!link || !d.Exhausted()) return std::nullopt;
  return LinkDown{*link};
}

}  // namespace pm::net
