#include "net/distributed_auction.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "auction/demand_engine.h"
#include "common/check.h"
#include "net/channel.h"
#include "net/wire.h"

namespace pm::net {
namespace {

using Frame = std::vector<std::uint8_t>;

/// One proxy node: hosts a shard of users, answers price announcements.
/// The shard is compiled once into a DemandEngine arena; successive
/// announcements are served incrementally (only users whose bundles touch
/// a repriced pool re-run their argmin), with excess accumulation disabled
/// — the auctioneer owns the excess.
class ProxyNode {
 public:
  ProxyNode(std::uint32_t node_id, const std::vector<bid::Bid>* bids,
            std::vector<std::uint32_t> users, std::size_t num_pools,
            Channel<Frame>* to_auctioneer)
      : node_id_(node_id),
        users_(std::move(users)),
        engine_(*bids, users_, std::vector<double>(num_pools, 0.0)),
        to_auctioneer_(to_auctioneer) {
    workspace_.set_want_excess(false);
  }

  Channel<Frame>& inbox() { return inbox_; }

  std::atomic<long long>& decode_failures() { return decode_failures_; }

  void Run() {
    for (;;) {
      std::optional<Frame> frame = inbox_.Pop();
      if (!frame.has_value()) return;  // Channel closed.
      const auto type = PeekType(*frame);
      if (!type.has_value()) {
        ++decode_failures_;
        continue;
      }
      if (*type == MessageType::kTerminate) return;
      if (*type != MessageType::kPriceAnnounce) {
        ++decode_failures_;
        continue;
      }
      const auto announce = DecodePriceAnnounce(std::move(*frame));
      if (!announce.has_value()) {
        ++decode_failures_;
        continue;
      }
      engine_.CollectDemand(announce->prices, nullptr, workspace_);
      DemandReply reply;
      reply.round = announce->round;
      reply.node = node_id_;
      reply.decisions.reserve(users_.size());
      const std::vector<auction::ProxyDecision>& decisions =
          workspace_.decisions();
      for (std::size_t i = 0; i < users_.size(); ++i) {
        reply.decisions.push_back(WireDecision{
            users_[i], decisions[i].bundle_index, decisions[i].cost});
      }
      to_auctioneer_->Push(Encode(reply));
    }
  }

 private:
  std::uint32_t node_id_;
  std::vector<std::uint32_t> users_;
  auction::DemandEngine engine_;
  auction::DemandEngine::Workspace workspace_;
  Channel<Frame> inbox_;
  Channel<Frame>* to_auctioneer_;
  std::atomic<long long> decode_failures_{0};
};

std::unique_ptr<auction::IncrementPolicy> BuildPolicy(
    const auction::ClockAuctionConfig& config, std::size_t num_pools) {
  using Kind = auction::ClockAuctionConfig::PolicyKind;
  switch (config.policy_kind) {
    case Kind::kAdditive:
      return auction::MakeAdditivePolicy(config.alpha);
    case Kind::kCapped:
      return auction::MakeCappedPolicy(config.alpha, config.delta);
    case Kind::kRelativeCapped:
      return auction::MakeRelativeCappedPolicy(config.alpha, config.delta,
                                               config.step_floor);
    case Kind::kCostNormalized:
      PM_CHECK_MSG(config.base_costs.size() == num_pools,
                   "base_costs must have one entry per pool");
      return auction::MakeCostNormalizedPolicy(config.alpha, config.delta,
                                               config.base_costs);
    case Kind::kMultiplicative:
      return auction::MakeMultiplicativePolicy(config.alpha, config.delta,
                                               config.step_floor);
  }
  PM_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

}  // namespace

DistributedResult RunDistributedAuction(
    const auction::ClockAuction& auction, const DistributedConfig& config) {
  PM_CHECK_MSG(config.num_proxy_nodes >= 1, "need at least one proxy node");
  const std::string incompatible =
      auction::DistributedIncompatibility(config.auction);
  PM_CHECK_MSG(incompatible.empty(), incompatible);

  const std::vector<bid::Bid>& bids = auction.bids();
  const std::size_t num_pools = auction.NumPools();
  const std::size_t num_nodes =
      std::max<std::size_t>(1, std::min(config.num_proxy_nodes,
                                        std::max<std::size_t>(1,
                                                              bids.size())));

  DistributedResult out;
  Channel<Frame> to_auctioneer;

  // Shard users round-robin across proxy nodes.
  std::vector<std::vector<std::uint32_t>> shards(num_nodes);
  for (std::size_t u = 0; u < bids.size(); ++u) {
    shards[u % num_nodes].push_back(static_cast<std::uint32_t>(u));
  }
  std::vector<std::unique_ptr<ProxyNode>> nodes;
  nodes.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    nodes.push_back(std::make_unique<ProxyNode>(
        static_cast<std::uint32_t>(n), &bids, std::move(shards[n]),
        num_pools, &to_auctioneer));
  }
  std::vector<std::thread> threads;
  threads.reserve(num_nodes);
  for (auto& node : nodes) {
    threads.emplace_back([&node] { node->Run(); });
  }

  auto broadcast = [&](const Frame& frame) {
    for (auto& node : nodes) {
      node->inbox().Push(frame);
      ++out.transport.messages_sent;
      out.transport.bytes_sent += static_cast<long long>(frame.size());
    }
  };

  const std::unique_ptr<auction::IncrementPolicy> policy =
      BuildPolicy(config.auction, num_pools);

  // The auctioneer reuses the serial auction's compiled engine for excess
  // bookkeeping: a full blocked accumulation on the first round, then
  // decision-diff updates — the same deterministic arithmetic the serial
  // engine applies, which keeps the two paths bit-identical.
  const auction::DemandEngine& engine = auction.engine();

  auction::ClockAuctionResult& result = out.result;
  result.prices = auction.reserve_prices();
  result.decisions.assign(bids.size(), auction::ProxyDecision{});
  result.excess.assign(num_pools, 0.0);
  std::vector<auction::ProxyDecision> prev_decisions;
  std::vector<double> prev_prices;
  std::vector<double> normalized(num_pools, 0.0);
  std::vector<double> step(num_pools, 0.0);

  for (int round = 0; round < config.auction.max_rounds; ++round) {
    broadcast(Encode(PriceAnnounce{round, result.prices}));

    // Collect one reply per node (FIFO channels; replies for this round
    // only, enforced by the round tag).
    std::size_t replies = 0;
    while (replies < num_nodes) {
      std::optional<Frame> frame = to_auctioneer.Pop();
      PM_CHECK_MSG(frame.has_value(),
                   "auctioneer channel closed mid-round");
      ++out.transport.messages_sent;
      out.transport.bytes_sent += static_cast<long long>(frame->size());
      const auto reply = DecodeDemandReply(std::move(*frame));
      if (!reply.has_value()) {
        ++out.transport.decode_failures;
        continue;
      }
      PM_CHECK_MSG(reply->round == round,
                   "reply for round " << reply->round << " during round "
                                      << round);
      for (const WireDecision& d : reply->decisions) {
        result.decisions[d.user] =
            auction::ProxyDecision{d.bundle_index, d.cost};
      }
      ++replies;
    }
    // Replies arrive in nondeterministic order, but excess is derived
    // from the assembled user-indexed decision vector with the engine's
    // deterministic arithmetic: blocked accumulation on full rounds,
    // ascending-user decision diffs on incremental ones. The full-vs-
    // incremental branch mirrors DemandEngine's hybrid rule on the
    // touched-pool count, keeping this path bit-exact with the serial
    // engine round by round.
    std::size_t touched = 0;
    for (std::size_t r = 0; round > 0 && r < num_pools; ++r) {
      if (result.prices[r] - prev_prices[r] != 0.0) ++touched;
    }
    if (round == 0 ||
        auction::DemandEngine::PrefersFullCollect(touched, num_pools)) {
      engine.ExcessFromDecisions(result.decisions, nullptr, result.excess);
    } else {
      engine.UpdateExcess(prev_decisions, result.decisions, result.excess);
    }
    prev_decisions = result.decisions;
    prev_prices = result.prices;
    for (std::size_t r = 0; r < num_pools; ++r) {
      normalized[r] = config.auction.normalize_excess
                          ? result.excess[r] /
                                std::max(auction.supply()[r], 1.0)
                          : result.excess[r];
    }
    result.rounds = round + 1;
    result.demand_evaluations += static_cast<long long>(bids.size());

    const bool cleared =
        std::all_of(normalized.begin(), normalized.end(),
                    [&](double z) { return z <= config.auction.demand_eps; });
    if (cleared) {
      result.converged = true;
      break;
    }
    policy->ComputeStep(normalized, result.prices, step);
    for (std::size_t r = 0; r < num_pools; ++r) {
      if (normalized[r] > config.auction.demand_eps && step[r] <= 0.0) {
        step[r] = config.auction.step_floor;
      }
      result.prices[r] += step[r];
    }
  }

  broadcast(Encode(Terminate{result.converged}));
  for (auto& node : nodes) node->inbox().Close();
  for (std::thread& t : threads) t.join();
  to_auctioneer.Close();
  for (auto& node : nodes) {
    out.transport.decode_failures += node->decode_failures().load();
  }
  return out;
}

}  // namespace pm::net
