#include "net/distributed_auction.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "auction/demand_engine.h"
#include "common/check.h"
#include "net/channel.h"
#include "net/wire.h"

namespace pm::net {
namespace {

using Frame = std::vector<std::uint8_t>;

/// One proxy node: hosts a shard of users, answers price announcements.
/// The shard is compiled once into a DemandEngine arena; successive
/// announcements are served incrementally (only users whose bundles touch
/// a repriced pool re-run their argmin), with excess accumulation disabled
/// — the auctioneer owns the excess.
///
/// With wire faults enabled the node's inbox carries Envelope frames
/// (reassembled in sequence order) and its replies go out through a
/// FaultyLink; retry exhaustion on the reply link pushes a reliable
/// LinkDown and abandons the auction.
class ProxyNode {
 public:
  ProxyNode(std::uint32_t node_id, const std::vector<bid::Bid>* bids,
            std::vector<std::uint32_t> users, std::size_t num_pools,
            std::size_t num_nodes, const FaultConfig& faults,
            Channel<Frame>* to_auctioneer)
      : node_id_(node_id),
        users_(std::move(users)),
        engine_(*bids, users_, std::vector<double>(num_pools, 0.0)),
        to_auctioneer_(to_auctioneer) {
    workspace_.set_want_excess(false);
    if (faults.Enabled()) {
      reply_link_.emplace(
          static_cast<std::uint32_t>(num_nodes) + node_id_, faults,
          to_auctioneer_);
      reassembler_.emplace();
    }
  }

  Channel<Frame>& inbox() { return inbox_; }

  std::atomic<long long>& decode_failures() { return decode_failures_; }

  /// Sender-side fault counters of the reply link (null with faults off).
  /// Only meaningful after the node thread has been joined.
  const LinkFaultStats* ReplyLinkStats() const {
    return reply_link_ ? &reply_link_->stats() : nullptr;
  }

  void Run() {
    for (;;) {
      std::optional<Frame> frame = inbox_.Pop();
      if (!frame.has_value()) return;  // Channel closed.
      const auto type = PeekType(*frame);
      if (!type.has_value()) {
        ++decode_failures_;
        continue;
      }
      if (*type == MessageType::kTerminate) return;
      if (reassembler_) {
        // Lossy wire: everything except Terminate arrives enveloped.
        if (*type != MessageType::kEnvelope) {
          ++decode_failures_;
          continue;
        }
        auto env = DecodeEnvelope(std::move(*frame));
        if (!env.has_value()) {
          ++decode_failures_;
          continue;
        }
        for (Frame& payload :
             reassembler_->Accept(env->seq, std::move(env->payload))) {
          if (!HandleAnnounce(std::move(payload))) return;
        }
        continue;
      }
      if (*type != MessageType::kPriceAnnounce) {
        ++decode_failures_;
        continue;
      }
      if (!HandleAnnounce(std::move(*frame))) return;
    }
  }

 private:
  /// Decodes one announce frame and sends the demand reply. Returns false
  /// when the reply link died and the node must exit.
  bool HandleAnnounce(Frame frame) {
    const auto announce = DecodePriceAnnounce(std::move(frame));
    if (!announce.has_value()) {
      ++decode_failures_;
      return true;
    }
    engine_.CollectDemand(announce->prices, nullptr, workspace_);
    DemandReply reply;
    reply.round = announce->round;
    reply.node = node_id_;
    reply.decisions.reserve(users_.size());
    const std::vector<auction::ProxyDecision>& decisions =
        workspace_.decisions();
    for (std::size_t i = 0; i < users_.size(); ++i) {
      reply.decisions.push_back(WireDecision{
          users_[i], decisions[i].bundle_index, decisions[i].cost});
    }
    if (reply_link_) {
      if (!reply_link_->Send(Encode(reply))) {
        // Retry budget exhausted: tell the auctioneer out of band (the
        // LinkDown itself is never faulted) and abandon the auction.
        to_auctioneer_->Push(Encode(LinkDown{reply_link_->link()}));
        return false;
      }
      return true;
    }
    to_auctioneer_->Push(Encode(reply));
    return true;
  }

  std::uint32_t node_id_;
  std::vector<std::uint32_t> users_;
  auction::DemandEngine engine_;
  auction::DemandEngine::Workspace workspace_;
  Channel<Frame> inbox_;
  Channel<Frame>* to_auctioneer_;
  std::optional<FaultyLink> reply_link_;
  std::optional<LinkReassembler> reassembler_;
  std::atomic<long long> decode_failures_{0};
};

std::unique_ptr<auction::IncrementPolicy> BuildPolicy(
    const auction::ClockAuctionConfig& config, std::size_t num_pools) {
  using Kind = auction::ClockAuctionConfig::PolicyKind;
  switch (config.policy_kind) {
    case Kind::kAdditive:
      return auction::MakeAdditivePolicy(config.alpha);
    case Kind::kCapped:
      return auction::MakeCappedPolicy(config.alpha, config.delta);
    case Kind::kRelativeCapped:
      return auction::MakeRelativeCappedPolicy(config.alpha, config.delta,
                                               config.step_floor);
    case Kind::kCostNormalized:
      PM_CHECK_MSG(config.base_costs.size() == num_pools,
                   "base_costs must have one entry per pool");
      return auction::MakeCostNormalizedPolicy(config.alpha, config.delta,
                                               config.base_costs);
    case Kind::kMultiplicative:
      return auction::MakeMultiplicativePolicy(config.alpha, config.delta,
                                               config.step_floor);
  }
  PM_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

}  // namespace

DistributedResult RunDistributedAuction(
    const auction::ClockAuction& auction, const DistributedConfig& config) {
  PM_CHECK_MSG(config.num_proxy_nodes >= 1, "need at least one proxy node");
  const std::string incompatible =
      auction::DistributedIncompatibility(config.auction);
  PM_CHECK_MSG(incompatible.empty(), incompatible);

  const std::vector<bid::Bid>& bids = auction.bids();
  const std::size_t num_pools = auction.NumPools();
  const std::size_t num_nodes =
      std::max<std::size_t>(1, std::min(config.num_proxy_nodes,
                                        std::max<std::size_t>(1,
                                                              bids.size())));

  DistributedResult out;
  Channel<Frame> to_auctioneer;

  // Shard users round-robin across proxy nodes.
  std::vector<std::vector<std::uint32_t>> shards(num_nodes);
  for (std::size_t u = 0; u < bids.size(); ++u) {
    shards[u % num_nodes].push_back(static_cast<std::uint32_t>(u));
  }
  const bool lossy = config.faults.Enabled();
  std::vector<std::unique_ptr<ProxyNode>> nodes;
  nodes.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    nodes.push_back(std::make_unique<ProxyNode>(
        static_cast<std::uint32_t>(n), &bids, std::move(shards[n]),
        num_pools, num_nodes, config.faults, &to_auctioneer));
  }
  // Directed links under loss: auctioneer→node n is link n, node
  // n→auctioneer is link num_nodes+n (owned by the node). Reassemblers
  // index the uplinks by node.
  std::vector<FaultyLink> down_links;
  std::vector<LinkReassembler> up_links;
  if (lossy) {
    down_links.reserve(num_nodes);
    for (std::size_t n = 0; n < num_nodes; ++n) {
      down_links.emplace_back(static_cast<std::uint32_t>(n), config.faults,
                              &nodes[n]->inbox());
    }
    up_links.resize(num_nodes);
  }
  std::vector<std::thread> threads;
  threads.reserve(num_nodes);
  for (auto& node : nodes) {
    threads.emplace_back([&node] { node->Run(); });
  }

  // Containment exit: a link died (retry exhaustion on either side).
  // Unwind the whole auction — wake and join every node thread — before
  // throwing, so the CheckFailure surfaces to the caller with no threads
  // left behind.
  auto fail_link = [&](const std::string& what) {
    for (auto& node : nodes) node->inbox().Close();
    for (std::thread& t : threads) t.join();
    to_auctioneer.Close();
    PM_CHECK_MSG(false, what);
  };

  // Transport counters under loss must stay scheduling-independent, so
  // they count the *logical* payload stream (one frame per link per
  // round); the fault counters summed after the join cover the physical
  // extras (drops, retries, duplicates, stale copies).
  auto broadcast = [&](const Frame& frame) {
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      if (lossy) {
        if (!down_links[n].Send(frame)) {
          fail_link("wire: link to proxy node " + std::to_string(n) +
                    " down after retry exhaustion");
        }
      } else {
        nodes[n]->inbox().Push(frame);
      }
      ++out.transport.messages_sent;
      out.transport.bytes_sent += static_cast<long long>(frame.size());
    }
  };

  const std::unique_ptr<auction::IncrementPolicy> policy =
      BuildPolicy(config.auction, num_pools);

  // The auctioneer reuses the serial auction's compiled engine for excess
  // bookkeeping: a full blocked accumulation on the first round, then
  // decision-diff updates — the same deterministic arithmetic the serial
  // engine applies, which keeps the two paths bit-identical.
  const auction::DemandEngine& engine = auction.engine();

  auction::ClockAuctionResult& result = out.result;
  result.prices = auction.reserve_prices();
  result.decisions.assign(bids.size(), auction::ProxyDecision{});
  result.excess.assign(num_pools, 0.0);
  std::vector<auction::ProxyDecision> prev_decisions;
  std::vector<double> prev_prices;
  std::vector<double> normalized(num_pools, 0.0);
  std::vector<double> step(num_pools, 0.0);

  for (int round = 0; round < config.auction.max_rounds; ++round) {
    broadcast(Encode(PriceAnnounce{round, result.prices}));

    // Collect one reply per node (FIFO channels; replies for this round
    // only, enforced by the round tag). Under loss the channel carries
    // envelopes: stale and duplicate frames are shed by the per-link
    // reassemblers, and a LinkDown aborts the auction.
    auto consume_reply = [&](Frame payload) {
      ++out.transport.messages_sent;
      out.transport.bytes_sent += static_cast<long long>(payload.size());
      const auto reply = DecodeDemandReply(std::move(payload));
      if (!reply.has_value()) {
        ++out.transport.decode_failures;
        return false;
      }
      PM_CHECK_MSG(reply->round == round,
                   "reply for round " << reply->round << " during round "
                                      << round);
      for (const WireDecision& d : reply->decisions) {
        result.decisions[d.user] =
            auction::ProxyDecision{d.bundle_index, d.cost};
      }
      return true;
    };
    std::size_t replies = 0;
    while (replies < num_nodes) {
      std::optional<Frame> frame = to_auctioneer.Pop();
      PM_CHECK_MSG(frame.has_value(),
                   "auctioneer channel closed mid-round");
      if (!lossy) {
        if (consume_reply(std::move(*frame))) ++replies;
        continue;
      }
      const auto type = PeekType(*frame);
      if (!type.has_value()) {
        ++out.transport.decode_failures;
        continue;
      }
      if (*type == MessageType::kLinkDown) {
        const auto down = DecodeLinkDown(std::move(*frame));
        fail_link("wire: proxy reply link " +
                  std::to_string(down ? down->link : 0) +
                  " down after retry exhaustion");
      }
      if (*type != MessageType::kEnvelope) {
        ++out.transport.decode_failures;
        continue;
      }
      auto env = DecodeEnvelope(std::move(*frame));
      if (!env.has_value()) {
        ++out.transport.decode_failures;
        continue;
      }
      PM_CHECK_MSG(env->link >= num_nodes && env->link < 2 * num_nodes,
                   "envelope on unknown link " << env->link);
      const std::size_t n = env->link - num_nodes;
      for (Frame& payload :
           up_links[n].Accept(env->seq, std::move(env->payload))) {
        if (consume_reply(std::move(payload))) ++replies;
      }
    }
    // Replies arrive in nondeterministic order, but excess is derived
    // from the assembled user-indexed decision vector with the engine's
    // deterministic arithmetic: blocked accumulation on full rounds,
    // ascending-user decision diffs on incremental ones. The full-vs-
    // incremental branch mirrors DemandEngine's hybrid rule on the
    // touched-pool count, keeping this path bit-exact with the serial
    // engine round by round.
    std::size_t touched = 0;
    for (std::size_t r = 0; round > 0 && r < num_pools; ++r) {
      if (result.prices[r] - prev_prices[r] != 0.0) ++touched;
    }
    if (round == 0 ||
        auction::DemandEngine::PrefersFullCollect(touched, num_pools)) {
      engine.ExcessFromDecisions(result.decisions, nullptr, result.excess);
    } else {
      engine.UpdateExcess(prev_decisions, result.decisions, result.excess);
    }
    prev_decisions = result.decisions;
    prev_prices = result.prices;
    for (std::size_t r = 0; r < num_pools; ++r) {
      normalized[r] = config.auction.normalize_excess
                          ? result.excess[r] /
                                std::max(auction.supply()[r], 1.0)
                          : result.excess[r];
    }
    result.rounds = round + 1;
    result.demand_evaluations += static_cast<long long>(bids.size());

    const bool cleared =
        std::all_of(normalized.begin(), normalized.end(),
                    [&](double z) { return z <= config.auction.demand_eps; });
    if (cleared) {
      result.converged = true;
      break;
    }
    policy->ComputeStep(normalized, result.prices, step);
    for (std::size_t r = 0; r < num_pools; ++r) {
      if (normalized[r] > config.auction.demand_eps && step[r] <= 0.0) {
        step[r] = config.auction.step_floor;
      }
      result.prices[r] += step[r];
    }
  }

  // Terminate is control-plane: it is delivered reliably (never wrapped,
  // dropped, or delayed) so a finished auction cannot be aborted by the
  // fault process on its way out.
  {
    const Frame term = Encode(Terminate{result.converged});
    for (auto& node : nodes) {
      node->inbox().Push(term);
      ++out.transport.messages_sent;
      out.transport.bytes_sent += static_cast<long long>(term.size());
    }
  }
  for (auto& node : nodes) node->inbox().Close();
  for (std::thread& t : threads) t.join();
  to_auctioneer.Close();
  for (auto& node : nodes) {
    out.transport.decode_failures += node->decode_failures().load();
  }
  if (lossy) {
    LinkFaultStats wire;
    for (const FaultyLink& link : down_links) wire += link.stats();
    for (const auto& node : nodes) {
      if (const LinkFaultStats* s = node->ReplyLinkStats()) wire += *s;
    }
    out.transport.frames_dropped = wire.dropped;
    out.transport.frames_retried = wire.retries;
    out.transport.frames_duplicated = wire.duplicated;
    out.transport.frames_stale = wire.stale_redelivered;
  }
  return out;
}

}  // namespace pm::net
