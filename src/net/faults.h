// planetmarket: deterministic lossy-wire fault injection.
//
// The distributed auction's channels are perfectly reliable in-process
// queues. Real planet-spanning links are not: frames are dropped,
// duplicated, and delayed. This module decorates the send side of each
// directed link with a seeded fault process and hardens the receive side
// with sequence-numbered reassembly, so the clock-auction protocol can be
// exercised — and proven bit-identical — under loss.
//
// Because the protocol is lockstep (one frame per link per round; the
// auctioneer blocks until every node replies), faults are modelled
// sender-visibly rather than as an asynchronous medium:
//
//   drop       A sent frame is lost before delivery; the sender sees the
//              loss and immediately retries the same sequence number, up
//              to max_retries times. Retry exhaustion takes the link down.
//   duplicate  A delivered frame arrives twice; the receiver's
//              reassembler drops the second copy by sequence number.
//   delay      Stale-copy redelivery: each link remembers its last
//              delay_window frames and re-delivers the oldest alongside
//              the (delay_window+1)-th send — an old packet surfacing
//              late. The receiver drops it as stale.
//
// All fault draws come from a per-link SplitMix-derived RandomStream, so
// a given (seed, link, traffic) triple always produces the same fault
// pattern — and the reassembled stream is always exactly-once, in-order,
// which is what keeps auction results bit-identical to the clean wire.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/channel.h"
#include "net/wire.h"

namespace pm::net {

/// Lossy-wire knobs. Default-constructed == faults off (no envelope
/// framing at all; the wire is byte-identical to the fault-free
/// protocol).
struct FaultConfig {
  double drop = 0.0;       // P(frame lost per delivery attempt).
  double duplicate = 0.0;  // P(delivered frame arrives twice).
  int delay_window = 0;    // Stale copies redelivered N sends late (0: off).
  int max_retries = 3;     // Send attempts per frame before link-down.
  std::uint64_t seed = 0;  // Root of the per-link fault streams.

  bool Enabled() const {
    return drop > 0.0 || duplicate > 0.0 || delay_window > 0;
  }
};

/// Per-link fault/transport counters, summed into TransportStats.
struct LinkFaultStats {
  std::int64_t dropped = 0;        // Frames lost on the wire.
  std::int64_t retries = 0;        // Re-sends after a loss.
  std::int64_t duplicated = 0;     // Second copies delivered.
  std::int64_t stale_redelivered = 0;  // Old frames surfacing late.

  LinkFaultStats& operator+=(const LinkFaultStats& o) {
    dropped += o.dropped;
    retries += o.retries;
    duplicated += o.duplicated;
    stale_redelivered += o.stale_redelivered;
    return *this;
  }
};

/// Send side of one directed lossy link. Wraps every payload frame in a
/// sequence-numbered Envelope and applies the seeded fault process.
class FaultyLink {
 public:
  using Frame = std::vector<std::uint8_t>;

  /// `link` is the directed link index (also written into envelopes);
  /// the fault stream is derived from config.seed and the link index.
  FaultyLink(std::uint32_t link, const FaultConfig& config,
             Channel<Frame>* out);

  /// Sends one payload frame through the lossy medium. Returns false if
  /// every delivery attempt (1 + max_retries) was dropped — the caller
  /// must treat the link as down. A false return never leaves a partial
  /// copy of this frame on the wire.
  bool Send(const Frame& payload);

  std::uint32_t link() const { return link_; }
  const LinkFaultStats& stats() const { return stats_; }

 private:
  // Pushes an already-built envelope frame, honouring the delay window.
  void Deliver(Frame frame);

  std::uint32_t link_;
  FaultConfig config_;
  Channel<Frame>* out_;
  RandomStream rng_;
  std::uint32_t next_seq_ = 0;
  std::deque<Frame> delay_buffer_;  // Last delay_window delivered frames.
  LinkFaultStats stats_;
};

/// Receive side of one directed lossy link: exactly-once, in-order
/// reassembly by sequence number. Stale (seq < next expected) and
/// duplicate frames are dropped; out-of-order frames are buffered until
/// the gap fills.
class LinkReassembler {
 public:
  using Frame = std::vector<std::uint8_t>;

  /// Feeds one envelope; returns the payloads that became deliverable,
  /// in sequence order (possibly empty).
  std::vector<Frame> Accept(std::uint32_t seq, Frame payload);

  std::int64_t stale_dropped() const { return stale_dropped_; }

 private:
  std::uint32_t next_expected_ = 0;
  std::map<std::uint32_t, Frame> pending_;
  std::int64_t stale_dropped_ = 0;
};

/// The fault stream for one directed link: config.seed and the link index
/// mixed through SplitMix64 so links are independent but reproducible.
std::uint64_t LinkFaultSeed(std::uint64_t seed, std::uint32_t link);

}  // namespace pm::net
