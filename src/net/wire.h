// planetmarket: the clock-auction wire protocol (Figure 1).
//
//   auctioneer ──PriceAnnounce{round, prices}──► every proxy node
//   proxy node ──DemandReply{round, node, per-user decisions}──► auctioneer
//   auctioneer ──Terminate{converged}──► every proxy node
//
// Frames are Serializer-encoded with a checksum; Decode* returns nullopt
// on any corruption or truncation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/serializer.h"

namespace pm::net {

/// Message discriminator (first byte of every frame).
enum class MessageType : std::uint8_t {
  kPriceAnnounce = 1,
  kDemandReply = 2,
  kTerminate = 3,
  kEnvelope = 4,
  kLinkDown = 5,
};

/// Auctioneer → proxies: the current clocks.
struct PriceAnnounce {
  std::int32_t round = 0;
  std::vector<double> prices;
};

/// One user's demand inside a DemandReply.
struct WireDecision {
  std::uint32_t user = 0;
  std::int32_t bundle_index = -1;  // -1: dropped out.
  double cost = 0.0;
};

/// Proxy node → auctioneer: the demands of the users it hosts.
struct DemandReply {
  std::int32_t round = 0;
  std::uint32_t node = 0;
  std::vector<WireDecision> decisions;
};

/// Auctioneer → proxies: the auction ended.
struct Terminate {
  bool converged = false;
};

/// Lossy-wire framing (net/faults.h): a sequence-numbered wrapper around
/// any other message. Only used when wire faults are enabled — with
/// faults off no envelope is ever produced and frames are byte-identical
/// to the fault-free protocol.
struct Envelope {
  std::uint32_t link = 0;  // Directed link index (sender-assigned).
  std::uint32_t seq = 0;   // Per-link sequence number, starting at 0.
  std::vector<std::uint8_t> payload;  // A complete inner frame.
};

/// Reliable out-of-band notice: the sender exhausted its retry budget on
/// `link` and is abandoning the auction. Never wrapped in an Envelope.
struct LinkDown {
  std::uint32_t link = 0;
};

std::vector<std::uint8_t> Encode(const PriceAnnounce& msg);
std::vector<std::uint8_t> Encode(const DemandReply& msg);
std::vector<std::uint8_t> Encode(const Terminate& msg);
std::vector<std::uint8_t> Encode(const Envelope& msg);
std::vector<std::uint8_t> Encode(const LinkDown& msg);

/// Peeks the type of a frame without consuming it (nullopt when the frame
/// is too short or fails its checksum).
std::optional<MessageType> PeekType(const std::vector<std::uint8_t>& frame);

std::optional<PriceAnnounce> DecodePriceAnnounce(
    std::vector<std::uint8_t> frame);
std::optional<DemandReply> DecodeDemandReply(
    std::vector<std::uint8_t> frame);
std::optional<Terminate> DecodeTerminate(std::vector<std::uint8_t> frame);
std::optional<Envelope> DecodeEnvelope(std::vector<std::uint8_t> frame);
std::optional<LinkDown> DecodeLinkDown(std::vector<std::uint8_t> frame);

}  // namespace pm::net
