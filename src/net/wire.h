// planetmarket: the clock-auction wire protocol (Figure 1).
//
//   auctioneer ──PriceAnnounce{round, prices}──► every proxy node
//   proxy node ──DemandReply{round, node, per-user decisions}──► auctioneer
//   auctioneer ──Terminate{converged}──► every proxy node
//
// Frames are Serializer-encoded with a checksum; Decode* returns nullopt
// on any corruption or truncation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/serializer.h"

namespace pm::net {

/// Message discriminator (first byte of every frame).
enum class MessageType : std::uint8_t {
  kPriceAnnounce = 1,
  kDemandReply = 2,
  kTerminate = 3,
};

/// Auctioneer → proxies: the current clocks.
struct PriceAnnounce {
  std::int32_t round = 0;
  std::vector<double> prices;
};

/// One user's demand inside a DemandReply.
struct WireDecision {
  std::uint32_t user = 0;
  std::int32_t bundle_index = -1;  // -1: dropped out.
  double cost = 0.0;
};

/// Proxy node → auctioneer: the demands of the users it hosts.
struct DemandReply {
  std::int32_t round = 0;
  std::uint32_t node = 0;
  std::vector<WireDecision> decisions;
};

/// Auctioneer → proxies: the auction ended.
struct Terminate {
  bool converged = false;
};

std::vector<std::uint8_t> Encode(const PriceAnnounce& msg);
std::vector<std::uint8_t> Encode(const DemandReply& msg);
std::vector<std::uint8_t> Encode(const Terminate& msg);

/// Peeks the type of a frame without consuming it (nullopt when the frame
/// is too short or fails its checksum).
std::optional<MessageType> PeekType(const std::vector<std::uint8_t>& frame);

std::optional<PriceAnnounce> DecodePriceAnnounce(
    std::vector<std::uint8_t> frame);
std::optional<DemandReply> DecodeDemandReply(
    std::vector<std::uint8_t> frame);
std::optional<Terminate> DecodeTerminate(std::vector<std::uint8_t> frame);

}  // namespace pm::net
