#include "net/serializer.h"

#include <bit>
#include <cstring>

#include "common/check.h"

namespace pm::net {

std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void Serializer::WriteU8(std::uint8_t v) { buffer_.push_back(v); }

void Serializer::WriteU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Serializer::WriteU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Serializer::WriteI32(std::int32_t v) {
  WriteU32(static_cast<std::uint32_t>(v));
}

void Serializer::WriteI64(std::int64_t v) {
  WriteU64(static_cast<std::uint64_t>(v));
}

void Serializer::WriteDouble(double v) {
  WriteU64(std::bit_cast<std::uint64_t>(v));
}

void Serializer::WriteString(const std::string& s) {
  WriteU32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Serializer::WriteDoubleVector(const std::vector<double>& v) {
  WriteU32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) WriteDouble(x);
}

void Serializer::WriteBytes(const std::vector<std::uint8_t>& v) {
  WriteU32(static_cast<std::uint32_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

std::vector<std::uint8_t> Serializer::FinishWithChecksum() && {
  const std::uint64_t checksum = Fnv1a(buffer_.data(), buffer_.size());
  WriteU64(checksum);
  return std::move(buffer_);
}

Deserializer::Deserializer(std::vector<std::uint8_t> frame)
    : frame_(std::move(frame)) {}

bool Deserializer::VerifyChecksum() {
  if (frame_.size() < 8) return false;
  payload_size_ = frame_.size() - 8;
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(frame_[payload_size_ + i])
              << (8 * i);
  }
  checksum_ok_ = stored == Fnv1a(frame_.data(), payload_size_);
  return checksum_ok_;
}

std::optional<std::uint8_t> Deserializer::ReadU8() {
  PM_CHECK_MSG(checksum_ok_, "VerifyChecksum before reading");
  if (!Need(1)) return std::nullopt;
  return frame_[pos_++];
}

std::optional<std::uint32_t> Deserializer::ReadU32() {
  PM_CHECK_MSG(checksum_ok_, "VerifyChecksum before reading");
  if (!Need(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(frame_[pos_++]) << (8 * i);
  }
  return v;
}

std::optional<std::uint64_t> Deserializer::ReadU64() {
  PM_CHECK_MSG(checksum_ok_, "VerifyChecksum before reading");
  if (!Need(8)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(frame_[pos_++]) << (8 * i);
  }
  return v;
}

std::optional<std::int32_t> Deserializer::ReadI32() {
  const auto v = ReadU32();
  if (!v) return std::nullopt;
  return static_cast<std::int32_t>(*v);
}

std::optional<std::int64_t> Deserializer::ReadI64() {
  const auto v = ReadU64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<double> Deserializer::ReadDouble() {
  const auto v = ReadU64();
  if (!v) return std::nullopt;
  return std::bit_cast<double>(*v);
}

std::optional<std::string> Deserializer::ReadString() {
  const auto size = ReadU32();
  if (!size) return std::nullopt;
  if (!Need(*size)) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(frame_.data() + pos_),
                *size);
  pos_ += *size;
  return s;
}

std::optional<std::vector<std::uint8_t>> Deserializer::ReadBytes() {
  const auto size = ReadU32();
  if (!size) return std::nullopt;
  if (!Need(*size)) return std::nullopt;
  std::vector<std::uint8_t> v(frame_.begin() + pos_,
                              frame_.begin() + pos_ + *size);
  pos_ += *size;
  return v;
}

std::optional<std::vector<double>> Deserializer::ReadDoubleVector() {
  const auto size = ReadU32();
  if (!size) return std::nullopt;
  std::vector<double> v;
  v.reserve(*size);
  for (std::uint32_t i = 0; i < *size; ++i) {
    const auto x = ReadDouble();
    if (!x) return std::nullopt;
    v.push_back(*x);
  }
  return v;
}

}  // namespace pm::net
