// planetmarket: the distributed clock auction (Figures 1 and 5).
//
// Runs Algorithm 1 with the auctioneer and bidder proxies as separate
// threads exchanging *serialized* protocol frames over channels: each
// round the auctioneer broadcasts PriceAnnounce, every proxy node decodes
// it, evaluates G_u for the users it hosts, and replies with an encoded
// DemandReply; the auctioneer aggregates excess demand and either
// terminates or raises the clocks.
//
// With the same increment policy the distributed engine produces
// bit-identical prices and allocations to ClockAuction::Run (asserted by
// the integration tests): distribution changes where the work runs, not
// the mechanism. Intra-round bisection is intentionally unsupported here —
// its demand probes are a serial-search refinement that does not map onto
// the broadcast protocol.
#pragma once

#include <cstddef>

#include "auction/clock_auction.h"
#include "net/faults.h"

namespace pm::net {

/// Configuration for the distributed run.
struct DistributedConfig {
  /// Proxy processes; users are sharded round-robin across them.
  std::size_t num_proxy_nodes = 4;

  /// Clock parameters. Serial-only knobs are rejected, not dropped:
  /// RunDistributedAuction CHECKs that
  /// auction::DistributedIncompatibility(auction) is empty, so a config
  /// with intra_round_bisection, thread_pool, or record_trajectory set
  /// fails loudly instead of silently running something else.
  auction::ClockAuctionConfig auction;

  /// Lossy-wire injection (off by default). When enabled, every directed
  /// link wraps its frames in sequence-numbered envelopes with bounded
  /// retry; the auction result stays bit-identical to the clean wire, or
  /// the run throws CheckFailure when a link exhausts its retries.
  FaultConfig faults;
};

/// Transport statistics from one distributed run.
struct TransportStats {
  long long messages_sent = 0;
  long long bytes_sent = 0;
  long long decode_failures = 0;  // Always 0 unless frames were corrupted.

  // Lossy-wire counters (all zero with faults off). Sender-side, so they
  // are deterministic for a given fault seed regardless of scheduling.
  long long frames_dropped = 0;
  long long frames_retried = 0;
  long long frames_duplicated = 0;
  long long frames_stale = 0;  // Stale copies redelivered by the delay line.
};

/// Result of the distributed auction: the standard result plus transport
/// counters.
struct DistributedResult {
  auction::ClockAuctionResult result;
  TransportStats transport;
};

/// Runs the auction distributed. The auction object provides bids, supply
/// and reserve prices exactly as for the serial engine.
DistributedResult RunDistributedAuction(const auction::ClockAuction& auction,
                                        const DistributedConfig& config);

}  // namespace pm::net
