#include "net/faults.h"

#include "common/check.h"

namespace pm::net {

std::uint64_t LinkFaultSeed(std::uint64_t seed, std::uint32_t link) {
  SplitMix64 mix(seed ^ (0xd1b54a32d192ed03ULL * (link + 1)));
  return mix.Next();
}

FaultyLink::FaultyLink(std::uint32_t link, const FaultConfig& config,
                       Channel<Frame>* out)
    : link_(link),
      config_(config),
      out_(out),
      rng_(LinkFaultSeed(config.seed, link)) {
  PM_CHECK(out != nullptr);
  PM_CHECK_MSG(config_.drop >= 0.0 && config_.drop < 1.0,
               "drop probability must be in [0, 1)");
  PM_CHECK_MSG(config_.duplicate >= 0.0 && config_.duplicate <= 1.0,
               "duplicate probability must be in [0, 1]");
  PM_CHECK_MSG(config_.delay_window >= 0, "delay window must be >= 0");
  PM_CHECK_MSG(config_.max_retries >= 0, "max_retries must be >= 0");
}

void FaultyLink::Deliver(Frame frame) {
  if (config_.delay_window > 0) {
    if (static_cast<int>(delay_buffer_.size()) >= config_.delay_window) {
      // An old copy of a long-delivered frame surfaces late, just before
      // this send. The receiver will identify it as stale by sequence.
      out_->Push(std::move(delay_buffer_.front()));
      delay_buffer_.pop_front();
      ++stats_.stale_redelivered;
    }
    delay_buffer_.push_back(frame);
  }
  out_->Push(std::move(frame));
}

bool FaultyLink::Send(const Frame& payload) {
  Envelope env;
  env.link = link_;
  env.seq = next_seq_++;
  env.payload = payload;
  Frame frame = Encode(env);

  const int attempts = 1 + config_.max_retries;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (rng_.Bernoulli(config_.drop)) {
      ++stats_.dropped;
      continue;  // Lost on the wire; sender-visible, retry same seq.
    }
    if (rng_.Bernoulli(config_.duplicate)) {
      ++stats_.duplicated;
      Deliver(frame);  // First copy …
    }
    Deliver(std::move(frame));  // … and the real delivery.
    return true;
  }
  return false;  // Retry budget exhausted: link down.
}

std::vector<LinkReassembler::Frame> LinkReassembler::Accept(
    std::uint32_t seq, Frame payload) {
  std::vector<Frame> out;
  if (seq < next_expected_) {
    ++stale_dropped_;  // Stale redelivery or duplicate of a consumed seq.
    return out;
  }
  if (!pending_.emplace(seq, std::move(payload)).second) {
    ++stale_dropped_;  // Duplicate of a buffered, not-yet-consumed seq.
    return out;
  }
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_expected_;
       it = pending_.erase(it)) {
    out.push_back(std::move(it->second));
    ++next_expected_;
  }
  return out;
}

}  // namespace pm::net
