#include "cluster/scheduler.h"

#include <limits>
#include <numeric>

#include "common/check.h"

namespace pm::cluster {

std::string_view ToString(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFirstFit:
      return "first-fit";
    case PlacementPolicy::kBestFit:
      return "best-fit";
    case PlacementPolicy::kWorstFit:
      return "worst-fit";
  }
  return "unknown";
}

int PlacementResult::TotalPlaced() const {
  return std::accumulate(tasks_placed.begin(), tasks_placed.end(), 0);
}

namespace {

int PickMachine(const std::vector<Machine>& machines, const TaskShape& shape,
                PlacementPolicy policy) {
  int best = -1;
  double best_fill = 0.0;
  for (std::size_t i = 0; i < machines.size(); ++i) {
    if (!machines[i].CanFit(shape)) continue;
    switch (policy) {
      case PlacementPolicy::kFirstFit:
        return static_cast<int>(i);
      case PlacementPolicy::kBestFit: {
        const double fill = machines[i].FillAfter(shape);
        if (best < 0 || fill > best_fill) {
          best = static_cast<int>(i);
          best_fill = fill;
        }
        break;
      }
      case PlacementPolicy::kWorstFit: {
        const double fill = machines[i].FillAfter(shape);
        if (best < 0 || fill < best_fill) {
          best = static_cast<int>(i);
          best_fill = fill;
        }
        break;
      }
    }
  }
  return best;
}

}  // namespace

PlacementResult PlaceTasks(std::vector<Machine>& machines,
                           const TaskShape& shape, int count,
                           PlacementPolicy policy) {
  PM_CHECK_MSG(count >= 0, "negative task count " << count);
  PlacementResult result;
  result.tasks_placed.assign(machines.size(), 0);
  for (int t = 0; t < count; ++t) {
    const int pick = PickMachine(machines, shape, policy);
    if (pick < 0) {
      result.tasks_failed = count - t;
      break;
    }
    machines[static_cast<std::size_t>(pick)].Place(shape);
    ++result.tasks_placed[static_cast<std::size_t>(pick)];
  }
  return result;
}

void UndoPlacement(std::vector<Machine>& machines, const TaskShape& shape,
                   const PlacementResult& placement) {
  PM_CHECK(placement.tasks_placed.size() == machines.size());
  for (std::size_t i = 0; i < machines.size(); ++i) {
    for (int t = 0; t < placement.tasks_placed[i]; ++t) {
      machines[i].Remove(shape);
    }
  }
}

}  // namespace pm::cluster
