// planetmarket: a single machine with multi-dimensional capacity.
#pragma once

#include <cstdint>

#include "cluster/job.h"

namespace pm::cluster {

/// Index of a machine within its cluster.
using MachineIndex = std::uint32_t;

/// One machine: a capacity shape and the sum of placed task shapes.
/// Placement respects capacity in every dimension; see Scheduler for the
/// policies that pick machines.
class Machine {
 public:
  explicit Machine(TaskShape capacity);

  const TaskShape& capacity() const { return capacity_; }
  const TaskShape& used() const { return used_; }

  /// Remaining headroom per dimension.
  TaskShape Free() const { return capacity_ - used_; }

  /// True when a task of `shape` fits in the remaining headroom (with a
  /// small epsilon so that accumulated float error cannot wedge an exact
  /// repack).
  bool CanFit(const TaskShape& shape) const;

  /// Places one task. Precondition: CanFit(shape).
  void Place(const TaskShape& shape);

  /// Removes one previously placed task. Precondition: at least `shape`
  /// is in use in every dimension.
  void Remove(const TaskShape& shape);

  /// Fraction of capacity in use for `kind` (0 when the machine has no
  /// capacity in that dimension).
  double Utilization(ResourceKind kind) const;

  /// Scalar fill metric used by best/worst-fit: the maximum utilization
  /// across dimensions after hypothetically placing `shape`.
  double FillAfter(const TaskShape& shape) const;

  /// Checkpoint restore: overwrites the in-use shape with a value saved
  /// from another machine's used(). Bypasses Place so accumulated float
  /// error round-trips bit-exactly; only exchange/snapshot.cpp calls it.
  void RestoreUsed(const TaskShape& used) { used_ = used; }

 private:
  TaskShape capacity_;
  TaskShape used_;
};

}  // namespace pm::cluster
