// planetmarket: the planet-wide fleet.
//
// A Fleet aggregates clusters into the market's pool space: each
// (cluster, resource-kind) pair is interned as one PoolId, and all
// per-pool quantities the auction needs — capacity, usage, free supply,
// utilization ψ(r), unit cost c(r) — are exposed as dense vectors indexed
// by PoolId. The fleet also executes the physical side of settled trades:
// moving a team's jobs between clusters.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/types.h"

namespace pm::cluster {

/// Fleet-wide job handle: which cluster a job lives in.
struct JobLocation {
  JobId job = 0;
  std::string cluster;
};

/// The set of clusters participating in the market.
class Fleet {
 public:
  /// `unit_costs` gives the operator's real cost c(r) per unit of each
  /// resource kind (e.g. $/core, $/GB, $/TB per auction period); the
  /// reserve pricer scales these by the congestion weighting.
  Fleet(std::vector<Cluster> clusters, TaskShape unit_costs,
        PlacementPolicy policy = PlacementPolicy::kBestFit);

  /// Checkpoint restore: rebuilds a fleet from restored clusters plus the
  /// saved pool-interning order. The order can differ from cluster-major
  /// after extractions and adoptions — PoolIds are append-only for the
  /// market's lifetime, so a round trip must re-intern them in the exact
  /// saved sequence. Every live cluster's pools must appear in
  /// `pool_order`.
  static Fleet FromState(std::vector<Cluster> clusters,
                         const std::vector<PoolKey>& pool_order,
                         TaskShape unit_costs, PlacementPolicy policy);

  const PoolRegistry& registry() const { return registry_; }
  std::size_t NumPools() const { return registry_.size(); }

  std::vector<std::string> ClusterNames() const;
  std::size_t NumClusters() const { return clusters_.size(); }

  Cluster& ClusterByName(const std::string& name);
  const Cluster& ClusterByName(const std::string& name) const;
  bool HasCluster(const std::string& name) const;

  PlacementPolicy policy() const { return policy_; }

  /// The operator's per-unit resource costs c(r), as passed at build time.
  const TaskShape& unit_costs() const { return unit_costs_; }

  /// Dense per-pool capacity vector.
  std::vector<double> CapacityVector() const;

  /// Dense per-pool usage vector.
  std::vector<double> UsedVector() const;

  /// Dense per-pool free capacity (what the operator can sell).
  std::vector<double> FreeVector() const;

  /// Dense per-pool utilization ψ(r) in [0, 1].
  std::vector<double> UtilizationVector() const;

  /// Dense per-pool unit cost c(r).
  std::vector<double> CostVector() const;

  /// One cluster's free capacity (headroom) as a TaskShape.
  TaskShape FreeShape(const std::string& cluster) const;

  /// Detaches a whole cluster — machines, jobs and all — for migration to
  /// another fleet (the federation's rebalancing protocol). The cluster's
  /// pools stay interned (PoolIds are stable for the market's lifetime)
  /// but report zero capacity/usage until a cluster of the same name is
  /// re-adopted. The fleet must keep at least one cluster.
  Cluster ExtractCluster(const std::string& name);

  /// Attaches a migrated cluster, interning its pools (idempotent when a
  /// same-named cluster lived here before). The name must not collide
  /// with a live cluster.
  void AdoptCluster(Cluster cluster);

  /// Places a new job in a cluster. Returns false (and leaves the fleet
  /// unchanged) if it does not fit.
  bool AddJob(const std::string& cluster, const Job& job);

  /// Removes a job wherever it lives. Returns it, or nullopt if unknown.
  std::optional<Job> RemoveJob(JobId id);

  /// Moves a job between clusters. Atomic: if the destination cannot hold
  /// it, the job stays where it was and false is returned.
  bool MoveJob(JobId id, const std::string& to_cluster);

  /// Cluster currently hosting a job (empty if none).
  std::string LocateJob(JobId id) const;

  /// All jobs with their locations, ordered by cluster then placement.
  std::vector<JobLocation> AllJobs() const;

  /// Total fleet-wide utilization of one resource kind.
  double FleetUtilization(ResourceKind kind) const;

  /// Percentile rank (0–100) of `cluster`'s utilization of `kind` among
  /// all clusters — the y-axis metric of Figure 7.
  double UtilizationPercentile(const std::string& cluster,
                               ResourceKind kind) const;

 private:
  struct RestoreTag {};
  Fleet(RestoreTag, std::vector<Cluster> clusters, TaskShape unit_costs,
        PlacementPolicy policy);

  std::size_t IndexOf(const std::string& cluster) const;

  std::vector<Cluster> clusters_;
  PoolRegistry registry_;
  TaskShape unit_costs_;
  PlacementPolicy policy_;
};

}  // namespace pm::cluster
