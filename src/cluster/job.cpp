#include "cluster/job.h"

#include "common/check.h"

namespace pm::cluster {

double TaskShape::Of(ResourceKind kind) const {
  switch (kind) {
    case ResourceKind::kCpu:
      return cpu;
    case ResourceKind::kRam:
      return ram_gb;
    case ResourceKind::kDisk:
      return disk_tb;
  }
  PM_CHECK_MSG(false, "unknown resource kind");
  return 0.0;
}

double& TaskShape::Of(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return cpu;
    case ResourceKind::kRam:
      return ram_gb;
    case ResourceKind::kDisk:
      return disk_tb;
  }
  PM_CHECK_MSG(false, "unknown resource kind");
  return cpu;
}

bool TaskShape::Fits(const TaskShape& other) const {
  return other.cpu <= cpu && other.ram_gb <= ram_gb &&
         other.disk_tb <= disk_tb;
}

TaskShape& TaskShape::operator+=(const TaskShape& other) {
  cpu += other.cpu;
  ram_gb += other.ram_gb;
  disk_tb += other.disk_tb;
  return *this;
}

TaskShape& TaskShape::operator-=(const TaskShape& other) {
  cpu -= other.cpu;
  ram_gb -= other.ram_gb;
  disk_tb -= other.disk_tb;
  return *this;
}

}  // namespace pm::cluster
