#include "cluster/machine.h"

#include <algorithm>

#include "common/check.h"

namespace pm::cluster {
namespace {

// Placement tolerance: one part in 1e9 of the dimension's capacity.
constexpr double kFitEps = 1e-9;

}  // namespace

Machine::Machine(TaskShape capacity) : capacity_(capacity) {
  PM_CHECK_MSG(capacity.cpu >= 0 && capacity.ram_gb >= 0 &&
                   capacity.disk_tb >= 0,
               "machine capacity must be non-negative");
}

bool Machine::CanFit(const TaskShape& shape) const {
  const TaskShape free = Free();
  return shape.cpu <= free.cpu + kFitEps * capacity_.cpu &&
         shape.ram_gb <= free.ram_gb + kFitEps * capacity_.ram_gb &&
         shape.disk_tb <= free.disk_tb + kFitEps * capacity_.disk_tb;
}

void Machine::Place(const TaskShape& shape) {
  PM_CHECK_MSG(CanFit(shape), "Place without CanFit");
  used_ += shape;
  // Clamp accumulated float error so used never exceeds capacity.
  used_.cpu = std::min(used_.cpu, capacity_.cpu);
  used_.ram_gb = std::min(used_.ram_gb, capacity_.ram_gb);
  used_.disk_tb = std::min(used_.disk_tb, capacity_.disk_tb);
}

void Machine::Remove(const TaskShape& shape) {
  used_ -= shape;
  PM_CHECK_MSG(used_.cpu >= -kFitEps * (capacity_.cpu + 1.0) &&
                   used_.ram_gb >= -kFitEps * (capacity_.ram_gb + 1.0) &&
                   used_.disk_tb >= -kFitEps * (capacity_.disk_tb + 1.0),
               "Remove of a task that was never placed");
  used_.cpu = std::max(used_.cpu, 0.0);
  used_.ram_gb = std::max(used_.ram_gb, 0.0);
  used_.disk_tb = std::max(used_.disk_tb, 0.0);
}

double Machine::Utilization(ResourceKind kind) const {
  const double cap = capacity_.Of(kind);
  if (cap <= 0.0) return 0.0;
  return used_.Of(kind) / cap;
}

double Machine::FillAfter(const TaskShape& shape) const {
  double fill = 0.0;
  for (ResourceKind kind : kAllResourceKinds) {
    const double cap = capacity_.Of(kind);
    if (cap <= 0.0) continue;
    fill = std::max(fill, (used_.Of(kind) + shape.Of(kind)) / cap);
  }
  return fill;
}

}  // namespace pm::cluster
