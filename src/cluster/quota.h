// planetmarket: quota accounting — the bridge from market to scheduler.
//
// §I: "The system operator must place hard limits on the CPU, disk,
// memory, etc. that each job or job class can use … These allocation
// limits are then mapped into the low-level scheduling algorithms used to
// actually assign jobs to units of physical hardware." In the market
// world those limits are no longer hand-set: the auction *grants* quota
// (bought bundles add, sold bundles release) and the placement layer
// checks usage against it. QuotaTable is that registry: per (team, pool)
// entitlements and usage, with the WouldExceed test the admission path
// consults before placing a job.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/job.h"
#include "common/types.h"

namespace pm::cluster {

/// Per-team, per-pool quota entitlements and usage.
///
/// Quantities are pool units (cores / GB / TB). Usage may be charged and
/// refunded as jobs come and go; entitlements change only through
/// Grant/Release (i.e. market settlement or operator fiat).
class QuotaTable {
 public:
  QuotaTable() = default;

  /// Adds entitlement. Negative deltas are rejected (use Release).
  void Grant(const std::string& team, PoolId pool, double units);

  /// Removes entitlement, clamping at zero (selling more than granted
  /// cannot create negative quota). Usage is NOT forced down: a team
  /// that sold quota out from under its running jobs is simply over
  /// quota until the physical capacity is vacated — exactly the state
  /// the market's migration step resolves.
  void Release(const std::string& team, PoolId pool, double units);

  /// Current entitlement (0 for unknown teams/pools).
  double EntitlementOf(const std::string& team, PoolId pool) const;

  /// Current charged usage (0 for unknown teams/pools).
  double UsageOf(const std::string& team, PoolId pool) const;

  /// Headroom = entitlement − usage (may be negative, see Release).
  double HeadroomOf(const std::string& team, PoolId pool) const;

  /// Whether charging `demand` (aggregate job demand, mapped onto the
  /// pools of `cluster` via `registry`) would push the team over quota
  /// in any dimension.
  bool WouldExceed(const std::string& team, const PoolRegistry& registry,
                   const std::string& cluster,
                   const TaskShape& demand) const;

  /// Charges usage for a placed job (no limit check — pair with
  /// WouldExceed for admission control).
  void Charge(const std::string& team, const PoolRegistry& registry,
              const std::string& cluster, const TaskShape& demand);

  /// Refunds usage for a removed job, clamping at zero.
  void Refund(const std::string& team, const PoolRegistry& registry,
              const std::string& cluster, const TaskShape& demand);

  /// True when the team is over quota in any pool (usage > entitlement
  /// beyond tolerance).
  bool OverQuota(const std::string& team, double tolerance = 1e-9) const;

  /// Teams with any recorded entitlement or usage, in first-seen order.
  std::vector<std::string> Teams() const;

  /// One (team, pool) cell, for checkpointing.
  struct Row {
    std::string team;
    PoolId pool = 0;
    double entitlement = 0.0;
    double usage = 0.0;
  };

  /// Every cell, teams in first-seen order and pools ascending within a
  /// team — a deterministic flattening of the table.
  std::vector<Row> ExportRows() const;

  /// Checkpoint restore into an empty table: replays rows so team order
  /// and cell values round-trip exactly.
  void RestoreRows(const std::vector<Row>& rows);

 private:
  struct Cell {
    double entitlement = 0.0;
    double usage = 0.0;
  };
  using PoolMap = std::unordered_map<PoolId, Cell>;

  Cell& CellOf(const std::string& team, PoolId pool);
  const Cell* FindCell(const std::string& team, PoolId pool) const;

  std::unordered_map<std::string, PoolMap> table_;
  std::vector<std::string> team_order_;
};

}  // namespace pm::cluster
