// planetmarket: jobs and task shapes.
//
// The market allocates *quota* (aggregate resources); the cluster substrate
// beneath it runs jobs against that quota. A job is a replicated service:
// `tasks` identical tasks, each demanding a fixed shape of CPU/RAM/disk,
// mirroring the task model of cluster managers in the paper's ecosystem.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace pm::cluster {

/// Unique job identifier within a fleet.
using JobId = std::uint64_t;

/// Per-task resource demand (also used for machine capacities).
struct TaskShape {
  double cpu = 0.0;      // cores
  double ram_gb = 0.0;   // gigabytes
  double disk_tb = 0.0;  // terabytes

  /// Component lookup by resource kind.
  double Of(ResourceKind kind) const;

  /// Mutable component lookup.
  double& Of(ResourceKind kind);

  /// True when every component of `other` fits within this shape.
  bool Fits(const TaskShape& other) const;

  TaskShape& operator+=(const TaskShape& other);
  TaskShape& operator-=(const TaskShape& other);
  friend TaskShape operator+(TaskShape a, const TaskShape& b) {
    return a += b;
  }
  friend TaskShape operator-(TaskShape a, const TaskShape& b) {
    return a -= b;
  }
  friend TaskShape operator*(TaskShape a, double k) {
    a.cpu *= k;
    a.ram_gb *= k;
    a.disk_tb *= k;
    return a;
  }

  bool operator==(const TaskShape& other) const = default;
};

/// Component-wise dot product — the §V.B reconfiguration-cost form: a
/// moved shape priced against per-unit cost weights.
inline double Dot(const TaskShape& a, const TaskShape& b) {
  return a.cpu * b.cpu + a.ram_gb * b.ram_gb + a.disk_tb * b.disk_tb;
}

/// Σ components, the unit-count of a shape (used where a scalar size is
/// needed, e.g. benefit gates over mixed-kind capacity).
inline double TotalUnits(const TaskShape& shape) {
  return shape.cpu + shape.ram_gb + shape.disk_tb;
}

/// A replicated job: `tasks` tasks of identical shape, owned by a team.
struct Job {
  JobId id = 0;
  std::string team;
  TaskShape shape;
  int tasks = 0;

  /// Aggregate demand across all tasks.
  TaskShape TotalDemand() const { return shape * tasks; }
};

}  // namespace pm::cluster
