// planetmarket: a cluster of machines hosting jobs.
//
// Clusters are the paper's location axis of the pool space: every cluster
// contributes one pool per resource kind ("CPUs in cluster 1"). A cluster
// owns its machines and its placed jobs, and reports the utilization
// metric ψ(r) that drives congestion-weighted reserve pricing (§IV).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/scheduler.h"

namespace pm::cluster {

/// A named cluster: machines + job placements.
class Cluster {
 public:
  Cluster(std::string name, std::vector<Machine> machines);

  /// Builds a homogeneous cluster of `num_machines` identical machines.
  static Cluster Homogeneous(std::string name, int num_machines,
                             const TaskShape& machine_capacity);

  const std::string& name() const { return name_; }

  /// Relabels the cluster. Only safe while the cluster is detached from
  /// any Fleet (names key a fleet's pool registry); the federation's
  /// rebalancer uses it to qualify migrated clusters ("r03@region-1").
  void SetName(std::string name) { name_ = std::move(name); }
  const std::vector<Machine>& machines() const { return machines_; }
  std::size_t NumMachines() const { return machines_.size(); }

  /// Tries to place every task of `job`. Atomic: on failure nothing
  /// changes and false is returned.
  bool AddJob(const Job& job, PlacementPolicy policy);

  /// Removes a job and frees its resources. Returns the job if present.
  std::optional<Job> RemoveJob(JobId id);

  /// Re-keys a placed job without touching its placement — the migration
  /// path uses it to move adopted jobs into the receiving market's job-id
  /// space (job ids are only unique per market). `to` must be free.
  void RenumberJob(JobId from, JobId to);

  /// Whether the given job currently runs here.
  bool HasJob(JobId id) const { return jobs_.count(id) > 0; }

  /// Jobs currently placed, in insertion order.
  std::vector<JobId> JobIds() const;

  const Job* FindJob(JobId id) const;

  /// Total capacity across machines for a resource kind.
  double Capacity(ResourceKind kind) const;

  /// Total usage across machines for a resource kind.
  double Used(ResourceKind kind) const;

  /// ψ for one dimension: Used/Capacity in [0, 1] (0 when no capacity).
  double Utilization(ResourceKind kind) const;

  /// Max utilization across dimensions — the binding constraint.
  double MaxUtilization() const;

  /// Headroom: capacity − used per dimension.
  double Free(ResourceKind kind) const;

  /// Would `job` fit right now (non-mutating check)?
  bool CanFit(const Job& job, PlacementPolicy policy) const;

  /// One placed job with its machine assignment, for checkpointing.
  struct PlacedJobRecord {
    Job job;
    PlacementResult placement;
  };

  /// Every placed job with its placement, in insertion order.
  std::vector<PlacedJobRecord> ExportJobs() const;

  /// Checkpoint restore: installs job records (in the order ExportJobs
  /// returned them) without re-running the bin-packer or touching machine
  /// usage — the machines are restored separately via RestoreUsed, so the
  /// pair round-trips float accumulation bit-exactly. The cluster must
  /// hold no jobs yet.
  void RestoreJobs(std::vector<PlacedJobRecord> records);

 private:
  struct PlacedJob {
    Job job;
    PlacementResult placement;
    std::size_t order;  // Insertion order for deterministic iteration.
  };

  std::string name_;
  std::vector<Machine> machines_;
  std::unordered_map<JobId, PlacedJob> jobs_;
  std::size_t next_order_ = 0;
};

}  // namespace pm::cluster
