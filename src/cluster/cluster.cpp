#include "cluster/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace pm::cluster {

Cluster::Cluster(std::string name, std::vector<Machine> machines)
    : name_(std::move(name)), machines_(std::move(machines)) {
  PM_CHECK_MSG(!name_.empty(), "cluster needs a name");
}

Cluster Cluster::Homogeneous(std::string name, int num_machines,
                             const TaskShape& machine_capacity) {
  PM_CHECK_MSG(num_machines > 0, "cluster needs at least one machine");
  std::vector<Machine> machines;
  machines.reserve(static_cast<std::size_t>(num_machines));
  for (int i = 0; i < num_machines; ++i) {
    machines.emplace_back(machine_capacity);
  }
  return Cluster(std::move(name), std::move(machines));
}

bool Cluster::AddJob(const Job& job, PlacementPolicy policy) {
  PM_CHECK_MSG(jobs_.count(job.id) == 0,
               "job " << job.id << " already in cluster " << name_);
  PlacementResult placement =
      PlaceTasks(machines_, job.shape, job.tasks, policy);
  if (!placement.Complete()) {
    UndoPlacement(machines_, job.shape, placement);
    return false;
  }
  jobs_.emplace(job.id, PlacedJob{job, std::move(placement), next_order_++});
  return true;
}

std::optional<Job> Cluster::RemoveJob(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  UndoPlacement(machines_, it->second.job.shape, it->second.placement);
  Job job = std::move(it->second.job);
  jobs_.erase(it);
  return job;
}

void Cluster::RenumberJob(JobId from, JobId to) {
  if (from == to) return;
  auto it = jobs_.find(from);
  PM_CHECK_MSG(it != jobs_.end(),
               "cannot renumber unknown job " << from << " in " << name_);
  PM_CHECK_MSG(jobs_.count(to) == 0,
               "job id " << to << " already taken in " << name_);
  PlacedJob placed = std::move(it->second);
  jobs_.erase(it);
  placed.job.id = to;
  jobs_.emplace(to, std::move(placed));
}

std::vector<JobId> Cluster::JobIds() const {
  std::vector<const PlacedJob*> placed;
  placed.reserve(jobs_.size());
  for (const auto& [id, pj] : jobs_) placed.push_back(&pj);
  std::sort(placed.begin(), placed.end(),
            [](const PlacedJob* a, const PlacedJob* b) {
              return a->order < b->order;
            });
  std::vector<JobId> ids;
  ids.reserve(placed.size());
  for (const PlacedJob* pj : placed) ids.push_back(pj->job.id);
  return ids;
}

const Job* Cluster::FindJob(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second.job;
}

double Cluster::Capacity(ResourceKind kind) const {
  double total = 0.0;
  for (const Machine& m : machines_) total += m.capacity().Of(kind);
  return total;
}

double Cluster::Used(ResourceKind kind) const {
  double total = 0.0;
  for (const Machine& m : machines_) total += m.used().Of(kind);
  return total;
}

double Cluster::Utilization(ResourceKind kind) const {
  const double cap = Capacity(kind);
  if (cap <= 0.0) return 0.0;
  return Used(kind) / cap;
}

double Cluster::MaxUtilization() const {
  double u = 0.0;
  for (ResourceKind kind : kAllResourceKinds) {
    u = std::max(u, Utilization(kind));
  }
  return u;
}

double Cluster::Free(ResourceKind kind) const {
  return Capacity(kind) - Used(kind);
}

std::vector<Cluster::PlacedJobRecord> Cluster::ExportJobs() const {
  std::vector<const PlacedJob*> placed;
  placed.reserve(jobs_.size());
  for (const auto& [id, pj] : jobs_) placed.push_back(&pj);
  std::sort(placed.begin(), placed.end(),
            [](const PlacedJob* a, const PlacedJob* b) {
              return a->order < b->order;
            });
  std::vector<PlacedJobRecord> records;
  records.reserve(placed.size());
  for (const PlacedJob* pj : placed) {
    records.push_back(PlacedJobRecord{pj->job, pj->placement});
  }
  return records;
}

void Cluster::RestoreJobs(std::vector<PlacedJobRecord> records) {
  PM_CHECK_MSG(jobs_.empty(),
               "RestoreJobs into non-empty cluster " << name_);
  next_order_ = 0;
  for (PlacedJobRecord& record : records) {
    const JobId id = record.job.id;
    PM_CHECK_MSG(jobs_.count(id) == 0,
                 "duplicate job " << id << " in restore of " << name_);
    jobs_.emplace(id, PlacedJob{std::move(record.job),
                                std::move(record.placement), next_order_++});
  }
}

bool Cluster::CanFit(const Job& job, PlacementPolicy policy) const {
  // Trial placement on a copy of the machine state. Machine copies are
  // cheap (two shapes); clusters have O(100..1000) machines.
  std::vector<Machine> scratch = machines_;
  const PlacementResult r = PlaceTasks(scratch, job.shape, job.tasks,
                                       policy);
  return r.Complete();
}

}  // namespace pm::cluster
