// planetmarket: task-to-machine placement policies.
//
// The market's provisioning layer sits above a per-cluster scheduler
// ("these allocation limits are then mapped into the low-level scheduling
// algorithms used to actually assign jobs to units of physical hardware",
// §I). This module implements the classic online bin-packing policies; the
// fleet uses them to answer "does this job actually fit in that cluster?",
// which is what makes utilization ψ(r) a real, packing-constrained number
// rather than a bookkeeping fiction.
#pragma once

#include <string_view>
#include <vector>

#include "cluster/machine.h"

namespace pm::cluster {

/// Placement policy for choosing among machines that can fit a task.
enum class PlacementPolicy {
  kFirstFit,  // Lowest-index machine that fits.
  kBestFit,   // Machine left tightest (max dimension fill) after placing.
  kWorstFit,  // Machine left loosest after placing (load spreading).
};

std::string_view ToString(PlacementPolicy policy);

/// Result of placing a multi-task job onto a machine set.
struct PlacementResult {
  /// tasks_placed[i] tasks went onto machine i. Same size as the machine
  /// vector passed in.
  std::vector<int> tasks_placed;

  /// Tasks that could not be placed anywhere.
  int tasks_failed = 0;

  bool Complete() const { return tasks_failed == 0; }

  int TotalPlaced() const;
};

/// Places `count` tasks of `shape` one at a time using `policy`, mutating
/// `machines`. Returns where each task went. Placement is all-or-nothing
/// per *task* but not per job: callers wanting atomic job placement check
/// Complete() and call UndoPlacement on failure.
PlacementResult PlaceTasks(std::vector<Machine>& machines,
                           const TaskShape& shape, int count,
                           PlacementPolicy policy);

/// Reverts a placement previously returned by PlaceTasks with the same
/// shape.
void UndoPlacement(std::vector<Machine>& machines, const TaskShape& shape,
                   const PlacementResult& placement);

}  // namespace pm::cluster
