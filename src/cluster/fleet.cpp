#include "cluster/fleet.h"

#include <algorithm>

#include "common/check.h"
#include "stats/descriptive.h"

namespace pm::cluster {

Fleet::Fleet(std::vector<Cluster> clusters, TaskShape unit_costs,
             PlacementPolicy policy)
    : clusters_(std::move(clusters)),
      unit_costs_(unit_costs),
      policy_(policy) {
  PM_CHECK_MSG(!clusters_.empty(), "fleet needs at least one cluster");
  PM_CHECK_MSG(unit_costs_.cpu > 0 && unit_costs_.ram_gb > 0 &&
                   unit_costs_.disk_tb > 0,
               "unit costs must be positive");
  // Intern pools cluster-major, kind-minor so PoolIds group by cluster.
  for (const Cluster& c : clusters_) {
    for (ResourceKind kind : kAllResourceKinds) {
      registry_.Intern(c.name(), kind);
    }
  }
  PM_CHECK_MSG(registry_.size() ==
                   clusters_.size() * kNumResourceKinds,
               "duplicate cluster names in fleet");
}

Fleet::Fleet(RestoreTag, std::vector<Cluster> clusters,
             TaskShape unit_costs, PlacementPolicy policy)
    : clusters_(std::move(clusters)),
      unit_costs_(unit_costs),
      policy_(policy) {}

Fleet Fleet::FromState(std::vector<Cluster> clusters,
                       const std::vector<PoolKey>& pool_order,
                       TaskShape unit_costs, PlacementPolicy policy) {
  PM_CHECK_MSG(!clusters.empty(), "fleet needs at least one cluster");
  Fleet fleet(RestoreTag{}, std::move(clusters), unit_costs, policy);
  for (std::size_t i = 0; i < pool_order.size(); ++i) {
    const PoolId id = fleet.registry_.Intern(pool_order[i]);
    PM_CHECK_MSG(id == i, "duplicate pool in saved interning order: "
                              << ToString(pool_order[i]));
  }
  for (const Cluster& c : fleet.clusters_) {
    for (ResourceKind kind : kAllResourceKinds) {
      PM_CHECK_MSG(fleet.registry_.Find(PoolKey{c.name(), kind}).has_value(),
                   "restored cluster '" << c.name()
                                        << "' missing from pool order");
    }
  }
  return fleet;
}

std::vector<std::string> Fleet::ClusterNames() const {
  std::vector<std::string> names;
  names.reserve(clusters_.size());
  for (const Cluster& c : clusters_) names.push_back(c.name());
  return names;
}

std::size_t Fleet::IndexOf(const std::string& cluster) const {
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (clusters_[i].name() == cluster) return i;
  }
  PM_CHECK_MSG(false, "unknown cluster '" << cluster << "'");
  return 0;
}

Cluster& Fleet::ClusterByName(const std::string& name) {
  return clusters_[IndexOf(name)];
}

const Cluster& Fleet::ClusterByName(const std::string& name) const {
  return clusters_[IndexOf(name)];
}

bool Fleet::HasCluster(const std::string& name) const {
  return std::any_of(clusters_.begin(), clusters_.end(),
                     [&](const Cluster& c) { return c.name() == name; });
}

std::vector<double> Fleet::CapacityVector() const {
  std::vector<double> v(registry_.size(), 0.0);
  for (const Cluster& c : clusters_) {
    for (ResourceKind kind : kAllResourceKinds) {
      const auto id = registry_.Find(PoolKey{c.name(), kind});
      PM_CHECK(id.has_value());
      v[*id] = c.Capacity(kind);
    }
  }
  return v;
}

std::vector<double> Fleet::UsedVector() const {
  std::vector<double> v(registry_.size(), 0.0);
  for (const Cluster& c : clusters_) {
    for (ResourceKind kind : kAllResourceKinds) {
      const auto id = registry_.Find(PoolKey{c.name(), kind});
      PM_CHECK(id.has_value());
      v[*id] = c.Used(kind);
    }
  }
  return v;
}

std::vector<double> Fleet::FreeVector() const {
  std::vector<double> capacity = CapacityVector();
  const std::vector<double> used = UsedVector();
  for (std::size_t i = 0; i < capacity.size(); ++i) {
    capacity[i] = std::max(0.0, capacity[i] - used[i]);
  }
  return capacity;
}

std::vector<double> Fleet::UtilizationVector() const {
  std::vector<double> v(registry_.size(), 0.0);
  for (const Cluster& c : clusters_) {
    for (ResourceKind kind : kAllResourceKinds) {
      const auto id = registry_.Find(PoolKey{c.name(), kind});
      PM_CHECK(id.has_value());
      v[*id] = c.Utilization(kind);
    }
  }
  return v;
}

std::vector<double> Fleet::CostVector() const {
  std::vector<double> v(registry_.size(), 0.0);
  for (PoolId id = 0; id < registry_.size(); ++id) {
    v[id] = unit_costs_.Of(registry_.KeyOf(id).kind);
  }
  return v;
}

TaskShape Fleet::FreeShape(const std::string& cluster) const {
  const Cluster& c = ClusterByName(cluster);
  TaskShape shape;
  for (ResourceKind kind : kAllResourceKinds) {
    shape.Of(kind) = c.Free(kind);
  }
  return shape;
}

Cluster Fleet::ExtractCluster(const std::string& name) {
  PM_CHECK_MSG(clusters_.size() > 1,
               "cannot extract the fleet's last cluster");
  const std::size_t index = IndexOf(name);
  Cluster out = std::move(clusters_[index]);
  clusters_.erase(clusters_.begin() +
                  static_cast<std::ptrdiff_t>(index));
  return out;
}

void Fleet::AdoptCluster(Cluster cluster) {
  PM_CHECK_MSG(!HasCluster(cluster.name()),
               "fleet already has a live cluster named '"
                   << cluster.name() << "'");
  for (ResourceKind kind : kAllResourceKinds) {
    registry_.Intern(cluster.name(), kind);
  }
  clusters_.push_back(std::move(cluster));
}

bool Fleet::AddJob(const std::string& cluster, const Job& job) {
  return ClusterByName(cluster).AddJob(job, policy_);
}

std::optional<Job> Fleet::RemoveJob(JobId id) {
  for (Cluster& c : clusters_) {
    if (c.HasJob(id)) return c.RemoveJob(id);
  }
  return std::nullopt;
}

bool Fleet::MoveJob(JobId id, const std::string& to_cluster) {
  Cluster& dest = ClusterByName(to_cluster);
  for (Cluster& c : clusters_) {
    if (!c.HasJob(id)) continue;
    if (&c == &dest) return true;  // Already there.
    std::optional<Job> job = c.RemoveJob(id);
    PM_CHECK(job.has_value());
    if (dest.AddJob(*job, policy_)) return true;
    // Destination full: put it back. The source must still fit it, since
    // removal freed exactly the space the job occupied.
    const bool restored = c.AddJob(*job, policy_);
    PM_CHECK_MSG(restored, "failed to restore job " << id
                                                    << " after aborted move");
    return false;
  }
  return false;
}

std::string Fleet::LocateJob(JobId id) const {
  for (const Cluster& c : clusters_) {
    if (c.HasJob(id)) return c.name();
  }
  return {};
}

std::vector<JobLocation> Fleet::AllJobs() const {
  std::vector<JobLocation> out;
  for (const Cluster& c : clusters_) {
    for (JobId id : c.JobIds()) {
      out.push_back(JobLocation{id, c.name()});
    }
  }
  return out;
}

double Fleet::FleetUtilization(ResourceKind kind) const {
  double used = 0.0, cap = 0.0;
  for (const Cluster& c : clusters_) {
    used += c.Used(kind);
    cap += c.Capacity(kind);
  }
  if (cap <= 0.0) return 0.0;
  return used / cap;
}

double Fleet::UtilizationPercentile(const std::string& cluster,
                                    ResourceKind kind) const {
  std::vector<double> utils;
  utils.reserve(clusters_.size());
  double target = 0.0;
  for (const Cluster& c : clusters_) {
    const double u = c.Utilization(kind);
    utils.push_back(u);
    if (c.name() == cluster) target = u;
  }
  PM_CHECK_MSG(HasCluster(cluster), "unknown cluster '" << cluster << "'");
  return stats::PercentileRank(utils, target);
}

}  // namespace pm::cluster
