#include "cluster/quota.h"

#include <algorithm>

#include "common/check.h"

namespace pm::cluster {

QuotaTable::Cell& QuotaTable::CellOf(const std::string& team,
                                     PoolId pool) {
  auto [it, inserted] = table_.try_emplace(team);
  if (inserted) team_order_.push_back(team);
  return it->second[pool];
}

const QuotaTable::Cell* QuotaTable::FindCell(const std::string& team,
                                             PoolId pool) const {
  const auto team_it = table_.find(team);
  if (team_it == table_.end()) return nullptr;
  const auto pool_it = team_it->second.find(pool);
  if (pool_it == team_it->second.end()) return nullptr;
  return &pool_it->second;
}

void QuotaTable::Grant(const std::string& team, PoolId pool,
                       double units) {
  PM_CHECK_MSG(units >= 0.0, "negative grant of " << units
                                                  << " (use Release)");
  CellOf(team, pool).entitlement += units;
}

void QuotaTable::Release(const std::string& team, PoolId pool,
                         double units) {
  PM_CHECK_MSG(units >= 0.0, "negative release of " << units);
  Cell& cell = CellOf(team, pool);
  cell.entitlement = std::max(0.0, cell.entitlement - units);
}

double QuotaTable::EntitlementOf(const std::string& team,
                                 PoolId pool) const {
  const Cell* cell = FindCell(team, pool);
  return cell == nullptr ? 0.0 : cell->entitlement;
}

double QuotaTable::UsageOf(const std::string& team, PoolId pool) const {
  const Cell* cell = FindCell(team, pool);
  return cell == nullptr ? 0.0 : cell->usage;
}

double QuotaTable::HeadroomOf(const std::string& team,
                              PoolId pool) const {
  const Cell* cell = FindCell(team, pool);
  return cell == nullptr ? 0.0 : cell->entitlement - cell->usage;
}

bool QuotaTable::WouldExceed(const std::string& team,
                             const PoolRegistry& registry,
                             const std::string& cluster,
                             const TaskShape& demand) const {
  for (ResourceKind kind : kAllResourceKinds) {
    const double amount = demand.Of(kind);
    if (amount <= 0.0) continue;
    const auto pool = registry.Find(PoolKey{cluster, kind});
    if (!pool.has_value()) return true;  // Unknown pool: never admitted.
    if (amount > HeadroomOf(team, *pool) + 1e-9) return true;
  }
  return false;
}

void QuotaTable::Charge(const std::string& team,
                        const PoolRegistry& registry,
                        const std::string& cluster,
                        const TaskShape& demand) {
  for (ResourceKind kind : kAllResourceKinds) {
    const double amount = demand.Of(kind);
    if (amount <= 0.0) continue;
    const auto pool = registry.Find(PoolKey{cluster, kind});
    PM_CHECK_MSG(pool.has_value(), "charging quota in unknown pool "
                                       << ToString(kind) << "@" << cluster);
    CellOf(team, *pool).usage += amount;
  }
}

void QuotaTable::Refund(const std::string& team,
                        const PoolRegistry& registry,
                        const std::string& cluster,
                        const TaskShape& demand) {
  for (ResourceKind kind : kAllResourceKinds) {
    const double amount = demand.Of(kind);
    if (amount <= 0.0) continue;
    const auto pool = registry.Find(PoolKey{cluster, kind});
    if (!pool.has_value()) continue;
    Cell& cell = CellOf(team, *pool);
    cell.usage = std::max(0.0, cell.usage - amount);
  }
}

bool QuotaTable::OverQuota(const std::string& team,
                           double tolerance) const {
  const auto team_it = table_.find(team);
  if (team_it == table_.end()) return false;
  for (const auto& [pool, cell] : team_it->second) {
    if (cell.usage > cell.entitlement + tolerance) return true;
  }
  return false;
}

std::vector<std::string> QuotaTable::Teams() const { return team_order_; }

std::vector<QuotaTable::Row> QuotaTable::ExportRows() const {
  std::vector<Row> rows;
  for (const std::string& team : team_order_) {
    const auto team_it = table_.find(team);
    PM_CHECK(team_it != table_.end());
    std::vector<PoolId> pools;
    pools.reserve(team_it->second.size());
    for (const auto& [pool, cell] : team_it->second) pools.push_back(pool);
    std::sort(pools.begin(), pools.end());
    for (PoolId pool : pools) {
      const Cell& cell = team_it->second.at(pool);
      rows.push_back(Row{team, pool, cell.entitlement, cell.usage});
    }
  }
  return rows;
}

void QuotaTable::RestoreRows(const std::vector<Row>& rows) {
  PM_CHECK_MSG(table_.empty() && team_order_.empty(),
               "RestoreRows into a non-empty quota table");
  for (const Row& row : rows) {
    Cell& cell = CellOf(row.team, row.pool);
    cell.entitlement = row.entitlement;
    cell.usage = row.usage;
  }
}

}  // namespace pm::cluster
