// planetmarket: plain-text table and CSV rendering.
//
// Every bench binary reproducing a paper table/figure prints its rows
// through TextTable (for the console) and optionally CsvWriter (for
// downstream plotting), so all experiment output is uniform and parseable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pm {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Builds an aligned, box-drawn text table:
///
///   TextTable t({"cluster", "price"});
///   t.AddRow({"r1", "1.23"});
///   std::cout << t.Render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Sets per-column alignment; default is kRight for every column except
  /// the first (kLeft).
  void SetAlign(std::size_t column, Align align);

  /// Appends a data row. Must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal rule between the previously added row and the
  /// next one (used to group sections).
  void AddRule();

  /// Number of data rows added so far.
  std::size_t NumRows() const { return rows_.size(); }

  /// Renders the full table, ending with a newline.
  std::string Render() const;

 private:
  struct Row {
    std::vector<std::string> cells;  // Empty cells vector encodes a rule.
    bool is_rule = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

/// Formats a double with `digits` decimal places ("3.142").
std::string FormatF(double value, int digits);

/// Formats a double as a percentage with `digits` decimals ("61.8%").
/// The input is a fraction: 0.618 → "61.8%".
std::string FormatPct(double fraction, int digits);

/// Streams rows as RFC-4180-ish CSV (fields containing commas, quotes or
/// newlines are quoted; quotes doubled).
class CsvWriter {
 public:
  /// Writes to `os`, which must outlive the writer.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row.
  void WriteRow(const std::vector<std::string>& cells);

 private:
  static std::string Escape(const std::string& field);

  std::ostream& os_;
};

}  // namespace pm
