#include "common/bench_meta.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <sstream>
#include <thread>

namespace pm {
namespace {

std::string GitSha() {
  // Benches run from the build directory, which lives inside the
  // checkout; outside any repo (or without git) this degrades to
  // "unknown" rather than failing the bench. `--dirty` marks artifacts
  // produced from an uncommitted tree — the stamped commit alone would
  // misattribute those numbers.
  FILE* pipe = ::popen(
      "git describe --always --dirty --abbrev=12 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[64] = {0};
  std::string sha;
  if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    sha = buffer;
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
  }
  ::pclose(pipe);
  return sha.empty() ? "unknown" : sha;
}

std::string UtcNow() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  if (::gmtime_r(&now, &tm) == nullptr) return "unknown";
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buffer;
}

}  // namespace

HostMetadata CollectHostMetadata() {
  HostMetadata meta;
  meta.hardware_concurrency = std::thread::hardware_concurrency();
  // hardware_concurrency() == 0 means "unknown", not "one core": only a
  // measured single core earns the caveat.
  meta.single_vcpu = meta.hardware_concurrency == 1;
  meta.git_sha = GitSha();
  meta.timestamp_utc = UtcNow();
  return meta;
}

std::string HostMetadataJson(const HostMetadata& meta) {
  std::ostringstream os;
  os << "{\"hardware_concurrency\": " << meta.hardware_concurrency
     << ", \"single_vcpu\": " << (meta.single_vcpu ? "true" : "false")
     << ", \"git_sha\": \"" << meta.git_sha << "\""
     << ", \"timestamp_utc\": \"" << meta.timestamp_utc << "\"";
  if (meta.single_vcpu) {
    os << ", \"caveat\": \"single vCPU host: pooled/threaded timings "
          "cannot beat serial here; re-run on a multi-core host\"";
  }
  os << "}";
  return os.str();
}

std::string HostMetadataJson() {
  return HostMetadataJson(CollectHostMetadata());
}

unsigned ParseThreadsFlag(int* argc, char** argv, unsigned fallback) {
  unsigned threads = fallback;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < *argc) {
      threads = static_cast<unsigned>(
          std::max(0, std::atoi(argv[++i])));
      continue;  // Consumed the flag and its value.
    }
    if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<unsigned>(
          std::max(0, std::atoi(arg.c_str() + 10)));
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return threads;
}

std::string SectionHostJson(const HostMetadata& meta,
                            bool needs_parallelism) {
  std::ostringstream os;
  os << "{\"invalid_on_single_vcpu\": "
     << (needs_parallelism ? "true" : "false")
     << ", \"single_vcpu_host\": " << (meta.single_vcpu ? "true" : "false")
     << ", \"hardware_concurrency\": " << meta.hardware_concurrency << "}";
  return os.str();
}

std::string SectionHostJson(bool needs_parallelism) {
  return SectionHostJson(CollectHostMetadata(), needs_parallelism);
}

}  // namespace pm
