#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace pm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PM_CHECK(!headers_.empty());
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TextTable::SetAlign(std::size_t column, Align align) {
  PM_CHECK_MSG(column < aligns_.size(), "column " << column << " of "
                                                  << aligns_.size());
  aligns_[column] = align;
}

void TextTable::AddRow(std::vector<std::string> cells) {
  PM_CHECK_MSG(cells.size() == headers_.size(),
               "row has " << cells.size() << " cells, table has "
                          << headers_.size() << " columns");
  rows_.push_back(Row{std::move(cells), /*is_rule=*/false});
}

void TextTable::AddRule() { rows_.push_back(Row{{}, /*is_rule=*/true}); }

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.is_rule) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto pad = [&](const std::string& text, std::size_t c) {
    std::string out;
    const std::size_t fill = widths[c] - std::min(widths[c], text.size());
    if (aligns_[c] == Align::kRight) out.append(fill, ' ');
    out += text;
    if (aligns_[c] == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  auto rule = [&] {
    std::string out = "+";
    for (std::size_t w : widths) {
      out.append(w + 2, '-');
      out += '+';
    }
    out += '\n';
    return out;
  };

  std::ostringstream os;
  os << rule();
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << pad(headers_[c], c) << " |";
  }
  os << '\n' << rule();
  for (const Row& row : rows_) {
    if (row.is_rule) {
      os << rule();
      continue;
    }
    os << "|";
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      os << ' ' << pad(row.cells[c], c) << " |";
    }
    os << '\n';
  }
  os << rule();
  return os.str();
}

std::string FormatF(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatPct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << Escape(cells[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::Escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace pm
