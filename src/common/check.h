// planetmarket: runtime checking utilities.
//
// PM_CHECK is used for conditions that indicate a programming error or a
// violated invariant; it throws pm::CheckFailure (derived from
// std::logic_error) carrying the failing expression and location. Expected,
// recoverable failures (e.g. a bid that fails validation) are reported
// through status-style return values instead, never through these macros.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pm {

/// Raised by PM_CHECK on a violated invariant. Deriving from
/// std::logic_error signals "bug in the calling code", not an environmental
/// failure.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "PM_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace internal
}  // namespace pm

/// Aborts (by throwing pm::CheckFailure) when `cond` is false.
#define PM_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond))                                                      \
      ::pm::internal::CheckFailed(#cond, __FILE__, __LINE__, "");     \
  } while (0)

/// PM_CHECK with an extra streamed message, e.g.
///   PM_CHECK_MSG(i < n, "index " << i << " out of range " << n);
#define PM_CHECK_MSG(cond, stream_expr)                               \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream pm_check_os_;                                \
      pm_check_os_ << stream_expr;                                    \
      ::pm::internal::CheckFailed(#cond, __FILE__, __LINE__,          \
                                  pm_check_os_.str());                \
    }                                                                 \
  } while (0)
