#include "common/types.h"

#include <algorithm>
#include <functional>

#include "common/check.h"

namespace pm {

std::string_view ToString(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cpu";
    case ResourceKind::kRam:
      return "ram";
    case ResourceKind::kDisk:
      return "disk";
  }
  return "unknown";
}

std::optional<ResourceKind> ParseResourceKind(std::string_view name) {
  if (name == "cpu") return ResourceKind::kCpu;
  if (name == "ram") return ResourceKind::kRam;
  if (name == "disk") return ResourceKind::kDisk;
  return std::nullopt;
}

std::string_view UnitOf(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cores";
    case ResourceKind::kRam:
      return "GB";
    case ResourceKind::kDisk:
      return "TB";
  }
  return "units";
}

std::string ToString(const PoolKey& key) {
  std::string out(ToString(key.kind));
  out += '@';
  out += key.cluster;
  return out;
}

std::size_t PoolRegistry::KeyHash::operator()(
    const PoolKey& k) const noexcept {
  std::size_t h = std::hash<std::string>{}(k.cluster);
  // Boost-style hash combine with the kind.
  h ^= std::hash<int>{}(static_cast<int>(k.kind)) + 0x9e3779b97f4a7c15ULL +
       (h << 6) + (h >> 2);
  return h;
}

PoolId PoolRegistry::Intern(const PoolKey& key) {
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const PoolId id = static_cast<PoolId>(keys_.size());
  keys_.push_back(key);
  index_.emplace(key, id);
  return id;
}

std::optional<PoolId> PoolRegistry::Find(const PoolKey& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const PoolKey& PoolRegistry::KeyOf(PoolId id) const {
  PM_CHECK_MSG(id < keys_.size(),
               "PoolId " << id << " out of range " << keys_.size());
  return keys_[id];
}

std::vector<PoolId> PoolRegistry::PoolsInCluster(
    std::string_view cluster) const {
  std::vector<PoolId> out;
  for (PoolId id = 0; id < keys_.size(); ++id) {
    if (keys_[id].cluster == cluster) out.push_back(id);
  }
  return out;
}

std::vector<PoolId> PoolRegistry::PoolsOfKind(ResourceKind kind) const {
  std::vector<PoolId> out;
  for (PoolId id = 0; id < keys_.size(); ++id) {
    if (keys_[id].kind == kind) out.push_back(id);
  }
  return out;
}

std::vector<std::string> PoolRegistry::Clusters() const {
  std::vector<std::string> out;
  for (const PoolKey& key : keys_) {
    if (std::find(out.begin(), out.end(), key.cluster) == out.end()) {
      out.push_back(key.cluster);
    }
  }
  return out;
}

}  // namespace pm
