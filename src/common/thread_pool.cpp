#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <latch>
#include <memory>

#include "common/check.h"

namespace pm {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PM_CHECK_MSG(!shutting_down_, "Post after ThreadPool shutdown");
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> fut = done->get_future();
  Post([done, fn = std::move(fn)] {
    try {
      fn();
      done->set_value();
    } catch (...) {
      done->set_exception(std::current_exception());
    }
  });
  return fut;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting_down_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // Post contract: must not throw.
  }
}

namespace {

/// Shared state of one ParallelFor call. Heap-allocated and owned jointly
/// by the caller and every helper task, so the latch outlives whichever
/// participant touches it last.
struct ParallelForState {
  std::atomic<std::size_t> next_chunk{0};
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::latch done;
  std::mutex err_mu;
  std::exception_ptr error;

  explicit ParallelForState(std::ptrdiff_t helpers) : done(helpers) {}

  /// Claims and runs chunks until the range is exhausted.
  void Drain() {
    for (;;) {
      const std::size_t c =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      const std::size_t lo = begin + c * chunk;
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        for (std::size_t i = lo; i < hi; ++i) (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!error) error = std::current_exception();
      }
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (pool == nullptr || pool->size() <= 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Chunks several times smaller than a per-worker split keep the workers
  // load-balanced when iteration costs are uneven, while the atomic
  // counter keeps claiming one chunk O(1).
  const std::size_t chunk =
      std::max<std::size_t>(1, count / (8 * (pool->size() + 1)));
  const std::size_t num_chunks = (count + chunk - 1) / chunk;
  const std::size_t helpers =
      std::min(pool->size(), num_chunks > 1 ? num_chunks - 1 : 0);
  auto state = std::make_shared<ParallelForState>(
      static_cast<std::ptrdiff_t>(helpers));
  state->begin = begin;
  state->end = end;
  state->chunk = chunk;
  state->fn = &fn;
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->Post([state] {
      state->Drain();
      state->done.count_down();
    });
  }
  state->Drain();  // The caller works too instead of blocking idle.
  state->done.wait();
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace pm
