#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

#include "common/check.h"

namespace pm {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    PM_CHECK_MSG(!shutting_down_, "Submit after ThreadPool shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting_down_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // Exceptions are captured into the packaged_task's future.
  }
}

void ParallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (pool == nullptr || pool->size() <= 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Split into one contiguous block per worker (demand evaluation per user
  // is cheap and uniform enough that static partitioning wins over a
  // finer-grained dynamic scheme).
  const std::size_t blocks = std::min(pool->size(), count);
  const std::size_t base = count / blocks;
  const std::size_t extra = count % blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  std::size_t lo = begin;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t len = base + (b < extra ? 1 : 0);
    const std::size_t hi = lo + len;
    futures.push_back(pool->Submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
    lo = hi;
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pm
