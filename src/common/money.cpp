#include "common/money.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/check.h"

namespace pm {

Money Money::FromDollarsRounded(double dollars) {
  PM_CHECK_MSG(std::isfinite(dollars),
               "cannot convert non-finite amount " << dollars << " to Money");
  const double micros = dollars * static_cast<double>(kMicrosPerDollar);
  // Round half away from zero; std::llround has exactly this behaviour.
  return Money(static_cast<std::int64_t>(std::llround(micros)));
}

std::string Money::ToString() const {
  const std::int64_t abs = micros_ < 0 ? -micros_ : micros_;
  const std::int64_t whole = abs / kMicrosPerDollar;
  const std::int64_t frac = abs % kMicrosPerDollar;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s$%lld.%06lld", micros_ < 0 ? "-" : "",
                static_cast<long long>(whole), static_cast<long long>(frac));
  return buf;
}

std::ostream& operator<<(std::ostream& os, Money m) {
  return os << m.ToString();
}

}  // namespace pm
