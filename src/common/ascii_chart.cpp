#include "common/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace pm {
namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    if (!std::isfinite(v)) return;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }

  bool Valid() const { return lo <= hi; }

  /// Widens degenerate ranges so mapping to columns is well defined.
  void Inflate() {
    if (!Valid()) {
      lo = 0.0;
      hi = 1.0;
    } else if (hi - lo < 1e-12) {
      lo -= 0.5;
      hi += 0.5;
    }
  }
};

std::string FormatTick(double v) {
  char buf[32];
  if (std::abs(v) >= 1000.0 || (std::abs(v) < 0.01 && v != 0.0)) {
    std::snprintf(buf, sizeof(buf), "%.2e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

int Col(double v, const Range& r, int width) {
  const double t = (v - r.lo) / (r.hi - r.lo);
  const int c = static_cast<int>(std::lround(t * (width - 1)));
  return std::clamp(c, 0, width - 1);
}

}  // namespace

std::string RenderLineChart(const std::vector<ChartSeries>& series,
                            const ChartOptions& options) {
  PM_CHECK(options.width >= 8 && options.height >= 4);
  Range xr, yr;
  for (const ChartSeries& s : series) {
    PM_CHECK_MSG(s.xs.size() == s.ys.size(),
                 "series '" << s.label << "' has mismatched xs/ys");
    for (double x : s.xs) xr.Add(x);
    for (double y : s.ys) yr.Add(y);
  }
  xr.Inflate();
  yr.Inflate();

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (const ChartSeries& s : series) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i])) continue;
      const int c = Col(s.xs[i], xr, w);
      const int row = h - 1 - Col(s.ys[i], yr, h);
      grid[row][c] = s.glyph;
    }
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  const std::string y_hi = FormatTick(yr.hi);
  const std::string y_lo = FormatTick(yr.lo);
  const std::size_t margin = std::max(y_hi.size(), y_lo.size()) + 1;
  for (int row = 0; row < h; ++row) {
    std::string label;
    if (row == 0) {
      label = y_hi;
    } else if (row == h - 1) {
      label = y_lo;
    }
    os << std::string(margin - label.size(), ' ') << label << '|'
       << grid[row] << '\n';
  }
  os << std::string(margin, ' ') << '+' << std::string(w, '-') << '\n';
  const std::string x_lo = FormatTick(xr.lo);
  const std::string x_hi = FormatTick(xr.hi);
  os << std::string(margin + 1, ' ') << x_lo;
  const std::size_t used = margin + 1 + x_lo.size();
  const std::size_t total = margin + 1 + static_cast<std::size_t>(w);
  if (total > used + x_hi.size()) {
    os << std::string(total - used - x_hi.size(), ' ');
  } else {
    os << ' ';
  }
  os << x_hi << '\n';
  if (!options.x_label.empty()) {
    os << std::string(margin + 1, ' ') << options.x_label << '\n';
  }
  for (const ChartSeries& s : series) {
    os << std::string(margin + 1, ' ') << s.glyph << " = " << s.label
       << '\n';
  }
  return os.str();
}

std::string RenderBarChart(const std::vector<Bar>& bars,
                           const ChartOptions& options, double reference) {
  PM_CHECK(options.width >= 8);
  Range vr;
  vr.Add(0.0);
  for (const Bar& b : bars) vr.Add(b.value);
  if (std::isfinite(reference)) vr.Add(reference);
  vr.Inflate();

  std::size_t label_width = 0;
  for (const Bar& b : bars) label_width = std::max(label_width,
                                                   b.label.size());

  const int w = options.width;
  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  const int ref_col =
      std::isfinite(reference) ? Col(reference, vr, w) : -1;
  for (const Bar& b : bars) {
    os << b.label << std::string(label_width - b.label.size(), ' ')
       << " |";
    const int fill = Col(b.value, vr, w);
    std::string lane(w, ' ');
    for (int c = 0; c <= fill; ++c) lane[c] = '#';
    if (ref_col >= 0 && lane[ref_col] == ' ') lane[ref_col] = ':';
    os << lane << "| " << FormatTick(b.value) << '\n';
  }
  if (ref_col >= 0) {
    os << std::string(label_width, ' ') << "  "
       << std::string(ref_col, ' ') << "^ reference = "
       << FormatTick(reference) << '\n';
  }
  return os.str();
}

std::string RenderBoxplots(const std::vector<BoxplotSpec>& boxes,
                           const ChartOptions& options) {
  PM_CHECK(options.width >= 16);
  Range vr;
  for (const BoxplotSpec& b : boxes) {
    vr.Add(b.whisker_lo);
    vr.Add(b.whisker_hi);
    for (double o : b.outliers) vr.Add(o);
  }
  vr.Inflate();

  std::size_t label_width = 0;
  for (const BoxplotSpec& b : boxes) {
    label_width = std::max(label_width, b.label.size());
  }

  const int w = options.width;
  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  for (const BoxplotSpec& b : boxes) {
    std::string lane(w, ' ');
    const int lo = Col(b.whisker_lo, vr, w);
    const int q1 = Col(b.q1, vr, w);
    const int med = Col(b.median, vr, w);
    const int q3 = Col(b.q3, vr, w);
    const int hi = Col(b.whisker_hi, vr, w);
    for (int c = lo; c <= hi; ++c) lane[c] = '-';
    for (int c = q1; c <= q3; ++c) lane[c] = '=';
    lane[lo] = '|';
    lane[hi] = '|';
    lane[med] = 'M';
    for (double v : b.outliers) {
      const int c = Col(v, vr, w);
      if (lane[c] == ' ' || lane[c] == '-') lane[c] = 'o';
    }
    os << b.label << std::string(label_width - b.label.size(), ' ')
       << " [" << lane << "]\n";
  }
  os << std::string(label_width, ' ') << "  " << FormatTick(vr.lo);
  const std::string hi_txt = FormatTick(vr.hi);
  const std::size_t pad = static_cast<std::size_t>(w) >
      (FormatTick(vr.lo).size() + hi_txt.size())
          ? static_cast<std::size_t>(w) - FormatTick(vr.lo).size() -
                hi_txt.size()
          : 1;
  os << std::string(pad, ' ') << hi_txt << '\n';
  os << std::string(label_width, ' ')
     << "  |--| whiskers, == IQR, M median, o outliers\n";
  return os.str();
}

}  // namespace pm
