// planetmarket: exact money arithmetic for settlement and budgeting.
//
// Clock-auction price discovery runs in double precision (prices are
// signals, §III.A), but once trades settle the ledger must conserve money
// exactly — a team's budget may not drift by accumulated floating-point
// error across six auctions. Money stores integer micro-dollars (1e-6 USD),
// giving exact addition/subtraction and well-defined rounding at the single
// point where a double price enters the books.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace pm {

/// Fixed-point currency amount in integer micro-dollars.
class Money {
 public:
  /// Zero dollars.
  constexpr Money() = default;

  /// Constructs from raw micro-dollars.
  static constexpr Money FromMicros(std::int64_t micros) {
    return Money(micros);
  }

  /// Constructs from whole dollars (exact).
  static constexpr Money FromDollars(std::int64_t dollars) {
    return Money(dollars * kMicrosPerDollar);
  }

  /// Converts a double dollar amount, rounding half away from zero. This is
  /// the single sanctioned double→Money conversion; use it where an auction
  /// price enters the ledger.
  static Money FromDollarsRounded(double dollars);

  /// Raw micro-dollars.
  constexpr std::int64_t micros() const { return micros_; }

  /// Value in dollars as a double (lossy; for display and statistics only).
  constexpr double ToDouble() const {
    return static_cast<double>(micros_) / kMicrosPerDollar;
  }

  /// Renders e.g. "$12.345678", "-$0.500000".
  std::string ToString() const;

  constexpr bool IsZero() const { return micros_ == 0; }
  constexpr bool IsNegative() const { return micros_ < 0; }

  friend constexpr Money operator+(Money a, Money b) {
    return Money(a.micros_ + b.micros_);
  }
  friend constexpr Money operator-(Money a, Money b) {
    return Money(a.micros_ - b.micros_);
  }
  friend constexpr Money operator-(Money a) { return Money(-a.micros_); }

  /// Scales by an integer factor (exact).
  friend constexpr Money operator*(Money a, std::int64_t k) {
    return Money(a.micros_ * k);
  }
  friend constexpr Money operator*(std::int64_t k, Money a) { return a * k; }

  Money& operator+=(Money other) {
    micros_ += other.micros_;
    return *this;
  }
  Money& operator-=(Money other) {
    micros_ -= other.micros_;
    return *this;
  }

  friend constexpr auto operator<=>(Money a, Money b) = default;

 private:
  explicit constexpr Money(std::int64_t micros) : micros_(micros) {}

  static constexpr std::int64_t kMicrosPerDollar = 1'000'000;

  std::int64_t micros_ = 0;
};

std::ostream& operator<<(std::ostream& os, Money m);

}  // namespace pm
