// planetmarket: core identifiers and the resource-pool registry.
//
// The paper (§II) models R resource pools, each an aggregation of physical
// resources distinguished by secondary characteristics. In the Google
// experiments a pool was a (cluster, resource-type) pair such as "CPU in
// cluster r7". PoolRegistry interns such pairs and hands out dense PoolId
// indices so that prices, demands, utilizations and capacities can all be
// stored as flat vectors indexed by PoolId.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pm {

/// Dense index of a resource pool (cluster × resource kind). Valid ids are
/// consecutive integers [0, PoolRegistry::size()).
using PoolId = std::uint32_t;

/// Dense index of a market participant ("user" in the paper: an engineering
/// team, or the operator acting as a seller).
using UserId = std::uint32_t;

/// Sentinel for "no pool".
inline constexpr PoolId kInvalidPool = static_cast<PoolId>(-1);

/// Sentinel for "no user".
inline constexpr UserId kInvalidUser = static_cast<UserId>(-1);

/// Comparison tolerance for prices and quantities in auction arithmetic.
/// Settlement bookkeeping uses integer Money instead (see money.h).
inline constexpr double kPriceEps = 1e-9;

/// The resource dimensions traded in the experimental market (§V: "each
/// resource pool was taken as a cluster / resource type combination with the
/// latter including CPU, RAM, and disk").
enum class ResourceKind : std::uint8_t { kCpu = 0, kRam = 1, kDisk = 2 };

/// Number of distinct ResourceKind values.
inline constexpr int kNumResourceKinds = 3;

/// All resource kinds, in enum order; convenient for range-for loops.
inline constexpr ResourceKind kAllResourceKinds[kNumResourceKinds] = {
    ResourceKind::kCpu, ResourceKind::kRam, ResourceKind::kDisk};

/// Short human-readable name ("cpu", "ram", "disk").
std::string_view ToString(ResourceKind kind);

/// Parses "cpu" / "ram" / "disk" (case-sensitive). Returns nullopt on
/// unknown names.
std::optional<ResourceKind> ParseResourceKind(std::string_view name);

/// Natural unit of one quantum of each resource kind, used in reports
/// ("cores", "GB", "TB").
std::string_view UnitOf(ResourceKind kind);

/// A (cluster, resource kind) pair identifying one pool before interning.
struct PoolKey {
  std::string cluster;
  ResourceKind kind = ResourceKind::kCpu;

  bool operator==(const PoolKey& other) const = default;
};

/// Renders "cpu@cluster-name", the notation used by the TBBL-style bid
/// language and all reports.
std::string ToString(const PoolKey& key);

/// Interns (cluster, kind) pairs into dense PoolIds.
///
/// The registry is append-only: pools are never removed, so PoolIds stay
/// stable for the lifetime of a market. All per-pool state elsewhere in the
/// library (prices, supply, utilization, …) is a std::vector<double> of
/// length size() indexed by PoolId.
class PoolRegistry {
 public:
  PoolRegistry() = default;

  /// Returns the id for `key`, interning it if new.
  PoolId Intern(const PoolKey& key);

  /// Convenience overload.
  PoolId Intern(std::string cluster, ResourceKind kind) {
    return Intern(PoolKey{std::move(cluster), kind});
  }

  /// Returns the id for `key` if present.
  std::optional<PoolId> Find(const PoolKey& key) const;

  /// Returns the key for an interned id. Precondition: id < size().
  const PoolKey& KeyOf(PoolId id) const;

  /// Renders "kind@cluster" for an interned id.
  std::string NameOf(PoolId id) const { return ToString(KeyOf(id)); }

  /// Number of interned pools (== R in the paper's notation).
  std::size_t size() const { return keys_.size(); }

  bool empty() const { return keys_.empty(); }

  /// All ids whose pool lives in `cluster`, in interning order.
  std::vector<PoolId> PoolsInCluster(std::string_view cluster) const;

  /// All ids of a given resource kind, in interning order.
  std::vector<PoolId> PoolsOfKind(ResourceKind kind) const;

  /// Distinct cluster names, in first-interned order.
  std::vector<std::string> Clusters() const;

 private:
  struct KeyHash {
    std::size_t operator()(const PoolKey& k) const noexcept;
  };

  std::vector<PoolKey> keys_;
  std::unordered_map<PoolKey, PoolId, KeyHash> index_;
};

}  // namespace pm
