// planetmarket: a fixed-size thread pool and a blocked parallel_for.
//
// The auctioneer's per-round demand collection (Algorithm 1, line 4) is
// embarrassingly parallel across bidder proxies: each G_u(p) scans user u's
// bundle set independently. ClockAuction uses ParallelFor to fan that scan
// out when configured with more than one thread; the same pool backs the
// distributed-auction proxies in pm::net.
//
// ParallelFor dispatches work through a single shared chunk counter: the
// caller posts at most size() fire-and-forget helper tasks, every
// participant (helpers and the caller itself) claims chunks with an atomic
// fetch_add, and completion is signalled through a latch. This replaces the
// previous future-per-block scheme, which paid a std::function +
// packaged_task + future-shared-state allocation per block on the hottest
// path in the codebase.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pm {

/// A fixed-size pool of worker threads executing submitted tasks FIFO.
/// Thread-safe; destruction drains the queue (all submitted work runs).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Waits for all queued work to finish, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` fire-and-forget: no future, no completion signal. `fn`
  /// must not throw — an escaping exception terminates the process. Use
  /// Submit when the caller needs completion or exception propagation.
  void Post(std::function<void()> fn);

  /// Enqueues `fn`; the future resolves when it has run. Exceptions thrown
  /// by `fn` propagate through the future.
  std::future<void> Submit(std::function<void()> fn);

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [begin, end) across the pool, blocking until all
/// iterations complete. With a null pool or a pool of size 1 the loop runs
/// inline on the caller. The caller participates in the work alongside the
/// pool's workers; chunks are claimed dynamically via an atomic counter, so
/// stragglers cannot serialize the loop. The first exception thrown by any
/// iteration is rethrown on the caller after all chunks finish (an
/// exception aborts the remainder of its own chunk only).
void ParallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

}  // namespace pm
