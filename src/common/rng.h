// planetmarket: deterministic pseudo-random number generation.
//
// Every stochastic component in the library (workload generation, bidder
// noise, simulation arrivals) draws from RandomStream so that experiments
// are reproducible bit-for-bit across platforms. We implement the
// generators and distributions ourselves rather than using <random>'s
// distributions, whose outputs are not specified identically across
// standard libraries.
//
// Engine: xoshiro256** (Blackman & Vigna), seeded through SplitMix64 as its
// authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace pm {

/// SplitMix64: a tiny 64-bit generator used to expand a single seed into
/// xoshiro state. Also usable standalone for cheap hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG with 256-bit state.
class Xoshiro256StarStar {
 public:
  /// Seeds deterministically via SplitMix64.
  explicit Xoshiro256StarStar(std::uint64_t seed);

  std::uint64_t Next();

  /// Advances the generator 2^128 steps; used to derive independent
  /// streams from one seed (one Jump per stream).
  void Jump();

  /// Raw 256-bit state, for checkpointing (exchange/snapshot.cpp).
  const std::array<std::uint64_t, 4>& state() const { return s_; }

  /// Restores a state previously read via state().
  void set_state(const std::array<std::uint64_t, 4>& s) { s_ = s; }

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// A seeded random stream with the distributions the library needs.
///
/// All methods consume a deterministic number of engine outputs for a given
/// argument set, so interleaving of draws is stable across code paths.
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) : engine_(seed) {}

  /// Derives the i-th independent substream of this seed (jump-ahead based;
  /// substreams never overlap in any practical horizon).
  static RandomStream Substream(std::uint64_t seed, int index);

  /// Uniform on [0, 1).
  double NextDouble();

  /// Uniform on [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller (deterministic, two engine draws).
  double Normal();

  /// Normal with the given mean and standard deviation (sd >= 0).
  double Normal(double mean, double sd);

  /// Log-normal: exp(Normal(mu_log, sd_log)).
  double LogNormal(double mu_log, double sd_log);

  /// Exponential with the given rate lambda > 0.
  double Exponential(double lambda);

  /// Pareto with scale xm > 0 and shape alpha > 0; heavy-tailed sizes
  /// (team footprints, job sizes) follow this in the synthetic workload.
  double Pareto(double xm, double alpha);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t PickWeighted(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Raw engine access (for tests).
  std::uint64_t NextRaw() { return engine_.Next(); }

  /// Engine state for checkpointing; a stream restored with RestoreState
  /// continues the exact draw sequence of the saved one.
  std::array<std::uint64_t, 4> SaveState() const { return engine_.state(); }
  void RestoreState(const std::array<std::uint64_t, 4>& s) {
    engine_.set_state(s);
  }

 private:
  Xoshiro256StarStar engine_;
};

}  // namespace pm
