// planetmarket: host metadata for benchmark artifacts.
//
// Every BENCH_*.json used to carry a hand-written "this container has one
// vCPU" caveat that nothing verified. CollectHostMetadata records what is
// actually true of the machine the bench ran on — core count, git SHA,
// UTC timestamp — and derives the caveat from it, so a rerun on a real
// multi-core host automatically sheds the warning (and the JSON says
// which commit and when).
#pragma once

#include <string>

namespace pm {

/// What the bench host looked like at emission time.
struct HostMetadata {
  unsigned hardware_concurrency = 0;  // 0: unknown.
  bool single_vcpu = false;  // True only for a *measured* single core.
  std::string git_sha;        // "unknown" outside a git checkout.
  std::string timestamp_utc;  // ISO-8601, e.g. "2026-07-26T12:34:56Z".
};

HostMetadata CollectHostMetadata();

/// Strips a `--threads N` / `--threads=N` override out of argv — before
/// any positional or benchmark-library parsing sees it — and returns the
/// requested count, or `fallback` when the flag is absent. Every bench
/// binary accepts the flag so a multi-core host can pin its pool sizes
/// without editing per-bench positional conventions. A parsed value of 0
/// means "serial" (no pool), matching the configs' num_threads = 0.
unsigned ParseThreadsFlag(int* argc, char** argv, unsigned fallback);

/// Per-section host stamp for bench sections whose numbers are only
/// meaningful on real parallel hardware (thread scaling, pipelined
/// overlap). Unlike the top-level host caveat string, the flag is
/// explicit and machine-readable:
///   {"invalid_on_single_vcpu": true, "single_vcpu_host": false,
///    "hardware_concurrency": 8}
/// `invalid_on_single_vcpu` declares the section's requirement;
/// `single_vcpu_host` records what this run actually measured, so a
/// consumer drops the section iff both are true.
std::string SectionHostJson(const HostMetadata& meta,
                            bool needs_parallelism);

/// Convenience: SectionHostJson over CollectHostMetadata().
std::string SectionHostJson(bool needs_parallelism);

/// Renders the metadata as a JSON object (no trailing newline), e.g.
///   {"hardware_concurrency": 8, "single_vcpu": false,
///    "git_sha": "6e09b72", "timestamp_utc": "…"}
/// plus a machine-derived "caveat" entry when the host is single-vCPU.
/// Benchmarks embed it as the "host" key of their metadata block.
std::string HostMetadataJson(const HostMetadata& meta);

/// Convenience: CollectHostMetadata() rendered.
std::string HostMetadataJson();

}  // namespace pm
