// planetmarket: a wall-clock phase span — the carrier type of the
// profiler's wall channel (src/telemetry/profiler.h).
//
// Spans are measured where the work happens (auction rounds on pool
// threads, settlement inside Market::RunAuction) but *recorded* into the
// profiler only at the single-threaded epoch barrier: the hot path
// appends plain PhaseSpan values to a vector it owns, the vector rides
// AuctionReport back to the federation, and the barrier copies it into
// the PhaseProfiler. That keeps the auction layer free of any telemetry
// dependency (pm_auction must not link pm_telemetry) and keeps every
// profiler mutation single-threaded.
//
// Timestamps are steady_clock nanoseconds since an arbitrary epoch; the
// chrome-trace exporter normalizes them against the earliest span it
// saw, so only differences matter. Nothing in the deterministic channel
// ever reads these values.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pm {

/// One closed wall-clock interval, e.g. the collect phase of one shard
/// auction. `name` is the phase label shown on the chrome-trace track.
struct PhaseSpan {
  std::string name;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Monotonic now, in nanoseconds. Wall channel only.
inline std::uint64_t PhaseNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII phase timer over a caller-owned span vector. A null sink makes
/// every operation a no-op, so hot paths pay one pointer test when phase
/// timing is off — the same gating discipline as the telemetry plane.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(std::vector<PhaseSpan>* sink, std::string name)
      : sink_(sink) {
    if (sink_ != nullptr) {
      name_ = std::move(name);
      begin_ns_ = PhaseNowNs();
    }
  }
  ~ScopedPhaseTimer() { Stop(); }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

  /// Closes the span early (idempotent); the destructor is then a no-op.
  void Stop() {
    if (sink_ == nullptr) return;
    sink_->push_back(PhaseSpan{std::move(name_), begin_ns_, PhaseNowNs()});
    sink_ = nullptr;
  }

 private:
  std::vector<PhaseSpan>* sink_;
  std::string name_;
  std::uint64_t begin_ns_ = 0;
};

}  // namespace pm
