// planetmarket: terminal chart rendering.
//
// The paper's figures are reproduced numerically by the bench binaries; the
// same binaries (and the examples) additionally render the series as ASCII
// charts so the *shape* — who is above 1.0×, where the boxplot whiskers sit
// — is visible directly in the terminal, mirroring Figures 2, 6 and 7.
#pragma once

#include <string>
#include <vector>

namespace pm {

/// One named series for LineChart.
struct ChartSeries {
  std::string label;
  std::vector<double> xs;
  std::vector<double> ys;  // Same length as xs.
  char glyph = '*';
};

/// Options shared by the chart renderers.
struct ChartOptions {
  int width = 72;    // Plot-area columns.
  int height = 20;   // Plot-area rows.
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Renders one or more x/y series on a shared axis grid (Figure 2 style).
/// Returns the multi-line string, newline-terminated.
std::string RenderLineChart(const std::vector<ChartSeries>& series,
                            const ChartOptions& options);

/// One bar for RenderBarChart.
struct Bar {
  std::string label;
  double value = 0.0;
};

/// Renders horizontal bars with labels (Figure 6 style, one bar per
/// cluster). `reference` draws a vertical marker (e.g. at 1.0 for the
/// market/fixed price ratio); pass NaN to omit.
std::string RenderBarChart(const std::vector<Bar>& bars,
                           const ChartOptions& options,
                           double reference);

/// Five-number summary plus outliers, as produced by pm::stats::Boxplot.
struct BoxplotSpec {
  std::string label;
  double whisker_lo = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_hi = 0.0;
  std::vector<double> outliers;
};

/// Renders horizontal boxplots on a shared scale (Figure 7 style).
std::string RenderBoxplots(const std::vector<BoxplotSpec>& boxes,
                           const ChartOptions& options);

}  // namespace pm
