#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace pm {
namespace {

constexpr std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
}

std::uint64_t Xoshiro256StarStar::Next() {
  const std::uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

void Xoshiro256StarStar::Jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      Next();
    }
  }
  s_ = acc;
}

RandomStream RandomStream::Substream(std::uint64_t seed, int index) {
  PM_CHECK(index >= 0);
  RandomStream rs(seed);
  for (int i = 0; i < index; ++i) rs.engine_.Jump();
  return rs;
}

double RandomStream::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(engine_.Next() >> 11) * 0x1.0p-53;
}

double RandomStream::Uniform(double lo, double hi) {
  PM_CHECK_MSG(lo <= hi, "Uniform requires lo <= hi, got " << lo << ", "
                                                           << hi);
  return lo + (hi - lo) * NextDouble();
}

std::int64_t RandomStream::UniformInt(std::int64_t lo, std::int64_t hi) {
  PM_CHECK_MSG(lo <= hi, "UniformInt requires lo <= hi, got " << lo << ", "
                                                              << hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // Full 64-bit range.
    return static_cast<std::int64_t>(engine_.Next());
  }
  // Rejection sampling to avoid modulo bias; expected < 2 iterations.
  const std::uint64_t limit = (~0ULL / range) * range;
  std::uint64_t draw;
  do {
    draw = engine_.Next();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

bool RandomStream::Bernoulli(double p) {
  if (p <= 0.0) {
    NextDouble();  // Keep draw count stable regardless of p.
    return false;
  }
  if (p >= 1.0) {
    NextDouble();
    return true;
  }
  return NextDouble() < p;
}

double RandomStream::Normal() {
  // Box–Muller; consumes exactly two engine outputs.
  double u1 = NextDouble();
  const double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // Guard log(0).
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double RandomStream::Normal(double mean, double sd) {
  PM_CHECK_MSG(sd >= 0.0, "Normal requires sd >= 0, got " << sd);
  return mean + sd * Normal();
}

double RandomStream::LogNormal(double mu_log, double sd_log) {
  return std::exp(Normal(mu_log, sd_log));
}

double RandomStream::Exponential(double lambda) {
  PM_CHECK_MSG(lambda > 0.0, "Exponential requires lambda > 0, got "
                                 << lambda);
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

double RandomStream::Pareto(double xm, double alpha) {
  PM_CHECK_MSG(xm > 0.0 && alpha > 0.0,
               "Pareto requires xm > 0 and alpha > 0, got xm=" << xm
                                                               << " alpha="
                                                               << alpha);
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t RandomStream::PickWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    PM_CHECK_MSG(w >= 0.0, "negative weight " << w);
    total += w;
  }
  PM_CHECK_MSG(total > 0.0, "PickWeighted requires a positive total weight");
  const double target = NextDouble() * total;
  double cum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  return weights.size() - 1;  // Floating-point edge: land on the last bin.
}

}  // namespace pm
