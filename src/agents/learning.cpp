#include "agents/learning.h"

#include "common/check.h"

namespace pm::agents {

PriceLearner::PriceLearner(std::vector<double> initial_beliefs,
                           double smoothing, double initial_markup,
                           double markup_decay)
    : beliefs_(std::move(initial_beliefs)),
      smoothing_(smoothing),
      markup_(initial_markup),
      markup_decay_(markup_decay) {
  PM_CHECK_MSG(smoothing_ > 0.0 && smoothing_ <= 1.0,
               "smoothing must be in (0, 1], got " << smoothing_);
  PM_CHECK_MSG(markup_ >= 0.0, "markup must be non-negative");
  PM_CHECK_MSG(markup_decay_ >= 0.0 && markup_decay_ <= 1.0,
               "markup decay must be in [0, 1]");
  PM_CHECK(!beliefs_.empty());
}

double PriceLearner::Belief(std::size_t pool) const {
  PM_CHECK_MSG(pool < beliefs_.size(),
               "pool " << pool << " beyond beliefs of size "
                       << beliefs_.size());
  return beliefs_[pool];
}

double PriceLearner::BelievedCost(std::span<const std::size_t> pools,
                                  std::span<const double> qtys) const {
  PM_CHECK(pools.size() == qtys.size());
  double cost = 0.0;
  for (std::size_t i = 0; i < pools.size(); ++i) {
    cost += qtys[i] * Belief(pools[i]);
  }
  return cost;
}

void PriceLearner::ExtendBeliefs(std::span<const double> defaults) {
  PM_CHECK_MSG(defaults.size() >= beliefs_.size(),
               "defaults cover " << defaults.size()
                                 << " pools, beliefs already track "
                                 << beliefs_.size());
  for (std::size_t r = beliefs_.size(); r < defaults.size(); ++r) {
    beliefs_.push_back(defaults[r]);
  }
}

void PriceLearner::RestoreState(std::vector<double> beliefs, double markup,
                                int observations) {
  PM_CHECK_MSG(beliefs.size() >= beliefs_.size(),
               "restored beliefs cover " << beliefs.size()
                                         << " pools, learner tracks "
                                         << beliefs_.size());
  PM_CHECK_MSG(markup >= 0.0, "restored markup must be non-negative");
  PM_CHECK_MSG(observations >= 0, "restored observation count is negative");
  beliefs_ = std::move(beliefs);
  markup_ = markup;
  observations_ = observations;
}

void PriceLearner::Observe(std::span<const double> settled_prices) {
  PM_CHECK_MSG(settled_prices.size() == beliefs_.size(),
               "observed " << settled_prices.size()
                           << " prices, beliefs track " << beliefs_.size());
  for (std::size_t r = 0; r < beliefs_.size(); ++r) {
    beliefs_[r] =
        (1.0 - smoothing_) * beliefs_[r] + smoothing_ * settled_prices[r];
  }
  markup_ *= markup_decay_;
  ++observations_;
}

}  // namespace pm::agents
