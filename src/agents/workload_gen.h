// planetmarket: synthetic world generation.
//
// Substitutes for Google's production fleet and engineering-team
// population (see DESIGN.md §2). The generator produces:
//
//  * a fleet of clusters with a wide utilization spread (the paper's
//    experiments ran against clusters ranging from nearly idle to
//    oversubscribed — the precondition for congestion-weighted reserves
//    to matter), with team-owned jobs actually bin-packed onto machines;
//  * a team population with heavy-tailed footprints and a strategy mix
//    matching the bidder behaviours of §V.B–C.
//
// Everything is driven by one seed; identical seeds give identical worlds.
#pragma once

#include <cstdint>
#include <vector>

#include "agents/team.h"
#include "cluster/fleet.h"

namespace pm::agents {

/// Knobs for GenerateWorld. Defaults approximate the paper's experimental
/// scale: ~34 clusters × 3 resource kinds ≈ 100 pools, ~100 teams.
struct WorkloadConfig {
  int num_clusters = 34;
  int min_machines_per_cluster = 40;
  int max_machines_per_cluster = 90;

  /// Per-machine capacity (a mid-2000s commodity server, scaled).
  cluster::TaskShape machine_shape{48.0, 192.0, 24.0};

  /// The operator's real unit costs c(r): $/core, $/GB, $/TB per auction
  /// period. These double as the pre-market fixed prices.
  cluster::TaskShape unit_costs{10.0, 1.5, 0.8};

  int num_teams = 100;

  /// Pre-auction utilization targets are spread uniformly over this range
  /// across clusters (then realized by actual job placement).
  double min_target_utilization = 0.10;
  double max_target_utilization = 0.96;

  /// Strategy mix (fractions of teams; remainder are truthful growers).
  double frac_premium_sticky = 0.15;
  double frac_opportunist_mover = 0.25;
  double frac_lowball_seller = 0.10;
  double frac_arbitrageur = 0.05;

  std::uint64_t seed = 42;
};

/// A generated world: the fleet plus its bidding teams.
struct World {
  cluster::Fleet fleet;
  std::vector<TeamAgent> agents;

  /// The fixed per-pool prices in force before the market (Figure 6's
  /// denominator): unit cost of each pool's resource kind.
  std::vector<double> fixed_prices;

  /// Per-cluster utilization targets used during generation (diagnostics).
  std::vector<double> target_utilization;
};

/// Builds a world. Deterministic in `config.seed`.
World GenerateWorld(const WorkloadConfig& config);

}  // namespace pm::agents
