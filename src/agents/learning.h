// planetmarket: bidder price learning.
//
// §V.C observes that "as users become more familiar with the market prices
// we have seen the reserve prices associated with bids move from closely
// tracking the former fixed price values to values much closer to the
// dynamic market prices", driving the median bid premium γ down across
// auctions (Table I). PriceLearner models that adaptation: an exponential
// smoothing belief about per-pool prices plus a decaying safety markup.
#pragma once

#include <span>
#include <vector>

namespace pm::agents {

/// Per-pool price beliefs with a shrinking bidding markup.
class PriceLearner {
 public:
  /// `initial_beliefs` is the dense vector the bidder starts from (the
  /// former fixed prices in our experiments). `smoothing` λ ∈ (0, 1] is
  /// the weight of a new observation; `initial_markup` is the safety
  /// margin added on top of believed cost when bidding (e.g. 0.6 = 60 %
  /// above belief); `markup_decay` multiplies the markup after every
  /// observed auction.
  PriceLearner(std::vector<double> initial_beliefs, double smoothing,
               double initial_markup, double markup_decay);

  /// Current believed price for a pool.
  double Belief(std::size_t pool) const;

  /// Believed cost of a quantity vector: Σ qty·belief over items.
  double BelievedCost(std::span<const std::size_t> pools,
                      std::span<const double> qtys) const;

  /// Current safety markup (≥ 0).
  double Markup() const { return markup_; }

  /// Folds one auction's settled prices into the beliefs and decays the
  /// markup — call exactly once per observed auction.
  void Observe(std::span<const double> settled_prices);

  /// Grows the belief vector to cover a larger pool space (the market's
  /// pool registry is append-only, so existing ids keep their beliefs).
  /// `defaults[r]` seeds the belief of each new pool r; `defaults` must
  /// cover at least the current beliefs.
  void ExtendBeliefs(std::span<const double> defaults);

  /// Number of pools the learner tracks.
  std::size_t NumPools() const { return beliefs_.size(); }

  /// Number of auctions observed so far.
  int ObservationCount() const { return observations_; }

  /// The full belief vector, for checkpointing.
  const std::vector<double>& beliefs() const { return beliefs_; }

  /// Checkpoint restore of the learned state. The smoothing and decay
  /// constants are construction-time parameters and stay as built.
  void RestoreState(std::vector<double> beliefs, double markup,
                    int observations);

 private:
  std::vector<double> beliefs_;
  double smoothing_;
  double markup_;
  double markup_decay_;
  int observations_ = 0;
};

}  // namespace pm::agents
