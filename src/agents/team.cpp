#include "agents/team.h"

#include <algorithm>

#include "agents/strategy.h"
#include "common/check.h"

namespace pm::agents {

std::string_view ToString(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kTruthfulGrowth:
      return "truthful-growth";
    case StrategyKind::kPremiumSticky:
      return "premium-sticky";
    case StrategyKind::kOpportunistMover:
      return "opportunist-mover";
    case StrategyKind::kLowballSeller:
      return "lowball-seller";
    case StrategyKind::kArbitrageur:
      return "arbitrageur";
  }
  return "unknown";
}

TeamAgent::TeamAgent(TeamProfile profile,
                     std::vector<double> initial_price_beliefs,
                     std::uint64_t seed)
    : profile_(std::move(profile)),
      // λ = 0.55: beliefs move more than halfway to each observed price —
      // the brisk adaptation §V.C reports. Markup starts at 60 % over
      // belief and decays fast, shrinking the median premium across
      // auctions (Table I).
      learner_(std::move(initial_price_beliefs), 0.55, 0.60, 0.35),
      rng_(seed),
      strategy_(MakeStrategy(profile_.strategy)),
      holdings_() {
  PM_CHECK_MSG(!profile_.name.empty(), "team needs a name");
  PM_CHECK_MSG(!profile_.home_cluster.empty(),
               "team '" << profile_.name << "' needs a home cluster");
}

TeamAgent::~TeamAgent() = default;
TeamAgent::TeamAgent(TeamAgent&&) noexcept = default;
TeamAgent& TeamAgent::operator=(TeamAgent&&) noexcept = default;

std::vector<bid::Bid> TeamAgent::MakeBids(const MarketView& view) {
  PM_CHECK(view.registry != nullptr);
  StrategyContext ctx;
  ctx.profile = &profile_;
  ctx.view = &view;
  ctx.learner = &learner_;
  ctx.rng = &rng_;
  ctx.holdings = &holdings_;
  ctx.placement_penalty = &placement_penalty_;
  return strategy_->MakeBids(ctx);
}

void TeamAgent::ExtendPoolSpace(std::span<const double> fixed_prices) {
  // Only the learner needs explicit growth; holdings_ is resized to the
  // registry on demand by its consumers (strategy and settlement).
  learner_.ExtendBeliefs(fixed_prices);
}

void TeamAgent::ObserveOutcome(std::span<const double> settled_prices,
                               const std::vector<BidOutcome>& outcomes) {
  learner_.Observe(settled_prices);
  // Placement memory: only auctions that actually carried placement
  // feedback (some outcome has awarded buy units) move the penalty EWMA,
  // so with the market's outcome_feedback gate off this method touches
  // nothing beyond the price beliefs — the bit-identical contract.
  bool any_feedback = false;
  for (const BidOutcome& outcome : outcomes) {
    any_feedback = any_feedback || outcome.awarded_units > 0.0;
  }
  if (!any_feedback) return;
  placement_penalty_.resize(learner_.NumPools(), 0.0);
  for (double& penalty : placement_penalty_) {
    penalty *= 1.0 - kPlacementPenaltyStep;
  }
  for (const BidOutcome& outcome : outcomes) {
    for (PoolId pool : outcome.unplaced_pools) {
      if (pool >= placement_penalty_.size()) continue;
      placement_penalty_[pool] =
          std::min(1.0, placement_penalty_[pool] + kPlacementPenaltyStep);
    }
  }
}

}  // namespace pm::agents
