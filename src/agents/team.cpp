#include "agents/team.h"

#include "agents/strategy.h"
#include "common/check.h"

namespace pm::agents {

std::string_view ToString(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kTruthfulGrowth:
      return "truthful-growth";
    case StrategyKind::kPremiumSticky:
      return "premium-sticky";
    case StrategyKind::kOpportunistMover:
      return "opportunist-mover";
    case StrategyKind::kLowballSeller:
      return "lowball-seller";
    case StrategyKind::kArbitrageur:
      return "arbitrageur";
  }
  return "unknown";
}

TeamAgent::TeamAgent(TeamProfile profile,
                     std::vector<double> initial_price_beliefs,
                     std::uint64_t seed)
    : profile_(std::move(profile)),
      // λ = 0.55: beliefs move more than halfway to each observed price —
      // the brisk adaptation §V.C reports. Markup starts at 60 % over
      // belief and decays fast, shrinking the median premium across
      // auctions (Table I).
      learner_(std::move(initial_price_beliefs), 0.55, 0.60, 0.35),
      rng_(seed),
      strategy_(MakeStrategy(profile_.strategy)),
      holdings_() {
  PM_CHECK_MSG(!profile_.name.empty(), "team needs a name");
  PM_CHECK_MSG(!profile_.home_cluster.empty(),
               "team '" << profile_.name << "' needs a home cluster");
}

TeamAgent::~TeamAgent() = default;
TeamAgent::TeamAgent(TeamAgent&&) noexcept = default;
TeamAgent& TeamAgent::operator=(TeamAgent&&) noexcept = default;

std::vector<bid::Bid> TeamAgent::MakeBids(const MarketView& view) {
  PM_CHECK(view.registry != nullptr);
  StrategyContext ctx;
  ctx.profile = &profile_;
  ctx.view = &view;
  ctx.learner = &learner_;
  ctx.rng = &rng_;
  ctx.holdings = &holdings_;
  return strategy_->MakeBids(ctx);
}

void TeamAgent::ExtendPoolSpace(std::span<const double> fixed_prices) {
  // Only the learner needs explicit growth; holdings_ is resized to the
  // registry on demand by its consumers (strategy and settlement).
  learner_.ExtendBeliefs(fixed_prices);
}

void TeamAgent::ObserveOutcome(std::span<const double> settled_prices,
                               const std::vector<BidOutcome>& outcomes) {
  learner_.Observe(settled_prices);
  // Strategy-independent bookkeeping could use `outcomes` (e.g. morale);
  // the physical footprint/holdings updates are performed by the exchange
  // layer, which knows the awarded bundles.
  (void)outcomes;
}

}  // namespace pm::agents
