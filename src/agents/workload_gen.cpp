#include "agents/workload_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace pm::agents {
namespace {

std::string ClusterName(int index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "r%02d", index + 1);
  return buf;
}

StrategyKind DrawStrategy(const WorkloadConfig& config, RandomStream& rng) {
  const double x = rng.NextDouble();
  double cum = config.frac_premium_sticky;
  if (x < cum) return StrategyKind::kPremiumSticky;
  cum += config.frac_opportunist_mover;
  if (x < cum) return StrategyKind::kOpportunistMover;
  cum += config.frac_lowball_seller;
  if (x < cum) return StrategyKind::kLowballSeller;
  cum += config.frac_arbitrageur;
  if (x < cum) return StrategyKind::kArbitrageur;
  return StrategyKind::kTruthfulGrowth;
}

}  // namespace

World GenerateWorld(const WorkloadConfig& config) {
  PM_CHECK(config.num_clusters >= 2);
  PM_CHECK(config.num_teams >= 1);
  PM_CHECK(config.min_machines_per_cluster >= 1 &&
           config.max_machines_per_cluster >=
               config.min_machines_per_cluster);
  PM_CHECK(config.min_target_utilization >= 0.0 &&
           config.max_target_utilization <= 1.0 &&
           config.min_target_utilization <=
               config.max_target_utilization);

  RandomStream rng(config.seed);

  // --- Clusters with a shuffled utilization ramp -------------------------
  std::vector<double> targets(config.num_clusters);
  for (int c = 0; c < config.num_clusters; ++c) {
    const double t = config.num_clusters == 1
                         ? 0.0
                         : static_cast<double>(c) /
                               (config.num_clusters - 1);
    targets[c] = config.min_target_utilization +
                 t * (config.max_target_utilization -
                      config.min_target_utilization);
  }
  rng.Shuffle(targets);

  std::vector<cluster::Cluster> clusters;
  clusters.reserve(config.num_clusters);
  for (int c = 0; c < config.num_clusters; ++c) {
    const int machines = static_cast<int>(
        rng.UniformInt(config.min_machines_per_cluster,
                       config.max_machines_per_cluster));
    clusters.push_back(cluster::Cluster::Homogeneous(
        ClusterName(c), machines, config.machine_shape));
  }
  cluster::Fleet fleet(std::move(clusters), config.unit_costs);

  // --- Teams: homes weighted toward congested clusters -------------------
  // Historical pile-up is what created the hot clusters in the first
  // place, so more teams live where utilization is targeted high.
  std::vector<double> home_weights(targets.begin(), targets.end());
  for (double& w : home_weights) w = 0.15 + w;  // Cold clusters get some.

  struct Draft {
    TeamProfile profile;
    std::uint64_t seed;
  };
  std::vector<Draft> drafts;
  drafts.reserve(config.num_teams);
  for (int t = 0; t < config.num_teams; ++t) {
    TeamProfile profile;
    char name[32];
    std::snprintf(name, sizeof(name), "team-%03d", t + 1);
    profile.name = name;
    profile.home_cluster =
        ClusterName(static_cast<int>(rng.PickWeighted(home_weights)));
    profile.growth_rate = rng.Uniform(0.05, 0.25);
    profile.value_multiplier = rng.Uniform(1.3, 2.6);
    profile.strategy = DrawStrategy(config, rng);
    drafts.push_back(Draft{std::move(profile), rng.NextRaw()});
  }

  // --- Jobs: fill each cluster to its target utilization -----------------
  // Jobs are drawn from the teams homed in that cluster, round-robin, so
  // footprints follow the congestion pattern.
  cluster::JobId next_job = 1;
  for (int c = 0; c < config.num_clusters; ++c) {
    const std::string cname = ClusterName(c);
    std::vector<std::size_t> local_teams;
    for (std::size_t t = 0; t < drafts.size(); ++t) {
      if (drafts[t].profile.home_cluster == cname) local_teams.push_back(t);
    }
    if (local_teams.empty()) continue;
    cluster::Cluster& cl = fleet.ClusterByName(cname);
    std::size_t cursor = 0;
    int failures = 0;
    while (cl.Utilization(ResourceKind::kCpu) < targets[c] &&
           failures < 32) {
      cluster::Job job;
      job.id = next_job++;
      job.team = drafts[local_teams[cursor]].profile.name;
      cursor = (cursor + 1) % local_teams.size();
      const double task_cpu = rng.Uniform(0.5, 4.0);
      job.shape = cluster::TaskShape{
          task_cpu, task_cpu * rng.Uniform(2.0, 6.0),
          rng.Uniform(0.05, 1.2)};
      job.tasks = static_cast<int>(rng.UniformInt(4, 40));
      if (!fleet.AddJob(cname, job)) ++failures;
    }
  }

  // --- Footprints from the actually placed jobs --------------------------
  std::vector<cluster::TaskShape> footprints(drafts.size());
  for (const cluster::JobLocation& loc : fleet.AllJobs()) {
    const cluster::Job* job =
        fleet.ClusterByName(loc.cluster).FindJob(loc.job);
    PM_CHECK(job != nullptr);
    for (std::size_t t = 0; t < drafts.size(); ++t) {
      if (drafts[t].profile.name == job->team) {
        footprints[t] += job->TotalDemand();
        break;
      }
    }
  }

  World world{std::move(fleet), {}, {}, std::move(targets)};
  world.fixed_prices = world.fleet.CostVector();

  for (std::size_t t = 0; t < drafts.size(); ++t) {
    TeamProfile profile = std::move(drafts[t].profile);
    profile.footprint = footprints[t];
    if (profile.footprint.cpu < 1.0) {
      // Teams that drew no jobs still participate with a seed footprint.
      profile.footprint = cluster::TaskShape{8.0, 32.0, 1.0};
    }
    // Relocation cost: heavy-tailed, proportional to footprint value —
    // big entangled services are expensive to move (§V.B).
    const double footprint_value =
        profile.footprint.cpu * config.unit_costs.cpu +
        profile.footprint.ram_gb * config.unit_costs.ram_gb +
        profile.footprint.disk_tb * config.unit_costs.disk_tb;
    RandomStream team_rng(drafts[t].seed);
    profile.relocation_cost =
        footprint_value * 0.05 * team_rng.Pareto(1.0, 2.5);
    world.agents.emplace_back(std::move(profile), world.fixed_prices,
                              drafts[t].seed);
  }
  return world;
}

}  // namespace pm::agents
