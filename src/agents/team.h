// planetmarket: engineering-team agents.
//
// Teams are the paper's "users": they hold jobs in clusters, receive a
// budget, and bid in periodic auctions through a strategy. A TeamAgent
// owns its profile, a PriceLearner (§V.C adaptation), and a Strategy that
// turns market state into bids. The exchange layer invokes MakeBids before
// each auction and ObserveOutcome after settlement.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "agents/learning.h"
#include "bid/bid.h"
#include "cluster/fleet.h"
#include "common/rng.h"

namespace pm::agents {

/// Which canned strategy a team runs (see strategy.h).
enum class StrategyKind {
  kTruthfulGrowth,   // Grow where cheapest; moderate honest limits.
  kPremiumSticky,    // Grow in the home cluster, pay large premiums.
  kOpportunistMover, // Sell congested home footprint, rebuy where cheap.
  kLowballSeller,    // Offer surplus at a token ask, trust competition.
  kArbitrageur,      // Buy under-believed pools, resell over-believed.
};

std::string_view ToString(StrategyKind kind);

/// Static description of a team.
struct TeamProfile {
  std::string name;
  std::string home_cluster;

  /// Aggregate resources the team currently runs (kept in sync with its
  /// fleet jobs by the exchange layer).
  cluster::TaskShape footprint;

  /// Fractional growth in footprint the team wants per auction (0.1 = 10%).
  double growth_rate = 0.10;

  /// Engineering cost (dollars) of reconfiguring the service for a
  /// different cluster (§V.B: "there is an engineering cost to
  /// reconfiguring applications for different resource pools").
  double relocation_cost = 0.0;

  /// Private value multiple over believed cost: how much the team's
  /// mission is worth per dollar of resources (≥ 1 for viable teams).
  double value_multiplier = 1.5;

  StrategyKind strategy = StrategyKind::kTruthfulGrowth;
};

/// Everything a strategy may look at when bidding.
struct MarketView {
  const PoolRegistry* registry = nullptr;
  std::span<const double> reserve_prices;     // This auction's p̃.
  std::span<const double> utilization;        // ψ per pool, in [0, 1].
  std::span<const double> free_capacity;      // Operator-sellable units.
  double budget = 0.0;                        // Team's spendable dollars.
  int auction_index = 0;                      // 0-based auction number.
};

/// Result of one of the team's bids, reported back after settlement.
struct BidOutcome {
  bool won = false;
  int bundle_index = -1;
  double payment = 0.0;  // Positive pays, negative receives.

  // Placement feedback, threaded from the settlement pipeline's
  // PlacementOutcome only when the market's outcome_feedback gate is on
  // (zero/empty otherwise, which leaves the agent's placement memory —
  // and therefore every bid it will ever make — bit-identical to the
  // price-only learner).
  double awarded_units = 0.0;  // Buy-side units won at auction.
  double placed_units = 0.0;   // Units that physically landed.
  std::vector<PoolId> unplaced_pools;  // Pools whose fill fell short.
};

/// EWMA step of the placement-failure memory: every feedback-carrying
/// auction decays each pool's penalty by (1 − step) and bumps pools whose
/// awarded units failed to land by step (clamped to 1). ~3 consecutive
/// failures push a pool past 0.65; ~6 clean auctions forgive it.
inline constexpr double kPlacementPenaltyStep = 0.3;

class Strategy;  // strategy.h

/// A bidding team. Movable via unique_ptr members; not copyable.
class TeamAgent {
 public:
  /// `initial_price_beliefs` seeds the learner (the pre-market fixed
  /// prices in our experiments); `seed` derives the agent's private
  /// randomness.
  TeamAgent(TeamProfile profile, std::vector<double> initial_price_beliefs,
            std::uint64_t seed);

  // Out of line: Strategy is incomplete here.
  ~TeamAgent();
  TeamAgent(TeamAgent&&) noexcept;
  TeamAgent& operator=(TeamAgent&&) noexcept;

  /// Produces this auction's bids. User ids are left unassigned (the
  /// exchange assigns them); names are "<team>/<tag>".
  std::vector<bid::Bid> MakeBids(const MarketView& view);

  /// Digests an auction: settled prices always; `outcomes` aligned with
  /// the bids returned by the last MakeBids call.
  void ObserveOutcome(std::span<const double> settled_prices,
                      const std::vector<BidOutcome>& outcomes);

  const TeamProfile& profile() const { return profile_; }
  TeamProfile& mutable_profile() { return profile_; }

  const PriceLearner& learner() const { return learner_; }
  /// Mutable learner access for checkpoint restore only.
  PriceLearner& mutable_learner() { return learner_; }
  RandomStream& rng() { return rng_; }
  const RandomStream& rng() const { return rng_; }

  /// Grows the agent's per-pool state (price beliefs, warehouse) to cover
  /// an enlarged pool registry — called by the market when a migrated
  /// cluster is adopted. `fixed_prices[r]` seeds the belief of each new
  /// pool.
  void ExtendPoolSpace(std::span<const double> fixed_prices);

  /// Quota units the arbitrageur is currently warehousing, per pool.
  const std::vector<double>& holdings() const { return holdings_; }
  std::vector<double>& mutable_holdings() { return holdings_; }

  /// Per-pool placement-failure memory in [0, 1]: an EWMA of "this pool's
  /// awarded units did not land physically", updated by ObserveOutcome
  /// from the BidOutcome placement feedback. Empty until the first
  /// feedback arrives (never, when the market's outcome_feedback gate is
  /// off). Strategies fold it into cluster selection so teams stop
  /// growing into chronically unplaceable clusters.
  const std::vector<double>& placement_penalty() const {
    return placement_penalty_;
  }

  /// Checkpoint restore of the placement-failure memory.
  void RestorePlacementPenalty(std::vector<double> penalty) {
    placement_penalty_ = std::move(penalty);
  }

 private:
  TeamProfile profile_;
  PriceLearner learner_;
  RandomStream rng_;
  std::unique_ptr<Strategy> strategy_;
  std::vector<double> holdings_;
  std::vector<double> placement_penalty_;
};

}  // namespace pm::agents
