#include "agents/strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace pm::agents {
namespace {

/// Scales a footprint by the growth rate, with a floor so small teams
/// still request a placeable quantum.
cluster::TaskShape GrowthDelta(const TeamProfile& profile) {
  cluster::TaskShape delta = profile.footprint * profile.growth_rate;
  delta.cpu = std::max(delta.cpu, 1.0);
  delta.ram_gb = std::max(delta.ram_gb, 2.0);
  delta.disk_tb = std::max(delta.disk_tb, 0.1);
  return delta;
}

/// Clusters sorted by believed cost of hosting `delta`, cheapest first.
/// Cost is scaled by the placement-penalty factor, and chronically
/// unplaceable clusters (penalty >= kPlacementPenaltyAvoid) are dropped;
/// with no placement memory (the outcome_feedback-off path) every factor
/// is exactly 1 and nothing is dropped, so the ranking is bit-identical
/// to the price-only ordering.
std::vector<std::string> ClustersByBelievedCost(
    const StrategyContext& ctx, const cluster::TaskShape& delta) {
  const PoolRegistry& registry = *ctx.view->registry;
  std::vector<std::string> clusters = registry.Clusters();
  std::vector<std::pair<double, std::string>> ranked;
  ranked.reserve(clusters.size());
  for (std::string& c : clusters) {
    const double penalty =
        ClusterPlacementPenalty(registry, ctx.placement_penalty, c);
    if (penalty >= kPlacementPenaltyAvoid) continue;
    const double cost =
        BelievedClusterCost(registry, *ctx.learner, c, delta) *
        (1.0 + kPlacementPenaltyWeight * penalty);
    ranked.emplace_back(cost, std::move(c));
  }
  std::sort(ranked.begin(), ranked.end());
  clusters.clear();
  for (auto& [cost, name] : ranked) clusters.push_back(std::move(name));
  return clusters;
}

/// Whether `delta` fits in the operator's free capacity of `cluster`
/// (strategies avoid bidding into walls — proxies would just drop out).
bool FitsFreeCapacity(const MarketView& view, const std::string& cluster,
                      const cluster::TaskShape& delta) {
  const PoolRegistry& registry = *view.registry;
  for (ResourceKind kind : kAllResourceKinds) {
    if (delta.Of(kind) <= 0.0) continue;
    const auto id = registry.Find(PoolKey{cluster, kind});
    if (!id.has_value()) return false;
    if (view.free_capacity[*id] < delta.Of(kind)) return false;
  }
  return true;
}

double ClampLimit(double limit, double budget) {
  return std::min(limit, budget);
}

class TruthfulGrowthStrategy final : public Strategy {
 public:
  std::vector<bid::Bid> MakeBids(const StrategyContext& ctx) override {
    const TeamProfile& profile = *ctx.profile;
    const cluster::TaskShape delta = GrowthDelta(profile);
    const PoolRegistry& registry = *ctx.view->registry;

    // XOR over the home cluster and up to three believed-cheapest
    // alternatives that currently have room. Growth is a *new*
    // deployment, so unlike a relocation it carries only a small setup
    // penalty when placed away from home.
    std::vector<bid::Bundle> bundles;
    bundles.push_back(BundleForCluster(registry, profile.home_cluster,
                                       delta));
    int alternatives = 0;
    double cheapest_cost = BelievedClusterCost(
        registry, *ctx.learner, profile.home_cluster, delta);
    const double setup_penalty = 0.02 * profile.relocation_cost;
    for (const std::string& c : ClustersByBelievedCost(ctx, delta)) {
      if (c == profile.home_cluster) continue;
      if (!FitsFreeCapacity(*ctx.view, c, delta)) continue;
      const double cost =
          BelievedClusterCost(registry, *ctx.learner, c, delta) +
          setup_penalty;
      bundles.push_back(BundleForCluster(registry, c, delta));
      cheapest_cost = std::min(cheapest_cost, cost);
      if (++alternatives >= 3) break;
    }

    // Bid the believed cost plus a safety markup (§V.C: reserve prices
    // associated with bids track believed market prices with a shrinking
    // cushion). The team's private value caps the limit: when even the
    // believed price exceeds the value, the team sits out.
    const double markup = ctx.learner->Markup();
    const double noise = ctx.rng->Uniform(0.97, 1.03);
    const double value = cheapest_cost * profile.value_multiplier;
    double limit =
        std::min(cheapest_cost * (1.0 + markup) * noise, value);
    limit = ClampLimit(limit, ctx.view->budget);
    if (limit <= 0.0) return {};

    bid::Bid bid;
    bid.name = profile.name + "/grow";
    bid.bundles = std::move(bundles);
    bid.limit = limit;
    return {std::move(bid)};
  }

  std::string_view Name() const override { return "truthful-growth"; }
};

class PremiumStickyStrategy final : public Strategy {
 public:
  std::vector<bid::Bid> MakeBids(const StrategyContext& ctx) override {
    const TeamProfile& profile = *ctx.profile;
    const cluster::TaskShape delta = GrowthDelta(profile);
    const PoolRegistry& registry = *ctx.view->registry;

    // Home cluster only: this team's engineering cost of moving is so
    // high it pays whatever the home pool asks.
    const double believed = BelievedClusterCost(
        registry, *ctx.learner, profile.home_cluster, delta);
    const double markup = ctx.learner->Markup();
    // A sticky surcharge on top of the learning markup that never fully
    // decays — the persistent high-percentile bid outliers of Figure 7.
    const double sticky = ctx.rng->Uniform(0.50, 1.10);
    const double ceiling =
        believed * profile.value_multiplier * 1.5;  // Deep pockets.
    const double limit = ClampLimit(
        std::min(believed * (1.0 + markup + sticky), ceiling),
        ctx.view->budget);
    if (limit <= 0.0) return {};

    bid::Bid bid;
    bid.name = profile.name + "/grow-home";
    bid.bundles = {
        BundleForCluster(registry, profile.home_cluster, delta)};
    bid.limit = limit;
    return {std::move(bid)};
  }

  std::string_view Name() const override { return "premium-sticky"; }
};

class OpportunistMoverStrategy final : public Strategy {
 public:
  std::vector<bid::Bid> MakeBids(const StrategyContext& ctx) override {
    const TeamProfile& profile = *ctx.profile;
    const PoolRegistry& registry = *ctx.view->registry;

    // Sell a slice of the home footprint, rebuy the same slice in the
    // believed-cheapest cold cluster — if the believed saving clears the
    // relocation cost.
    const cluster::TaskShape slice = profile.footprint * 0.5;
    if (slice.cpu < 1.0) return {};

    const double home_value = BelievedClusterCost(
        registry, *ctx.learner, profile.home_cluster, slice);
    std::string best;
    double best_cost = std::numeric_limits<double>::infinity();
    double best_ranked = std::numeric_limits<double>::infinity();
    for (const std::string& c : registry.Clusters()) {
      if (c == profile.home_cluster) continue;
      if (!FitsFreeCapacity(*ctx.view, c, slice)) continue;
      // Rank destinations with the placement-failure factor but keep the
      // raw believed cost for the relocation gate and the bid limit (a
      // distrusted cluster should lose the ranking, not inflate what the
      // team is willing to pay elsewhere).
      const double penalty =
          ClusterPlacementPenalty(registry, ctx.placement_penalty, c);
      if (penalty >= kPlacementPenaltyAvoid) continue;
      const double cost =
          BelievedClusterCost(registry, *ctx.learner, c, slice);
      const double ranked = cost * (1.0 + kPlacementPenaltyWeight * penalty);
      if (ranked < best_ranked) {
        best_ranked = ranked;
        best_cost = cost;
        best = c;
      }
    }
    if (best.empty()) return {};
    if (home_value - best_cost < profile.relocation_cost) {
      // The spread does not pay for the reconfiguration work; fall back
      // to growing like a truthful bidder would.
      return TruthfulGrowthStrategy().MakeBids(ctx);
    }

    std::vector<bid::Bid> bids;

    // Offer: sell the home slice at slightly below its believed market
    // value — enough discount to clear, tightening as beliefs converge
    // (the §V.C adaptation applies to asks as much as to bids).
    bid::Bid offer;
    offer.name = profile.name + "/vacate";
    offer.bundles = {
        -BundleForCluster(registry, profile.home_cluster, slice)};
    offer.limit =
        -std::max(home_value * ctx.rng->Uniform(0.80, 0.95), 1.0);
    bids.push_back(std::move(offer));

    // Bid: rebuy in the cold cluster (with a couple of fallbacks).
    bid::Bid rebuy;
    rebuy.name = profile.name + "/relocate";
    rebuy.bundles = {BundleForCluster(registry, best, slice)};
    int alternatives = 0;
    for (const std::string& c : ClustersByBelievedCost(ctx, slice)) {
      if (c == profile.home_cluster || c == best) continue;
      if (!FitsFreeCapacity(*ctx.view, c, slice)) continue;
      rebuy.bundles.push_back(BundleForCluster(registry, c, slice));
      if (++alternatives >= 2) break;
    }
    const double markup = ctx.learner->Markup();
    rebuy.limit = ClampLimit(
        std::min(best_cost * (1.0 + markup),
                 best_cost * profile.value_multiplier),
        ctx.view->budget);
    if (rebuy.limit > 0.0) bids.push_back(std::move(rebuy));
    return bids;
  }

  std::string_view Name() const override { return "opportunist-mover"; }
};

class LowballSellerStrategy final : public Strategy {
 public:
  std::vector<bid::Bid> MakeBids(const StrategyContext& ctx) override {
    const TeamProfile& profile = *ctx.profile;
    const PoolRegistry& registry = *ctx.view->registry;

    // Selling only pays where capacity is scarce: when the home cluster
    // is not congested there is no premium to harvest, so sit out (the
    // paper's offers concentrate in overutilized clusters, Fig. 7).
    const auto home_cpu =
        registry.Find(PoolKey{profile.home_cluster, ResourceKind::kCpu});
    if (home_cpu.has_value() &&
        ctx.view->utilization[*home_cpu] < 0.45) {
      return {};
    }

    // Shrink 30 % of the footprint. §V.C: "in some auctions a number of
    // sellers will enter very low prices confident that there will be
    // ample competition and that the final market price will be fair" —
    // so this seller intermittently asks a token price (which spikes the
    // mean premium γ) and otherwise asks near believed value.
    const cluster::TaskShape slice = profile.footprint * 0.3;
    if (slice.cpu < 1.0) return {};
    bid::Bid offer;
    offer.name = profile.name + "/shrink";
    offer.bundles = {
        -BundleForCluster(registry, profile.home_cluster, slice)};
    if (ctx.rng->Bernoulli(0.4)) {
      offer.limit = -ctx.rng->Uniform(0.5, 2.0);  // Nearly free.
    } else {
      const double believed = BelievedClusterCost(
          registry, *ctx.learner, profile.home_cluster, slice);
      offer.limit = -std::max(believed * ctx.rng->Uniform(0.75, 0.92),
                              1.0);
    }
    return {std::move(offer)};
  }

  std::string_view Name() const override { return "lowball-seller"; }
};

class ArbitrageurStrategy final : public Strategy {
 public:
  std::vector<bid::Bid> MakeBids(const StrategyContext& ctx) override {
    const TeamProfile& profile = *ctx.profile;
    const PoolRegistry& registry = *ctx.view->registry;
    std::vector<double>& holdings = *ctx.holdings;
    holdings.resize(registry.size(), 0.0);

    std::vector<bid::Bid> bids;

    // Resell warehoused holdings where the reserve already exceeds the
    // believed price paid (margin locked in by the uniform price).
    bid::Bundle sell_bundle;
    {
      std::vector<bid::BundleItem> items;
      for (PoolId r = 0; r < registry.size(); ++r) {
        if (holdings[r] <= 0.0) continue;
        if (ctx.view->reserve_prices[r] >
            ctx.learner->Belief(r) * 1.10) {
          items.push_back(bid::BundleItem{r, -holdings[r]});
        }
      }
      sell_bundle = bid::Bundle(std::move(items));
    }
    if (!sell_bundle.Empty()) {
      bid::Bid sell;
      sell.name = profile.name + "/arb-sell";
      sell.bundles = {sell_bundle};
      // Ask just under believed value: the margin was locked in at
      // purchase; underselling the belief only risks the uniform price.
      const double believed_value = -sell_bundle.Dot(
          [&] {
            std::vector<double> beliefs(registry.size(), 0.0);
            for (PoolId r = 0; r < registry.size(); ++r) {
              beliefs[r] = ctx.learner->Belief(r);
            }
            return beliefs;
          }());
      sell.limit = -std::max(believed_value * 0.9, 1.0);
      bids.push_back(std::move(sell));
    }

    // Buy the pool with the biggest believed discount to reserve: where
    // the operator's congestion weighting marked capacity down hardest.
    PoolId best_pool = kInvalidPool;
    double best_discount = 0.0;
    for (PoolId r = 0; r < registry.size(); ++r) {
      if (ctx.view->free_capacity[r] <= 0.0) continue;
      const double belief = ctx.learner->Belief(r);
      if (belief <= 0.0) continue;
      const double discount =
          (belief - ctx.view->reserve_prices[r]) / belief;
      if (discount > best_discount) {
        best_discount = discount;
        best_pool = r;
      }
    }
    if (best_pool != kInvalidPool && best_discount > 0.15) {
      const double qty =
          std::min(ctx.view->free_capacity[best_pool] * 0.10,
                   profile.footprint.cpu);
      if (qty >= 1.0) {
        bid::Bid buy;
        buy.name = profile.name + "/arb-buy";
        buy.bundles = {bid::Bundle({bid::BundleItem{best_pool, qty}})};
        buy.limit = ClampLimit(
            qty * ctx.learner->Belief(best_pool) * 0.95,
            ctx.view->budget);
        if (buy.limit > 0.0) bids.push_back(std::move(buy));
      }
    }
    return bids;
  }

  std::string_view Name() const override { return "arbitrageur"; }
};

}  // namespace

double ClusterPlacementPenalty(const PoolRegistry& registry,
                               const std::vector<double>* penalty,
                               const std::string& cluster) {
  if (penalty == nullptr || penalty->empty()) return 0.0;
  double worst = 0.0;
  for (ResourceKind kind : kAllResourceKinds) {
    const auto id = registry.Find(PoolKey{cluster, kind});
    if (!id.has_value() || *id >= penalty->size()) continue;
    worst = std::max(worst, (*penalty)[*id]);
  }
  return worst;
}

bool IsArbitrageBidName(std::string_view bid_name) {
  return bid_name.find("/arb-") != std::string_view::npos;
}

bid::Bundle BundleForCluster(const PoolRegistry& registry,
                             const std::string& cluster,
                             const cluster::TaskShape& delta) {
  std::vector<bid::BundleItem> items;
  for (ResourceKind kind : kAllResourceKinds) {
    const double qty = delta.Of(kind);
    if (qty == 0.0) continue;
    const auto id = registry.Find(PoolKey{cluster, kind});
    PM_CHECK_MSG(id.has_value(), "cluster '" << cluster
                                             << "' missing pool for kind "
                                             << pm::ToString(kind));
    items.push_back(bid::BundleItem{*id, qty});
  }
  return bid::Bundle(std::move(items));
}

double BelievedClusterCost(const PoolRegistry& registry,
                           const PriceLearner& learner,
                           const std::string& cluster,
                           const cluster::TaskShape& delta) {
  double cost = 0.0;
  for (ResourceKind kind : kAllResourceKinds) {
    const double qty = delta.Of(kind);
    if (qty == 0.0) continue;
    const auto id = registry.Find(PoolKey{cluster, kind});
    PM_CHECK_MSG(id.has_value(), "cluster '" << cluster
                                             << "' missing pool for kind "
                                             << pm::ToString(kind));
    cost += qty * learner.Belief(*id);
  }
  return cost;
}

std::unique_ptr<Strategy> MakeStrategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kTruthfulGrowth:
      return std::make_unique<TruthfulGrowthStrategy>();
    case StrategyKind::kPremiumSticky:
      return std::make_unique<PremiumStickyStrategy>();
    case StrategyKind::kOpportunistMover:
      return std::make_unique<OpportunistMoverStrategy>();
    case StrategyKind::kLowballSeller:
      return std::make_unique<LowballSellerStrategy>();
    case StrategyKind::kArbitrageur:
      return std::make_unique<ArbitrageurStrategy>();
  }
  PM_CHECK_MSG(false, "unknown strategy kind");
  return nullptr;
}

}  // namespace pm::agents
