// planetmarket: bidding strategies.
//
// Each strategy reproduces a bidder population the paper observed (§V.B–C):
//
//  * TruthfulGrowth — grows wherever believed-cheapest; limits close to
//    believed cost × value multiplier. The well-behaved baseline bidder.
//  * PremiumSticky — "teams that were willing to pay a significant price
//    premium to continue growing in congested clusters": bids only on the
//    home cluster with a large markup. Produces Figure 7's high-percentile
//    bid outliers.
//  * OpportunistMover — "a number of large teams offer resources on the
//    market to take advantage of the higher prices and move to less
//    congested clusters": one offer selling part of the congested home
//    footprint, one bid rebuying in the believed-cheapest cold cluster,
//    gated on the price differential exceeding the relocation cost.
//  * LowballSeller — "some sellers will enter very low prices confident
//    that there will be ample competition and that the final market price
//    will be fair": asks a token minimum. Keeps Table I's mean γ noisy.
//  * Arbitrageur — §V.C's "increasing sophistication towards arbitrage
//    opportunities": buys pools priced below belief, resells warehoused
//    holdings priced above.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "agents/team.h"

namespace pm::agents {

/// Context handed to strategies: the agent's own state plus the market.
struct StrategyContext {
  const TeamProfile* profile = nullptr;
  const MarketView* view = nullptr;
  PriceLearner* learner = nullptr;
  RandomStream* rng = nullptr;
  std::vector<double>* holdings = nullptr;  // Arbitrage inventory.
  /// The agent's per-pool placement-failure memory (may be null or
  /// shorter than the registry; missing pools read as penalty 0). All
  /// zeros until the market's outcome_feedback gate delivers placement
  /// feedback, in which case strategies de-prioritize — and past
  /// kPlacementPenaltyAvoid, skip — chronically unplaceable clusters.
  const std::vector<double>* placement_penalty = nullptr;
};

/// Turns market state into this auction's bids.
class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::vector<bid::Bid> MakeBids(const StrategyContext& ctx) = 0;

  virtual std::string_view Name() const = 0;
};

/// Factory for the canned strategies.
std::unique_ptr<Strategy> MakeStrategy(StrategyKind kind);

/// The arbitrage naming contract shared by the resident Arbitrageur
/// strategy, the federation's cross-shard ArbitrageAgent, and the
/// exchange's settlement path: a bid whose name contains "/arb-" trades
/// warehoused quota. For *resident* bidders the market adjusts the
/// agent's warehouse instead of moving jobs; external (federation-routed)
/// arbitrage settles physically — its warehouse is real placed jobs.
bool IsArbitrageBidName(std::string_view bid_name);

/// Helper shared by strategies and tests: the bundle a team of shape
/// `delta` needs in `cluster` (one item per resource kind with nonzero
/// demand), built against `registry`.
bid::Bundle BundleForCluster(const PoolRegistry& registry,
                             const std::string& cluster,
                             const cluster::TaskShape& delta);

/// Helper: believed cost of placing `delta` in `cluster`.
double BelievedClusterCost(const PoolRegistry& registry,
                           const PriceLearner& learner,
                           const std::string& cluster,
                           const cluster::TaskShape& delta);

/// Weight of the placement-failure memory in cluster ranking: candidate
/// clusters are ordered by believed cost × (1 + weight × penalty), so a
/// fully distrusted cluster (penalty 1) reads 3× as expensive. The bid
/// limits themselves stay anchored to raw believed cost.
inline constexpr double kPlacementPenaltyWeight = 2.0;

/// Clusters whose penalty meets this bar are skipped outright as growth
/// or relocation alternatives — the market kept awarding there and the
/// bin-packer kept failing, so bidding again only burns budget (the
/// refund path repays money, never the lost auction round).
inline constexpr double kPlacementPenaltyAvoid = 0.6;

/// The cluster's penalty: the worst per-kind pool score in the agent's
/// placement memory (0 when the memory is null/empty — the gate-off
/// path, where every factor below multiplies by exactly 1).
double ClusterPlacementPenalty(const PoolRegistry& registry,
                               const std::vector<double>* penalty,
                               const std::string& cluster);

}  // namespace pm::agents
