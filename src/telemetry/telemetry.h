// planetmarket: the telemetry plane's front door.
//
// TelemetryConfig is the compiled gate: with `enabled == false` (the
// default) no Telemetry object exists anywhere — the federation holds a
// null pointer, every instrumentation site is a single pointer test, and
// behavior plus every report/bench output is bit-identical to the
// pre-telemetry system (asserted by tests/telemetry_test.cpp and the
// bench_telemetry_overhead smoke).
//
// With the gate on, one Telemetry object per federation owns the three
// subsystems:
//
//   MetricsRegistry — deterministic counters/gauges/histograms with
//     {shard, kind, phase} labels, per-epoch logical-clock snapshots,
//     JSON + Prometheus exporters (registry.h);
//   BidTracer       — bid-lifecycle spans from submit to settlement or
//     refund (trace.h);
//   FlightRecorder  — per-shard ring of recent events, dumped by the
//     epoch supervisor whenever it contains a shard failure
//     (flight_recorder.h).
//
// All writes happen in the federation's single-threaded epoch sections
// (the instrumentation contract of federated_exchange.cpp), so every
// export is byte-identical across reruns and thread counts.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace pm::telemetry {

/// The gate plus sub-feature toggles (only read when `enabled`).
struct TelemetryConfig {
  /// Master gate. Off: no telemetry object is constructed, no
  /// instrumentation site does more than one pointer comparison, and all
  /// outputs are bit-identical to a build without the telemetry plane.
  bool enabled = false;

  /// Bid-lifecycle span emission (submit/route/auction/settle/refund).
  bool trace_bids = true;

  /// Per-shard event rings + supervisor containment dumps.
  bool flight_recorder = true;

  /// Ring capacity per shard.
  std::size_t flight_recorder_capacity = 128;

  /// Collect wall-clock epoch timings. These live OUTSIDE the
  /// deterministic channel: they only render when a caller explicitly
  /// asks MetricsJson(include_timings=true). Off by default so the
  /// default telemetry document is reproducible byte for byte.
  bool wall_clock_timings = false;
};

/// One federation's telemetry plane.
class Telemetry {
 public:
  Telemetry(TelemetryConfig config, std::vector<std::string> shard_names);

  const TelemetryConfig& config() const { return config_; }
  const std::vector<std::string>& shard_names() const {
    return shard_names_;
  }

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  BidTracer& tracer() { return tracer_; }
  const BidTracer& tracer() const { return tracer_; }
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }

  /// Emits a span. Callers attach attributes on the returned reference,
  /// then MirrorSpan() it into the shard ring if it should be visible to
  /// the flight recorder.
  Span& EmitSpan(std::uint64_t trace, std::string name, int epoch,
                 int shard);

  /// Records a shard-level (non-span) event into the shard's ring.
  void RecordEvent(std::size_t shard, int epoch, std::string line);

  /// Re-renders an already-emitted span into its shard ring — used when
  /// attributes were attached after EmitSpan.
  void MirrorSpan(const Span& span);

  // ------------------------------------------------------------- exports --
  /// Deterministic metrics document; the timing block renders only on
  /// explicit request (and only holds data when wall_clock_timings).
  std::string MetricsJson(bool include_timings = false) const;

  /// Prometheus-style exposition of the registry.
  std::string PrometheusText() const;

  /// Deterministic trace document: every span plus the retained
  /// flight-recorder dumps.
  std::string TraceJson() const;

 private:
  TelemetryConfig config_;
  std::vector<std::string> shard_names_;
  MetricsRegistry registry_;
  BidTracer tracer_;
  FlightRecorder recorder_;
};

}  // namespace pm::telemetry
