// planetmarket: the telemetry plane's front door.
//
// TelemetryConfig is the compiled gate: with `enabled == false` (the
// default) no Telemetry object exists anywhere — the federation holds a
// null pointer, every instrumentation site is a single pointer test, and
// behavior plus every report/bench output is bit-identical to the
// pre-telemetry system (asserted by tests/telemetry_test.cpp and the
// bench_telemetry_overhead smoke).
//
// With the gate on, one Telemetry object per federation owns the three
// subsystems:
//
//   MetricsRegistry — deterministic counters/gauges/histograms with
//     {shard, kind, phase} labels, per-epoch logical-clock snapshots,
//     JSON + Prometheus exporters (registry.h);
//   BidTracer       — bid-lifecycle spans from submit to settlement or
//     refund (trace.h);
//   FlightRecorder  — per-shard ring of recent events, dumped by the
//     epoch supervisor whenever it contains a shard failure
//     (flight_recorder.h).
//
// All writes happen in the federation's single-threaded epoch sections
// (the instrumentation contract of federated_exchange.cpp), so every
// export is byte-identical across reruns and thread counts.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/alerts.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/profiler.h"
#include "telemetry/registry.h"
#include "telemetry/rules.h"
#include "telemetry/trace.h"

namespace pm::telemetry {

/// The watchdog plane's sub-gates (only read when the telemetry master
/// gate is on). Both default OFF: telemetry-on-watchdog-off produces a
/// metrics/report/trace byte stream bit-identical to the pre-watchdog
/// plane — no `derived:` series, no watchdog gauges, no alert timeline
/// (asserted by tests/telemetry_test.cpp and bench_telemetry_overhead).
struct WatchdogConfig {
  /// Evaluate recording rules (rules.h) each epoch, writing `derived:`
  /// gauges into the registry. Also arms the watchdog's extra raw
  /// instrumentation (per-kind clearing-price gauges, awarded-dollars
  /// counters, health gauges, the treasury conservation residual) that
  /// the rules and the console consume.
  bool recording_rules = false;

  /// Evaluate alert rules (alerts.h) each epoch, after the recording
  /// rules. The default alert pack watches `derived:` series, so arming
  /// alerts without recording_rules leaves those rules with no instances
  /// (absence/raw-threshold rules still work).
  bool alerts = false;
};

/// The gate plus sub-feature toggles (only read when `enabled`).
struct TelemetryConfig {
  /// Master gate. Off: no telemetry object is constructed, no
  /// instrumentation site does more than one pointer comparison, and all
  /// outputs are bit-identical to a build without the telemetry plane.
  bool enabled = false;

  /// Bid-lifecycle span emission (submit/route/auction/settle/refund).
  bool trace_bids = true;

  /// Per-shard event rings + supervisor containment dumps.
  bool flight_recorder = true;

  /// Ring capacity per shard.
  std::size_t flight_recorder_capacity = 128;

  /// Collect wall-clock epoch timings. These live OUTSIDE the
  /// deterministic channel: they only render when a caller explicitly
  /// asks MetricsJson(include_timings=true). Off by default so the
  /// default telemetry document is reproducible byte for byte.
  bool wall_clock_timings = false;

  /// The watchdog plane (recording rules + alerts), both gates off by
  /// default. `WatchdogConfig{true, true}` arms the shipped packs.
  WatchdogConfig watchdog;

  /// The phase profiler (profiler.h): deterministic work accounting
  /// and/or wall-clock phase spans + chrome-trace export. Both channels
  /// off by default; off is bit-identical (the fourth arm of
  /// bench_telemetry_overhead byte-compares it). Arming work_accounting
  /// together with the watchdog sub-gates appends the `derived:work_*`
  /// rules and drift alerts to the shipped packs.
  ProfilerConfig profiler;
};

/// One federation's telemetry plane.
class Telemetry {
 public:
  Telemetry(TelemetryConfig config, std::vector<std::string> shard_names);

  const TelemetryConfig& config() const { return config_; }
  const std::vector<std::string>& shard_names() const {
    return shard_names_;
  }

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  BidTracer& tracer() { return tracer_; }
  const BidTracer& tracer() const { return tracer_; }
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }
  /// Null when the corresponding watchdog sub-gate is off.
  RuleEngine* rule_engine() { return rules_.get(); }
  const RuleEngine* rule_engine() const { return rules_.get(); }
  AlertEngine* alerts() { return alerts_.get(); }
  const AlertEngine* alerts() const { return alerts_.get(); }
  /// Null unless a ProfilerConfig channel is armed.
  PhaseProfiler* profiler() { return profiler_.get(); }
  const PhaseProfiler* profiler() const { return profiler_.get(); }

  /// Replaces the default rule/alert packs (tests, custom deployments).
  /// Only legal when the corresponding sub-gate is armed.
  void SetRecordingRules(std::vector<RecordingRule> rules);
  void SetAlertRules(std::vector<AlertRule> rules);

  /// Runs the watchdog for epoch `epoch`: recording rules first (derived
  /// gauges land in the registry), then the alert pass. Call once per
  /// epoch at the T2 barrier, BEFORE the registry's SnapshotEpoch, so
  /// derived series ride the snapshot. Returns this epoch's alert
  /// transitions (already in the timeline) for mirroring; empty when the
  /// watchdog is off.
  std::vector<AlertTransition> EvaluateWatchdog(int epoch);

  /// Emits a span. Callers attach attributes on the returned reference,
  /// then MirrorSpan() it into the shard ring if it should be visible to
  /// the flight recorder.
  Span& EmitSpan(std::uint64_t trace, std::string name, int epoch,
                 int shard);

  /// Records a shard-level (non-span) event into the shard's ring.
  void RecordEvent(std::size_t shard, int epoch, std::string line);

  /// Re-renders an already-emitted span into its shard ring — used when
  /// attributes were attached after EmitSpan.
  void MirrorSpan(const Span& span);

  // ------------------------------------------------------------- exports --
  /// Deterministic metrics document; the timing block renders only on
  /// explicit request (and only holds data when wall_clock_timings).
  std::string MetricsJson(bool include_timings = false) const;

  /// Prometheus-style exposition of the registry.
  std::string PrometheusText() const;

  /// Deterministic trace document: every span plus the retained
  /// flight-recorder dumps.
  std::string TraceJson() const;

  /// Deterministic alert-timeline document; `{"alerts": []}` shape even
  /// when the alert gate is off, so sinks need no special case.
  std::string AlertTimelineJson() const;

 private:
  TelemetryConfig config_;
  std::vector<std::string> shard_names_;
  MetricsRegistry registry_;
  BidTracer tracer_;
  FlightRecorder recorder_;
  std::unique_ptr<RuleEngine> rules_;    // watchdog.recording_rules
  std::unique_ptr<AlertEngine> alerts_;  // watchdog.alerts
  std::unique_ptr<PhaseProfiler> profiler_;  // profiler.{work,wall}
};

}  // namespace pm::telemetry
