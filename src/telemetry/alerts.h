// planetmarket: the alert engine — the watchdog plane's judgment layer.
//
// Recording rules (rules.h) turn raw registry values into per-epoch
// signals; alert rules turn those signals into a deterministic lifecycle
// an operator (or a scenario SLO) can assert against. Each rule watches
// one metric name — raw or `derived:` — across every label set it has,
// so a per-shard series yields one independent alert instance per shard.
//
// Lifecycle, stamped in logical epoch time only:
//
//   inactive ──breach──► pending ──breach × for_epochs──► firing
//   pending  ──clear───► inactive        firing ──clear──► resolved
//   resolved ──────────► inactive (or back to pending on a new breach)
//
// `for_epochs` is the hysteresis: the breach must hold that many
// CONSECUTIVE epochs before the alert fires (for_epochs <= 1 fires on
// first breach, skipping the visible pending epoch). `resolved` is
// visible for exactly one evaluation so timelines record recovery as an
// event, not as silence.
//
// Evaluation runs once per epoch in the federation's single-threaded T2
// barrier (after the rule engine, before SnapshotEpoch), so the timeline
// JSON is byte-identical across reruns and thread counts. Every
// transition is also handed back to the caller, which mirrors it into
// the FlightRecorder rings and the FederationReport alert block.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/registry.h"

namespace pm::telemetry {

enum class AlertSeverity { kInfo, kWarning, kCritical };
enum class AlertState { kInactive, kPending, kFiring, kResolved };

std::string_view ToString(AlertSeverity severity);
std::string_view ToString(AlertState state);

/// One declarative alert rule.
struct AlertRule {
  enum class Kind {
    kAbove,   // Breach when value > threshold.
    kBelow,   // Breach when value < threshold.
    kAbsent,  // Breach when the exact (metric, labels) series does not
              // exist in the registry — a shard that stopped reporting.
  };

  std::string name;     // Alert name ("containment") — the SLO handle.
  Kind kind = Kind::kAbove;
  /// Watched metric name (counter or gauge; gauges win when both exist),
  /// evaluated per label set. May carry the `derived:` prefix.
  std::string metric;
  /// kAbsent only: the exact label set whose presence is required
  /// (threshold rules discover label sets from the registry; an absence
  /// rule cannot, since the series it watches is missing).
  Labels labels;
  double threshold = 0.0;  // kAbove/kBelow.
  int for_epochs = 1;      // Consecutive breach epochs before firing.
  AlertSeverity severity = AlertSeverity::kWarning;
};

/// One lifecycle transition of one alert instance — the timeline unit.
struct AlertTransition {
  int epoch = 0;
  std::string rule;    // AlertRule::name.
  std::string series;  // Canonical key of the watched instance.
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
  AlertSeverity severity = AlertSeverity::kWarning;
  double value = 0.0;  // Observed value at the transition (0 for absence).
};

/// The shipped alert pack over DefaultRecordingRules() — containment,
/// quarantine, refund-storm, spread-blowout, treasury-conservation-drift
/// (docs/observability.md documents each threshold).
std::vector<AlertRule> DefaultAlertRules();

/// The profiler's work-drift pack over DefaultWorkRecordingRules()
/// (rules.h), appended when telemetry.profiler.work_accounting and
/// watchdog.alerts are both armed: sustained epoch-over-epoch blowups
/// of the deterministic work counters — the perf-regression proxy that
/// fires identically on every host.
std::vector<AlertRule> DefaultWorkAlertRules();

class AlertEngine {
 public:
  explicit AlertEngine(std::vector<AlertRule> rules);

  const std::vector<AlertRule>& rules() const { return rules_; }

  /// Evaluates every rule against the registry's current values. Call
  /// exactly once per epoch, after the recording rules. Returns the
  /// transitions that happened THIS epoch (already appended to the
  /// timeline), in deterministic (rule order, then key order) order.
  std::vector<AlertTransition> EvaluateEpoch(
      const MetricsRegistry& registry, int epoch);

  /// The full transition history, in evaluation order.
  const std::vector<AlertTransition>& Timeline() const {
    return timeline_;
  }

  /// Rule names with at least one instance currently firing (sorted,
  /// deduplicated).
  std::vector<std::string> FiringNames() const;

  /// Rule names firing after evaluation `index` (0-based, aligned with
  /// the registry's epoch snapshots) — the console's per-epoch column.
  const std::vector<std::string>& FiringAfterEvaluation(
      std::size_t index) const;
  std::size_t NumEvaluations() const { return firing_history_.size(); }

  /// True when the named rule ever reached firing — the SLO predicate
  /// behind expect_alert / forbid_alert.
  bool EverFired(std::string_view rule_name) const;

  /// Deterministic timeline document:
  /// {"alerts": [{"epoch":…, "alert":…, "series":…, "severity":…,
  ///              "from":…, "to":…, "value":…}, …]}.
  std::string TimelineJson() const;

 private:
  struct Instance {
    AlertState state = AlertState::kInactive;
    int breach_streak = 0;
  };

  std::vector<AlertRule> rules_;
  /// Instance states keyed by (rule index, canonical series key).
  std::vector<std::map<std::string, Instance>> instances_;
  std::vector<AlertTransition> timeline_;
  /// Firing rule names after each evaluation, epoch-aligned.
  std::vector<std::vector<std::string>> firing_history_;
};

}  // namespace pm::telemetry
