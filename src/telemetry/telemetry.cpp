#include "telemetry/telemetry.h"

#include <iterator>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace pm::telemetry {

Telemetry::Telemetry(TelemetryConfig config,
                     std::vector<std::string> shard_names)
    : config_(std::move(config)),
      shard_names_(std::move(shard_names)),
      recorder_(shard_names_.size(),
                config_.flight_recorder_capacity) {
  PM_CHECK_MSG(config_.enabled,
               "construct Telemetry only behind the enabled gate");
  PM_CHECK_MSG(!shard_names_.empty(), "telemetry needs shard names");
  // The profiler's work channel extends the watchdog's default packs —
  // work-rate recording rules and drift alerts only exist when BOTH
  // gates are armed, so the pre-profiler packs (pinned by the golden
  // byte-compares under tests/golden/) are untouched otherwise.
  if (config_.watchdog.recording_rules) {
    std::vector<RecordingRule> rules = DefaultRecordingRules();
    if (config_.profiler.work_accounting) {
      std::vector<RecordingRule> work = DefaultWorkRecordingRules();
      rules.insert(rules.end(), std::make_move_iterator(work.begin()),
                   std::make_move_iterator(work.end()));
    }
    rules_ = std::make_unique<RuleEngine>(std::move(rules));
  }
  if (config_.watchdog.alerts) {
    std::vector<AlertRule> alert_rules = DefaultAlertRules();
    if (config_.profiler.work_accounting) {
      std::vector<AlertRule> work = DefaultWorkAlertRules();
      alert_rules.insert(alert_rules.end(),
                         std::make_move_iterator(work.begin()),
                         std::make_move_iterator(work.end()));
    }
    alerts_ = std::make_unique<AlertEngine>(std::move(alert_rules));
  }
  if (config_.profiler.work_accounting || config_.profiler.wall_clock) {
    profiler_ =
        std::make_unique<PhaseProfiler>(config_.profiler, shard_names_);
  }
}

void Telemetry::SetRecordingRules(std::vector<RecordingRule> rules) {
  PM_CHECK_MSG(config_.watchdog.recording_rules,
               "arm watchdog.recording_rules before replacing the pack");
  rules_ = std::make_unique<RuleEngine>(std::move(rules));
}

void Telemetry::SetAlertRules(std::vector<AlertRule> rules) {
  PM_CHECK_MSG(config_.watchdog.alerts,
               "arm watchdog.alerts before replacing the pack");
  alerts_ = std::make_unique<AlertEngine>(std::move(rules));
}

std::vector<AlertTransition> Telemetry::EvaluateWatchdog(int epoch) {
  if (rules_ != nullptr) rules_->EvaluateEpoch(registry_);
  if (alerts_ != nullptr) return alerts_->EvaluateEpoch(registry_, epoch);
  return {};
}

Span& Telemetry::EmitSpan(std::uint64_t trace, std::string name,
                          int epoch, int shard) {
  return tracer_.Emit(trace, std::move(name), epoch, shard);
}

void Telemetry::RecordEvent(std::size_t shard, int epoch,
                            std::string line) {
  if (!config_.flight_recorder) return;
  FlightEvent event;
  event.epoch = epoch;
  event.line = "[e" + std::to_string(epoch) + "] " + std::move(line);
  recorder_.Record(shard, std::move(event));
}

void Telemetry::MirrorSpan(const Span& span) {
  if (!config_.flight_recorder || span.shard < 0) return;
  FlightEvent event;
  event.epoch = span.epoch;
  event.seq = span.seq;
  event.trace = span.trace;
  event.line = span.Render();
  recorder_.Record(static_cast<std::size_t>(span.shard),
                   std::move(event));
}

std::string Telemetry::MetricsJson(bool include_timings) const {
  return registry_.ToJson(include_timings);
}

std::string Telemetry::PrometheusText() const {
  return registry_.ToPrometheusText();
}

std::string Telemetry::AlertTimelineJson() const {
  if (alerts_ == nullptr) return "{\n\"alerts\": [\n]\n}\n";
  return alerts_->TimelineJson();
}

std::string Telemetry::TraceJson() const {
  std::ostringstream os;
  os << "{\n\"spans\": " << tracer_.ToJson() << ",\n\"flight_dumps\": "
     << recorder_.DumpsJson() << "\n}\n";
  return os.str();
}

}  // namespace pm::telemetry
