#include "telemetry/console.h"

#include <map>
#include <sstream>
#include <string_view>

#include "common/table.h"
#include "telemetry/telemetry.h"

namespace pm::telemetry {
namespace {

/// Decodes the fed_shard_health gauge (the federation writes its
/// ShardHealth enum value: 0 healthy, 1 degraded, 2 quarantined,
/// 3 recovering — federated_exchange.cpp's watchdog block).
std::string_view HealthName(double value) {
  if (value == 0.0) return "healthy";
  if (value == 1.0) return "degraded";
  if (value == 2.0) return "quarantined";
  if (value == 3.0) return "recovering";
  return "?";
}

}  // namespace

std::string RenderConsole(const Telemetry& telemetry) {
  const MetricsRegistry& reg = telemetry.registry();
  const AlertEngine* alerts = telemetry.alerts();
  std::ostringstream os;
  os << "== watchdog console: " << reg.Snapshots().size()
     << " epoch(s), " << telemetry.shard_names().size()
     << " shard(s) ==\n";

  for (std::size_t e = 0; e < reg.Snapshots().size(); ++e) {
    const MetricsRegistry::EpochSnapshot& snap = reg.Snapshots()[e];
    std::map<std::string, double> gauges(snap.gauges.begin(),
                                         snap.gauges.end());
    const auto value_of = [&gauges](const std::string& key,
                                    int digits) -> std::string {
      const auto it = gauges.find(key);
      return it == gauges.end() ? "-" : FormatF(it->second, digits);
    };

    os << "epoch " << snap.epoch << "\n";

    // Firing alerts (epoch-aligned with the snapshots when the alert
    // engine evaluated every epoch).
    os << "  alerts:";
    if (alerts != nullptr && e < alerts->NumEvaluations()) {
      const std::vector<std::string>& firing =
          alerts->FiringAfterEvaluation(e);
      if (firing.empty()) os << " (none)";
      for (const std::string& name : firing) os << " " << name;
    } else {
      os << " (alert engine off)";
    }
    os << "\n";

    // Planet row: cross-shard spread per kind plus the mean spread.
    os << "  spread: mean="
       << value_of(RenderKey("fed_clearing_spread", Labels{}), 6);
    for (const auto& [key, value] : gauges) {
      if (KeyName(key) != "derived:price_spread") continue;
      os << " " << KeyLabels(key).kind << "=" << FormatF(value, 6);
    }
    os << "\n";

    // One row per shard: health, refund rate, per-kind clearing prices.
    for (const std::string& shard : telemetry.shard_names()) {
      Labels by_shard;
      by_shard.shard = shard;
      os << "  shard " << shard << ": health=";
      const auto health =
          gauges.find(RenderKey("fed_shard_health", by_shard));
      os << (health == gauges.end() ? "-" : HealthName(health->second));
      os << " refund_rate="
         << value_of(RenderKey("derived:refund_rate", by_shard), 6);
      os << " prices:";
      bool any_price = false;
      for (const auto& [key, value] : gauges) {
        if (KeyName(key) != "fed_clearing_price_dollars") continue;
        const Labels labels = KeyLabels(key);
        if (labels.shard != shard) continue;
        os << " " << labels.kind << "=" << FormatF(value, 6);
        any_price = true;
      }
      if (!any_price) os << " -";
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace pm::telemetry
