// planetmarket: the deterministic metrics registry — the scrapeable core
// of the telemetry plane.
//
// Named counters, gauges and histograms, each addressed by a hierarchical
// label set {shard, kind, phase} (any subset may be empty). Storage is an
// ordered map over the canonical key rendering, so export order depends
// only on WHICH metrics were touched, never on touch order — two runs
// that record the same values emit byte-identical documents regardless of
// insertion interleaving.
//
// Two export channels with different contracts:
//
//   ToJson() / snapshots — the DETERMINISTIC channel. Fixed-precision
//     numbers, no wall-clock time, no host data; same contract as
//     scenario::ScenarioMetrics::ToJson (byte-identical across reruns
//     and thread counts). Epoch snapshots are stamped with the caller's
//     LOGICAL clock (the federation epoch), never real time.
//
//   ToPrometheusText() — the exposition format for the future exchange
//     daemon's scrape endpoint. Same deterministic values; cumulative
//     `_bucket`/`_sum`/`_count` histogram rendering.
//
// Wall-clock timings (RecordTiming) are collected into a separate block
// that ONLY renders when ToJson(/*include_timings=*/true) is explicitly
// requested — the timing block is gated off the deterministic channel by
// construction, so no caller can leak host time into a byte-equality
// contract by accident.
//
// Thread-safety: none, by design. The federation instruments at epoch
// barriers (single-threaded sections); concurrent shard epochs never
// touch the registry directly. This is what keeps the channel
// deterministic across FederationConfig::num_threads AND keeps the hot
// paths free of synchronization.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "stats/histogram.h"

namespace pm::telemetry {

/// Hierarchical metric labels. Empty components are omitted from the
/// canonical rendering.
struct Labels {
  std::string shard;  // Shard name ("contested") or "" for planet-wide.
  std::string kind;   // Resource kind ("cpu") or "" when not per-kind.
  std::string phase;  // Pipeline phase ("route", "settle", policy name).
};

/// Canonical key rendering: `name{shard="…",kind="…",phase="…"}` with
/// empty labels omitted (bare `name` when all are empty). This string is
/// the registry's storage key and the JSON/Prometheus identity.
std::string RenderKey(std::string_view name, const Labels& labels);

/// The bare metric name of a canonical key (`pm_x{shard="a"}` → `pm_x`).
std::string_view KeyName(const std::string& key);

/// The inverse of RenderKey's label block: parses a canonical key's
/// labels back out (escape-aware). The rule engine and the operator
/// console use this to regroup series the registry stores flat.
Labels KeyLabels(const std::string& key);

/// The registry. See the header comment for the channel contracts.
class MetricsRegistry {
 public:
  /// Adds `delta` to a (monotone) counter, creating it at zero.
  void AddCounter(std::string_view name, const Labels& labels,
                  double delta);

  /// Sets a gauge to `value`, creating it.
  void SetGauge(std::string_view name, const Labels& labels, double value);

  /// Records `value` into the named histogram, creating it with the
  /// given shape on first touch. Every label set of one name must share
  /// one shape (CHECK-enforced) so cross-label merges are always valid.
  void Observe(std::string_view name, const Labels& labels, double value,
               double lo, double hi, std::size_t bins);

  /// Sets a gauge under an already-canonical key — the recording-rule
  /// engine's write path: a derived series reuses its input's rendered
  /// label block verbatim, so re-parsing it into a Labels just to
  /// re-render it would be wasted motion. `key` must come from RenderKey
  /// (or a RenderKey result with a `derived:` prefix).
  void SetGaugeByKey(std::string key, double value);

  /// Wall-clock timing accumulation (seconds). Lives outside the
  /// deterministic channel; see the header comment.
  void RecordTiming(std::string_view name, double seconds);

  /// Captures the current counter and gauge values as epoch `epoch`'s
  /// snapshot — the logical-clock series of the JSON document.
  void SnapshotEpoch(int epoch);

  // ------------------------------------------------------- introspection --
  double CounterValue(std::string_view name, const Labels& labels) const;
  double GaugeValue(std::string_view name, const Labels& labels) const;
  /// True when the exact (name, labels) series exists as a counter or
  /// gauge — the alert engine's absence rules need "never recorded",
  /// which the zero-defaulting value readers cannot distinguish.
  bool HasSeries(std::string_view name, const Labels& labels) const;
  /// Null when absent.
  const stats::Histogram* FindHistogram(std::string_view name,
                                        const Labels& labels) const;
  std::size_t NumCounters() const { return counters_.size(); }
  std::size_t NumEpochs() const { return epochs_.size(); }

  /// Key-ordered read access to the live scalar maps — the watchdog
  /// layer (rules, alerts, console) iterates these to find every label
  /// set of a metric name.
  const std::map<std::string, double>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }

  /// One epoch's captured counter/gauge values (the series channel).
  struct EpochSnapshot {
    int epoch = 0;
    std::vector<std::pair<std::string, double>> counters;  // (key, value)
    std::vector<std::pair<std::string, double>> gauges;
  };
  const std::vector<EpochSnapshot>& Snapshots() const { return epochs_; }

  // ------------------------------------------------------------- exports --
  /// Deterministic JSON document (counters, gauges, histograms with
  /// p50/p90/p99 + cross-label merges, the epoch snapshot series). The
  /// timing block renders only when explicitly requested.
  std::string ToJson(bool include_timings = false) const;

  /// Prometheus-style text exposition (`# TYPE` lines, label sets,
  /// cumulative histogram buckets). Deterministic values; intended for
  /// the exchange daemon's scrape endpoint.
  std::string ToPrometheusText() const;

 private:
  struct HistEntry {
    stats::Histogram hist;
    std::string name;  // Bare metric name (for cross-label merging).
  };
  struct Timing {
    long long count = 0;
    double total_seconds = 0.0;
    double max_seconds = 0.0;
  };

  std::map<std::string, double> counters_;    // key → value
  std::map<std::string, double> gauges_;      // key → value
  std::map<std::string, HistEntry> hists_;    // key → histogram
  std::map<std::string, Timing> timings_;     // name → wall-clock block
  std::vector<EpochSnapshot> epochs_;
};

}  // namespace pm::telemetry
