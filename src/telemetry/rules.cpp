#include "telemetry/rules.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pm::telemetry {
namespace {

/// The `{...}` label block of a canonical key ("" when unlabeled).
std::string KeySuffix(const std::string& key) {
  const std::size_t brace = key.find('{');
  return brace == std::string::npos ? std::string() : key.substr(brace);
}

}  // namespace

std::vector<RecordingRule> DefaultRecordingRules() {
  using Kind = RecordingRule::Kind;
  std::vector<RecordingRule> rules;
  // Per-epoch containment activity: how many shard failures, quarantined
  // epochs and checkpoint restores landed THIS epoch (the raw counters
  // only accumulate).
  rules.push_back({Kind::kCounterRate, "failed_shards_rate",
                   "fed_supervisor_failed_shards", ""});
  rules.push_back({Kind::kCounterRate, "quarantined_shards_rate",
                   "fed_supervisor_quarantined_epochs", ""});
  rules.push_back({Kind::kCounterRate, "restored_checkpoints_rate",
                   "fed_supervisor_restored_checkpoints", ""});
  // Health flaps: per-shard health-machine transitions this epoch.
  rules.push_back({Kind::kCounterRate, "health_flaps",
                   "fed_health_transitions", ""});
  // Refund storm: the dollar fraction of this epoch's awards that came
  // back as refunds, per shard (0 on a no-award epoch).
  rules.push_back({Kind::kCounterRate, "refund_dollars_rate",
                   "fed_refund_dollars", ""});
  rules.push_back({Kind::kRatio, "refund_rate", "fed_refund_dollars",
                   "fed_awarded_dollars"});
  // Cross-shard price dislocation, per resource kind — finer-grained
  // than the planet-wide fed_clearing_spread mean.
  rules.push_back({Kind::kSpreadByKind, "price_spread",
                   "fed_clearing_price_dollars", ""});
  return rules;
}

std::vector<RecordingRule> DefaultWorkRecordingRules() {
  using Kind = RecordingRule::Kind;
  std::vector<RecordingRule> rules;
  // Per-epoch logical work rates: how many kernel dot-blocks, dirty
  // bidders and wire retries landed THIS epoch, per shard (dot-blocks
  // additionally per kernel tier via the phase label).
  rules.push_back({Kind::kCounterRate, "work_dot_blocks_rate",
                   "fed_work_dot_blocks", ""});
  rules.push_back({Kind::kCounterRate, "work_dirty_bidders_rate",
                   "fed_work_dirty_bidders", ""});
  rules.push_back({Kind::kCounterRate, "work_wire_retry_rate",
                   "fed_work_wire_retries", ""});
  // Epoch-over-epoch drift of the dominant work drivers. A sustained
  // drift factor ≥ 2 means the same workload suddenly costs a multiple
  // of last epoch's logical work — the deterministic signature of an
  // incremental-fallback storm or a de-vectorized kernel, visible even
  // on a host too noisy for wall-clock regression detection.
  rules.push_back({Kind::kDeltaDrift, "work_dot_blocks_drift",
                   "fed_work_dot_blocks", ""});
  rules.push_back({Kind::kDeltaDrift, "work_dirty_bidders_drift",
                   "fed_work_dirty_bidders", ""});
  rules.push_back({Kind::kDeltaDrift, "work_probe_drift",
                   "fed_bisection_probes", ""});
  // Bisection probes per auction round: a blowout means the per-round
  // demand peek degenerated into full searches.
  rules.push_back({Kind::kRatio, "work_probes_per_round",
                   "fed_bisection_probes", "fed_auction_rounds"});
  return rules;
}

RuleEngine::RuleEngine(std::vector<RecordingRule> rules)
    : rules_(std::move(rules)) {
  for (const RecordingRule& rule : rules_) {
    PM_CHECK_MSG(!rule.output.empty() && !rule.source.empty(),
                 "recording rule needs an output and a source");
    PM_CHECK_MSG(rule.kind != RecordingRule::Kind::kRatio ||
                     !rule.denominator.empty(),
                 "ratio rule '" << rule.output << "' needs a denominator");
  }
}

std::map<std::string, double> RuleEngine::CounterDeltas(
    const MetricsRegistry& registry, const std::string& name) {
  std::map<std::string, double> deltas;
  for (const auto& [key, value] : registry.counters()) {
    if (KeyName(key) != name) continue;
    double& baseline = baseline_[key];
    deltas.emplace(key, value - baseline);
    baseline = value;
  }
  return deltas;
}

void RuleEngine::EvaluateEpoch(MetricsRegistry& registry) {
  for (const RecordingRule& rule : rules_) {
    switch (rule.kind) {
      case RecordingRule::Kind::kCounterRate: {
        for (const auto& [key, delta] : CounterDeltas(registry,
                                                      rule.source)) {
          registry.SetGaugeByKey("derived:" + rule.output + KeySuffix(key),
                                 delta);
        }
        break;
      }
      case RecordingRule::Kind::kRatio: {
        // Deltas update both baselines even when one side is missing, so
        // a denominator that first appears mid-run differences correctly
        // from its first epoch.
        const std::map<std::string, double> num =
            CounterDeltas(registry, rule.source);
        const std::map<std::string, double> den =
            CounterDeltas(registry, rule.denominator);
        for (const auto& [key, delta] : num) {
          const std::string suffix = KeySuffix(key);
          const auto it = den.find(rule.denominator + suffix);
          const double below = it == den.end() ? 0.0 : it->second;
          registry.SetGaugeByKey(
              "derived:" + rule.output + suffix,
              below > 0.0 ? delta / below : 0.0);
        }
        break;
      }
      case RecordingRule::Kind::kSpreadByKind: {
        // Group the source gauge's label sets by kind; spread is the
        // relative max-over-min across the shards carrying each kind.
        std::map<std::string, std::pair<double, double>> by_kind;
        for (const auto& [key, value] : registry.gauges()) {
          if (KeyName(key) != rule.source) continue;
          const std::string kind = KeyLabels(key).kind;
          const auto it = by_kind.find(kind);
          if (it == by_kind.end()) {
            by_kind.emplace(kind, std::make_pair(value, value));
          } else {
            it->second.first = std::min(it->second.first, value);
            it->second.second = std::max(it->second.second, value);
          }
        }
        for (const auto& [kind, minmax] : by_kind) {
          Labels labels;
          labels.kind = kind;
          const double spread = (minmax.second - minmax.first) /
                                std::max(1e-9, minmax.first);
          registry.SetGaugeByKey(
              RenderKey("derived:" + rule.output, labels), spread);
        }
        break;
      }
      case RecordingRule::Kind::kDeltaDrift: {
        for (const auto& [key, value] : registry.counters()) {
          if (KeyName(key) != rule.source) continue;
          double& baseline = drift_baseline_[key];
          double& prev_delta = drift_prev_delta_[key];
          const double delta = value - baseline;
          baseline = value;
          registry.SetGaugeByKey(
              "derived:" + rule.output + KeySuffix(key),
              prev_delta > 0.0 ? delta / prev_delta : 0.0);
          prev_delta = delta;
        }
        break;
      }
    }
  }
}

}  // namespace pm::telemetry
