// planetmarket: the operator console — the watchdog plane's human face.
//
// Renders one deterministic per-epoch planet table from the registry's
// epoch snapshots and the alert engine's firing history: per-shard
// health, per-kind clearing prices, the cross-shard price spread, the
// refund rate, and whichever alerts are firing. Everything is a registry
// read — the console adds no state and no new determinism surface, so
// its output is byte-identical across reruns and thread counts like
// every other export.
//
// The per-shard columns come from the watchdog's extra instrumentation
// (fed_shard_health, fed_clearing_price_dollars, derived:*), so the
// console is only informative with watchdog.recording_rules armed;
// missing series render as "-" rather than failing.
#pragma once

#include <string>

namespace pm::telemetry {

class Telemetry;

/// Renders the full epoch-by-epoch console for a finished run.
std::string RenderConsole(const Telemetry& telemetry);

}  // namespace pm::telemetry
