#include "telemetry/registry.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace pm::telemetry {
namespace {

/// Fixed-precision rendering for both export channels — the same
/// determinism discipline as scenario::ScenarioMetrics (no exponents, no
/// locale, no "-0.000000").
std::string Num(double value) {
  if (value == 0.0) return FormatF(0.0, 6);
  return FormatF(value, 6);
}

std::string QuoteJson(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}


void AppendLabel(std::string& out, const char* label,
                 const std::string& value, bool& any) {
  if (value.empty()) return;
  out += any ? "," : "{";
  out += label;
  out += "=\"";
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  any = true;
}

}  // namespace

std::string_view KeyName(const std::string& key) {
  const std::size_t brace = key.find('{');
  return std::string_view(key).substr(
      0, brace == std::string::npos ? key.size() : brace);
}

Labels KeyLabels(const std::string& key) {
  Labels labels;
  std::size_t at = key.find('{');
  if (at == std::string::npos) return labels;
  ++at;
  while (at < key.size() && key[at] != '}') {
    const std::size_t eq = key.find('=', at);
    PM_CHECK_MSG(eq != std::string::npos && eq + 1 < key.size() &&
                     key[eq + 1] == '"',
                 "malformed canonical key '" << key << "'");
    const std::string label = key.substr(at, eq - at);
    std::string value;
    std::size_t i = eq + 2;
    for (; i < key.size() && key[i] != '"'; ++i) {
      if (key[i] == '\\' && i + 1 < key.size()) ++i;  // Unescape.
      value += key[i];
    }
    PM_CHECK_MSG(i < key.size(), "malformed canonical key '" << key << "'");
    if (label == "shard") {
      labels.shard = std::move(value);
    } else if (label == "kind") {
      labels.kind = std::move(value);
    } else if (label == "phase") {
      labels.phase = std::move(value);
    } else {
      PM_CHECK_MSG(false, "unknown label '" << label << "' in key '" << key
                                            << "'");
    }
    at = i + 1;
    if (at < key.size() && key[at] == ',') ++at;
  }
  return labels;
}

std::string RenderKey(std::string_view name, const Labels& labels) {
  PM_CHECK_MSG(!name.empty(), "metric needs a name");
  PM_CHECK_MSG(name.find('{') == std::string_view::npos,
               "metric name '" << name << "' may not contain '{'");
  std::string key(name);
  bool any = false;
  AppendLabel(key, "shard", labels.shard, any);
  AppendLabel(key, "kind", labels.kind, any);
  AppendLabel(key, "phase", labels.phase, any);
  if (any) key += '}';
  return key;
}

void MetricsRegistry::AddCounter(std::string_view name,
                                 const Labels& labels, double delta) {
  PM_CHECK_MSG(delta >= 0.0, "counter '" << name
                                         << "' must grow monotonically");
  counters_[RenderKey(name, labels)] += delta;
}

void MetricsRegistry::SetGauge(std::string_view name, const Labels& labels,
                               double value) {
  gauges_[RenderKey(name, labels)] = value;
}

void MetricsRegistry::Observe(std::string_view name, const Labels& labels,
                              double value, double lo, double hi,
                              std::size_t bins) {
  const std::string key = RenderKey(name, labels);
  auto it = hists_.find(key);
  if (it == hists_.end()) {
    // One shape per metric name across every label set, so cross-label
    // merges (the JSON aggregate, operator roll-ups) are always valid.
    // Validated before inserting: a rejected declaration must not leave
    // a poisoned entry behind.
    stats::Histogram fresh(lo, hi, bins);
    for (const auto& [other_key, entry] : hists_) {
      if (entry.name == name) {
        PM_CHECK_MSG(entry.hist.SameShape(fresh),
                     "histogram '" << name
                                   << "' re-declared with a new shape");
      }
    }
    it = hists_
             .emplace(key, HistEntry{std::move(fresh), std::string(name)})
             .first;
  }
  it->second.hist.Add(value);
}

void MetricsRegistry::SetGaugeByKey(std::string key, double value) {
  PM_CHECK_MSG(!key.empty(), "gauge key must not be empty");
  gauges_[std::move(key)] = value;
}

void MetricsRegistry::RecordTiming(std::string_view name, double seconds) {
  Timing& t = timings_[std::string(name)];
  ++t.count;
  t.total_seconds += seconds;
  t.max_seconds = std::max(t.max_seconds, seconds);
}

void MetricsRegistry::SnapshotEpoch(int epoch) {
  EpochSnapshot snap;
  snap.epoch = epoch;
  snap.counters.assign(counters_.begin(), counters_.end());
  snap.gauges.assign(gauges_.begin(), gauges_.end());
  epochs_.push_back(std::move(snap));
}

double MetricsRegistry::CounterValue(std::string_view name,
                                     const Labels& labels) const {
  const auto it = counters_.find(RenderKey(name, labels));
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::GaugeValue(std::string_view name,
                                   const Labels& labels) const {
  const auto it = gauges_.find(RenderKey(name, labels));
  return it == gauges_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::HasSeries(std::string_view name,
                                const Labels& labels) const {
  const std::string key = RenderKey(name, labels);
  return counters_.count(key) > 0 || gauges_.count(key) > 0;
}

const stats::Histogram* MetricsRegistry::FindHistogram(
    std::string_view name, const Labels& labels) const {
  const auto it = hists_.find(RenderKey(name, labels));
  return it == hists_.end() ? nullptr : &it->second.hist;
}

std::string MetricsRegistry::ToJson(bool include_timings) const {
  std::ostringstream os;
  os << "{\n";

  const auto scalar_section = [&os](const char* title,
                                    const std::map<std::string, double>&
                                        values,
                                    bool trailing_comma) {
    os << "  \"" << title << "\": [\n";
    std::size_t i = 0;
    for (const auto& [key, value] : values) {
      os << "    {\"key\": " << QuoteJson(key)
         << ", \"value\": " << Num(value) << "}"
         << (++i < values.size() ? "," : "") << "\n";
    }
    os << "  ]" << (trailing_comma ? "," : "") << "\n";
  };

  scalar_section("counters", counters_, true);
  scalar_section("gauges", gauges_, true);

  // Histograms: every label set, then one merged planet-wide aggregate
  // per name that appears under more than one label set (stats::Histogram
  // Merge — same shape guaranteed by Observe).
  os << "  \"histograms\": [\n";
  {
    std::vector<std::pair<std::string, const stats::Histogram*>> rows;
    for (const auto& [key, entry] : hists_) {
      rows.emplace_back(key, &entry.hist);
    }
    std::map<std::string, stats::Histogram> merged;
    std::map<std::string, std::size_t> name_count;
    for (const auto& [key, entry] : hists_) {
      ++name_count[entry.name];
      const auto it = merged.find(entry.name);
      if (it == merged.end()) {
        merged.emplace(entry.name, entry.hist);
      } else {
        it->second.Merge(entry.hist);
      }
    }
    std::vector<std::pair<std::string, stats::Histogram>> aggregates;
    for (const auto& [name, hist] : merged) {
      if (name_count[name] > 1) aggregates.emplace_back(name, hist);
    }
    std::size_t i = 0;
    const std::size_t total = rows.size() + aggregates.size();
    const auto emit = [&](const std::string& key,
                          const stats::Histogram& h) {
      os << "    {\"key\": " << QuoteJson(key)
         << ", \"count\": " << h.TotalCount()
         << ", \"sum\": " << Num(h.Sum())
         << ", \"underflow\": " << h.Underflow()
         << ", \"overflow\": " << h.Overflow()
         << ", \"p50\": " << Num(h.Quantile(0.50))
         << ", \"p90\": " << Num(h.Quantile(0.90))
         << ", \"p99\": " << Num(h.Quantile(0.99)) << "}"
         << (++i < total ? "," : "") << "\n";
    };
    for (const auto& [key, hist] : rows) emit(key, *hist);
    for (const auto& [name, hist] : aggregates) emit(name, hist);
  }
  os << "  ],\n";

  // The logical-clock series: per-epoch counter/gauge snapshots.
  os << "  \"series\": [\n";
  for (std::size_t e = 0; e < epochs_.size(); ++e) {
    const EpochSnapshot& snap = epochs_[e];
    os << "    {\"epoch\": " << snap.epoch << ", \"counters\": [";
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      os << (i > 0 ? ", " : "") << "{\"key\": "
         << QuoteJson(snap.counters[i].first)
         << ", \"value\": " << Num(snap.counters[i].second) << "}";
    }
    os << "], \"gauges\": [";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
      os << (i > 0 ? ", " : "") << "{\"key\": "
         << QuoteJson(snap.gauges[i].first)
         << ", \"value\": " << Num(snap.gauges[i].second) << "}";
    }
    os << "]}" << (e + 1 < epochs_.size() ? "," : "") << "\n";
  }
  os << "  ]";

  // Wall-clock timings: NEVER part of the deterministic channel — the
  // caller must opt in, and the byte-equality tests never do.
  if (include_timings) {
    os << ",\n  \"timings\": [\n";
    std::size_t i = 0;
    for (const auto& [name, t] : timings_) {
      os << "    {\"name\": " << QuoteJson(name)
         << ", \"count\": " << t.count
         << ", \"total_ms\": " << Num(t.total_seconds * 1e3)
         << ", \"max_ms\": " << Num(t.max_seconds * 1e3) << "}"
         << (++i < timings_.size() ? "," : "") << "\n";
    }
    os << "  ]";
  }
  os << "\n}\n";
  return os.str();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::ostringstream os;
  std::string_view last_type_for;

  const auto type_line = [&](const std::string& key, const char* type) {
    const std::string_view name = KeyName(key);
    if (name != last_type_for) {
      os << "# TYPE " << name << " " << type << "\n";
      last_type_for = name;
    }
  };

  for (const auto& [key, value] : counters_) {
    type_line(key, "counter");
    os << key << " " << Num(value) << "\n";
  }
  last_type_for = {};
  for (const auto& [key, value] : gauges_) {
    type_line(key, "gauge");
    os << key << " " << Num(value) << "\n";
  }
  last_type_for = {};
  for (const auto& [key, entry] : hists_) {
    type_line(key, "histogram");
    // Cumulative buckets over the declared bins, then the catch-all.
    // The canonical key already carries the label set; `le` is spliced
    // in as the last label.
    const stats::Histogram& h = entry.hist;
    const auto bucket_key = [&](const std::string& le) {
      std::string k = key;
      if (!k.empty() && k.back() == '}') {
        k.pop_back();
        k += ",le=\"" + le + "\"}";
      } else {
        k += "{le=\"" + le + "\"}";
      }
      const std::size_t brace = k.find('{');
      return k.substr(0, brace) + "_bucket" + k.substr(brace);
    };
    std::size_t cum = h.Underflow();
    for (std::size_t b = 0; b < h.NumBins(); ++b) {
      cum += h.Count(b);
      os << bucket_key(Num(h.BinLow(b) + (h.BinCenter(b) - h.BinLow(b)) *
                                             2.0))
         << " " << cum << "\n";
    }
    os << bucket_key("+Inf") << " " << h.TotalCount() << "\n";
    const std::size_t brace = key.find('{');
    const std::string name(KeyName(key));
    const std::string suffix =
        brace == std::string::npos ? "" : key.substr(brace);
    os << name << "_sum" << suffix << " " << Num(h.Sum()) << "\n";
    os << name << "_count" << suffix << " " << h.TotalCount() << "\n";
  }
  return os.str();
}

}  // namespace pm::telemetry
