// planetmarket: the containment flight recorder.
//
// A fixed-size ring buffer of recent telemetry events per shard. During
// normal operation it just rotates; when the epoch supervisor contains a
// shard failure (rollback to checkpoint), it dumps that shard's ring —
// together with the failure reason, the health-machine transition, and
// the full span chain of every traced bid that touched the shard this
// epoch — into a retained FlightDump. "Shard 3 quarantined" becomes an
// explainable artifact instead of a counter.
//
// Events carry logical time only (epoch + the tracer's global sequence
// numbers), and recording happens in the federation's single-threaded
// epoch sections, so dumps are byte-identical across reruns and thread
// counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace pm::telemetry {

/// One ring entry: a rendered span or a supervisor/health event.
struct FlightEvent {
  int epoch = 0;
  std::uint64_t seq = 0;    // Tracer sequence (0 for non-span events).
  std::uint64_t trace = 0;  // Owning trace (0 for shard-level events).
  std::string line;         // Pre-rendered one-line message.
};

/// One retained containment dump.
struct FlightDump {
  int epoch = 0;
  std::size_t shard = 0;
  std::string shard_name;
  std::string reason;      // What the shard threw.
  std::string transition;  // "degraded -> quarantined (streak 2, …)".
  /// Events rotated out of this shard's ring before the dump — without
  /// it a truncated ring reads as a complete history.
  std::uint64_t dropped_events = 0;
  std::string text;        // The full rendered artifact.
};

class FlightRecorder {
 public:
  /// `capacity` is the per-shard ring size (oldest entries rotate out).
  FlightRecorder(std::size_t num_shards, std::size_t capacity);

  /// Appends an event to shard `shard`'s ring.
  void Record(std::size_t shard, FlightEvent event);

  /// Renders and retains the containment dump for a failed shard.
  /// `chains` holds the full span chains (pre-rendered lines, one vector
  /// per trace) of every traced bid that touched the shard this epoch.
  /// A non-empty `work_tree` (the profiler's phase work tree, work
  /// counters only — PhaseProfiler::RenderWorkTree) is appended so the
  /// post-mortem shows where the shard was burning its round budget.
  const FlightDump& DumpShard(
      std::size_t shard, const std::string& shard_name, int epoch,
      const std::string& reason, const std::string& transition,
      const std::vector<std::pair<std::uint64_t,
                                  std::vector<std::string>>>& chains,
      const std::string& work_tree = std::string());

  const std::deque<FlightEvent>& Ring(std::size_t shard) const;
  const std::vector<FlightDump>& dumps() const { return dumps_; }

  /// Events rotated out of shard `shard`'s ring so far (ring overwrites).
  std::uint64_t Dropped(std::size_t shard) const;

  /// Deterministic JSON array of the retained dumps.
  std::string DumpsJson() const;

 private:
  std::size_t capacity_;
  std::vector<std::deque<FlightEvent>> rings_;
  std::vector<std::uint64_t> dropped_;  // Overwrites per shard.
  std::vector<FlightDump> dumps_;
};

}  // namespace pm::telemetry
