// planetmarket: the phase profiler — performance observability for the
// federated exchange (docs/observability.md, "Phase profiler").
//
// One PhaseProfiler per Telemetry instance assembles a per-(epoch,
// shard) view of where each epoch went, over two strictly separated
// channels:
//
//   * Work accounting (deterministic). Logical cost counters measured
//     on the hot paths — kernel dot-blocks per Kernel tier, bisection
//     probes, full vs incremental engine collections, dirty-bidder
//     counts, wire retries/dedups, settlement refund ops — recorded
//     per (epoch, shard) here and mirrored into the MetricsRegistry as
//     `fed_work_*` counters at the epoch barrier. Logical units only:
//     the numbers are byte-identical across reruns, thread counts, and
//     serial vs pipelined epochs, which makes their drift a
//     host-noise-immune proxy for perf regressions (an
//     incremental-fallback storm or kernel de-vectorization fires
//     deterministically even on a noisy single-vCPU host).
//
//   * Wall clock. Real phase spans (collect → bisect → settle on each
//     shard track; route → barrier plus pipeline-window spans on the
//     federation track), exported as chrome://tracing JSON for
//     flamegraph-style inspection. Wall values are scheduling-dependent
//     by nature — pipeline-window occupancy/bubble numbers live ONLY
//     here, never in the deterministic channel.
//
// Both channels sit behind ProfilerConfig sub-gates of TelemetryConfig;
// off is bit-identical (bench/telemetry_overhead byte-compares a
// profiler-armed run against the unarmed baseline). All mutation
// happens at single-threaded epoch barriers, like the rest of the
// telemetry plane; the class is not thread-safe by design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/phase_span.h"

namespace pm::telemetry {

/// Sub-gates of TelemetryConfig. Both default off; either one arms the
/// profiler object itself.
struct ProfilerConfig {
  /// Deterministic work-accounting channel: per-(epoch, shard) logical
  /// cost counters, `fed_work_*` registry series, `derived:work_*`
  /// recording rules and drift alerts (when the watchdog sub-gates are
  /// also armed), and the flight recorder's phase work tree.
  bool work_accounting = false;

  /// Wall-clock channel: phase spans and chrome://tracing export. Never
  /// touches the deterministic outputs; unlike
  /// TelemetryConfig::wall_clock_timings it does NOT make pipelined
  /// configs fall back to the serial loop — spans are carried on
  /// AuctionReport and recorded at the barrier either way.
  bool wall_clock = false;
};

/// One epoch's logical work, for one shard. Copied from AuctionReport at
/// the epoch barrier; every field is deterministic.
struct WorkCounters {
  long long dot_blocks = 0;       // kernel dot-block calls (full sweeps)
  long long dirty_bidders = 0;    // bidders re-evaluated incrementally
  long long bisection_probes = 0;
  long long full_collections = 0;
  long long incremental_collections = 0;
  long long wire_retries = 0;     // lossy-wire frames retried
  long long wire_dedups = 0;      // frames the receiver discarded
  long long refund_ops = 0;       // settlement refund payouts
  std::string kernel;             // resolved dot-kernel tier
};

class PhaseProfiler {
 public:
  /// `tracks` names the wall-channel tracks, one per shard in shard
  /// order; a synthetic "federation" track for route/barrier/window
  /// spans is appended after them (see federation_track()).
  PhaseProfiler(ProfilerConfig config, std::vector<std::string> tracks);

  const ProfilerConfig& config() const { return config_; }

  // --- deterministic work-accounting channel ---

  /// Records one shard's work for `epoch`. Barrier-side only.
  void RecordWork(int epoch, std::size_t shard, WorkCounters counters);

  /// The recorded counters, or nullptr when that (epoch, shard) never
  /// reported (telemetry off that epoch, or the shard failed).
  const WorkCounters* FindWork(int epoch, std::size_t shard) const;

  /// Renders the shard's phase work tree for the most recent recorded
  /// epochs at or before `epoch` (up to `history` of them), newest
  /// last. This is what the flight recorder attaches to containment
  /// dumps: a failing shard's report is rolled back with the epoch, so
  /// the tree shows the run-up — where the shard was burning its round
  /// budget — plus a note for the unrecorded failing epoch itself.
  std::string RenderWorkTree(std::size_t shard, int epoch,
                             int history = 3) const;

  // --- wall-clock channel ---

  /// Index of the synthetic federation track.
  std::size_t federation_track() const { return tracks_.size() - 1; }

  /// Records a closed span on `track`. `args` become chrome-trace event
  /// args (e.g. {"occupancy", 3} on a pipeline-window span).
  void AddSpan(std::size_t track, int epoch, PhaseSpan span,
               std::vector<std::pair<std::string, double>> args = {});

  /// chrome://tracing "Trace Event Format" JSON: one complete ("X")
  /// event per span, one metadata ("M") thread_name record per track,
  /// timestamps in microseconds normalized to the earliest span.
  std::string ChromeTraceJson() const;

  /// Number of recorded wall spans (tests).
  std::size_t num_spans() const { return events_.size(); }

 private:
  struct TraceEvent {
    std::size_t track = 0;
    int epoch = 0;
    PhaseSpan span;
    std::vector<std::pair<std::string, double>> args;
  };

  ProfilerConfig config_;
  std::vector<std::string> tracks_;
  // epoch -> shard -> that epoch's work. Ordered maps keep every render
  // and export deterministic.
  std::map<int, std::map<std::size_t, WorkCounters>> work_;
  std::vector<TraceEvent> events_;
};

/// RAII wall-span recorder for barrier-side federation phases. A null
/// profiler makes construction and destruction no-ops, so call sites
/// pay one pointer test when the wall channel is off.
class ScopedSpan {
 public:
  ScopedSpan(PhaseProfiler* profiler, std::size_t track, int epoch,
             std::string name)
      : profiler_(profiler), track_(track), epoch_(epoch) {
    if (profiler_ != nullptr) {
      name_ = std::move(name);
      begin_ns_ = PhaseNowNs();
    }
  }
  ~ScopedSpan() { Stop(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a chrome-trace arg to the span (before Stop()).
  void AddArg(std::string name, double value) {
    if (profiler_ != nullptr) args_.emplace_back(std::move(name), value);
  }

  /// Closes and records the span early (idempotent).
  void Stop() {
    if (profiler_ == nullptr) return;
    profiler_->AddSpan(track_, epoch_,
                       PhaseSpan{std::move(name_), begin_ns_, PhaseNowNs()},
                       std::move(args_));
    profiler_ = nullptr;
  }

 private:
  PhaseProfiler* profiler_;
  std::size_t track_;
  int epoch_;
  std::string name_;
  std::uint64_t begin_ns_ = 0;
  std::vector<std::pair<std::string, double>> args_;
};

}  // namespace pm::telemetry
