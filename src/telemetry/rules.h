// planetmarket: declarative recording rules — the derived-series layer of
// the watchdog plane.
//
// Raw registry values answer "how much so far"; operators (and alert
// rules) need "how much THIS epoch" and "how does it relate". A
// RecordingRule computes one derived series from registry values at the
// RunEpoch barrier — per-epoch rates of monotone counters, ratios of two
// rates, the cross-shard price spread per resource kind — and the
// RuleEngine writes the results back into the MetricsRegistry as gauges
// under a `derived:` name prefix. Derived series therefore ride the
// existing epoch snapshots and the JSON/Prometheus exporters unchanged,
// and the alert engine (alerts.h) reads them like any other metric.
//
// Evaluation happens once per epoch in the federation's single-threaded
// T2 barrier section, BEFORE SnapshotEpoch, so every derived value is in
// the epoch's snapshot and the whole channel stays byte-identical across
// reruns and thread counts. With TelemetryConfig::watchdog.recording_rules
// off no RuleEngine exists and the registry document is bit-identical to
// the pre-watchdog plane.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "telemetry/registry.h"

namespace pm::telemetry {

/// One derived series. Rules are declarative: they name registry inputs
/// and an output, never code.
struct RecordingRule {
  enum class Kind {
    /// Per-epoch delta of a monotone counter: value(now) − value(at the
    /// previous evaluation). Evaluated per label set of `source`, so a
    /// per-shard counter yields a per-shard rate series.
    kCounterRate,
    /// Ratio of two counters' per-epoch deltas
    /// (Δsource / Δdenominator), one output per label set of `source`
    /// (joined with `denominator` on the identical label set; label sets
    /// missing from the denominator read as 0 → ratio 0). A zero
    /// denominator delta yields 0, not NaN — "no awards" is a quiet
    /// epoch, not a storm.
    kRatio,
    /// Cross-shard relative spread of a gauge, grouped by the `kind`
    /// label: (max − min) / max(ε, min) over every shard that carries
    /// the gauge for that kind. One output per kind.
    kSpreadByKind,
    /// Epoch-over-epoch drift of a monotone counter's per-epoch delta:
    /// Δ(this epoch) / Δ(previous epoch), per label set of `source`;
    /// 0 while the previous delta is ≤ 0 (quiet start-up, no spurious
    /// spike on a counter's first active epoch). Keeps its own baseline
    /// state, so a drift rule may watch the same counter as a
    /// kCounterRate rule without stealing its delta (the kCounterRate /
    /// kRatio kinds share one baseline per counter key — two of THOSE
    /// on one source would leave the second reading Δ = 0).
    kDeltaDrift,
  };

  Kind kind = Kind::kCounterRate;
  /// Output metric name; the engine writes it as `derived:<output>` with
  /// the input's labels (kCounterRate/kRatio) or `{kind}` (kSpreadByKind).
  std::string output;
  std::string source;       // Input counter (rates/ratios) or gauge name.
  std::string denominator;  // kRatio only.
};

/// The shipped rule pack (docs/observability.md): per-epoch failure,
/// quarantine and health-flap rates, the refund-storm ratio, and the
/// per-kind cross-shard price spread. Matches what the default alert
/// pack (alerts.h) consumes.
std::vector<RecordingRule> DefaultRecordingRules();

/// The profiler's work-accounting extension pack, appended to the
/// default rules when BOTH telemetry.watchdog.recording_rules and
/// telemetry.profiler.work_accounting are armed: per-epoch work rates
/// (`derived:work_*_rate`), epoch-over-epoch drift factors
/// (`derived:work_*_drift` — the host-noise-immune perf-regression
/// signal), and probes-per-round. Consumed by DefaultWorkAlertRules().
std::vector<RecordingRule> DefaultWorkRecordingRules();

/// Evaluates a rule list against the registry once per epoch.
class RuleEngine {
 public:
  explicit RuleEngine(std::vector<RecordingRule> rules);

  const std::vector<RecordingRule>& rules() const { return rules_; }

  /// Computes every rule from the registry's current values and writes
  /// the derived gauges back. Call exactly once per epoch, before
  /// SnapshotEpoch. Counter baselines update as a side effect (the next
  /// epoch's rates difference against this one).
  void EvaluateEpoch(MetricsRegistry& registry);

 private:
  /// Per-epoch delta of every label set of counter `name`, keyed by the
  /// full canonical key; updates the baseline.
  std::map<std::string, double> CounterDeltas(
      const MetricsRegistry& registry, const std::string& name);

  std::vector<RecordingRule> rules_;
  /// Previous-epoch counter values, keyed by canonical key. One shared
  /// baseline map: counter keys are globally unique.
  std::map<std::string, double> baseline_;
  /// kDeltaDrift's private state (see the Kind doc): previous cumulative
  /// value and previous per-epoch delta, per counter key.
  std::map<std::string, double> drift_baseline_;
  std::map<std::string, double> drift_prev_delta_;
};

}  // namespace pm::telemetry
