#include "telemetry/trace.h"

#include <sstream>

namespace pm::telemetry {
namespace {

std::string QuoteJson(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

std::string Span::Render() const {
  std::ostringstream os;
  os << "[e" << epoch << " #" << seq << "] " << name;
  if (shard >= 0) os << " shard=" << shard;
  if (trace != 0) os << " trace=" << trace;
  for (const auto& [key, value] : attrs) {
    os << " " << key << "=" << value;
  }
  return os.str();
}

Span& BidTracer::Emit(std::uint64_t trace, std::string name, int epoch,
                      int shard) {
  Span span;
  span.trace = trace;
  span.seq = next_seq_++;
  span.name = std::move(name);
  span.epoch = epoch;
  span.shard = shard;
  spans_.push_back(std::move(span));
  return spans_.back();
}

std::vector<const Span*> BidTracer::SpansOf(std::uint64_t trace) const {
  std::vector<const Span*> out;
  for (const Span& span : spans_) {
    if (span.trace == trace) out.push_back(&span);
  }
  return out;
}

std::string BidTracer::ToJson() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    os << "  {\"trace\": " << s.trace << ", \"seq\": " << s.seq
       << ", \"name\": " << QuoteJson(s.name) << ", \"epoch\": " << s.epoch
       << ", \"shard\": " << s.shard << ", \"attrs\": {";
    for (std::size_t a = 0; a < s.attrs.size(); ++a) {
      os << (a > 0 ? ", " : "") << QuoteJson(s.attrs[a].first) << ": "
         << QuoteJson(s.attrs[a].second);
    }
    os << "}}" << (i + 1 < spans_.size() ? "," : "") << "\n";
  }
  os << "]";
  return os.str();
}

}  // namespace pm::telemetry
