#include "telemetry/profiler.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace pm::telemetry {
namespace {

std::string QuoteJson(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

/// Microseconds with sub-microsecond detail — chrome's native unit.
std::string Us(std::uint64_t ns) { return FormatF(ns / 1000.0, 3); }

}  // namespace

PhaseProfiler::PhaseProfiler(ProfilerConfig config,
                             std::vector<std::string> tracks)
    : config_(config), tracks_(std::move(tracks)) {
  tracks_.push_back("federation");
}

void PhaseProfiler::RecordWork(int epoch, std::size_t shard,
                               WorkCounters counters) {
  work_[epoch][shard] = std::move(counters);
}

const WorkCounters* PhaseProfiler::FindWork(int epoch,
                                            std::size_t shard) const {
  auto by_epoch = work_.find(epoch);
  if (by_epoch == work_.end()) return nullptr;
  auto by_shard = by_epoch->second.find(shard);
  if (by_shard == by_epoch->second.end()) return nullptr;
  return &by_shard->second;
}

std::string PhaseProfiler::RenderWorkTree(std::size_t shard, int epoch,
                                          int history) const {
  // Walk backwards from `epoch`, collecting the shard's most recent
  // recorded epochs, then render oldest first so the dump reads like a
  // timeline ending at the failure.
  std::vector<std::pair<int, const WorkCounters*>> recent;
  for (auto it = work_.rbegin();
       it != work_.rend() && static_cast<int>(recent.size()) < history;
       ++it) {
    if (it->first > epoch) continue;
    auto by_shard = it->second.find(shard);
    if (by_shard == it->second.end()) continue;
    recent.emplace_back(it->first, &by_shard->second);
  }
  std::reverse(recent.begin(), recent.end());

  std::ostringstream os;
  os << "phase work tree: shard " << shard << ", last "
     << recent.size() << " recorded epoch(s)\n";
  if (recent.empty()) {
    os << "  (no work recorded yet)\n";
  }
  for (const auto& [e, w] : recent) {
    os << "  epoch " << e << ":\n";
    os << "    collect: full=" << w->full_collections
       << " incremental=" << w->incremental_collections
       << " dot_blocks=" << w->dot_blocks
       << " dirty_bidders=" << w->dirty_bidders;
    if (!w->kernel.empty()) os << " kernel=" << w->kernel;
    os << "\n";
    os << "    bisect: probes=" << w->bisection_probes << "\n";
    os << "    settle: refund_ops=" << w->refund_ops << "\n";
    os << "    wire: retries=" << w->wire_retries
       << " dedups=" << w->wire_dedups << "\n";
  }
  if (recent.empty() || recent.back().first < epoch) {
    os << "  epoch " << epoch
       << ": (not recorded — rolled back with the failing epoch)\n";
  }
  return os.str();
}

void PhaseProfiler::AddSpan(std::size_t track, int epoch, PhaseSpan span,
                            std::vector<std::pair<std::string, double>> args) {
  PM_CHECK_MSG(track < tracks_.size(), "profiler: span on unknown track");
  events_.push_back(
      TraceEvent{track, epoch, std::move(span), std::move(args)});
}

std::string PhaseProfiler::ChromeTraceJson() const {
  // Normalize timestamps to the earliest span so traces start at t=0
  // regardless of the process's steady_clock origin.
  std::uint64_t t0 = 0;
  bool have_t0 = false;
  for (const TraceEvent& ev : events_) {
    if (!have_t0 || ev.span.begin_ns < t0) {
      t0 = ev.span.begin_ns;
      have_t0 = true;
    }
  }

  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  // One metadata record per track: chrome renders each tid as a named
  // row (one track per shard plus the federation barrier track).
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"ph\": \"M\", \"pid\": 1, \"tid\": " << t
       << ", \"name\": \"thread_name\", \"args\": {\"name\": "
       << QuoteJson(tracks_[t]) << "}}";
  }
  for (const TraceEvent& ev : events_) {
    const std::uint64_t begin = ev.span.begin_ns - t0;
    const std::uint64_t dur =
        ev.span.end_ns >= ev.span.begin_ns
            ? ev.span.end_ns - ev.span.begin_ns
            : 0;
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"ph\": \"X\", \"pid\": 1, \"tid\": " << ev.track
       << ", \"name\": " << QuoteJson(ev.span.name)
       << ", \"ts\": " << Us(begin) << ", \"dur\": " << Us(dur)
       << ", \"args\": {\"epoch\": " << ev.epoch;
    for (const auto& [name, value] : ev.args) {
      os << ", " << QuoteJson(name) << ": " << FormatF(value, 6);
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace pm::telemetry
