#include "telemetry/flight_recorder.h"

#include <sstream>

#include "common/check.h"

namespace pm::telemetry {
namespace {

std::string QuoteJson(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t num_shards,
                               std::size_t capacity)
    : capacity_(capacity), rings_(num_shards), dropped_(num_shards, 0) {
  PM_CHECK_MSG(capacity >= 1, "flight recorder needs capacity >= 1");
}

void FlightRecorder::Record(std::size_t shard, FlightEvent event) {
  PM_CHECK(shard < rings_.size());
  std::deque<FlightEvent>& ring = rings_[shard];
  ring.push_back(std::move(event));
  while (ring.size() > capacity_) {
    ring.pop_front();
    ++dropped_[shard];
  }
}

std::uint64_t FlightRecorder::Dropped(std::size_t shard) const {
  PM_CHECK(shard < dropped_.size());
  return dropped_[shard];
}

const std::deque<FlightEvent>& FlightRecorder::Ring(
    std::size_t shard) const {
  PM_CHECK(shard < rings_.size());
  return rings_[shard];
}

const FlightDump& FlightRecorder::DumpShard(
    std::size_t shard, const std::string& shard_name, int epoch,
    const std::string& reason, const std::string& transition,
    const std::vector<std::pair<std::uint64_t,
                                std::vector<std::string>>>& chains,
    const std::string& work_tree) {
  PM_CHECK(shard < rings_.size());
  FlightDump dump;
  dump.epoch = epoch;
  dump.shard = shard;
  dump.shard_name = shard_name;
  dump.reason = reason;
  dump.transition = transition;
  dump.dropped_events = dropped_[shard];

  std::ostringstream os;
  os << "=== flight recorder: shard " << shard << " ('" << shard_name
     << "') epoch " << epoch << " ===\n";
  os << "reason: " << reason << "\n";
  os << "health: " << transition << "\n";
  os << "-- recent events (oldest first, ring capacity " << capacity_
     << ", " << dump.dropped_events << " older events dropped) --\n";
  for (const FlightEvent& event : rings_[shard]) {
    os << event.line << "\n";
  }
  os << "-- bid span chains through this shard --\n";
  if (chains.empty()) {
    os << "(no traced bids touched this shard this epoch)\n";
  }
  for (const auto& [trace, lines] : chains) {
    os << "trace " << trace << ":\n";
    for (const std::string& line : lines) {
      os << "  " << line << "\n";
    }
  }
  if (!work_tree.empty()) {
    os << "-- phase work tree (profiler, work counters only) --\n";
    os << work_tree;
    if (work_tree.back() != '\n') os << "\n";
  }
  dump.text = os.str();
  dumps_.push_back(std::move(dump));
  return dumps_.back();
}

std::string FlightRecorder::DumpsJson() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < dumps_.size(); ++i) {
    const FlightDump& d = dumps_[i];
    os << "  {\"epoch\": " << d.epoch << ", \"shard\": " << d.shard
       << ", \"shard_name\": " << QuoteJson(d.shard_name)
       << ", \"reason\": " << QuoteJson(d.reason)
       << ", \"transition\": " << QuoteJson(d.transition)
       << ", \"dropped_events\": " << d.dropped_events
       << ", \"text\": " << QuoteJson(d.text) << "}"
       << (i + 1 < dumps_.size() ? "," : "") << "\n";
  }
  os << "]";
  return os.str();
}

}  // namespace pm::telemetry
