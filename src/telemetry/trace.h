// planetmarket: bid-lifecycle tracing.
//
// Every federated bid is assigned a trace id when it enters the exchange;
// the federation emits spans as the bid moves through its lifecycle:
//
//   submit ──► route ──► shard-auction (per routed part)
//          ──► settle / reject (per part, from the shard's award or
//              rejection record) ──► reroute / refund-part (supervisor
//              aftermath when the part's shard failed)
//
// so one bid's fate — which shards it touched, what each auction did
// with it, what physically placed and what was refunded — is
// reconstructible end to end from the span log.
//
// Time is LOGICAL: every span carries (epoch, seq) where seq is a global
// emission counter. Spans are emitted only from single-threaded epoch
// sections of the federation, so the log, its ids and its JSON rendering
// are byte-identical across reruns and thread counts — the same
// determinism contract as the metrics registry.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pm::telemetry {

/// One lifecycle event of one traced bid.
struct Span {
  std::uint64_t trace = 0;   // Bid lifecycle id (1-based; 0 = untraced).
  std::uint64_t seq = 0;     // Global logical sequence number.
  std::string name;          // "submit", "route", "shard-auction", …
  int epoch = 0;             // Federation epoch the span belongs to.
  int shard = -1;            // Shard index; -1 for federation-level spans.
  /// Attribute pairs in emission order (deterministic render order).
  std::vector<std::pair<std::string, std::string>> attrs;

  /// One-line rendering ("[e3 #17] shard-auction shard=0 trace=5 k=v …"),
  /// used by the flight recorder and the dump artifacts.
  std::string Render() const;
};

/// Collects spans and hands out trace ids. Single-writer (see header).
class BidTracer {
 public:
  /// A fresh lifecycle id (monotone from 1).
  std::uint64_t NewTrace() { return next_trace_++; }

  /// Appends a span, stamping its global sequence number. Returns a
  /// reference valid until the next Emit.
  Span& Emit(std::uint64_t trace, std::string name, int epoch, int shard);

  const std::vector<Span>& spans() const { return spans_; }

  /// Every span of one trace, in emission order (linear scan — dump-time
  /// and test-time use only).
  std::vector<const Span*> SpansOf(std::uint64_t trace) const;

  /// Deterministic JSON array of all spans.
  std::string ToJson() const;

 private:
  std::vector<Span> spans_;
  std::uint64_t next_trace_ = 1;
  std::uint64_t next_seq_ = 1;
};

}  // namespace pm::telemetry
