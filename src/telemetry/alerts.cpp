#include "telemetry/alerts.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/table.h"

namespace pm::telemetry {
namespace {

std::string QuoteJson(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

std::string Num(double value) {
  if (value == 0.0) return FormatF(0.0, 6);
  return FormatF(value, 6);
}

}  // namespace

std::string_view ToString(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kInfo: return "info";
    case AlertSeverity::kWarning: return "warning";
    case AlertSeverity::kCritical: return "critical";
  }
  return "?";
}

std::string_view ToString(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
    case AlertState::kResolved: return "resolved";
  }
  return "?";
}

std::vector<AlertRule> DefaultAlertRules() {
  using Kind = AlertRule::Kind;
  std::vector<AlertRule> rules;
  // Containment: the supervisor contained at least one shard failure
  // this epoch. Fires at the crash epoch, resolves once the planet goes
  // an epoch without a containment.
  rules.push_back({"containment", Kind::kAbove,
                   "derived:failed_shards_rate", {}, 0.0, 1,
                   AlertSeverity::kCritical});
  // Quarantine: at least one shard sat this epoch out.
  rules.push_back({"quarantine", Kind::kAbove,
                   "derived:quarantined_shards_rate", {}, 0.0, 1,
                   AlertSeverity::kWarning});
  // Refund storm: more than half of a shard's awarded dollars came back
  // as refunds, two epochs running (one bad epoch is placement noise).
  rules.push_back({"refund-storm", Kind::kAbove, "derived:refund_rate",
                   {}, 0.5, 2, AlertSeverity::kWarning});
  // Spread blowout: a kind's cross-shard relative price spread exceeded
  // 100% two epochs running — arbitrage/rebalancing is not keeping the
  // planet coupled.
  rules.push_back({"spread-blowout", Kind::kAbove, "derived:price_spread",
                   {}, 1.0, 2, AlertSeverity::kWarning});
  // Treasury conservation drift: the planet ledger stopped summing to
  // minted − burned. Never expected to fire; scenarios forbid it.
  rules.push_back({"treasury-conservation-drift", Kind::kAbove,
                   "fed_treasury_conservation_residual_dollars", {}, 1e-6,
                   1, AlertSeverity::kCritical});
  return rules;
}

std::vector<AlertRule> DefaultWorkAlertRules() {
  using Kind = AlertRule::Kind;
  std::vector<AlertRule> rules;
  // Work drift: the same shard's per-epoch logical work jumped by the
  // given factor two epochs running. One hot epoch is workload noise
  // (a flash crowd legitimately doubles demand); a sustained multiple
  // with no matching workload change is an engine regression —
  // incremental collections degenerating to full sweeps, or a kernel
  // tier silently falling back.
  rules.push_back({"work-dot-block-drift", Kind::kAbove,
                   "derived:work_dot_blocks_drift", {}, 2.0, 2,
                   AlertSeverity::kWarning});
  rules.push_back({"work-dirty-bidder-drift", Kind::kAbove,
                   "derived:work_dirty_bidders_drift", {}, 3.0, 2,
                   AlertSeverity::kWarning});
  // Bisection storm: probes per auction round blew past anything the
  // per-round peek + one final search can produce.
  rules.push_back({"work-bisection-storm", Kind::kAbove,
                   "derived:work_probes_per_round", {}, 30.0, 2,
                   AlertSeverity::kWarning});
  // Wire-retry storm: the lossy wire is burning retries at a rate that
  // dwarfs the configured fault plan.
  rules.push_back({"work-wire-retry-storm", Kind::kAbove,
                   "derived:work_wire_retry_rate", {}, 50.0, 2,
                   AlertSeverity::kWarning});
  return rules;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules)
    : rules_(std::move(rules)), instances_(rules_.size()) {
  for (const AlertRule& rule : rules_) {
    PM_CHECK_MSG(!rule.name.empty() && !rule.metric.empty(),
                 "alert rule needs a name and a metric");
  }
}

std::vector<AlertTransition> AlertEngine::EvaluateEpoch(
    const MetricsRegistry& registry, int epoch) {
  std::vector<AlertTransition> fresh;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const AlertRule& rule = rules_[r];
    std::map<std::string, Instance>& states = instances_[r];

    // This epoch's breach observations, keyed by canonical series key.
    // Threshold rules discover label sets from the registry (counters
    // first so an equally-named gauge overwrites — gauges win); absence
    // rules watch one fixed key.
    std::map<std::string, std::pair<bool, double>> observed;
    if (rule.kind == AlertRule::Kind::kAbsent) {
      observed[RenderKey(rule.metric, rule.labels)] = {
          !registry.HasSeries(rule.metric, rule.labels), 0.0};
    } else {
      const auto scan = [&](const std::map<std::string, double>& values) {
        for (const auto& [key, value] : values) {
          if (KeyName(key) != rule.metric) continue;
          const bool breach = rule.kind == AlertRule::Kind::kAbove
                                  ? value > rule.threshold
                                  : value < rule.threshold;
          observed[key] = {breach, value};
        }
      };
      scan(registry.counters());
      scan(registry.gauges());
    }

    // Instances with no observation this epoch (threshold series that
    // vanished) read as cleared, so a firing alert on a retired series
    // still resolves instead of firing forever.
    for (auto& [key, instance] : states) {
      observed.emplace(key, std::make_pair(false, 0.0));
    }

    for (const auto& [key, obs] : observed) {
      const auto [breach, value] = obs;
      Instance& inst = states[key];
      const AlertState before = inst.state;
      if (breach) {
        ++inst.breach_streak;
        if (inst.breach_streak >= rule.for_epochs) {
          inst.state = AlertState::kFiring;
        } else if (inst.state != AlertState::kFiring) {
          inst.state = AlertState::kPending;
        }
      } else {
        inst.breach_streak = 0;
        inst.state = before == AlertState::kFiring ? AlertState::kResolved
                                                   : AlertState::kInactive;
      }
      if (inst.state != before) {
        AlertTransition t;
        t.epoch = epoch;
        t.rule = rule.name;
        t.series = key;
        t.from = before;
        t.to = inst.state;
        t.severity = rule.severity;
        t.value = value;
        fresh.push_back(t);
      }
    }
  }
  timeline_.insert(timeline_.end(), fresh.begin(), fresh.end());
  firing_history_.push_back(FiringNames());
  return fresh;
}

std::vector<std::string> AlertEngine::FiringNames() const {
  std::vector<std::string> names;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    for (const auto& [key, inst] : instances_[r]) {
      if (inst.state == AlertState::kFiring) {
        names.push_back(rules_[r].name);
        break;
      }
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

const std::vector<std::string>& AlertEngine::FiringAfterEvaluation(
    std::size_t index) const {
  PM_CHECK(index < firing_history_.size());
  return firing_history_[index];
}

bool AlertEngine::EverFired(std::string_view rule_name) const {
  for (const AlertTransition& t : timeline_) {
    if (t.to == AlertState::kFiring && t.rule == rule_name) return true;
  }
  return false;
}

std::string AlertEngine::TimelineJson() const {
  std::ostringstream os;
  os << "{\n\"alerts\": [\n";
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    const AlertTransition& t = timeline_[i];
    os << "  {\"epoch\": " << t.epoch << ", \"alert\": "
       << QuoteJson(t.rule) << ", \"series\": " << QuoteJson(t.series)
       << ", \"severity\": \"" << ToString(t.severity) << "\", \"from\": \""
       << ToString(t.from) << "\", \"to\": \"" << ToString(t.to)
       << "\", \"value\": " << Num(t.value) << "}"
       << (i + 1 < timeline_.size() ? "," : "") << "\n";
  }
  os << "]\n}\n";
  return os.str();
}

}  // namespace pm::telemetry
