#include "bid/tbbl_flatten.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace pm::bid {
namespace {

std::vector<Bundle> FlattenRec(const TbblNode& node, PoolRegistry& registry) {
  switch (node.kind) {
    case TbblKind::kLeaf: {
      const PoolId pool = registry.Intern(node.cluster, node.resource);
      return {Bundle({BundleItem{pool, node.qty}})};
    }
    case TbblKind::kXor: {
      std::vector<Bundle> out;
      for (const auto& child : node.children) {
        std::vector<Bundle> sub = FlattenRec(*child, registry);
        out.insert(out.end(), std::make_move_iterator(sub.begin()),
                   std::make_move_iterator(sub.end()));
      }
      return out;
    }
    case TbblKind::kAnd: {
      std::vector<Bundle> acc = {Bundle()};
      for (const auto& child : node.children) {
        const std::vector<Bundle> sub = FlattenRec(*child, registry);
        std::vector<Bundle> next;
        next.reserve(acc.size() * sub.size());
        for (const Bundle& a : acc) {
          for (const Bundle& b : sub) {
            next.push_back(a + b);
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
  }
  return {};
}

void Deduplicate(std::vector<Bundle>& bundles) {
  std::vector<Bundle> unique;
  unique.reserve(bundles.size());
  for (Bundle& b : bundles) {
    if (std::find(unique.begin(), unique.end(), b) == unique.end()) {
      unique.push_back(std::move(b));
    }
  }
  bundles = std::move(unique);
}

}  // namespace

std::vector<Bundle> FlattenTree(const TbblNode& node, PoolRegistry& registry,
                                std::size_t max_bundles,
                                std::string& error) {
  error.clear();
  const std::size_t alts = node.CountAlternatives(max_bundles + 1);
  if (alts > max_bundles) {
    std::ostringstream os;
    os << "tree expands to more than " << max_bundles
       << " bundles; restructure the bid or raise the limit";
    error = os.str();
    return {};
  }
  return FlattenRec(node, registry);
}

FlattenOutcome FlattenStatement(const TbblStatement& stmt,
                                PoolRegistry& registry,
                                std::size_t max_bundles) {
  FlattenOutcome out;
  PM_CHECK(stmt.root != nullptr);
  std::string error;
  std::vector<Bundle> bundles =
      FlattenTree(*stmt.root, registry, max_bundles, error);
  if (!error.empty()) {
    out.error = "in '" + stmt.name + "': " + error;
    return out;
  }
  if (stmt.is_offer) {
    for (Bundle& b : bundles) b = -b;
  }
  Deduplicate(bundles);
  // Flattening cannot produce an empty alternative set from a well-formed
  // tree, but an and{} of cancelling leaves can produce an empty bundle;
  // reject it here, where the statement name is known.
  for (const Bundle& b : bundles) {
    if (b.Empty()) {
      out.error = "in '" + stmt.name +
                  "': an alternative cancels to the empty bundle";
      return out;
    }
  }
  Bid bid;
  bid.name = stmt.name;
  bid.bundles = std::move(bundles);
  bid.limit = stmt.is_offer ? -stmt.amount : stmt.amount;
  out.bids.push_back(std::move(bid));
  return out;
}

FlattenOutcome FlattenAll(const ParseResult& parsed, PoolRegistry& registry,
                          std::size_t max_bundles) {
  FlattenOutcome out;
  for (const TbblStatement& stmt : parsed.statements) {
    FlattenOutcome one = FlattenStatement(stmt, registry, max_bundles);
    if (!one.ok()) {
      out.error = std::move(one.error);
      out.bids.clear();
      return out;
    }
    out.bids.push_back(std::move(one.bids.front()));
  }
  AssignUserIds(out.bids);
  return out;
}

FlattenOutcome CompileBids(std::string_view source, PoolRegistry& registry,
                           std::size_t max_bundles) {
  const ParseResult parsed = ParseTbbl(source);
  if (!parsed.ok()) {
    FlattenOutcome out;
    std::ostringstream os;
    for (std::size_t i = 0; i < parsed.errors.size(); ++i) {
      if (i > 0) os << "; ";
      os << parsed.errors[i].ToString();
    }
    out.error = os.str();
    return out;
  }
  return FlattenAll(parsed, registry, max_bundles);
}

}  // namespace pm::bid
