#include "bid/tbbl_lexer.h"

#include <cctype>
#include <charconv>

namespace pm::bid {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.';
}

TokenKind KeywordOrIdent(std::string_view text) {
  if (text == "bid") return TokenKind::kKwBid;
  if (text == "offer") return TokenKind::kKwOffer;
  if (text == "limit") return TokenKind::kKwLimit;
  if (text == "min") return TokenKind::kKwMin;
  if (text == "xor") return TokenKind::kKwXor;
  if (text == "and") return TokenKind::kKwAnd;
  return TokenKind::kIdent;
}

}  // namespace

std::string_view ToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kAt:
      return "'@'";
    case TokenKind::kKwBid:
      return "'bid'";
    case TokenKind::kKwOffer:
      return "'offer'";
    case TokenKind::kKwLimit:
      return "'limit'";
    case TokenKind::kKwMin:
      return "'min'";
    case TokenKind::kKwXor:
      return "'xor'";
    case TokenKind::kKwAnd:
      return "'and'";
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kError:
      return "lexical error";
  }
  return "unknown token";
}

std::vector<Token> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  auto make = [&](TokenKind kind, std::string text, int tok_line,
                  int tok_col) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tok_line;
    t.column = tok_col;
    return t;
  };

  auto fail = [&](std::string message, int tok_line, int tok_col) {
    tokens.push_back(
        make(TokenKind::kError, std::move(message), tok_line, tok_col));
    tokens.push_back(make(TokenKind::kEnd, "", tok_line, tok_col));
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == ',') {
      // Commas are insignificant separators, allowed for readability.
      ++column;
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    const int tok_line = line;
    const int tok_col = column;
    if (c == '{') {
      tokens.push_back(make(TokenKind::kLBrace, "{", tok_line, tok_col));
      ++i;
      ++column;
      continue;
    }
    if (c == '}') {
      tokens.push_back(make(TokenKind::kRBrace, "}", tok_line, tok_col));
      ++i;
      ++column;
      continue;
    }
    if (c == ':') {
      tokens.push_back(make(TokenKind::kColon, ":", tok_line, tok_col));
      ++i;
      ++column;
      continue;
    }
    if (c == '@') {
      tokens.push_back(make(TokenKind::kAt, "@", tok_line, tok_col));
      ++i;
      ++column;
      continue;
    }
    if (c == '"') {
      std::string value;
      ++i;
      ++column;
      bool closed = false;
      while (i < source.size()) {
        const char s = source[i];
        if (s == '\n') break;  // Unterminated.
        if (s == '\\' && i + 1 < source.size()) {
          const char esc = source[i + 1];
          if (esc == '"' || esc == '\\') {
            value += esc;
            i += 2;
            column += 2;
            continue;
          }
        }
        if (s == '"') {
          closed = true;
          ++i;
          ++column;
          break;
        }
        value += s;
        ++i;
        ++column;
      }
      if (!closed) {
        fail("unterminated string literal", tok_line, tok_col);
        return tokens;
      }
      tokens.push_back(
          make(TokenKind::kString, std::move(value), tok_line, tok_col));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+') {
      std::size_t j = i;
      if (source[j] == '-' || source[j] == '+') ++j;
      std::size_t digits = 0;
      while (j < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[j])) ||
              source[j] == '.')) {
        if (source[j] != '.') ++digits;
        ++j;
      }
      if (digits == 0) {
        fail("expected digits in number", tok_line, tok_col);
        return tokens;
      }
      const std::string_view text = source.substr(i, j - i);
      // std::from_chars rejects a leading '+'; strip it (the sign is a
      // no-op anyway).
      std::string_view parse_text = text;
      if (!parse_text.empty() && parse_text.front() == '+') {
        parse_text.remove_prefix(1);
      }
      double value = 0.0;
      const auto [ptr, ec] = std::from_chars(
          parse_text.data(), parse_text.data() + parse_text.size(), value);
      if (ec != std::errc() || ptr != parse_text.data() + parse_text.size()) {
        fail("malformed number '" + std::string(text) + "'", tok_line,
             tok_col);
        return tokens;
      }
      Token t = make(TokenKind::kNumber, std::string(text), tok_line,
                     tok_col);
      t.number = value;
      tokens.push_back(std::move(t));
      column += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (IsIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < source.size() && IsIdentBody(source[j])) ++j;
      const std::string text(source.substr(i, j - i));
      tokens.push_back(
          make(KeywordOrIdent(text), text, tok_line, tok_col));
      column += static_cast<int>(j - i);
      i = j;
      continue;
    }
    fail(std::string("unexpected character '") + c + "'", tok_line,
         tok_col);
    return tokens;
  }
  tokens.push_back(make(TokenKind::kEnd, "", line, column));
  return tokens;
}

}  // namespace pm::bid
