// planetmarket: bids.
//
// A bid is the paper's B_u = {Q_u, π_u} (§II): a set of bundles the user is
// indifferent over (XOR semantics — the user wants exactly one of them or
// nothing) plus a scalar limit. π_u > 0 is the maximum total payment for a
// buyer; π_u < 0 encodes a seller's minimum acceptable payment -π_u.
#pragma once

#include <string>
#include <vector>

#include "bid/bundle.h"
#include "common/types.h"

namespace pm::bid {

/// How a bid relates to the market: only demands, only supplies, or both
/// (a "trader", §III.C.3 — the class for which clock-auction convergence is
/// not guaranteed).
enum class BidSide { kBuyer, kSeller, kTrader };

std::string_view ToString(BidSide side);

/// One user's sealed bid {Q_u, π_u}.
struct Bid {
  /// Dense participant index, assigned by the auction container.
  UserId user = kInvalidUser;

  /// Display label (team name); not used by the mechanism.
  std::string name;

  /// The indifference set Q_u. Semantics: the user wants exactly one of
  /// these bundles, or nothing.
  std::vector<Bundle> bundles;

  /// π_u: max willingness to pay (> 0) or minus the minimum acceptable
  /// revenue (< 0 for sellers).
  double limit = 0.0;

  /// Vector-π extension (§II: "Extending the model to allow for vector
  /// π's, corresponding to distinct valuations for each individual user
  /// bundle, does not significantly change our results"). When non-empty
  /// it must have one entry per bundle; bundle k is then affordable iff
  /// its cost ≤ bundle_limits[k], and `limit` is ignored.
  std::vector<double> bundle_limits;

  /// True when this bid uses the vector-π extension.
  bool HasVectorLimits() const { return !bundle_limits.empty(); }

  /// The limit applying to bundle `index` (the scalar π or the per-bundle
  /// entry).
  double LimitFor(std::size_t index) const;
};

/// Classifies a bid. A bid is a buyer iff every bundle is pure-buy with at
/// least one positive component, a seller iff every bundle is pure-sell
/// with at least one negative component, and a trader otherwise.
BidSide ClassifyBid(const Bid& bid);

/// Validates a bid's structure. Returns an empty string when valid, or a
/// human-readable reason:
///  - at least one bundle; no bundle empty (use "no bid" instead)
///  - finite limit
///  - every referenced pool < num_pools
/// Economic sanity (a buyer with π <= 0 can never win) is reported too,
/// since such bids are almost certainly user error.
std::string ValidateBid(const Bid& bid, std::size_t num_pools);

/// Validates a whole bid set: per-bid validation plus unique user ids.
/// Returns empty when valid, else the first problem found.
std::string ValidateBids(const std::vector<Bid>& bids,
                         std::size_t num_pools);

/// Assigns consecutive user ids (0..n-1) in vector order; convenient when
/// constructing bid sets by hand or from the parser.
void AssignUserIds(std::vector<Bid>& bids);

}  // namespace pm::bid
