#include "bid/bid.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "common/check.h"

namespace pm::bid {

std::string_view ToString(BidSide side) {
  switch (side) {
    case BidSide::kBuyer:
      return "buyer";
    case BidSide::kSeller:
      return "seller";
    case BidSide::kTrader:
      return "trader";
  }
  return "unknown";
}

double Bid::LimitFor(std::size_t index) const {
  PM_CHECK_MSG(index < bundles.size(),
               "bundle index " << index << " out of range "
                               << bundles.size());
  if (bundle_limits.empty()) return limit;
  return bundle_limits[index];
}

BidSide ClassifyBid(const Bid& bid) {
  bool any_positive = false;
  bool any_negative = false;
  for (const Bundle& bundle : bid.bundles) {
    for (const BundleItem& item : bundle.items()) {
      if (item.qty > 0.0) any_positive = true;
      if (item.qty < 0.0) any_negative = true;
    }
  }
  if (any_positive && !any_negative) return BidSide::kBuyer;
  if (any_negative && !any_positive) return BidSide::kSeller;
  return BidSide::kTrader;
}

std::string ValidateBid(const Bid& bid, std::size_t num_pools) {
  std::ostringstream os;
  if (bid.bundles.empty()) {
    os << "bid '" << bid.name << "' has no bundles";
    return os.str();
  }
  if (!std::isfinite(bid.limit)) {
    os << "bid '" << bid.name << "' has non-finite limit";
    return os.str();
  }
  if (bid.HasVectorLimits()) {
    if (bid.bundle_limits.size() != bid.bundles.size()) {
      os << "bid '" << bid.name << "' has " << bid.bundle_limits.size()
         << " per-bundle limits for " << bid.bundles.size()
         << " bundles";
      return os.str();
    }
    for (double l : bid.bundle_limits) {
      if (!std::isfinite(l)) {
        os << "bid '" << bid.name << "' has a non-finite bundle limit";
        return os.str();
      }
    }
  }
  for (std::size_t i = 0; i < bid.bundles.size(); ++i) {
    const Bundle& bundle = bid.bundles[i];
    if (bundle.Empty()) {
      os << "bid '" << bid.name << "' bundle #" << i
         << " is empty (omit it; 'nothing' is always an option)";
      return os.str();
    }
    if (bundle.MinVectorSize() > num_pools) {
      os << "bid '" << bid.name << "' bundle #" << i
         << " references pool " << (bundle.MinVectorSize() - 1)
         << " outside the registry of " << num_pools << " pools";
      return os.str();
    }
  }
  const BidSide side = ClassifyBid(bid);
  if (bid.HasVectorLimits()) {
    // Vector-π sanity: a buyer must find at least one alternative
    // attainable; a seller's asks must all be revenue demands (≤ 0).
    double max_limit = bid.bundle_limits[0];
    double min_limit = bid.bundle_limits[0];
    for (double l : bid.bundle_limits) {
      max_limit = std::max(max_limit, l);
      min_limit = std::min(min_limit, l);
    }
    if (side == BidSide::kBuyer && max_limit <= 0.0) {
      os << "bid '" << bid.name
         << "' demands resources but every bundle limit is non-positive";
      return os.str();
    }
    if (side == BidSide::kSeller && max_limit > 0.0) {
      os << "bid '" << bid.name
         << "' only supplies resources but has a positive bundle limit";
      return os.str();
    }
    return {};
  }
  if (side == BidSide::kBuyer && bid.limit <= 0.0) {
    os << "bid '" << bid.name
       << "' demands resources but offers a non-positive limit "
       << bid.limit;
    return os.str();
  }
  if (side == BidSide::kSeller && bid.limit > 0.0) {
    os << "bid '" << bid.name
       << "' only supplies resources but has a positive limit " << bid.limit
       << " (sellers state a minimum revenue as a negative limit)";
    return os.str();
  }
  return {};
}

std::string ValidateBids(const std::vector<Bid>& bids,
                         std::size_t num_pools) {
  std::unordered_set<UserId> seen;
  for (const Bid& bid : bids) {
    if (bid.user == kInvalidUser) {
      return "bid '" + bid.name + "' has no user id (call AssignUserIds)";
    }
    if (!seen.insert(bid.user).second) {
      std::ostringstream os;
      os << "duplicate user id " << bid.user << " (bid '" << bid.name
         << "')";
      return os.str();
    }
    std::string problem = ValidateBid(bid, num_pools);
    if (!problem.empty()) return problem;
  }
  return {};
}

void AssignUserIds(std::vector<Bid>& bids) {
  for (std::size_t i = 0; i < bids.size(); ++i) {
    bids[i].user = static_cast<UserId>(i);
  }
}

}  // namespace pm::bid
